#include "rules/rules.hpp"

#include <algorithm>

#include "apriori/candidate_gen.hpp"

namespace eclat {

SupportIndex::SupportIndex(const MiningResult& result) {
  table_.reserve(result.itemsets.size());
  for (const FrequentItemset& f : result.itemsets) {
    table_.emplace(f.items, f.support);
  }
}

Count SupportIndex::support(const Itemset& itemset) const {
  const auto it = table_.find(itemset);
  return it == table_.end() ? 0 : it->second;
}

namespace {

Itemset set_minus(const Itemset& from, const Itemset& remove) {
  Itemset out;
  out.reserve(from.size() - remove.size());
  std::set_difference(from.begin(), from.end(), remove.begin(), remove.end(),
                      std::back_inserter(out));
  return out;
}

/// ap-genrules: grow consequents level-wise within one frequent itemset.
void grow_consequents(const Itemset& itemset, Count itemset_support,
                      std::vector<Itemset> consequents,
                      const SupportIndex& index, double min_confidence,
                      double num_transactions,
                      std::vector<AssociationRule>& out) {
  if (consequents.empty()) return;
  const std::size_t consequent_size = consequents.front().size();
  if (consequent_size >= itemset.size()) return;  // antecedent must be
                                                  // non-empty

  std::vector<Itemset> confident;
  for (Itemset& consequent : consequents) {
    const Itemset antecedent = set_minus(itemset, consequent);
    const Count antecedent_support = index.support(antecedent);
    if (antecedent_support == 0) continue;  // defensive: must be frequent
    const double confidence = static_cast<double>(itemset_support) /
                              static_cast<double>(antecedent_support);
    if (confidence < min_confidence) continue;  // prunes all supersets

    const Count consequent_support = index.support(consequent);
    const double lift =
        consequent_support == 0
            ? 0.0
            : confidence /
                  (static_cast<double>(consequent_support) /
                   num_transactions);
    out.push_back(AssociationRule{antecedent, consequent, itemset_support,
                                  confidence, lift});
    confident.push_back(std::move(consequent));
  }

  if (confident.size() < 2) return;
  std::sort(confident.begin(), confident.end(), lex_less);
  std::vector<Itemset> next = join_level(confident);
  grow_consequents(itemset, itemset_support, std::move(next), index,
                   min_confidence, num_transactions, out);
}

}  // namespace

std::vector<AssociationRule> generate_rules(const MiningResult& result,
                                            std::size_t num_transactions,
                                            const RuleConfig& config) {
  const SupportIndex index(result);
  std::vector<AssociationRule> rules;

  for (const FrequentItemset& f : result.itemsets) {
    if (f.items.size() < 2) continue;
    // Seed: all 1-item consequents.
    std::vector<Itemset> consequents;
    consequents.reserve(f.items.size());
    for (Item item : f.items) consequents.push_back({item});
    grow_consequents(f.items, f.support, std::move(consequents), index,
                     config.min_confidence,
                     static_cast<double>(num_transactions), rules);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return lex_less(a.antecedent, b.antecedent);
              }
              return lex_less(a.consequent, b.consequent);
            });
  return rules;
}

std::string to_string(const AssociationRule& rule) {
  std::string out = to_string(rule.antecedent);
  out += " => ";
  out += to_string(rule.consequent);
  out += "  (conf ";
  out += std::to_string(rule.confidence);
  out += ", sup ";
  out += std::to_string(rule.support);
  out += ", lift ";
  out += std::to_string(rule.lift);
  out += ')';
  return out;
}

}  // namespace eclat
