// Association-rule generation — step two of the KDD task (paper §1.1).
//
// From every frequent itemset X and non-empty Y ⊂ X, the rule
// (X − Y) → Y holds when confidence = support(X) / support(X − Y) meets
// the user threshold. Uses the ap-genrules recursion of Agrawal & Srikant:
// consequents grow level-wise, and a consequent that fails confidence
// prunes all of its supersets (support(antecedent) only grows as the
// antecedent shrinks, so confidence only drops).
#pragma once

#include <unordered_map>
#include <vector>

#include "apriori/candidate_gen.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace eclat {

struct AssociationRule {
  Itemset antecedent;  ///< X - Y
  Itemset consequent;  ///< Y
  Count support = 0;   ///< support(X)
  double confidence = 0.0;
  double lift = 0.0;   ///< confidence / P(consequent)

  friend bool operator==(const AssociationRule&,
                         const AssociationRule&) = default;
};

struct RuleConfig {
  double min_confidence = 0.5;
};

/// Fast lookup table from itemset to support, built once per result.
class SupportIndex {
 public:
  explicit SupportIndex(const MiningResult& result);

  /// Support of `itemset`; 0 when it is not frequent.
  Count support(const Itemset& itemset) const;

 private:
  std::unordered_map<Itemset, Count, ItemsetHash> table_;
};

/// Generate all confident rules from a mining result. `num_transactions`
/// is |D| (needed for lift). Rules are sorted by descending confidence,
/// ties by descending support.
std::vector<AssociationRule> generate_rules(const MiningResult& result,
                                            std::size_t num_transactions,
                                            const RuleConfig& config);

std::string to_string(const AssociationRule& rule);

}  // namespace eclat
