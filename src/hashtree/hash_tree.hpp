// Candidate hash tree (paper §2): the data structure Apriori-family
// algorithms use for fast subset counting. Interior nodes at depth d hash
// the d-th item of a candidate into a fixed-fanout table; leaves hold the
// candidate itemsets and their running counts.
//
// Includes the two CCPD optimizations the paper's baseline uses (§3,
// ref [16]): hash-tree *balancing* (items are remapped to buckets round-
// robin by descending 1-item frequency so buckets fill evenly) and
// *short-circuited* subset counting (descent stops as soon as the remaining
// transaction suffix is too short to complete a candidate).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "data/horizontal.hpp"

namespace eclat {

struct HashTreeConfig {
  std::size_t fanout = 32;          ///< hash-table width of interior nodes
  std::size_t leaf_capacity = 16;   ///< candidates per leaf before a split
  bool short_circuit = true;        ///< prune hopeless descents
};

/// A candidate itemset with its support counter.
struct Candidate {
  Itemset items;
  Count count = 0;
};

class HashTree {
 public:
  /// Builds a tree over k-itemsets (all inserted itemsets must have length
  /// `k`). An empty `item_to_bucket` means plain modulo hashing; otherwise
  /// it is the balancing permutation (one bucket id per item).
  HashTree(std::size_t k, HashTreeConfig config = {},
           std::vector<std::uint32_t> item_to_bucket = {});
  ~HashTree();

  HashTree(HashTree&&) noexcept;
  HashTree& operator=(HashTree&&) noexcept;
  HashTree(const HashTree&) = delete;
  HashTree& operator=(const HashTree&) = delete;

  /// Insert a candidate with count 0. Itemset length must equal k().
  void insert(Itemset itemset);

  /// Increment the counts of all candidates that are subsets of `t.items`
  /// (the per-transaction support-counting step).
  void count_transaction(const Transaction& t);

  /// Count every transaction in the span.
  void count_all(std::span<const Transaction> transactions);

  /// Visit every candidate (order unspecified).
  void for_each(const std::function<void(const Candidate&)>& fn) const;

  /// Visit every candidate mutably (used by the count sum-reduction).
  void for_each_mutable(const std::function<void(Candidate&)>& fn);

  /// Exact count lookup; returns nullptr if the itemset was never inserted.
  const Candidate* find(const Itemset& itemset) const;

  std::size_t k() const { return k_; }
  std::size_t size() const { return size_; }

  /// Number of interior + leaf nodes (for the balancing benchmark).
  std::size_t node_count() const;

 private:
  struct Node;

  std::size_t bucket_of(Item item) const;
  void count_recursive(Node& node, std::span<const Item> transaction,
                       std::span<const Item> suffix, std::size_t depth);

  std::size_t k_;
  HashTreeConfig config_;
  std::vector<std::uint32_t> item_to_bucket_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::uint64_t visit_stamp_ = 0;
};

/// Balancing permutation: bucket ids assigned round-robin to items sorted by
/// descending frequency, so heavy items spread across buckets (CCPD [16]).
std::vector<std::uint32_t> balanced_bucket_map(
    std::span<const Count> item_frequency, std::size_t fanout);

}  // namespace eclat
