#include "hashtree/hash_tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace eclat {

namespace {

/// A candidate plus the visit stamp used to count it at most once per
/// transaction (a leaf can be reached through several hash paths).
struct StampedCandidate {
  Candidate candidate;
  std::uint64_t stamp = 0;
};

}  // namespace

struct HashTree::Node {
  // A node is a leaf while `children` is empty; it becomes interior when it
  // splits (leaves at depth k-1 never split — candidates share hash buckets
  // on every remaining position there and must coexist).
  std::vector<StampedCandidate> candidates;
  std::vector<std::unique_ptr<Node>> children;

  bool is_leaf() const { return children.empty(); }
};

HashTree::HashTree(std::size_t k, HashTreeConfig config,
                   std::vector<std::uint32_t> item_to_bucket)
    : k_(k),
      config_(config),
      item_to_bucket_(std::move(item_to_bucket)),
      root_(std::make_unique<Node>()) {
  if (k_ == 0) throw std::invalid_argument("hash tree requires k >= 1");
  if (config_.fanout < 2) throw std::invalid_argument("fanout must be >= 2");
}

HashTree::~HashTree() = default;
HashTree::HashTree(HashTree&&) noexcept = default;
HashTree& HashTree::operator=(HashTree&&) noexcept = default;

std::size_t HashTree::bucket_of(Item item) const {
  if (!item_to_bucket_.empty() && item < item_to_bucket_.size()) {
    return item_to_bucket_[item];
  }
  return item % config_.fanout;
}

void HashTree::insert(Itemset itemset) {
  if (itemset.size() != k_) {
    throw std::invalid_argument("itemset length must equal tree depth k");
  }
  Node* node = root_.get();
  std::size_t depth = 0;
  while (!node->is_leaf()) {
    node = node->children[bucket_of(itemset[depth])].get();
    ++depth;
  }
  node->candidates.push_back(StampedCandidate{{std::move(itemset), 0}, 0});
  ++size_;

  // Split an overfull leaf, pushing its candidates one level down. Depth
  // k-1 is the deepest hashable level.
  while (depth < k_ - 1 &&
         node->candidates.size() > config_.leaf_capacity) {
    std::vector<StampedCandidate> spill = std::move(node->candidates);
    node->candidates.clear();
    node->children.resize(config_.fanout);
    for (auto& child : node->children) child = std::make_unique<Node>();
    for (StampedCandidate& entry : spill) {
      node->children[bucket_of(entry.candidate.items[depth])]
          ->candidates.push_back(std::move(entry));
    }
    // Continue with whichever child is fullest; in the common case no
    // child exceeds capacity and the loop exits immediately.
    Node* fullest = node->children.front().get();
    for (auto& child : node->children) {
      if (child->candidates.size() > fullest->candidates.size()) {
        fullest = child.get();
      }
    }
    node = fullest;
    ++depth;
  }
}

void HashTree::count_transaction(const Transaction& t) {
  if (t.items.size() < k_) return;  // too short to contain any candidate
  ++visit_stamp_;
  count_recursive(*root_, std::span<const Item>(t.items),
                  std::span<const Item>(t.items), 0);
}

void HashTree::count_all(std::span<const Transaction> transactions) {
  for (const Transaction& t : transactions) count_transaction(t);
}

void HashTree::count_recursive(Node& node,
                               std::span<const Item> transaction,
                               std::span<const Item> suffix,
                               std::size_t depth) {
  if (node.is_leaf()) {
    for (StampedCandidate& entry : node.candidates) {
      if (entry.stamp == visit_stamp_) continue;  // already counted
      // Subset test of the whole candidate against the whole transaction,
      // short-circuited when the transaction suffix is too short.
      const Itemset& cand = entry.candidate.items;
      std::size_t ci = 0;
      for (std::size_t ti = 0; ti < transaction.size() && ci < cand.size();
           ++ti) {
        if (config_.short_circuit &&
            cand.size() - ci > transaction.size() - ti) {
          break;  // not enough transaction items left to finish the match
        }
        if (transaction[ti] == cand[ci]) {
          ++ci;
        } else if (transaction[ti] > cand[ci]) {
          break;  // sorted: cand[ci] can no longer appear
        }
      }
      if (ci == cand.size()) {
        entry.stamp = visit_stamp_;
        ++entry.candidate.count;
      }
    }
    return;
  }
  // Interior at depth d: hash on each item of the suffix that could be the
  // d-th member of a candidate, then recurse on what follows it. An item
  // qualifies only if enough items remain after it for positions d+1..k-1.
  const std::size_t needed_after = k_ - depth - 1;
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (config_.short_circuit && suffix.size() - i - 1 < needed_after) break;
    Node& child = *node.children[bucket_of(suffix[i])];
    count_recursive(child, transaction, suffix.subspan(i + 1), depth + 1);
  }
}

void HashTree::for_each(
    const std::function<void(const Candidate&)>& fn) const {
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const StampedCandidate& entry : node->candidates) {
      fn(entry.candidate);
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
}

void HashTree::for_each_mutable(const std::function<void(Candidate&)>& fn) {
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (StampedCandidate& entry : node->candidates) fn(entry.candidate);
    for (auto& child : node->children) stack.push_back(child.get());
  }
}

const Candidate* HashTree::find(const Itemset& itemset) const {
  if (itemset.size() != k_) return nullptr;
  const Node* node = root_.get();
  std::size_t depth = 0;
  while (!node->is_leaf()) {
    node = node->children[bucket_of(itemset[depth])].get();
    ++depth;
  }
  for (const StampedCandidate& entry : node->candidates) {
    if (entry.candidate.items == itemset) return &entry.candidate;
  }
  return nullptr;
}

std::size_t HashTree::node_count() const {
  std::size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return count;
}

std::vector<std::uint32_t> balanced_bucket_map(
    std::span<const Count> item_frequency, std::size_t fanout) {
  std::vector<std::uint32_t> order(item_frequency.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return item_frequency[a] > item_frequency[b];
                   });
  std::vector<std::uint32_t> map(item_frequency.size(), 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    map[order[rank]] = static_cast<std::uint32_t>(rank % fanout);
  }
  return map;
}

}  // namespace eclat
