#include "eclat/eclat_seq.hpp"

#include <algorithm>

#include "apriori/apriori.hpp"
#include "eclat/diffsets.hpp"
#include "eclat/equivalence.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

MiningResult eclat_sequential(const HorizontalDatabase& db,
                              const EclatConfig& config,
                              IntersectStats* stats) {
  MiningResult result;
  const std::span<const Transaction> all(db.transactions());

  // --- Initialization: count 2-itemsets (and, optionally, singletons) in
  // one scan. ---
  TriangleCounter counter(std::max<Item>(db.num_items(), 2));
  counter.count(all);
  ++result.database_scans;

  if (config.include_singletons) {
    const std::vector<Count> item_counts = count_items(all, db.num_items());
    for (Item item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= config.minsup) {
        result.itemsets.push_back(
            FrequentItemset{{item}, item_counts[item]});
      }
    }
  }
  const std::size_t l1 = result.itemsets.size();
  result.levels.push_back(LevelStats{
      1, static_cast<std::size_t>(db.num_items()), l1});

  const std::vector<PairKey> frequent_pairs =
      counter.frequent_pairs(config.minsup);
  for (PairKey key : frequent_pairs) {
    result.itemsets.push_back(FrequentItemset{
        {pair_first(key), pair_second(key)}, counter.get(pair_first(key),
                                                         pair_second(key))});
  }

  // --- Transformation: vertical tid-lists for the frequent pairs (second
  // and final horizontal scan). ---
  std::unordered_map<PairKey, TidList> tidlists =
      invert_pairs(all, frequent_pairs);
  ++result.database_scans;

  // --- Asynchronous phase: mine each equivalence class to completion. ---
  const std::vector<EquivalenceClass> classes =
      partition_into_classes(frequent_pairs);
  std::vector<std::size_t> size_histogram(3, 0);
  size_histogram[2] = frequent_pairs.size();

  // One arena reused across every class: level buffers warm up on the
  // first few classes, after which the recursion allocates nothing.
  TidArena arena;
  for (const EquivalenceClass& eq_class : classes) {
    std::vector<Atom> atoms;
    atoms.reserve(eq_class.members.size());
    for (Item member : eq_class.members) {
      const PairKey key = make_pair_key(eq_class.prefix, member);
      atoms.push_back(Atom{{eq_class.prefix, member},
                           std::move(tidlists.at(key))});
    }
    if (config.use_diffsets) {
      compute_frequent_diffsets(atoms, config.minsup, config.kernel, arena,
                                result.itemsets, size_histogram, stats);
    } else {
      compute_frequent(atoms, config.minsup, config.kernel, arena,
                       result.itemsets, size_histogram, stats);
    }
  }

  for (std::size_t k = 2; k < size_histogram.size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, size_histogram[k]});
  }

  normalize(result);
  return result;
}

}  // namespace eclat
