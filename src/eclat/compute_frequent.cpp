#include "eclat/compute_frequent.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eclat {

Tid class_universe(const std::vector<Atom>& class_atoms) {
  Tid universe = 0;
  for (const Atom& atom : class_atoms) {
    if (!atom.tids.empty()) {
      universe = std::max(universe, atom.tids.back() + 1);
    }
  }
  return universe;
}

std::optional<TidList> intersect_with_kernel(const TidList& a,
                                             const TidList& b, Count minsup,
                                             IntersectKernel kernel,
                                             IntersectStats* stats) {
  Tid universe = 0;
  if (!a.empty()) universe = a.back() + 1;
  if (!b.empty()) universe = std::max(universe, b.back() + 1);
  TidSet sa;
  TidSet sb;
  TidSet result;
  seed_tidset(a, universe, kernel, sa, stats);
  seed_tidset(b, universe, kernel, sb, stats);
  if (!intersect_into(sa, sb, minsup, kernel, universe, result, stats)) {
    return std::nullopt;
  }
  return result.to_tidlist();
}

namespace {

void emit(const Itemset& prefix, Item suffix, Count support,
          std::vector<FrequentItemset>& out,
          std::vector<std::size_t>& size_histogram) {
  const std::size_t size = prefix.size() + 1;
  if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
  ++size_histogram[size];
  FrequentItemset& found = out.emplace_back();
  found.items.reserve(size);
  found.items.assign(prefix.begin(), prefix.end());
  found.items.push_back(suffix);
  found.support = support;
}

/// Mine the class held in the first `used` slots of arena level `depth`,
/// whose members share the items in arena.prefix(). Emission order is the
/// classical recursive one: for each leading atom i, every frequent join
/// (i, j) in j order, then atom i's child class mined to completion
/// before atom i+1.
void mine(TidArena& arena, std::size_t depth, Count minsup,
          IntersectKernel kernel, Tid universe,
          std::vector<FrequentItemset>& out,
          std::vector<std::size_t>& size_histogram, IntersectStats* stats,
          MiningGuard* guard) {
  TidArena::Level& cur = arena.level(depth);
  TidArena::Level& next = arena.level(depth + 1);
  const std::size_t n = cur.used;
  Itemset& prefix = arena.prefix();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // One guard checkpoint per leading atom: the work in between (one row
    // of intersections plus the child-class recursion entry) is bounded,
    // so a cancellation or budget check is never starved.
    if (guard != nullptr) guard->checkpoint();
    prefix.push_back(cur.suffixes[i]);
    if (i + 2 == n) {
      // Single join (i, n-1) whose child class is at most a singleton —
      // it can never recurse, so evaluate support without materializing.
      const std::optional<Count> support = intersect_support(
          cur.sets[i], cur.sets[n - 1], minsup, kernel, stats);
      if (support) {
        emit(prefix, cur.suffixes[n - 1], *support, out, size_histogram);
      }
    } else {
      next.reset();
      for (std::size_t j = i + 1; j < n; ++j) {
        TidSet& slot = next.scratch();
        if (!intersect_into(cur.sets[i], cur.sets[j], minsup, kernel,
                            universe, slot, stats)) {
          continue;
        }
        const Count support = slot.support();
        emit(prefix, cur.suffixes[j], support, out, size_histogram);
        next.commit(cur.suffixes[j], support);
      }
      if (next.used >= 2) {
        mine(arena, depth + 1, minsup, kernel, universe, out,
             size_histogram, stats, guard);
      }
    }
    prefix.pop_back();
  }
}

}  // namespace

void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel, TidArena& arena,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats, MiningGuard* guard) {
  if (class_atoms.size() < 2) return;
  if (guard != nullptr) guard->checkpoint();
#if ECLAT_DCHECKS_ENABLED
  for (const Atom& atom : class_atoms) {
    ECLAT_DCHECK(atom.items.size() == class_atoms.front().items.size());
    ECLAT_DCHECK(std::equal(atom.items.begin(), atom.items.end() - 1,
                            class_atoms.front().items.begin()));
  }
#endif
  const Tid universe = class_universe(class_atoms);

  // Seed level 0 with the atoms in the kernel's preferred representation.
  TidArena::Level& root = arena.level(0);
  root.reset();
  for (const Atom& atom : class_atoms) {
    TidSet& slot = root.scratch();
    seed_tidset(atom.tids, universe, kernel, slot, stats);
    root.commit(atom.items.back(), atom.support());
  }

  Itemset& prefix = arena.prefix();
  prefix.assign(class_atoms.front().items.begin(),
                class_atoms.front().items.end() - 1);
  mine(arena, 0, minsup, kernel, universe, out, size_histogram, stats,
       guard);
  prefix.clear();
}

void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats) {
  TidArena arena;
  compute_frequent(class_atoms, minsup, kernel, arena, out, size_histogram,
                   stats);
}

}  // namespace eclat
