#include "eclat/compute_frequent.hpp"

#include <algorithm>

namespace eclat {

std::optional<TidList> intersect_with_kernel(const TidList& a,
                                             const TidList& b, Count minsup,
                                             IntersectKernel kernel,
                                             IntersectStats* stats) {
  if (stats) {
    ++stats->intersections;
    stats->tids_scanned += a.size() + b.size();
  }
  switch (kernel) {
    case IntersectKernel::kMergeShortCircuit: {
      std::optional<TidList> result = intersect_short_circuit(a, b, minsup);
      if (stats && !result) ++stats->short_circuited;
      return result;
    }
    case IntersectKernel::kGallop: {
      TidList result = intersect_gallop(a, b);
      if (result.size() < minsup) return std::nullopt;
      return result;
    }
    case IntersectKernel::kMerge:
    default: {
      TidList result = intersect(a, b);
      if (result.size() < minsup) return std::nullopt;
      return result;
    }
  }
}

void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats) {
  if (class_atoms.size() < 2) return;

  // Joining atom i with every atom j > i yields the child equivalence
  // class prefixed by atom i's itemset; recurse depth-first so at most one
  // child class per level is alive (paper §5.3).
  for (std::size_t i = 0; i + 1 < class_atoms.size(); ++i) {
    std::vector<Atom> child_class;
    for (std::size_t j = i + 1; j < class_atoms.size(); ++j) {
      std::optional<TidList> tids = intersect_with_kernel(
          class_atoms[i].tids, class_atoms[j].tids, minsup, kernel, stats);
      if (!tids) continue;

      Atom child;
      child.items = class_atoms[i].items;
      child.items.push_back(class_atoms[j].items.back());
      child.tids = std::move(*tids);

      const std::size_t size = child.items.size();
      if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
      ++size_histogram[size];
      out.push_back(FrequentItemset{child.items, child.support()});
      child_class.push_back(std::move(child));
    }
    compute_frequent(child_class, minsup, kernel, out, size_histogram, stats);
  }
}

}  // namespace eclat
