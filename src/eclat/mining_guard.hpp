// Cooperative checkpoint hook for the mining recursion. Execution
// substrates above the eclat layer (src/exec) need to interrupt a class
// mid-mining — to honor a cancellation token after a speculative backup
// committed, to park at a deterministic injected-stall site, or to apply
// a memory budget to the arena — but the layering DAG forbids eclat from
// seeing exec. MiningGuard is the seam: compute_frequent calls
// checkpoint() at class entry and at every leading-atom boundary of the
// recursion (bounded work between calls: one row of intersections), and
// an implementation may throw to abandon the class. The throw unwinds
// through the recursion; the arena stays structurally valid (levels are
// reset on reuse), so the same arena can mine the next class.
//
// A null guard is the fast path: callers that pass nullptr pay one
// branch per leading atom and nothing else.
#pragma once

namespace eclat {

class MiningGuard {
 public:
  virtual ~MiningGuard() = default;

  /// Called at bounded intervals during class mining. Implementations may
  /// throw to abandon the class; they must not mutate the arena except
  /// through representations-preserving hooks (TidArena::relieve_memory).
  virtual void checkpoint() = 0;
};

}  // namespace eclat
