// Sequential Eclat: the single-processor specialization of the paper's
// algorithm (and the baseline for the speedup curves of Figure 7).
//
// Phases: (1) count all 2-itemsets in one horizontal scan via a triangular
// array; (2) invert the database into tid-lists of the frequent 2-itemsets
// (second scan) and split L2 into equivalence classes; (3) mine each class
// to completion with Compute_Frequent. No hash trees, no candidate pruning.
#pragma once

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "eclat/compute_frequent.hpp"

namespace eclat {

struct EclatConfig {
  Count minsup = 1;  ///< absolute minimum support (transactions)
  IntersectKernel kernel = IntersectKernel::kMergeShortCircuit;
  /// Mine with diffsets (dEclat) instead of tid-list intersections —
  /// identical results, smaller intermediate sets on dense data. The
  /// `kernel` selection applies to the difference kernels too: sparse
  /// kernels use the bounded merge difference, kBitset/kAuto the dense
  /// AND-NOT.
  bool use_diffsets = false;
  /// Also report frequent 1-itemsets. The paper's Eclat never counts
  /// singletons (§5.1); they are counted here in the same pass as the pairs
  /// so results are comparable with Apriori. Disable for strict paper mode.
  bool include_singletons = true;
};

/// Mine all frequent itemsets of `db` with sequential Eclat.
MiningResult eclat_sequential(const HorizontalDatabase& db,
                              const EclatConfig& config,
                              IntersectStats* stats = nullptr);

}  // namespace eclat
