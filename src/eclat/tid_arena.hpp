// Per-worker scratch arena for the mining recursion. The depth-first
// enumeration of Compute_Frequent keeps at most one child class alive per
// recursion level (paper §5.3), so all tid-sets the recursion will ever
// hold fit in a stack of levels indexed by depth. The arena keeps that
// stack alive across sibling classes, across the top-level equivalence
// classes, and across whole mining calls: after the first few classes
// warm the buffers up, a mining pass performs no tid-list allocations.
//
// Lifetime rules (also documented in DESIGN.md §5):
//   - level(d) references stay valid while deeper levels grow (deque).
//   - Slots inside one level are reused in place: reset() rewinds the
//     `used` cursor without touching capacity, scratch() hands out the
//     next slot for a kernel to fill, commit() keeps it.
//   - A slot handed out by scratch() is only valid until the next
//     scratch()/reset() on the same level; commit() makes it permanent
//     for the lifetime of the enclosing class.
//   - prefix() is a shared push/pop stack: push the class's leading item
//     before recursing into its child class, pop on the way out.
// The arena is strictly per-worker state — sharing one across threads is
// a data race by construction.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "vertical/tidset.hpp"

namespace eclat {

class TidArena {
 public:
  /// One recursion level: the child class under construction. Parallel
  /// arrays indexed by slot — `sets[s]` is the tid-set (or diffset) of
  /// the child whose last item is `suffixes[s]` with support
  /// `supports[s]`. Only the first `used` slots are live.
  struct Level {
    std::vector<Item> suffixes;
    std::vector<Count> supports;
    std::vector<TidSet> sets;
    std::size_t used = 0;

    /// Rewind to empty, keeping every buffer's capacity.
    void reset() { used = 0; }

    /// The next free slot, growing the level if needed. The returned
    /// reference is invalidated by the next scratch()/reset(); call
    /// commit() to keep its contents.
    TidSet& scratch() {
      if (used == sets.size()) {
        sets.emplace_back();
        suffixes.push_back(0);
        supports.push_back(0);
      }
      return sets[used];
    }

    /// Keep the slot last returned by scratch() as a member of the child
    /// class, tagged with its suffix item and support.
    void commit(Item suffix, Count support) {
      ECLAT_DCHECK(used < sets.size());
      suffixes[used] = suffix;
      supports[used] = support;
      ++used;
    }
  };

  /// The level for recursion depth `depth`, created on first use. The
  /// reference stays valid while deeper levels are created.
  Level& level(std::size_t depth) {
    while (levels_.size() <= depth) levels_.emplace_back();
    return levels_[depth];
  }

  /// Shared prefix stack: the items common to every member of the class
  /// currently being mined. The full itemset of the child in slot s is
  /// prefix() + suffixes[s].
  Itemset& prefix() { return prefix_; }

  /// Forget all cached state (buffers are dropped, not rewound). Only
  /// needed to release memory; mining calls reset what they use.
  void clear() {
    levels_.clear();
    prefix_.clear();
  }

  /// Bytes retained across all levels (buffer capacities plus tid-set
  /// storage). This is what the exec per-worker memory budget meters.
  std::size_t memory_bytes() const {
    std::size_t total = prefix_.capacity() * sizeof(Item);
    for (const Level& level : levels_) {
      total += level.suffixes.capacity() * sizeof(Item) +
               level.supports.capacity() * sizeof(Count);
      for (const TidSet& set : level.sets) {
        total += sizeof(TidSet) + set.memory_bytes();
      }
    }
    return total;
  }

  /// Memory-pressure relief, called from a MiningGuard checkpoint (so no
  /// scratch() reference is outstanding): slots past each level's `used`
  /// cursor hold only dead data and are released outright; live slots are
  /// demoted to the chunked representation when `demote_live` allows it
  /// (kAuto/kChunked kernels — the forced sparse/dense kernels must keep
  /// their representation). Returns the number of sets demoted. The
  /// arena stays structurally valid: mining continues on the demoted
  /// sets through the mixed-representation kernels.
  std::size_t relieve_memory(bool demote_live) {
    std::size_t demoted = 0;
    for (Level& level : levels_) {
      for (std::size_t s = 0; s < level.sets.size(); ++s) {
        if (s >= level.used) {
          level.sets[s].release();
        } else if (demote_live && level.sets[s].demote_to_chunked()) {
          ++demoted;
        }
      }
    }
    return demoted;
  }

 private:
  std::deque<Level> levels_;  // deque: stable refs while deeper levels grow
  Itemset prefix_;
};

}  // namespace eclat
