#include "eclat/external_transform.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace eclat {
namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'A', 'T', 'V', 'D', 'B'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated vertical database");
  return value;
}

}  // namespace

ExternalTransformStats external_transform(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs, const std::vector<Count>& pair_counts,
    std::ostream& out, const ExternalTransformConfig& config) {
  if (pairs.size() != pair_counts.size()) {
    throw std::invalid_argument("pairs/pair_counts size mismatch");
  }
  ExternalTransformStats stats;

  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, pairs.size());

  // Plan groups: walk the pairs in order, packing until the budget is
  // reached. A single list larger than the budget gets a group of its own
  // (the hard floor on memory).
  std::size_t begin = 0;
  while (begin < pairs.size()) {
    std::size_t end = begin;
    std::size_t group_bytes = 0;
    while (end < pairs.size()) {
      const std::size_t list_bytes = pair_counts[end] * sizeof(Tid);
      if (end > begin && group_bytes + list_bytes > config.memory_budget) {
        break;
      }
      group_bytes += list_bytes;
      ++end;
    }
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, group_bytes);

    // One horizontal pass collecting only this group's tid-lists.
    const std::vector<PairKey> group(pairs.begin() + begin,
                                     pairs.begin() + end);
    std::unordered_map<PairKey, TidList> lists =
        invert_pairs(transactions, group);
    ++stats.passes;

    for (std::size_t i = begin; i < end; ++i) {
      const TidList& list = lists.at(pairs[i]);
      write_pod<std::uint64_t>(out, pairs[i]);
      write_pod<std::uint64_t>(out, list.size());
      out.write(reinterpret_cast<const char*>(list.data()),
                static_cast<std::streamsize>(list.size() * sizeof(Tid)));
      ++stats.pairs_written;
      stats.tids_written += list.size();
    }
    begin = end;
  }
  if (!out) throw std::runtime_error("failed to write vertical database");
  return stats;
}

ExternalTransformStats external_transform_file(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs, const std::vector<Count>& pair_counts,
    const std::string& path, const ExternalTransformConfig& config) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  return external_transform(transactions, pairs, pair_counts, out, config);
}

std::vector<std::pair<PairKey, TidList>> read_vertical(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ECLATVDB vertical database");
  }
  const auto num_pairs = read_pod<std::uint64_t>(in);
  std::vector<std::pair<PairKey, TidList>> lists;
  lists.reserve(num_pairs);
  for (std::uint64_t i = 0; i < num_pairs; ++i) {
    const auto key = read_pod<PairKey>(in);
    const auto count = read_pod<std::uint64_t>(in);
    TidList tids(count);
    in.read(reinterpret_cast<char*>(tids.data()),
            static_cast<std::streamsize>(count * sizeof(Tid)));
    if (!in) throw std::runtime_error("truncated vertical database");
    lists.emplace_back(key, std::move(tids));
  }
  return lists;
}

std::vector<std::pair<PairKey, TidList>> read_vertical_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_vertical(in);
}

}  // namespace eclat
