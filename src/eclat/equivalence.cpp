#include "eclat/equivalence.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"

namespace eclat {

std::vector<PairKey> EquivalenceClass::pair_keys() const {
  std::vector<PairKey> keys;
  keys.reserve(members.size());
  for (Item member : members) keys.push_back(make_pair_key(prefix, member));
  return keys;
}

std::vector<EquivalenceClass> partition_into_classes(
    std::span<const PairKey> frequent_pairs) {
  std::vector<EquivalenceClass> classes;
  for (PairKey key : frequent_pairs) {
    const Item a = pair_first(key);
    const Item b = pair_second(key);
    if (classes.empty() || classes.back().prefix != a) {
      if (!classes.empty() && classes.back().prefix > a) {
        throw std::invalid_argument("frequent pairs must be sorted");
      }
      classes.push_back(EquivalenceClass{a, {}});
    }
    classes.back().members.push_back(b);
  }
  return classes;
}

std::vector<std::size_t> schedule_greedy_by_weight(
    std::span<const std::size_t> weights, std::size_t num_processors) {
  if (num_processors == 0) {
    throw std::invalid_argument("need at least one processor");
  }
  // Sort class indices by weight descending; stable so equal weights keep
  // class order (determinism).
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });

  std::vector<std::size_t> load(num_processors, 0);
  std::vector<std::size_t> assignment(weights.size(), 0);
  std::size_t previous_weight = order.empty() ? 0 : weights[order.front()];
  for (std::size_t index : order) {
    // LPT placement order must be monotonically non-increasing in weight —
    // the determinism and balance guarantees both hang on it.
    ECLAT_DCHECK(weights[index] <= previous_weight);
    previous_weight = weights[index];
    // Least-loaded processor; ties broken by the smaller id (paper
    // §5.2.1). min_element returns the first minimum, which is exactly
    // the smallest id.
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[index] = target;
    load[target] += weights[index];
  }
  return assignment;
}

std::vector<std::size_t> schedule_greedy(
    std::span<const EquivalenceClass> classes, std::size_t num_processors) {
  std::vector<std::size_t> weights(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    weights[c] = classes[c].weight();
  }
  return schedule_greedy_by_weight(weights, num_processors);
}

std::size_t support_weight(const EquivalenceClass& eq_class,
                           const TriangleCounter& counter) {
  std::size_t weight = 0;
  const auto& members = eq_class.members;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Count sup_i = counter.get(eq_class.prefix, members[i]);
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const Count sup_j = counter.get(eq_class.prefix, members[j]);
      weight += static_cast<std::size_t>(std::min(sup_i, sup_j));
    }
  }
  return weight;
}

std::vector<std::size_t> schedule_round_robin(
    std::span<const EquivalenceClass> classes, std::size_t num_processors) {
  if (num_processors == 0) {
    throw std::invalid_argument("need at least one processor");
  }
  std::vector<std::size_t> assignment(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    assignment[i] = i % num_processors;
  }
  return assignment;
}

std::vector<std::size_t> processor_loads(
    std::span<const EquivalenceClass> classes,
    std::span<const std::size_t> assignment, std::size_t num_processors) {
  ECLAT_CHECK(assignment.size() == classes.size());
  std::vector<std::size_t> load(num_processors, 0);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    ECLAT_CHECK(assignment[i] < num_processors);
    load[assignment[i]] += classes[i].weight();
  }
  return load;
}

}  // namespace eclat
