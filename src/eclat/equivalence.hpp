// Equivalence-class partitioning and scheduling (paper §4.1, §5.2.1).
//
// L2, sorted lexicographically, splits into classes by common 1-item
// prefix: [a] = { {a,b} in L2 }. Classes generate candidate sub-lattices
// independently, so they are the unit of work distribution. A class of s
// members is assigned weight C(s,2) — the number of candidate 3-itemsets it
// will generate — and classes are placed on processors by a greedy
// longest-processing-time heuristic (sort by weight descending, assign to
// the least-loaded processor, ties to the smaller processor id).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

/// An L2 equivalence class: prefix item `a`, and the sorted items `b > a`
/// such that {a, b} is frequent.
struct EquivalenceClass {
  Item prefix = 0;
  std::vector<Item> members;

  std::size_t size() const { return members.size(); }

  /// Scheduling weight C(s, 2): candidate pairs at the next level.
  std::size_t weight() const {
    return members.size() < 2 ? 0 : members.size() * (members.size() - 1) / 2;
  }

  /// The 2-itemsets {prefix, b} this class owns.
  std::vector<PairKey> pair_keys() const;
};

/// Split a sorted list of frequent pairs into equivalence classes.
/// Singleton classes (one member) are kept: their 2-itemset is frequent and
/// must be reported, but their weight is 0 so they cost nothing to place.
std::vector<EquivalenceClass> partition_into_classes(
    std::span<const PairKey> frequent_pairs);

/// Greedy schedule: `assignment[i]` is the processor that owns class i.
/// Deterministic given the inputs (paper §5.2.1 tie-breaking).
std::vector<std::size_t> schedule_greedy(
    std::span<const EquivalenceClass> classes, std::size_t num_processors);

/// Greedy longest-processing-time over explicit per-class weights (the
/// generic core of schedule_greedy, exposed for custom weight functions).
std::vector<std::size_t> schedule_greedy_by_weight(
    std::span<const std::size_t> weights, std::size_t num_processors);

/// Support-aware class weight — §5.2.1's suggested refinement ("make use
/// of the average support of the itemsets within a class"): the estimated
/// intersection work Σ over member pairs of min(sup(a,x), sup(a,y)),
/// which bounds each first-level tid-list intersection of the class.
std::size_t support_weight(const EquivalenceClass& eq_class,
                           const TriangleCounter& counter);

/// Round-robin schedule by class index — the naive baseline the scheduling
/// ablation benchmark compares against.
std::vector<std::size_t> schedule_round_robin(
    std::span<const EquivalenceClass> classes, std::size_t num_processors);

/// Total weight per processor under an assignment (for load-imbalance
/// metrics: max/mean of this vector).
std::vector<std::size_t> processor_loads(
    std::span<const EquivalenceClass> classes,
    std::span<const std::size_t> assignment, std::size_t num_processors);

}  // namespace eclat
