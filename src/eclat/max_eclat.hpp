// MaxEclat — mining *maximal* frequent itemsets, from the companion report
// the paper cites as [18] (Zaki, Parthasarathy, Ogihara & Li, "New
// Algorithms for Fast Discovery of Association Rules", URCS TR 651): the
// same equivalence-class/tid-list machinery as Eclat, plus a hybrid
// search step — before expanding a class bottom-up, test its *top
// element* (the union of all its atoms, whose tid-list is the
// intersection of all atom tid-lists). If the top is frequent the entire
// sub-lattice collapses to that single maximal itemset and the class is
// pruned wholesale.
//
// Every frequent itemset is a subset of some maximal one, so the maximal
// family is a compact lossless summary of frequency (supports of subsets
// are not retained — that is the documented trade-off).
#pragma once

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "eclat/compute_frequent.hpp"

namespace eclat {

struct MaxEclatConfig {
  Count minsup = 1;
  IntersectKernel kernel = IntersectKernel::kMergeShortCircuit;
};

struct MaxEclatStats {
  std::size_t top_hits = 0;    ///< classes collapsed by the top-element test
  std::size_t candidates = 0;  ///< maximal candidates before subsumption
};

/// All maximal frequent itemsets of `db` (sizes >= 1), sorted like any
/// MiningResult. `result.levels` reports maximal counts per size.
MiningResult max_eclat(const HorizontalDatabase& db,
                       const MaxEclatConfig& config,
                       MaxEclatStats* stats = nullptr);

/// Reference utility: the maximal elements of an (arbitrary) mining
/// result — used to validate max_eclat against full Eclat output.
std::vector<FrequentItemset> maximal_of(const MiningResult& result);

}  // namespace eclat
