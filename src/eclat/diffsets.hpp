// Diffset-based mining (dEclat) — the successor optimization to tid-list
// Eclat from the same research line. Instead of carrying each itemset's
// full tid-list down the recursion, carry the *difference* from its
// prefix: d(PX) = t(P) − t(PX). Supports then update incrementally,
//
//     d(PXY) = d(PY) \ d(PX),      sup(PXY) = sup(PX) − |d(PXY)|,
//
// and on dense data the diffsets are dramatically smaller than the
// tidsets they replace. The recursion enters from ordinary tid-list atoms
// (the L2 equivalence-class members) and switches representation at the
// first join: d(XY) = t(X) \ t(Y). Diffsets run over the same adaptive
// TidSet representations as the intersection path: the dense kernel is a
// word-wise AND-NOT with the same budget bound.
#pragma once

#include "eclat/compute_frequent.hpp"

namespace eclat {

/// An itemset with its diffset from the recursion prefix and its exact
/// support (which a diffset alone cannot reproduce).
struct DiffAtom {
  Itemset items;
  TidList diffset;
  Count support = 0;
};

/// Drop-in alternative to compute_frequent: identical results, diffset
/// representation internally. `class_atoms` are tid-list atoms exactly as
/// for compute_frequent. Stats count diffset elements (or bitset words)
/// actually scanned. Sparse kernels all use the bounded merge difference
/// (galloping has no difference analogue); kBitset/kAuto use the dense
/// AND-NOT where the representation allows.
void compute_frequent_diffsets(const std::vector<Atom>& class_atoms,
                               Count minsup, IntersectKernel kernel,
                               TidArena& arena,
                               std::vector<FrequentItemset>& out,
                               std::vector<std::size_t>& size_histogram,
                               IntersectStats* stats = nullptr);

/// Convenience overload: paper kernel, call-local arena.
void compute_frequent_diffsets(const std::vector<Atom>& class_atoms,
                               Count minsup,
                               std::vector<FrequentItemset>& out,
                               std::vector<std::size_t>& size_histogram,
                               IntersectStats* stats = nullptr);

/// Bounded set difference: a \ b, abandoned (nullopt) as soon as the
/// result would exceed `max_size` elements — the diffset analogue of the
/// paper's short-circuited intersection (|d| > sup(parent) - minsup means
/// the child cannot be frequent).
std::optional<TidList> difference_bounded(std::span<const Tid> a,
                                          std::span<const Tid> b,
                                          std::size_t max_size);

}  // namespace eclat
