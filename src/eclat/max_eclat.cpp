#include "eclat/max_eclat.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "apriori/apriori.hpp"
#include "eclat/equivalence.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {
namespace {

/// Recursion state shared across one class: the arena holding each
/// level's child class, per-depth ping-pong buffers for the top-element
/// fold, and the kernel/universe the class mines under.
struct MaxCtx {
  TidArena& arena;
  std::deque<std::array<TidSet, 2>>& fold;
  Count minsup;
  IntersectKernel kernel;
  Tid universe;
  std::vector<FrequentItemset>& out;
  MaxEclatStats& stats;
  IntersectStats* istats;
};

void emit_candidate(const Itemset& prefix, Item suffix, Count support,
                    MaxCtx& ctx) {
  ++ctx.stats.candidates;
  FrequentItemset& found = ctx.out.emplace_back();
  found.items.reserve(prefix.size() + 1);
  found.items.assign(prefix.begin(), prefix.end());
  found.items.push_back(suffix);
  found.support = support;
}

/// Collect maximal candidates from the class held in arena level `depth`
/// (members share arena.prefix()). Every maximal frequent itemset
/// extending this class's prefix lands in `out` (possibly alongside
/// non-maximal candidates, removed by the global subsumption filter at
/// the end).
void max_recurse(MaxCtx& ctx, std::size_t depth) {
  TidArena::Level& cur = ctx.arena.level(depth);
  const std::size_t n = cur.used;
  Itemset& prefix = ctx.arena.prefix();
  if (n == 0) return;
  if (n == 1) {
    emit_candidate(prefix, cur.suffixes[0], cur.supports[0], ctx);
    return;
  }

  // Top-element test: intersect every atom's tid-set. If the class top
  // is frequent, it subsumes the entire sub-lattice.
  {
    if (ctx.fold.size() <= depth) ctx.fold.resize(depth + 1);
    TidSet* top = &ctx.fold[depth][0];
    TidSet* spare = &ctx.fold[depth][1];
    *top = cur.sets[0];
    bool alive = true;
    for (std::size_t i = 1; i < n && alive; ++i) {
      if (intersect_into(*top, cur.sets[i], ctx.minsup, ctx.kernel,
                         ctx.universe, *spare, ctx.istats)) {
        std::swap(top, spare);
      } else {
        alive = false;
      }
    }
    if (alive) {
      ++ctx.stats.top_hits;
      ++ctx.stats.candidates;
      FrequentItemset& found = ctx.out.emplace_back();
      found.items.reserve(prefix.size() + n);
      found.items.assign(prefix.begin(), prefix.end());
      found.items.insert(found.items.end(), cur.suffixes.begin(),
                         cur.suffixes.begin() + static_cast<std::ptrdiff_t>(n));
      found.support = top->support();
      return;
    }
  }

  // Bottom-up expansion: atom i's extensions form its child class. An
  // atom with no frequent extension is a maximal candidate itself.
  TidArena::Level& next = ctx.arena.level(depth + 1);
  for (std::size_t i = 0; i < n; ++i) {
    next.reset();
    prefix.push_back(cur.suffixes[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      TidSet& slot = next.scratch();
      if (!intersect_into(cur.sets[i], cur.sets[j], ctx.minsup, ctx.kernel,
                          ctx.universe, slot, ctx.istats)) {
        continue;
      }
      next.commit(cur.suffixes[j], slot.support());
    }
    if (next.used == 0) {
      prefix.pop_back();
      emit_candidate(prefix, cur.suffixes[i], cur.supports[i], ctx);
    } else {
      max_recurse(ctx, depth + 1);
      prefix.pop_back();
    }
  }
}

}  // namespace

std::vector<FrequentItemset> maximal_of(const MiningResult& result) {
  // Sort by size descending; keep an itemset iff no kept superset exists.
  std::vector<FrequentItemset> sorted = result.itemsets;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FrequentItemset& a, const FrequentItemset& b) {
                     return a.items.size() > b.items.size();
                   });
  std::vector<FrequentItemset> maximal;
  for (FrequentItemset& candidate : sorted) {
    const bool subsumed = std::any_of(
        maximal.begin(), maximal.end(), [&](const FrequentItemset& kept) {
          return kept.items.size() > candidate.items.size() &&
                 is_subset(candidate.items, kept.items);
        });
    if (!subsumed) maximal.push_back(std::move(candidate));
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return lex_less(a.items, b.items);
            });
  return maximal;
}

MiningResult max_eclat(const HorizontalDatabase& db,
                       const MaxEclatConfig& config, MaxEclatStats* stats) {
  MaxEclatStats local_stats;
  const std::span<const Transaction> all(db.transactions());

  // Initialization identical to Eclat: one scan for item + pair counts.
  TriangleCounter counter(std::max<Item>(db.num_items(), 2));
  counter.count(all);
  const std::vector<Count> item_counts = count_items(all, db.num_items());

  const std::vector<PairKey> frequent_pairs =
      counter.frequent_pairs(config.minsup);
  std::unordered_map<PairKey, TidList> tidlists =
      invert_pairs(all, frequent_pairs);
  const std::vector<EquivalenceClass> classes =
      partition_into_classes(frequent_pairs);

  std::vector<FrequentItemset> candidates;
  TidArena arena;
  std::deque<std::array<TidSet, 2>> fold;
  for (const EquivalenceClass& eq_class : classes) {
    std::vector<Atom> atoms;
    atoms.reserve(eq_class.members.size());
    for (Item member : eq_class.members) {
      const PairKey key = make_pair_key(eq_class.prefix, member);
      atoms.push_back(
          Atom{{eq_class.prefix, member}, std::move(tidlists.at(key))});
    }
    if (atoms.empty()) continue;
    const Tid universe = class_universe(atoms);
    MaxCtx ctx{arena,      fold,       config.minsup, config.kernel,
               universe,   candidates, local_stats,   nullptr};
    TidArena::Level& root = arena.level(0);
    root.reset();
    for (const Atom& atom : atoms) {
      TidSet& slot = root.scratch();
      seed_tidset(atom.tids, universe, config.kernel, slot, nullptr);
      root.commit(atom.items.back(), atom.support());
    }
    arena.prefix().assign(atoms.front().items.begin(),
                          atoms.front().items.end() - 1);
    max_recurse(ctx, 0);
    arena.prefix().clear();
  }

  // Frequent singletons are candidates too (maximal when isolated).
  for (Item item = 0; item < db.num_items(); ++item) {
    if (item_counts[item] >= config.minsup) {
      ++local_stats.candidates;
      candidates.push_back(FrequentItemset{{item}, item_counts[item]});
    }
  }

  MiningResult raw;
  raw.itemsets = std::move(candidates);
  MiningResult result;
  result.itemsets = maximal_of(raw);
  result.database_scans = 2;
  normalize(result);
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
  if (stats) *stats = local_stats;
  return result;
}

}  // namespace eclat
