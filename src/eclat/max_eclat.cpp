#include "eclat/max_eclat.hpp"

#include <algorithm>

#include "apriori/apriori.hpp"
#include "eclat/equivalence.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {
namespace {

/// Collect maximal candidates from one class of atoms. Every maximal
/// frequent itemset extending this class's prefix lands in `out` (possibly
/// alongside non-maximal candidates, removed by the global subsumption
/// filter at the end).
void max_recurse(const std::vector<Atom>& atoms, Count minsup,
                 IntersectKernel kernel,
                 std::vector<FrequentItemset>& out, MaxEclatStats& stats) {
  if (atoms.empty()) return;
  if (atoms.size() == 1) {
    ++stats.candidates;
    out.push_back(FrequentItemset{atoms[0].items, atoms[0].support()});
    return;
  }

  // Top-element test: intersect every atom's tid-list. If the class top
  // is frequent, it subsumes the entire sub-lattice.
  {
    TidList top = atoms[0].tids;
    bool alive = true;
    for (std::size_t i = 1; i < atoms.size() && alive; ++i) {
      std::optional<TidList> next =
          intersect_with_kernel(top, atoms[i].tids, minsup, kernel, nullptr);
      if (!next) {
        alive = false;
      } else {
        top = std::move(*next);
      }
    }
    if (alive) {
      Itemset items = atoms[0].items;
      for (std::size_t i = 1; i < atoms.size(); ++i) {
        items.push_back(atoms[i].items.back());
      }
      ++stats.top_hits;
      ++stats.candidates;
      out.push_back(FrequentItemset{std::move(items),
                                    static_cast<Count>(top.size())});
      return;
    }
  }

  // Bottom-up expansion: atom i's extensions form its child class. An
  // atom with no frequent extension is a maximal candidate itself.
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    std::vector<Atom> child_class;
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      std::optional<TidList> tids = intersect_with_kernel(
          atoms[i].tids, atoms[j].tids, minsup, kernel, nullptr);
      if (!tids) continue;
      Atom child;
      child.items = atoms[i].items;
      child.items.push_back(atoms[j].items.back());
      child.tids = std::move(*tids);
      child_class.push_back(std::move(child));
    }
    if (child_class.empty()) {
      ++stats.candidates;
      out.push_back(FrequentItemset{atoms[i].items, atoms[i].support()});
    } else {
      max_recurse(child_class, minsup, kernel, out, stats);
    }
  }
}

}  // namespace

std::vector<FrequentItemset> maximal_of(const MiningResult& result) {
  // Sort by size descending; keep an itemset iff no kept superset exists.
  std::vector<FrequentItemset> sorted = result.itemsets;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FrequentItemset& a, const FrequentItemset& b) {
                     return a.items.size() > b.items.size();
                   });
  std::vector<FrequentItemset> maximal;
  for (FrequentItemset& candidate : sorted) {
    const bool subsumed = std::any_of(
        maximal.begin(), maximal.end(), [&](const FrequentItemset& kept) {
          return kept.items.size() > candidate.items.size() &&
                 is_subset(candidate.items, kept.items);
        });
    if (!subsumed) maximal.push_back(std::move(candidate));
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return lex_less(a.items, b.items);
            });
  return maximal;
}

MiningResult max_eclat(const HorizontalDatabase& db,
                       const MaxEclatConfig& config, MaxEclatStats* stats) {
  MaxEclatStats local_stats;
  const std::span<const Transaction> all(db.transactions());

  // Initialization identical to Eclat: one scan for item + pair counts.
  TriangleCounter counter(std::max<Item>(db.num_items(), 2));
  counter.count(all);
  const std::vector<Count> item_counts = count_items(all, db.num_items());

  const std::vector<PairKey> frequent_pairs =
      counter.frequent_pairs(config.minsup);
  std::unordered_map<PairKey, TidList> tidlists =
      invert_pairs(all, frequent_pairs);
  const std::vector<EquivalenceClass> classes =
      partition_into_classes(frequent_pairs);

  std::vector<FrequentItemset> candidates;
  for (const EquivalenceClass& eq_class : classes) {
    std::vector<Atom> atoms;
    atoms.reserve(eq_class.members.size());
    for (Item member : eq_class.members) {
      const PairKey key = make_pair_key(eq_class.prefix, member);
      atoms.push_back(
          Atom{{eq_class.prefix, member}, std::move(tidlists.at(key))});
    }
    max_recurse(atoms, config.minsup, config.kernel, candidates,
                local_stats);
  }

  // Frequent singletons are candidates too (maximal when isolated).
  for (Item item = 0; item < db.num_items(); ++item) {
    if (item_counts[item] >= config.minsup) {
      ++local_stats.candidates;
      candidates.push_back(FrequentItemset{{item}, item_counts[item]});
    }
  }

  MiningResult raw;
  raw.itemsets = std::move(candidates);
  MiningResult result;
  result.itemsets = maximal_of(raw);
  result.database_scans = 2;
  normalize(result);
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
  if (stats) *stats = local_stats;
  return result;
}

}  // namespace eclat
