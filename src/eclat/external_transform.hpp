// External-memory vertical transformation (paper §7): the in-paper
// implementation inverts the database through memory-mapped regions sized
// for the whole vertical partition — its acknowledged weakness ("the one
// disadvantage of our algorithm is the virtual memory it requires...
// we are currently implementing an external memory transformation,
// keeping only small buffers in main memory"). This module is that
// external transformation.
//
// The pair set is split into groups whose tid-lists fit the memory
// budget (group sizes are known exactly from the 2-itemset counts). One
// horizontal scan per group collects only that group's tid-lists and
// appends them to the output file, so peak memory is bounded by the
// budget no matter how large the database is.
//
// On-disk format ("ECLATVDB"):
//   magic            8 bytes
//   num_pairs        u64
//   repeated: pair key u64, count u64, tids count*u32
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "data/horizontal.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

struct ExternalTransformConfig {
  /// Peak bytes of tid-list storage held in memory at once. Must admit at
  /// least the largest single tid-list; the transform rounds up per group.
  std::size_t memory_budget = 4 << 20;
};

struct ExternalTransformStats {
  std::size_t passes = 0;            ///< horizontal scans performed
  std::size_t peak_memory_bytes = 0; ///< largest group actually held
  std::size_t pairs_written = 0;
  std::size_t tids_written = 0;
};

/// Invert `transactions` into the vertical format for exactly the pairs in
/// `pairs` (with their known support counts, used to plan the groups), in
/// memory-budgeted passes, writing to `out`.
ExternalTransformStats external_transform(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs, const std::vector<Count>& pair_counts,
    std::ostream& out, const ExternalTransformConfig& config = {});

ExternalTransformStats external_transform_file(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs, const std::vector<Count>& pair_counts,
    const std::string& path, const ExternalTransformConfig& config = {});

/// Stream-read a vertical file produced by external_transform. Lists come
/// back in the order they were written (pair order).
std::vector<std::pair<PairKey, TidList>> read_vertical(std::istream& in);
std::vector<std::pair<PairKey, TidList>> read_vertical_file(
    const std::string& path);

}  // namespace eclat
