#include "eclat/diffsets.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eclat {

std::optional<TidList> difference_bounded(std::span<const Tid> a,
                                          std::span<const Tid> b,
                                          std::size_t max_size) {
  TidList out;
  if (!difference_bounded_into(a, b, max_size, out)) return std::nullopt;
  return out;
}

namespace {

void emit(const Itemset& prefix, Item suffix, Count support,
          std::vector<FrequentItemset>& out,
          std::vector<std::size_t>& size_histogram) {
  const std::size_t size = prefix.size() + 1;
  if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
  ++size_histogram[size];
  FrequentItemset& found = out.emplace_back();
  found.items.reserve(size);
  found.items.assign(prefix.begin(), prefix.end());
  found.items.push_back(suffix);
  found.support = support;
}

/// Mine the diffset class in arena level `depth`: slot s holds the
/// diffset d(P·suffixes[s]) with support supports[s]. Joins run in the
/// diffset orientation d(PXY) = d(PY) \ d(PX), i.e. operands (j, i).
void mine(TidArena& arena, std::size_t depth, Count minsup,
          IntersectKernel kernel, Tid universe,
          std::vector<FrequentItemset>& out,
          std::vector<std::size_t>& size_histogram, IntersectStats* stats) {
  TidArena::Level& cur = arena.level(depth);
  TidArena::Level& next = arena.level(depth + 1);
  const std::size_t n = cur.used;
  Itemset& prefix = arena.prefix();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ECLAT_DCHECK(cur.supports[i] >= minsup);
    const std::size_t budget = cur.supports[i] - minsup;
    prefix.push_back(cur.suffixes[i]);
    next.reset();
    for (std::size_t j = i + 1; j < n; ++j) {
      if (stats != nullptr) ++stats->intersections;
      TidSet& slot = next.scratch();
      if (!difference_into(cur.sets[j], cur.sets[i], budget, kernel,
                           universe, slot, stats)) {
        if (stats != nullptr) ++stats->short_circuited;
        continue;
      }
      const Count support = cur.supports[i] - slot.support();
      emit(prefix, cur.suffixes[j], support, out, size_histogram);
      next.commit(cur.suffixes[j], support);
    }
    if (next.used >= 2) {
      mine(arena, depth + 1, minsup, kernel, universe, out, size_histogram,
           stats);
    }
    prefix.pop_back();
  }
}

}  // namespace

void compute_frequent_diffsets(const std::vector<Atom>& class_atoms,
                               Count minsup, IntersectKernel kernel,
                               TidArena& arena,
                               std::vector<FrequentItemset>& out,
                               std::vector<std::size_t>& size_histogram,
                               IntersectStats* stats) {
  if (class_atoms.size() < 2) return;
  const Tid universe = class_universe(class_atoms);

  // Seed level 0 with the atoms' *tid-lists*; the representation switch
  // happens at the first join below.
  TidArena::Level& root = arena.level(0);
  root.reset();
  for (const Atom& atom : class_atoms) {
    TidSet& slot = root.scratch();
    seed_tidset(atom.tids, universe, kernel, slot, stats);
    root.commit(atom.items.back(), atom.support());
  }

  Itemset& prefix = arena.prefix();
  prefix.assign(class_atoms.front().items.begin(),
                class_atoms.front().items.end() - 1);

  // First join switches representation: d(XY) = t(X) \ t(Y) — note the
  // (i, j) orientation here versus (j, i) in the diffset recursion.
  TidArena::Level& next = arena.level(1);
  const std::size_t n = root.used;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Count parent_support = root.supports[i];
    if (parent_support < minsup) continue;  // defensive
    const std::size_t budget = parent_support - minsup;
    prefix.push_back(root.suffixes[i]);
    next.reset();
    for (std::size_t j = i + 1; j < n; ++j) {
      if (stats != nullptr) ++stats->intersections;
      TidSet& slot = next.scratch();
      if (!difference_into(root.sets[i], root.sets[j], budget, kernel,
                           universe, slot, stats)) {
        if (stats != nullptr) ++stats->short_circuited;
        continue;
      }
      const Count support = parent_support - slot.support();
      emit(prefix, root.suffixes[j], support, out, size_histogram);
      next.commit(root.suffixes[j], support);
    }
    if (next.used >= 2) {
      mine(arena, 1, minsup, kernel, universe, out, size_histogram, stats);
    }
    prefix.pop_back();
  }
  prefix.clear();
}

void compute_frequent_diffsets(const std::vector<Atom>& class_atoms,
                               Count minsup,
                               std::vector<FrequentItemset>& out,
                               std::vector<std::size_t>& size_histogram,
                               IntersectStats* stats) {
  TidArena arena;
  compute_frequent_diffsets(class_atoms, minsup,
                            IntersectKernel::kMergeShortCircuit, arena, out,
                            size_histogram, stats);
}

}  // namespace eclat
