#include "eclat/diffsets.hpp"

namespace eclat {

std::optional<TidList> difference_bounded(std::span<const Tid> a,
                                          std::span<const Tid> b,
                                          std::size_t max_size) {
  TidList out;
  out.reserve(std::min(a.size(), max_size + 1));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size()) {
    if (j == b.size() || a[i] < b[j]) {
      if (out.size() == max_size) return std::nullopt;
      out.push_back(a[i]);
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

void recurse(const std::vector<DiffAtom>& atoms, Count minsup,
             std::vector<FrequentItemset>& out,
             std::vector<std::size_t>& size_histogram,
             IntersectStats* stats) {
  if (atoms.size() < 2) return;
  for (std::size_t i = 0; i + 1 < atoms.size(); ++i) {
    std::vector<DiffAtom> child_class;
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      // d(PXY) = d(PY) \ d(PX); frequent iff |d| <= sup(PX) - minsup.
      if (atoms[i].support < minsup) break;  // defensive; atoms are frequent
      const std::size_t budget = atoms[i].support - minsup;
      if (stats) {
        ++stats->intersections;
        stats->tids_scanned +=
            atoms[j].diffset.size() + atoms[i].diffset.size();
      }
      std::optional<TidList> diff = difference_bounded(
          atoms[j].diffset, atoms[i].diffset, budget);
      if (!diff) {
        if (stats) ++stats->short_circuited;
        continue;
      }

      DiffAtom child;
      child.items = atoms[i].items;
      child.items.push_back(atoms[j].items.back());
      child.support = atoms[i].support - diff->size();
      child.diffset = std::move(*diff);

      const std::size_t size = child.items.size();
      if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
      ++size_histogram[size];
      out.push_back(FrequentItemset{child.items, child.support});
      child_class.push_back(std::move(child));
    }
    recurse(child_class, minsup, out, size_histogram, stats);
  }
}

}  // namespace

void compute_frequent_diffsets(const std::vector<Atom>& class_atoms,
                               Count minsup,
                               std::vector<FrequentItemset>& out,
                               std::vector<std::size_t>& size_histogram,
                               IntersectStats* stats) {
  if (class_atoms.size() < 2) return;
  // First join switches representation: d(XY) = t(X) \ t(Y).
  for (std::size_t i = 0; i + 1 < class_atoms.size(); ++i) {
    std::vector<DiffAtom> child_class;
    const Count parent_support = class_atoms[i].support();
    if (parent_support < minsup) continue;  // defensive
    const std::size_t budget = parent_support - minsup;
    for (std::size_t j = i + 1; j < class_atoms.size(); ++j) {
      if (stats) {
        ++stats->intersections;
        stats->tids_scanned +=
            class_atoms[i].tids.size() + class_atoms[j].tids.size();
      }
      std::optional<TidList> diff = difference_bounded(
          class_atoms[i].tids, class_atoms[j].tids, budget);
      if (!diff) {
        if (stats) ++stats->short_circuited;
        continue;
      }

      DiffAtom child;
      child.items = class_atoms[i].items;
      child.items.push_back(class_atoms[j].items.back());
      child.support = parent_support - diff->size();
      child.diffset = std::move(*diff);

      const std::size_t size = child.items.size();
      if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
      ++size_histogram[size];
      out.push_back(FrequentItemset{child.items, child.support});
      child_class.push_back(std::move(child));
    }
    recurse(child_class, minsup, out, size_histogram, stats);
  }
}

}  // namespace eclat
