// The Compute_Frequent procedure (paper Figure 3): bottom-up, depth-first
// enumeration of all frequent itemsets derivable from one equivalence
// class, by pairwise tid-list intersection. Only the atoms of one class at
// one level are alive at a time, which is what makes Eclat main-memory
// frugal (paper §5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

/// Intersection kernel selection (the merge kernel supports the paper's
/// short-circuit optimization; galloping is the ablation alternative).
enum class IntersectKernel : std::uint8_t {
  kMerge,
  kMergeShortCircuit,  // the paper's default
  kGallop,
};

/// An itemset together with its tid-list — the unit the recursion works on.
struct Atom {
  Itemset items;
  TidList tids;

  Count support() const { return tids.size(); }
};

/// Counters the ablation benchmarks read back.
struct IntersectStats {
  std::uint64_t intersections = 0;    ///< kernel invocations
  std::uint64_t short_circuited = 0;  ///< aborted early by the bound
  std::uint64_t tids_scanned = 0;     ///< total input elements consumed
};

/// Enumerate all frequent itemsets strictly larger than the atoms of
/// `class_atoms` (which must share a common prefix of all but the last
/// item, be sorted lexicographically, and all meet `minsup` already).
/// Found itemsets are appended to `out`; per-size counts are accumulated
/// into `size_histogram` (index = itemset size; grown on demand).
void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats = nullptr);

/// Single intersection through the selected kernel. Returns an empty
/// optional when the result provably misses `minsup`.
std::optional<TidList> intersect_with_kernel(const TidList& a,
                                             const TidList& b, Count minsup,
                                             IntersectKernel kernel,
                                             IntersectStats* stats);

}  // namespace eclat
