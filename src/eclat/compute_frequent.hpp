// The Compute_Frequent procedure (paper Figure 3): bottom-up, depth-first
// enumeration of all frequent itemsets derivable from one equivalence
// class, by pairwise tid-list intersection. Only the atoms of one class at
// one level are alive at a time, which is what makes Eclat main-memory
// frugal (paper §5.3). The recursion runs over TidArena scratch buffers,
// so steady-state mining allocates nothing; kernels (including the dense
// bitset and the adaptive auto dispatch) come from vertical/tidset.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "eclat/mining_guard.hpp"
#include "eclat/tid_arena.hpp"
#include "vertical/tidlist.hpp"
#include "vertical/tidset.hpp"

namespace eclat {

/// An itemset together with its tid-list — the unit the recursion works on.
struct Atom {
  Itemset items;
  TidList tids;

  Count support() const { return tids.size(); }
};

/// Smallest universe covering every tid of `class_atoms` (max tid + 1);
/// the bitset width the dense kernels use for this class.
Tid class_universe(const std::vector<Atom>& class_atoms);

/// Enumerate all frequent itemsets strictly larger than the atoms of
/// `class_atoms` (which must share a common prefix of all but the last
/// item, be sorted lexicographically, and all meet `minsup` already).
/// Found itemsets are appended to `out`; per-size counts are accumulated
/// into `size_histogram` (index = itemset size; grown on demand).
/// `arena` provides the recursion's scratch buffers and may be reused
/// across calls (and across classes) on the same thread. A non-null
/// `guard` is checkpointed at class entry and every leading-atom
/// boundary (mining_guard.hpp); it may throw to abandon the class.
void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel, TidArena& arena,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats = nullptr,
                      MiningGuard* guard = nullptr);

/// Convenience overload with a call-local arena (tests, one-shot callers).
void compute_frequent(const std::vector<Atom>& class_atoms, Count minsup,
                      IntersectKernel kernel,
                      std::vector<FrequentItemset>& out,
                      std::vector<std::size_t>& size_histogram,
                      IntersectStats* stats = nullptr);

/// Single intersection through the selected kernel, on plain tid-lists.
/// Returns an empty optional when the result provably misses `minsup`.
/// For the dense kernels (kBitset, and kAuto when it picks the bitset)
/// the universe is taken as max(a.back(), b.back()) + 1.
std::optional<TidList> intersect_with_kernel(const TidList& a,
                                             const TidList& b, Count minsup,
                                             IntersectKernel kernel,
                                             IntersectStats* stats);

}  // namespace eclat
