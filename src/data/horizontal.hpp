// Horizontal database layout: each transaction is a tid followed by the
// sorted list of items it contains (the "basket data" of the paper, §1.1).
//
// All parallel algorithms in this library assume the database is partitioned
// among processors in equal-sized contiguous blocks (paper §3), so a block
// partition owns a disjoint, monotonically increasing tid range — the
// property Eclat's transformation phase exploits to produce globally sorted
// tid-lists by concatenation (paper §6.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace eclat {

/// One basket: a unique tid and the sorted set of items bought.
struct Transaction {
  Tid tid = 0;
  Itemset items;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// A contiguous block of a database assigned to one processor.
struct Block {
  std::size_t begin = 0;  ///< index of the first transaction in the block
  std::size_t end = 0;    ///< one past the last transaction

  std::size_t size() const { return end - begin; }

  friend bool operator==(const Block&, const Block&) = default;
};

/// An in-memory horizontal database.
class HorizontalDatabase {
 public:
  HorizontalDatabase() = default;
  HorizontalDatabase(std::vector<Transaction> transactions, Item num_items);

  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  /// Number of distinct items the id space covers (ids are < num_items()).
  Item num_items() const { return num_items_; }

  const Transaction& operator[](std::size_t i) const {
    return transactions_[i];
  }

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  /// View of the transactions in `block`.
  std::span<const Transaction> view(const Block& block) const;

  /// Average number of items per transaction (|T| in the paper's Table 1).
  double average_transaction_length() const;

  /// Approximate on-disk size in bytes (4 bytes per tid, per length word,
  /// and per item — matching the binary format in io.hpp).
  std::size_t byte_size() const;

  /// Split into `parts` equal-sized contiguous blocks (sizes differ by at
  /// most one transaction). `parts` must be >= 1.
  std::vector<Block> block_partition(std::size_t parts) const;

 private:
  std::vector<Transaction> transactions_;
  Item num_items_ = 0;
};

/// Summary statistics (the columns of the paper's Table 1).
struct DatabaseStats {
  std::size_t num_transactions = 0;   ///< |D|
  double avg_transaction_length = 0;  ///< |T|
  Item num_items = 0;                 ///< N
  std::size_t byte_size = 0;          ///< on-disk size
};

DatabaseStats compute_stats(const HorizontalDatabase& db);

}  // namespace eclat
