// Persistence for mining results, so a long mining run can be stored and
// post-processed (rule generation, diffing, plotting) without re-mining.
//
// Binary format ("ECLATRES"):
//   magic              8 bytes
//   num_itemsets       u64
//   repeated: item_count u32, items u32*, support u64
//
// Text format: the SPMF convention — items space-separated, then
// " #SUP: <count>" — interoperable with other mining tool chains.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace eclat {

void write_result(const MiningResult& result, std::ostream& stream);
MiningResult read_result(std::istream& stream);

/// In-memory forms of the binary format, for checkpointing partial results
/// through the simulated cluster's disks and Memory Channel regions.
std::vector<std::uint8_t> result_to_bytes(const MiningResult& result);
MiningResult result_from_bytes(const std::vector<std::uint8_t>& bytes);

void write_result_file(const MiningResult& result, const std::string& path);
MiningResult read_result_file(const std::string& path);

/// SPMF-style text ("1 5 9 #SUP: 42" per line).
void write_result_text(const MiningResult& result, std::ostream& stream);
MiningResult read_result_text(std::istream& stream);

}  // namespace eclat
