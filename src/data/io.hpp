// On-disk formats for horizontal databases.
//
// Binary format (one file per database or per partition):
//   magic "ECLATHDB"           8 bytes
//   version                    u32
//   num_items                  u32
//   num_transactions           u64
//   repeated per transaction:
//     tid                      u32
//     item_count               u32
//     items                    item_count * u32, strictly increasing
//
// Text format (for interoperability with SPMF/Borgelt-style tools): one
// transaction per line, items as whitespace-separated integers; tids are
// assigned by line number.
#pragma once

#include <iosfwd>
#include <string>

#include "data/horizontal.hpp"

namespace eclat {

/// Serialize `db` to `stream` in the binary format above.
void write_binary(const HorizontalDatabase& db, std::ostream& stream);

/// Parse a database from the binary format; throws std::runtime_error on a
/// malformed stream.
HorizontalDatabase read_binary(std::istream& stream);

void write_binary_file(const HorizontalDatabase& db, const std::string& path);
HorizontalDatabase read_binary_file(const std::string& path);

/// One transaction per line, space-separated item ids.
void write_text(const HorizontalDatabase& db, std::ostream& stream);

/// Parse the text format. Items on a line are sorted and deduplicated;
/// `num_items` is inferred as max item id + 1 unless a larger floor is given.
HorizontalDatabase read_text(std::istream& stream, Item min_num_items = 0);

void write_text_file(const HorizontalDatabase& db, const std::string& path);
HorizontalDatabase read_text_file(const std::string& path,
                                  Item min_num_items = 0);

}  // namespace eclat
