#include "data/result_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eclat {
namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'A', 'T', 'R', 'E', 'S'};

template <typename T>
void write_pod(std::ostream& stream, const T& value) {
  // eclat-lint: allow(contract-cast) writes sizeof(T) bytes of a live POD to the stream; no untrusted length involved
  stream.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& stream) {
  T value{};
  stream.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!stream) throw std::runtime_error("truncated result file");
  return value;
}

}  // namespace

void write_result(const MiningResult& result, std::ostream& stream) {
  stream.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(stream, result.itemsets.size());
  for (const FrequentItemset& f : result.itemsets) {
    write_pod<std::uint32_t>(stream,
                             static_cast<std::uint32_t>(f.items.size()));
    stream.write(reinterpret_cast<const char*>(f.items.data()),
                 static_cast<std::streamsize>(f.items.size() * sizeof(Item)));
    write_pod<Count>(stream, f.support);
  }
  if (!stream) throw std::runtime_error("failed to write result");
}

MiningResult read_result(std::istream& stream) {
  char magic[8];
  stream.read(magic, sizeof(magic));
  if (!stream || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ECLATRES result file");
  }
  MiningResult result;
  const auto count = read_pod<std::uint64_t>(stream);
  result.itemsets.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FrequentItemset f;
    const auto length = read_pod<std::uint32_t>(stream);
    f.items.resize(length);
    stream.read(reinterpret_cast<char*>(f.items.data()),
                static_cast<std::streamsize>(length * sizeof(Item)));
    if (!stream) throw std::runtime_error("truncated result file");
    if (!is_sorted_itemset(f.items)) {
      throw std::runtime_error("corrupt result file: unsorted itemset");
    }
    f.support = read_pod<Count>(stream);
    result.itemsets.push_back(std::move(f));
  }
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
  return result;
}

std::vector<std::uint8_t> result_to_bytes(const MiningResult& result) {
  std::ostringstream stream(std::ios::binary);
  write_result(result, stream);
  const std::string text = stream.str();
  return {text.begin(), text.end()};
}

MiningResult result_from_bytes(const std::vector<std::uint8_t>& bytes) {
  std::istringstream stream(std::string(bytes.begin(), bytes.end()),
                            std::ios::binary);
  return read_result(stream);
}

void write_result_file(const MiningResult& result, const std::string& path) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) throw std::runtime_error("cannot open for write: " + path);
  write_result(result, stream);
}

MiningResult read_result_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw std::runtime_error("cannot open for read: " + path);
  return read_result(stream);
}

void write_result_text(const MiningResult& result, std::ostream& stream) {
  for (const FrequentItemset& f : result.itemsets) {
    for (std::size_t i = 0; i < f.items.size(); ++i) {
      if (i != 0) stream << ' ';
      stream << f.items[i];
    }
    stream << " #SUP: " << f.support << '\n';
  }
}

MiningResult read_result_text(std::istream& stream) {
  MiningResult result;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const auto marker = line.find("#SUP:");
    if (marker == std::string::npos) {
      throw std::runtime_error("missing #SUP: marker: " + line);
    }
    FrequentItemset f;
    std::istringstream items(line.substr(0, marker));
    Item item;
    while (items >> item) f.items.push_back(item);
    std::sort(f.items.begin(), f.items.end());
    std::istringstream support(line.substr(marker + 5));
    if (!(support >> f.support)) {
      throw std::runtime_error("bad support value: " + line);
    }
    result.itemsets.push_back(std::move(f));
  }
  normalize(result);
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
  return result;
}

}  // namespace eclat
