#include "data/horizontal.hpp"

#include <stdexcept>

namespace eclat {

HorizontalDatabase::HorizontalDatabase(std::vector<Transaction> transactions,
                                       Item num_items)
    : transactions_(std::move(transactions)), num_items_(num_items) {
  for (const Transaction& t : transactions_) {
    if (!is_sorted_itemset(t.items)) {
      throw std::invalid_argument("transaction items must be strictly sorted");
    }
    for (Item item : t.items) {
      if (item >= num_items_) {
        throw std::invalid_argument("item id out of range");
      }
    }
  }
}

std::span<const Transaction> HorizontalDatabase::view(
    const Block& block) const {
  if (block.begin > block.end || block.end > transactions_.size()) {
    throw std::out_of_range("block out of range");
  }
  return {transactions_.data() + block.begin, block.size()};
}

double HorizontalDatabase::average_transaction_length() const {
  if (transactions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const Transaction& t : transactions_) total += t.items.size();
  return static_cast<double>(total) /
         static_cast<double>(transactions_.size());
}

std::size_t HorizontalDatabase::byte_size() const {
  std::size_t bytes = 0;
  for (const Transaction& t : transactions_) {
    bytes += sizeof(Tid) + sizeof(std::uint32_t) +
             t.items.size() * sizeof(Item);
  }
  return bytes;
}

std::vector<Block> HorizontalDatabase::block_partition(
    std::size_t parts) const {
  if (parts == 0) throw std::invalid_argument("parts must be >= 1");
  std::vector<Block> blocks(parts);
  const std::size_t base = transactions_.size() / parts;
  const std::size_t extra = transactions_.size() % parts;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    blocks[p] = Block{cursor, cursor + len};
    cursor += len;
  }
  return blocks;
}

DatabaseStats compute_stats(const HorizontalDatabase& db) {
  return DatabaseStats{
      .num_transactions = db.size(),
      .avg_transaction_length = db.average_transaction_length(),
      .num_items = db.num_items(),
      .byte_size = db.byte_size(),
  };
}

}  // namespace eclat
