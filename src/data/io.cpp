#include "data/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eclat {
namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'A', 'T', 'H', 'D', 'B'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& stream, const T& value) {
  // eclat-lint: allow(contract-cast) writes sizeof(T) bytes of a live POD to the stream; no untrusted length involved
  stream.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& stream) {
  T value{};
  stream.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!stream) throw std::runtime_error("truncated binary database");
  return value;
}

}  // namespace

void write_binary(const HorizontalDatabase& db, std::ostream& stream) {
  stream.write(kMagic, sizeof(kMagic));
  write_pod(stream, kVersion);
  write_pod(stream, static_cast<std::uint32_t>(db.num_items()));
  write_pod(stream, static_cast<std::uint64_t>(db.size()));
  for (const Transaction& t : db.transactions()) {
    write_pod(stream, t.tid);
    write_pod(stream, static_cast<std::uint32_t>(t.items.size()));
    stream.write(reinterpret_cast<const char*>(t.items.data()),
                 static_cast<std::streamsize>(t.items.size() * sizeof(Item)));
  }
  if (!stream) throw std::runtime_error("failed to write binary database");
}

HorizontalDatabase read_binary(std::istream& stream) {
  char magic[8];
  stream.read(magic, sizeof(magic));
  if (!stream || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ECLATHDB binary database");
  }
  const auto version = read_pod<std::uint32_t>(stream);
  if (version != kVersion) {
    throw std::runtime_error("unsupported binary database version");
  }
  const auto num_items = read_pod<std::uint32_t>(stream);
  const auto num_transactions = read_pod<std::uint64_t>(stream);
  // Header counts are untrusted: a forged num_transactions or item count
  // must never drive a large allocation up front (the stream would run
  // out long before, but the reserve/resize would already have happened).
  // Reservations are capped and items are read one at a time, so a
  // malformed stream always surfaces as std::runtime_error, never as OOM.
  constexpr std::uint64_t kReserveCap = 4096;
  std::vector<Transaction> transactions;
  transactions.reserve(static_cast<std::size_t>(
      std::min(num_transactions, kReserveCap)));
  for (std::uint64_t i = 0; i < num_transactions; ++i) {
    Transaction t;
    t.tid = read_pod<Tid>(stream);
    const auto count = read_pod<std::uint32_t>(stream);
    t.items.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, kReserveCap)));
    for (std::uint32_t j = 0; j < count; ++j) {
      const auto item = read_pod<Item>(stream);
      // Transactions are sorted, duplicate-free item lists over
      // [0, num_items) — anything else would index out of bounds (or
      // silently miscount) downstream, so reject it at the boundary.
      if (item >= num_items) {
        throw std::runtime_error("corrupt binary database: item out of range");
      }
      if (j > 0 && item <= t.items.back()) {
        throw std::runtime_error(
            "corrupt binary database: items not strictly increasing");
      }
      t.items.push_back(item);
    }
    transactions.push_back(std::move(t));
  }
  return HorizontalDatabase(std::move(transactions), num_items);
}

void write_binary_file(const HorizontalDatabase& db, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  write_binary(db, file);
}

HorizontalDatabase read_binary_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return read_binary(file);
}

void write_text(const HorizontalDatabase& db, std::ostream& stream) {
  for (const Transaction& t : db.transactions()) {
    for (std::size_t i = 0; i < t.items.size(); ++i) {
      if (i != 0) stream << ' ';
      stream << t.items[i];
    }
    stream << '\n';
  }
}

HorizontalDatabase read_text(std::istream& stream, Item min_num_items) {
  std::vector<Transaction> transactions;
  Item max_item = 0;
  std::string line;
  Tid tid = 0;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    Itemset items;
    Item item;
    while (fields >> item) items.push_back(item);
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (items.empty()) continue;
    max_item = std::max(max_item, items.back());
    transactions.push_back(Transaction{tid++, std::move(items)});
  }
  const Item num_items =
      std::max<Item>(min_num_items, transactions.empty() ? 0 : max_item + 1);
  return HorizontalDatabase(std::move(transactions), num_items);
}

void write_text_file(const HorizontalDatabase& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  write_text(db, file);
}

HorizontalDatabase read_text_file(const std::string& path,
                                  Item min_num_items) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return read_text(file, min_num_items);
}

}  // namespace eclat
