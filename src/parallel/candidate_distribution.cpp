#include "parallel/candidate_distribution.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "common/check.hpp"
#include "eclat/equivalence.hpp"
#include "parallel/wire.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

namespace {

/// Serialize transactions for the redistribution exchange.
void put_transactions(wire::Writer& writer,
                      const std::vector<const Transaction*>& transactions) {
  writer.put<std::uint64_t>(transactions.size());
  for (const Transaction* t : transactions) {
    writer.put<Tid>(t->tid);
    writer.put_vector(t->items);
  }
}

std::vector<Transaction> get_transactions(wire::Reader& reader) {
  const auto count = reader.get<std::uint64_t>();
  std::vector<Transaction> transactions;
  transactions.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transaction t;
    t.tid = reader.get<Tid>();
    t.items = reader.get_vector<Item>();
    transactions.push_back(std::move(t));
  }
  return transactions;
}

}  // namespace

ParallelOutput candidate_distribution(
    mc::Cluster& cluster, const HorizontalDatabase& db,
    const CandidateDistributionConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff of the single writer's result to the caller
  std::mutex output_mutex;

  const std::size_t total = cluster.topology().total();
  std::vector<double> redistribution_end(total, 0.0);

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const mc::Topology& topology = self.topology();
    const std::size_t me = self.id();
    const std::span<const Transaction> block =
        local_partition(db, topology, me);
    const std::size_t block_bytes = partition_bytes(block);

    MiningResult result;

    // --- L1 + L2: identical to Count Distribution. ---
    self.disk_read(block_bytes);
    std::vector<Count> item_counts = self.compute(
        [&] { return count_items(block, db.num_items()); });
    self.sum_reduce(item_counts);
    ++result.database_scans;

    std::vector<Itemset> level;
    for (Item item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= config.minsup) {
        result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
        level.push_back({item});
      }
    }
    result.levels.push_back(LevelStats{
        1, static_cast<std::size_t>(db.num_items()), level.size()});

    std::size_t k = 2;
    if (config.triangle_l2 && db.num_items() >= 2 && !level.empty()) {
      TriangleCounter counter(db.num_items());
      self.disk_read(block_bytes);
      self.compute([&] { counter.count(block); });
      self.sum_reduce(counter.raw());
      ++result.database_scans;

      std::vector<Itemset> next_level;
      std::size_t candidate_pairs = 0;
      for (std::size_t i = 0; i < level.size(); ++i) {
        for (std::size_t j = i + 1; j < level.size(); ++j) {
          ++candidate_pairs;
          const Count support = counter.get(level[i][0], level[j][0]);
          if (support >= config.minsup) {
            result.itemsets.push_back(
                FrequentItemset{{level[i][0], level[j][0]}, support});
            next_level.push_back({level[i][0], level[j][0]});
          }
        }
      }
      result.levels.push_back(
          LevelStats{2, candidate_pairs, next_level.size()});
      level = std::move(next_level);
      k = 3;
    }

    const std::vector<std::uint32_t> bucket_map =
        config.balanced_tree
            ? balanced_bucket_map(item_counts, config.tree.fanout)
            : std::vector<std::uint32_t>{};

    // --- Count-Distribution iterations until the redistribution pass. ---
    bool redistributed = false;
    std::vector<Transaction> replica;      // local DB after redistribution
    std::size_t replica_bytes = 0;
    std::unordered_set<Item> my_prefixes;  // first items of my classes

    while (!level.empty()) {
      if (!redistributed && k >= config.redistribution_pass) {
        // Partition the classes of Lk-1 (1-item-prefix classes, §4.1) and
        // selectively replicate the database: processor q receives every
        // transaction containing a prefix item of one of q's classes (a
        // conservative superset of what q's candidates can match).
        std::vector<PairKey> prefix_pairs;  // reuse class machinery on
                                            // (first, second) item pairs
        std::vector<EquivalenceClass> classes = self.compute([&] {
          // Build classes keyed by the first item of each (k-1)-itemset.
          std::vector<EquivalenceClass> cs;
          for (const Itemset& itemset : level) {
            if (cs.empty() || cs.back().prefix != itemset[0]) {
              cs.push_back(EquivalenceClass{itemset[0], {}});
            }
            cs.back().members.push_back(itemset[1]);
          }
          return cs;
        });
        const std::vector<std::size_t> assignment =
            schedule_greedy(classes, total);
        std::vector<std::unordered_set<Item>> prefixes_of(total);
        for (std::size_t c = 0; c < classes.size(); ++c) {
          prefixes_of[assignment[c]].insert(classes[c].prefix);
        }
        my_prefixes = prefixes_of[me];

        // Route local transactions to every processor whose prefix set
        // they touch (transactions can replicate to several processors —
        // the redistributed database is usually larger than D/P, §3.2).
        self.disk_read(block_bytes);
        std::vector<mc::Blob> outgoing(total);
        self.compute([&] {
          std::vector<std::vector<const Transaction*>> routed(total);
          for (const Transaction& t : block) {
            for (std::size_t q = 0; q < total; ++q) {
              for (Item item : t.items) {
                if (prefixes_of[q].count(item) != 0) {
                  routed[q].push_back(&t);
                  break;
                }
              }
            }
          }
          for (std::size_t q = 0; q < total; ++q) {
            wire::Writer writer;
            put_transactions(writer, routed[q]);
            outgoing[q] = writer.take();
          }
        });
        std::vector<mc::Blob> incoming =
            self.all_to_all(std::move(outgoing));
        self.compute([&] {
          for (const mc::Blob& blob : incoming) {
            wire::Reader reader(blob);
            std::vector<Transaction> chunk = get_transactions(reader);
            replica.insert(replica.end(),
                           std::make_move_iterator(chunk.begin()),
                           std::make_move_iterator(chunk.end()));
          }
          replica_bytes = partition_bytes(replica);
        });
        self.disk_write(replica_bytes);

        // From here on only the candidates whose first item is in
        // my_prefixes are mine; the level shrinks to the local view.
        std::erase_if(level, [&](const Itemset& itemset) {
          return my_prefixes.count(itemset[0]) == 0;
        });
        redistributed = true;
        redistribution_end[me] = self.now();
        if (level.empty()) break;
      }

      std::vector<Itemset> candidates = self.compute([&] {
        if (!redistributed) {
          return generate_candidates(level, config.prune && k >= 3);
        }
        // Post-split pruning can only use locally decidable information:
        // a (k-1)-subset that keeps the candidate's first item belongs to
        // this processor's prefix domain, so its absence from `level`
        // really means infrequent. The subset that drops the first item
        // is owned elsewhere — its pruning information "may not arrive in
        // time" (§3.2) and must not be treated as a veto.
        std::vector<Itemset> joined = join_level(level);
        if (!config.prune || k < 3) return joined;
        const ItemsetSet frequent(level.begin(), level.end());
        std::vector<Itemset> kept;
        kept.reserve(joined.size());
        Itemset subset;
        for (Itemset& candidate : joined) {
          bool all_known_frequent = true;
          for (std::size_t drop = 1; drop < candidate.size(); ++drop) {
            subset.clear();
            for (std::size_t i = 0; i < candidate.size(); ++i) {
              if (i != drop) subset.push_back(candidate[i]);
            }
            if (frequent.find(subset) == frequent.end()) {
              all_known_frequent = false;
              break;
            }
          }
          if (all_known_frequent) kept.push_back(std::move(candidate));
        }
        return kept;
      });
      if (candidates.empty()) break;
      std::sort(candidates.begin(), candidates.end(), lex_less);

      HashTree tree(k, config.tree, bucket_map);
      self.compute([&] {
        for (const Itemset& candidate : candidates) tree.insert(candidate);
      });

      const std::span<const Transaction> scan_span =
          redistributed ? std::span<const Transaction>(replica) : block;
      self.disk_read(redistributed ? replica_bytes : block_bytes);
      self.compute([&] { tree.count_all(scan_span); });
      ++result.database_scans;

      std::vector<Count> counts(candidates.size());
      self.compute([&] {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          const Candidate* node = tree.find(candidates[i]);
          ECLAT_CHECK(node != nullptr);
          counts[i] = node->count;
        }
      });
      if (!redistributed) {
        // Pre-split: global counts via the usual reduction.
        self.sum_reduce(counts);
      }
      // Post-split: the replica already yields global counts for owned
      // candidates — no reduction, no synchronization (the whole point).

      std::vector<Itemset> next_level;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (counts[i] >= config.minsup) {
          result.itemsets.push_back(
              FrequentItemset{candidates[i], counts[i]});
          next_level.push_back(candidates[i]);
        }
      }
      result.levels.push_back(
          LevelStats{k, candidates.size(), next_level.size()});
      level = std::move(next_level);
      ++k;
    }

    // --- Final gather: post-split discoveries live only on their owner.
    wire::Writer writer;
    self.compute([&] {
      // Ship everything found after the split (itemsets of size >=
      // redistribution pass, owned by this processor).
      std::vector<const FrequentItemset*> mine;
      for (const FrequentItemset& f : result.itemsets) {
        if (redistributed && f.items.size() >= config.redistribution_pass &&
            my_prefixes.count(f.items[0]) != 0) {
          mine.push_back(&f);
        }
      }
      writer.put<std::uint64_t>(mine.size());
      for (const FrequentItemset* f : mine) {
        writer.put_vector(f->items);
        writer.put<Count>(f->support);
      }
    });
    std::vector<mc::Blob> gathered = self.all_gather(writer.take());

    if (me == 0) {
      MiningResult merged;
      merged.database_scans = result.database_scans;
      // Pre-split itemsets are globally known (sizes < redistribution
      // pass, or everything when the split never happened).
      for (FrequentItemset& f : result.itemsets) {
        if (!redistributed ||
            f.items.size() < config.redistribution_pass) {
          merged.itemsets.push_back(std::move(f));
        }
      }
      if (redistributed) {
        for (const mc::Blob& blob : gathered) {
          wire::Reader reader(blob);
          const auto count = reader.get<std::uint64_t>();
          for (std::uint64_t i = 0; i < count; ++i) {
            FrequentItemset f;
            f.items = reader.get_vector<Item>();
            f.support = reader.get<Count>();
            merged.itemsets.push_back(std::move(f));
          }
        }
      }
      normalize(merged);
      for (std::size_t size = 1; size <= merged.max_size(); ++size) {
        merged.levels.push_back(
            LevelStats{size, 0, merged.count_of_size(size)});
      }
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(merged);
    }
  });

  output.total_seconds = cluster.makespan();
  output.phase_seconds["total"] = output.total_seconds;
  const double redist =
      *std::max_element(redistribution_end.begin(), redistribution_end.end());
  if (redist > 0.0) output.phase_seconds["redistribution_end"] = redist;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

}  // namespace eclat::par
