#include "parallel/data_distribution.hpp"

#include <algorithm>
#include <mutex>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "parallel/wire.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

ParallelOutput data_distribution(mc::Cluster& cluster,
                                 const HorizontalDatabase& db,
                                 const DataDistributionConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff of the single writer's result to the caller
  std::mutex output_mutex;

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const mc::Topology& topology = self.topology();
    const std::size_t me = self.id();
    const std::size_t total = topology.total();
    const std::span<const Transaction> block =
        local_partition(db, topology, me);
    const std::size_t block_bytes = partition_bytes(block);
    const std::span<const Transaction> whole(db.transactions());

    MiningResult result;

    // --- L1 and L2 exactly as Count Distribution (the candidate split
    // only pays off once candidate sets are big, from k = 3 on). ---
    self.disk_read(block_bytes);
    std::vector<Count> item_counts = self.compute(
        [&] { return count_items(block, db.num_items()); });
    self.sum_reduce(item_counts);
    ++result.database_scans;

    std::vector<Itemset> level;
    for (Item item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= config.minsup) {
        result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
        level.push_back({item});
      }
    }
    result.levels.push_back(LevelStats{
        1, static_cast<std::size_t>(db.num_items()), level.size()});

    std::size_t k = 2;
    if (config.triangle_l2 && db.num_items() >= 2 && !level.empty()) {
      TriangleCounter counter(db.num_items());
      self.disk_read(block_bytes);
      self.compute([&] { counter.count(block); });
      self.sum_reduce(counter.raw());
      ++result.database_scans;

      std::vector<Itemset> next_level;
      std::size_t candidate_pairs = 0;
      for (std::size_t i = 0; i < level.size(); ++i) {
        for (std::size_t j = i + 1; j < level.size(); ++j) {
          ++candidate_pairs;
          const Count support = counter.get(level[i][0], level[j][0]);
          if (support >= config.minsup) {
            result.itemsets.push_back(
                FrequentItemset{{level[i][0], level[j][0]}, support});
            next_level.push_back({level[i][0], level[j][0]});
          }
        }
      }
      result.levels.push_back(
          LevelStats{2, candidate_pairs, next_level.size()});
      level = std::move(next_level);
      k = 3;
    }

    const std::vector<std::uint32_t> bucket_map =
        config.balanced_tree
            ? balanced_bucket_map(item_counts, config.tree.fanout)
            : std::vector<std::uint32_t>{};

    while (!level.empty()) {
      // All processors generate all candidates, then keep a disjoint
      // round-robin slice — the aggregate-memory trick.
      std::vector<Itemset> candidates = self.compute([&] {
        std::vector<Itemset> all =
            generate_candidates(level, config.prune && k >= 3);
        std::sort(all.begin(), all.end(), lex_less);
        std::vector<Itemset> mine;
        for (std::size_t i = me; i < all.size(); i += total) {
          mine.push_back(std::move(all[i]));
        }
        return mine;
      });
      // The iteration ends when *no* processor has candidates; because
      // slicing is deterministic, that is equivalent to the full set
      // being empty, which every processor can tell locally.
      bool anyone_has_candidates = false;
      {
        // Recompute the full-set emptiness cheaply: candidate slice 0 is
        // nonempty iff the full set is.
        std::vector<Itemset> probe =
            generate_candidates(level, config.prune && k >= 3);
        anyone_has_candidates = !probe.empty();
      }
      if (!anyone_has_candidates) break;

      HashTree tree(k, config.tree, bucket_map);
      self.compute([&] {
        for (const Itemset& candidate : candidates) tree.insert(candidate);
      });

      // Every processor must scan the whole database: its local block from
      // disk plus every remote block over the network. The exchange ships
      // the real serialized blocks so the charged traffic is the real
      // volume; counting then runs over the shared in-memory image.
      self.disk_read(block_bytes);
      wire::Writer writer;
      self.compute([&] {
        std::vector<const Transaction*> pointers;
        pointers.reserve(block.size());
        for (const Transaction& t : block) pointers.push_back(&t);
        writer.put<std::uint64_t>(pointers.size());
        for (const Transaction* t : pointers) {
          writer.put<Tid>(t->tid);
          writer.put_vector(t->items);
        }
      });
      std::vector<mc::Blob> gathered = self.all_gather(writer.take());
      (void)gathered;  // contents == `whole`; traffic is what matters

      self.compute([&] { tree.count_all(whole); });
      ++result.database_scans;

      // Counts are already global (the whole database was scanned); share
      // the surviving itemsets so everyone can build the next level.
      wire::Writer survivors;
      self.compute([&] {
        std::uint64_t kept = 0;
        tree.for_each([&](const Candidate& candidate) {
          if (candidate.count >= config.minsup) ++kept;
        });
        survivors.put<std::uint64_t>(kept);
        tree.for_each([&](const Candidate& candidate) {
          if (candidate.count >= config.minsup) {
            survivors.put_vector(candidate.items);
            survivors.put<Count>(candidate.count);
          }
        });
      });
      std::vector<mc::Blob> all_survivors = self.all_gather(survivors.take());

      std::vector<Itemset> next_level;
      std::size_t iteration_candidates = candidates.size();
      self.compute([&] {
        for (const mc::Blob& blob : all_survivors) {
          wire::Reader reader(blob);
          const auto kept = reader.get<std::uint64_t>();
          for (std::uint64_t i = 0; i < kept; ++i) {
            FrequentItemset f;
            f.items = reader.get_vector<Item>();
            f.support = reader.get<Count>();
            next_level.push_back(f.items);
            result.itemsets.push_back(std::move(f));
          }
        }
        std::sort(next_level.begin(), next_level.end(), lex_less);
      });
      result.levels.push_back(
          LevelStats{k, iteration_candidates, next_level.size()});
      level = std::move(next_level);
      ++k;
    }

    self.barrier();
    if (me == 0) {
      normalize(result);
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  output.total_seconds = cluster.makespan();
  output.phase_seconds["total"] = output.total_seconds;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

}  // namespace eclat::par
