// Types shared by all parallel mining algorithms.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "mc/cluster.hpp"

namespace eclat::par {

/// What a parallel run returns: the (globally identical) mining result plus
/// the virtual-time accounting the benchmarks report.
struct ParallelOutput {
  MiningResult result;

  /// Per-processor outcome of the run (all kFinished unless a fault plan
  /// injected crashes; the mined result is complete either way as long as
  /// at least one processor survives).
  mc::RunReport run_report;

  /// Makespan of the run in the backend's native clock: max final
  /// *virtual* clock under the mc simulator, host *wall* seconds under
  /// the native thread backend.
  double total_seconds = 0.0;
  /// Named phase durations; for Eclat: "initialization", "transformation",
  /// "asynchronous", "reduction". "setup" = initialization+transformation
  /// (the break-up column of the paper's Table 2).
  std::map<std::string, double> phase_seconds;

  /// Which execution backend produced this run ("mc" = deterministic
  /// virtual-time simulator, "threads" = native shared-memory pool); the
  /// benchmarks label every published number with it.
  std::string backend = "mc";
  /// Resolved worker count of the execution backend (the thread backend
  /// resolves --exec-threads=0 to hardware concurrency and echoes the
  /// result here; the mc backend reports the topology's T).
  std::size_t exec_threads = 0;
  /// Host wall-clock seconds of the run, when the caller measured it
  /// (filled by the exec backends; 0 when only virtual time is known).
  /// Unlike total_seconds this is machine-dependent and never feeds
  /// virtual time.
  double wall_seconds = 0.0;

  std::uint64_t mc_bytes = 0;     ///< Memory Channel traffic of the run
  std::uint64_t mc_messages = 0;

  // --- Recovery-store accounting (mc backend only; zero under the thread
  // backend, which has no simulated failures). ---
  /// Logical tid-list image bytes in the recovery store (one copy each;
  /// multiply by the replication factor for the cluster-wide footprint).
  std::uint64_t image_bytes = 0;
  /// Live image replica copies across all classes at the end of the run,
  /// as seen by the assembling survivor's tracker.
  std::uint64_t replica_copies = 0;
  /// Store puts rejected by the epoch fence (stale writers from a healed
  /// partition minority).
  std::uint64_t fenced_rejections = 0;
  /// Classes recovered by lineage recomputation from the on-disk
  /// horizontal partitions because every image replica was lost.
  std::uint64_t lineage_rebuilds = 0;

  // --- Thread-backend fault-tolerance accounting (zero under the mc
  // backend and under --exec-isolation=off). ---
  /// Class attempts that failed (injected throws, corrupt-result
  /// detections, memory-budget trips, watchdog reclaims).
  std::uint64_t exec_task_failures = 0;
  /// Failed attempts re-enqueued by the retry path (excludes watchdog
  /// re-enqueues, which are counted in exec_stall_reclaims).
  std::uint64_t exec_task_retries = 0;
  /// Parked leases reclaimed by the monotonic-progress watchdog.
  std::uint64_t exec_stall_reclaims = 0;
  /// Live tid-sets demoted to the chunked representation by the arena
  /// memory-budget relief pass.
  std::uint64_t exec_arena_demotions = 0;
  /// Peak per-worker arena bytes observed (max over workers; 0 when the
  /// budget is disabled, since metering is off).
  std::uint64_t exec_arena_peak_bytes = 0;

  double setup_seconds() const {
    double setup = 0.0;
    for (const auto& [name, seconds] : phase_seconds) {
      if (name == "initialization" || name == "transformation") {
        setup += seconds;
      }
    }
    return setup;
  }
};

/// The per-processor slice of the horizontally partitioned database: block
/// `p` of a T-way equal split (paper §3: equal-sized blocks on each
/// processor's local disk).
std::span<const Transaction> local_partition(const HorizontalDatabase& db,
                                             const mc::Topology& topology,
                                             std::size_t proc);

/// Bytes of the local partition, for disk-scan cost charging.
std::size_t partition_bytes(std::span<const Transaction> transactions);

}  // namespace eclat::par
