// Candidate Distribution (paper §3.2, Agrawal & Shafer [3]).
//
// Runs as Count Distribution up to a chosen redistribution pass; at that
// pass the candidates are partitioned into prefix-based equivalence
// classes, the classes are scheduled over the processors, and the
// *horizontal* database is selectively replicated so each processor can
// count its own candidates independently from then on (one local scan per
// iteration, no per-iteration reduction). Pruning information after the
// split is local-only — the paper's "used if it arrives in time"
// asynchronous broadcast modeled in its miss case.
#pragma once

#include "hashtree/hash_tree.hpp"
#include "parallel/parallel_common.hpp"

namespace eclat::par {

struct CandidateDistributionConfig {
  Count minsup = 1;
  std::size_t redistribution_pass = 4;  ///< the paper's experiments use 4
  bool prune = true;
  bool triangle_l2 = true;
  bool balanced_tree = true;
  HashTreeConfig tree;
};

ParallelOutput candidate_distribution(
    mc::Cluster& cluster, const HorizontalDatabase& db,
    const CandidateDistributionConfig& config);

}  // namespace eclat::par
