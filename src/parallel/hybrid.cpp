#include "parallel/hybrid.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "common/check.hpp"
#include "parallel/wire.hpp"
#include "vertical/tidlist.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

namespace {

/// The slice of `host_span` that processor slot s of P counts (contiguous,
/// sizes differ by at most one).
std::span<const Transaction> slot_slice(std::span<const Transaction> host_span,
                                        std::size_t slot, std::size_t slots) {
  const std::size_t base = host_span.size() / slots;
  const std::size_t extra = host_span.size() % slots;
  const std::size_t begin = slot * base + std::min(slot, extra);
  const std::size_t length = base + (slot < extra ? 1 : 0);
  return host_span.subspan(begin, length);
}

}  // namespace

ParallelOutput hybrid_eclat(mc::Cluster& cluster,
                            const HorizontalDatabase& db,
                            const ParEclatConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff of the single writer's result to the caller
  std::mutex output_mutex;

  const mc::Topology topology = cluster.topology();
  const std::size_t total = topology.total();
  const std::size_t hosts = topology.hosts;
  const std::size_t slots = topology.procs_per_host;

  std::vector<double> init_end(total, 0.0);
  std::vector<double> transform_end(total, 0.0);
  std::vector<double> async_end(total, 0.0);

  // Host-shared state: threads of one host are one SMP node, so the
  // leader's merged tid-lists are visible to its host-mates directly.
  // Written by the host leader before a barrier, read by host-mates after.
  std::vector<std::unordered_map<PairKey, TidList>> host_lists(hosts);

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const std::size_t me = self.id();
    const std::size_t host = self.host();
    const std::size_t slot = topology.slot_of(me);
    const bool leader = slot == 0;

    const std::vector<Block> host_blocks = db.block_partition(hosts);
    const std::span<const Transaction> host_span =
        db.view(host_blocks[host]);
    const std::size_t host_bytes = partition_bytes(host_span);
    const std::span<const Transaction> my_slice =
        slot_slice(host_span, slot, slots);

    // ----- Phase 1: initialization. The leader scans the host partition
    // from disk alone; counting is divided among the host's processors
    // over the shared image. -----
    if (leader) self.disk_read(host_bytes, 1);
    self.barrier();  // host image available

    TriangleCounter counter(std::max<Item>(db.num_items(), 2));
    self.compute([&] { counter.count(my_slice); });

    std::vector<Count> item_counts;
    if (config.include_singletons) {
      item_counts = self.compute(
          [&] { return count_items(my_slice, db.num_items()); });
      self.sum_reduce(item_counts, mc::Processor::ReduceScheme::kTree);
    }
    self.sum_reduce(counter.raw(), mc::Processor::ReduceScheme::kTree);
    init_end[me] = self.now();

    // ----- Phase 2: transformation. Classes are scheduled to hosts
    // (plan.assignment maps class -> host; the owning leader is slot 0 of
    // that host); tid-lists flow to the owning host's leader. -----
    MiningPlan plan = self.compute([&] {
      return derive_plan(counter, config.minsup, hosts, config.schedule);
    });
    const auto leader_of_pair = [&](PairKey key) {
      return plan.assignment[plan.class_of.at(key)] * slots;
    };

    // Second scan of the host partition (leader only); every processor
    // inverts its slice of the shared image.
    if (leader) self.disk_read(host_bytes, 1);
    self.barrier();
    std::unordered_map<PairKey, TidList> partial = self.compute(
        [&] { return invert_pairs(my_slice, plan.exchanged_pairs); });

    std::vector<mc::Blob> outgoing(total);
    self.compute([&] {
      std::vector<wire::Writer> writers(total);
      for (PairKey key : plan.exchanged_pairs) {
        const std::size_t owner = leader_of_pair(key);
        writers[owner].put(key);
        writers[owner].put_vector(partial.at(key));
      }
      for (std::size_t dst = 0; dst < total; ++dst) {
        outgoing[dst] = writers[dst].take();
      }
    });
    std::vector<mc::Blob> incoming = self.all_to_all(std::move(outgoing));

    // Leaders merge (source processors are in tid order, so concatenation
    // is sorted) and write the host's vertical partition once.
    if (leader) {
      std::unordered_map<PairKey, TidList>& merged = host_lists[host];
      std::size_t vertical_bytes = 0;
      self.compute([&] {
        merged.clear();
        for (std::size_t src = 0; src < total; ++src) {
          wire::Reader reader(incoming[src]);
          while (!reader.done()) {
            const auto key = reader.get<PairKey>();
            const std::vector<Tid> tids = reader.get_vector<Tid>();
            TidList& list = merged[key];
            list.insert(list.end(), tids.begin(), tids.end());
          }
        }
        // eclat-lint: allow(det-unordered-iter) order-insensitive fold: sums bytes and checks invariants; nothing escapes in hash order
        for (const auto& [key, list] : merged) {
          ECLAT_DCHECK(is_valid_tidlist(list));
          vertical_bytes += sizeof(PairKey) + list.size() * sizeof(Tid);
        }
      });
      self.disk_write(vertical_bytes, 1);
    }
    self.barrier();  // publish host_lists
    transform_end[me] = self.now();

    // ----- Phase 3: asynchronous. The host's classes are subdivided
    // among its processors; each reads its own classes' tid-lists from
    // the host disk (all P may read concurrently). -----
    std::vector<std::size_t> my_class_ids;
    std::size_t my_bytes = 0;
    self.compute([&] {
      std::vector<EquivalenceClass> host_classes;
      std::vector<std::size_t> host_class_ids;
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        if (plan.classes[c].size() < 2 || plan.assignment[c] != host) {
          continue;
        }
        host_classes.push_back(plan.classes[c]);
        host_class_ids.push_back(c);
      }
      const std::vector<std::size_t> slot_of_class =
          make_schedule(host_classes, slots, config.schedule, counter);
      for (std::size_t i = 0; i < host_classes.size(); ++i) {
        if (slot_of_class[i] != slot) continue;
        my_class_ids.push_back(host_class_ids[i]);
        for (PairKey key : host_classes[i].pair_keys()) {
          my_bytes += sizeof(PairKey) +
                      host_lists[host].at(key).size() * sizeof(Tid);
        }
      }
    });
    self.disk_read(my_bytes, slots);

    std::vector<FrequentItemset> found;
    self.compute([&] {
      std::vector<std::size_t> histogram;
      TidArena arena;  // per-processor scratch, reused across its classes
      for (std::size_t c : my_class_ids) {
        const EquivalenceClass& eq_class = plan.classes[c];
        std::vector<Atom> atoms;
        atoms.reserve(eq_class.size());
        for (Item member : eq_class.members) {
          const PairKey key = make_pair_key(eq_class.prefix, member);
          atoms.push_back(
              Atom{{eq_class.prefix, member}, host_lists[host].at(key)});
        }
        compute_frequent(atoms, config.minsup, config.kernel, arena, found,
                         histogram);
      }
    });
    async_end[me] = self.now();

    // ----- Phase 4: final reduction. -----
    wire::Writer writer;
    self.compute([&] {
      writer.put<std::uint64_t>(found.size());
      for (const FrequentItemset& f : found) {
        writer.put_vector(f.items);
        writer.put<Count>(f.support);
      }
    });
    std::vector<mc::Blob> gathered = self.all_gather(writer.take());

    if (me == 0) {
      MiningResult result;
      result.database_scans = 3;
      if (config.include_singletons) {
        append_singletons(result, item_counts, config.minsup);
      }
      append_frequent_pairs(result, plan.frequent_pairs, counter);
      for (const mc::Blob& blob : gathered) {
        wire::Reader reader(blob);
        const auto count = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i) {
          FrequentItemset f;
          f.items = reader.get_vector<Item>();
          f.support = reader.get<Count>();
          result.itemsets.push_back(std::move(f));
        }
      }
      finalize_result(result);
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  const double t_init = *std::max_element(init_end.begin(), init_end.end());
  const double t_transform =
      *std::max_element(transform_end.begin(), transform_end.end());
  const double t_async =
      *std::max_element(async_end.begin(), async_end.end());
  output.total_seconds = cluster.makespan();
  output.phase_seconds["initialization"] = t_init;
  output.phase_seconds["transformation"] = t_transform - t_init;
  output.phase_seconds["asynchronous"] = t_async - t_transform;
  output.phase_seconds["reduction"] = output.total_seconds - t_async;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

ParallelOutput hybrid_count_distribution(
    mc::Cluster& cluster, const HorizontalDatabase& db,
    const CountDistributionConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff of the single writer's result to the caller
  std::mutex output_mutex;

  const mc::Topology topology = cluster.topology();
  const std::size_t hosts = topology.hosts;
  const std::size_t slots = topology.procs_per_host;

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const std::size_t me = self.id();
    const std::size_t host = self.host();
    const std::size_t slot = topology.slot_of(me);
    const bool leader = slot == 0;

    const std::vector<Block> host_blocks = db.block_partition(hosts);
    const std::span<const Transaction> host_span =
        db.view(host_blocks[host]);
    const std::size_t host_bytes = partition_bytes(host_span);
    const std::span<const Transaction> my_slice =
        slot_slice(host_span, slot, slots);

    MiningResult result;

    // --- L1. ---
    if (leader) self.disk_read(host_bytes, 1);
    self.barrier();
    std::vector<Count> item_counts = self.compute(
        [&] { return count_items(my_slice, db.num_items()); });
    self.sum_reduce(item_counts,
                    mc::Processor::ReduceScheme::kSerializedHosts);
    ++result.database_scans;

    std::vector<Itemset> level;
    for (Item item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= config.minsup) {
        result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
        level.push_back({item});
      }
    }
    result.levels.push_back(LevelStats{
        1, static_cast<std::size_t>(db.num_items()), level.size()});

    // --- L2 (triangle). ---
    std::size_t k = 2;
    if (config.triangle_l2 && db.num_items() >= 2 && !level.empty()) {
      TriangleCounter counter(db.num_items());
      if (leader) self.disk_read(host_bytes, 1);
      self.barrier();
      self.compute([&] { counter.count(my_slice); });
      self.sum_reduce(counter.raw(),
                      mc::Processor::ReduceScheme::kSerializedHosts);
      ++result.database_scans;

      std::vector<Itemset> next_level;
      std::size_t candidate_pairs = 0;
      for (std::size_t i = 0; i < level.size(); ++i) {
        for (std::size_t j = i + 1; j < level.size(); ++j) {
          ++candidate_pairs;
          const Count support = counter.get(level[i][0], level[j][0]);
          if (support >= config.minsup) {
            result.itemsets.push_back(
                FrequentItemset{{level[i][0], level[j][0]}, support});
            next_level.push_back({level[i][0], level[j][0]});
          }
        }
      }
      result.levels.push_back(
          LevelStats{2, candidate_pairs, next_level.size()});
      level = std::move(next_level);
      k = 3;
    }

    const std::vector<std::uint32_t> bucket_map =
        config.balanced_tree
            ? balanced_bucket_map(item_counts, config.tree.fanout)
            : std::vector<std::uint32_t>{};

    // --- k >= 3: one shared logical tree per host. Functionally every
    // thread keeps its own counter copy (thread-safe), but the build is
    // charged only on the leader — on the real SMP node the tree is built
    // once per host and shared (CCPD, ref [16]). ---
    while (!level.empty()) {
      std::vector<Itemset> candidates;
      if (leader) {
        candidates = self.compute([&] {
          return generate_candidates(level, config.prune && k >= 3);
        });
      } else {
        candidates = generate_candidates(level, config.prune && k >= 3);
      }
      if (candidates.empty()) break;
      std::sort(candidates.begin(), candidates.end(), lex_less);

      HashTree tree(k, config.tree, bucket_map);
      if (leader) {
        self.compute([&] {
          for (const Itemset& candidate : candidates) {
            tree.insert(candidate);
          }
        });
      } else {
        for (const Itemset& candidate : candidates) tree.insert(candidate);
      }

      if (leader) self.disk_read(host_bytes, 1);
      self.barrier();
      self.compute([&] { tree.count_all(my_slice); });
      ++result.database_scans;

      std::vector<Count> counts(candidates.size());
      self.compute([&] {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          const Candidate* node = tree.find(candidates[i]);
          ECLAT_CHECK(node != nullptr);
          counts[i] = node->count;
        }
      });
      self.sum_reduce(counts,
                      mc::Processor::ReduceScheme::kSerializedHosts);

      std::vector<Itemset> next_level;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (counts[i] >= config.minsup) {
          result.itemsets.push_back(
              FrequentItemset{candidates[i], counts[i]});
          next_level.push_back(candidates[i]);
        }
      }
      result.levels.push_back(
          LevelStats{k, candidates.size(), next_level.size()});
      level = std::move(next_level);
      ++k;
    }

    self.barrier();
    if (me == 0) {
      normalize(result);
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  output.total_seconds = cluster.makespan();
  output.phase_seconds["total"] = output.total_seconds;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

}  // namespace eclat::par
