#include "parallel/pipeline.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "vertical/tidlist.hpp"

namespace eclat::par {

std::vector<std::size_t> make_schedule(
    std::span<const EquivalenceClass> classes, std::size_t bins,
    ScheduleHeuristic heuristic, const TriangleCounter& counter) {
  switch (heuristic) {
    case ScheduleHeuristic::kRoundRobin:
      return schedule_round_robin(classes, bins);
    case ScheduleHeuristic::kGreedySupport: {
      std::vector<std::size_t> weights(classes.size());
      for (std::size_t c = 0; c < classes.size(); ++c) {
        weights[c] = support_weight(classes[c], counter);
      }
      return schedule_greedy_by_weight(weights, bins);
    }
    case ScheduleHeuristic::kGreedyWeight:
    default:
      return schedule_greedy(classes, bins);
  }
}

MiningPlan derive_plan(const TriangleCounter& counter, Count minsup,
                       std::size_t bins, ScheduleHeuristic heuristic) {
  MiningPlan plan;
  plan.frequent_pairs = counter.frequent_pairs(minsup);
  plan.classes = partition_into_classes(plan.frequent_pairs);
  plan.assignment = make_schedule(plan.classes, bins, heuristic, counter);
  for (std::size_t c = 0; c < plan.classes.size(); ++c) {
    // Singleton classes generate no candidates (§4.1) — their 2-itemsets
    // are already globally counted, so no tid-lists move.
    if (plan.classes[c].size() < 2) continue;
    for (PairKey key : plan.classes[c].pair_keys()) {
      plan.class_of.emplace(key, c);
      plan.exchanged_pairs.push_back(key);
    }
  }
  return plan;
}

std::vector<Atom> take_class_atoms(
    const EquivalenceClass& eq_class,
    std::unordered_map<PairKey, TidList>& lists) {
  std::vector<Atom> atoms;
  atoms.reserve(eq_class.size());
  for (Item member : eq_class.members) {
    const PairKey key = make_pair_key(eq_class.prefix, member);
    atoms.push_back(
        Atom{{eq_class.prefix, member}, std::move(lists.at(key))});
  }
  return atoms;
}

std::vector<Atom> rebuild_class_atoms(
    const EquivalenceClass& eq_class,
    std::span<const std::span<const Transaction>> partitions) {
  const std::vector<PairKey> keys = eq_class.pair_keys();
  std::unordered_map<PairKey, TidList> lists;
  for (const std::span<const Transaction> partition : partitions) {
    std::unordered_map<PairKey, TidList> partial =
        invert_pairs(partition, keys);
    for (const PairKey key : keys) {
      TidList& list = lists[key];
      const TidList& section = partial.at(key);
      list.insert(list.end(), section.begin(), section.end());
    }
  }
  for (const PairKey key : keys) {
    ECLAT_DCHECK(is_valid_tidlist(lists.at(key)));
  }
  return take_class_atoms(eq_class, lists);
}

void append_singletons(MiningResult& result,
                       std::span<const Count> item_counts, Count minsup) {
  for (std::size_t item = 0; item < item_counts.size(); ++item) {
    if (item_counts[item] >= minsup) {
      result.itemsets.push_back(
          FrequentItemset{{static_cast<Item>(item)}, item_counts[item]});
    }
  }
}

void append_frequent_pairs(MiningResult& result,
                           std::span<const PairKey> frequent_pairs,
                           const TriangleCounter& counter) {
  for (PairKey key : frequent_pairs) {
    result.itemsets.push_back(FrequentItemset{
        {pair_first(key), pair_second(key)},
        counter.get(pair_first(key), pair_second(key))});
  }
}

void finalize_result(MiningResult& result) {
  normalize(result);
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
}

}  // namespace eclat::par
