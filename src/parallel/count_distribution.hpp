// Count Distribution / CCPD (paper §3.1, refs [3, 16]): the baseline Eclat
// is measured against in Table 2.
//
// Straightforward parallelization of Apriori: every processor holds a
// replica of the entire candidate hash tree, counts partial supports
// against its local database partition (one disk scan per iteration), and
// a sum-reduction at the end of each iteration produces the global counts.
// Includes the CCPD optimizations: triangular-array L2 counting, hash-tree
// balancing, and short-circuited subset search.
#pragma once

#include "hashtree/hash_tree.hpp"
#include "parallel/parallel_common.hpp"

namespace eclat::par {

struct CountDistributionConfig {
  Count minsup = 1;
  bool prune = true;          ///< (k-1)-subset candidate pruning
  bool triangle_l2 = true;    ///< triangular-array C2 counting
  bool balanced_tree = true;  ///< CCPD hash-tree balancing
  /// CCPD computation balancing ([16]): split the candidate-generation
  /// work (join + prune of Lk-1) across processors and exchange the
  /// pieces, instead of every processor generating the full Ck.
  bool computation_balancing = false;
  HashTreeConfig tree;
};

/// Run Count Distribution on the cluster. `db` plays the role of the
/// pre-partitioned on-disk database: processor p works on block p of a
/// T-way split and is charged disk time for each scan of it.
ParallelOutput count_distribution(mc::Cluster& cluster,
                                  const HorizontalDatabase& db,
                                  const CountDistributionConfig& config);

}  // namespace eclat::par
