// Hybrid parallelization — the improvement the paper proposes as future
// work in §8.1: "partition the database only among the hosts. Within each
// host the processors could share the candidate hash tree in Count
// Distribution, while the Compute_Frequent procedure could be carried out
// in parallel in Eclat."
//
// The pure algorithms split the database T ways and let every processor
// scan its own slice, so P processors hammer each host's single local
// disk simultaneously. The hybrids are host-aware:
//
//   * one processor per host (the slot-0 "leader") performs each disk
//     scan alone — no intra-host contention — and the host's processors
//     share the in-memory image (they are threads of one SMP node);
//   * counting work over the host image is divided among the host's
//     processors;
//   * hybrid Eclat schedules equivalence classes to *hosts* first
//     (tid-lists are exchanged leader-to-leader), then subdivides each
//     host's classes among its processors for the asynchronous phase;
//   * hybrid Count Distribution keeps one logical candidate tree per host
//     and reduces counts across hosts only.
#pragma once

#include "parallel/count_distribution.hpp"
#include "parallel/par_eclat.hpp"

namespace eclat::par {

/// Host-aware parallel Eclat (§8.1). Same result as par_eclat; fills the
/// same four phase entries.
ParallelOutput hybrid_eclat(mc::Cluster& cluster,
                            const HorizontalDatabase& db,
                            const ParEclatConfig& config);

/// Host-aware Count Distribution (§8.1): shared per-host candidate tree,
/// leader-only disk scans, inter-host reductions.
ParallelOutput hybrid_count_distribution(
    mc::Cluster& cluster, const HorizontalDatabase& db,
    const CountDistributionConfig& config);

}  // namespace eclat::par
