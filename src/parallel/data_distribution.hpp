// Data Distribution (paper §3.1, Agrawal & Shafer [3]): candidates are
// split round-robin into disjoint per-processor sets to use the aggregate
// memory, but every processor must see the *entire* database each
// iteration — its own block plus all remote blocks — so the algorithm
// drowns in communication. Included as the paper's negative baseline
// ("performs very poorly when compared to Count Distribution").
#pragma once

#include "hashtree/hash_tree.hpp"
#include "parallel/parallel_common.hpp"

namespace eclat::par {

struct DataDistributionConfig {
  Count minsup = 1;
  bool prune = true;
  bool triangle_l2 = true;
  bool balanced_tree = true;
  HashTreeConfig tree;
};

ParallelOutput data_distribution(mc::Cluster& cluster,
                                 const HorizontalDatabase& db,
                                 const DataDistributionConfig& config);

}  // namespace eclat::par
