// Parallel Eclat (paper §5-§6): the paper's contribution.
//
// Four phases per processor:
//   1. Initialization — scan the local partition once, count all
//      2-itemsets in a local triangular array, sum-reduce to the global L2
//      (the paper never counts single items).
//   2. Transformation — partition L2 into equivalence classes, schedule
//      them greedily over the processors, scan the local partition a
//      second time building partial tid-lists for every frequent
//      2-itemset, then exchange tid-lists so each processor holds the
//      *global* tid-lists of the classes it owns. Because the database is
//      block-partitioned, partial lists concatenated in processor order
//      are already globally sorted (§6.3) — placement uses precomputed
//      offsets from the per-processor partial counts.
//   3. Asynchronous — mine each owned class to completion with recursive
//      tid-list intersections. No communication, no synchronization; the
//      third and final scan reads the class tid-lists back from local disk.
//   4. Final reduction — gather every processor's discoveries.
//
// Crash recovery (beyond the paper; see DESIGN.md §5): every phase
// tolerates processor crashes injected via a cluster FaultPlan. Lost
// partition counts are re-counted by survivors and repaired with a
// delta-reduction; the tid-list exchange is redone until a commit
// barrier sees no new failures (dead processors' partitions re-scanned,
// their classes reassigned by the same greedy weights); each mined class
// is checkpointed in replicated receive regions, so after the final
// gather survivors re-mine only the dead processors' *unfinished*
// classes. The mined itemsets are byte-identical to the fault-free run;
// the recovery cost appears in the virtual-time makespan (and, when
// recovery ran, in a fifth "recovery" entry of phase_seconds).
//
// Straggler mitigation (also beyond the paper; see DESIGN.md §6): the
// static greedy schedule cannot move work off a processor that is slow
// rather than dead — a persistent disk stall or a silent hang
// (FaultKind::kHang) would bound the asynchronous phase by the
// straggler. With config.lease.speculate on, each owner acquires a
// progress lease per owned class at the exchange commit and renews at
// every class checkpoint; idle survivors watch the lease board
// (mc/lease.hpp) and speculatively re-mine classes whose lease expired,
// from the replicated tid-list images — MapReduce-backup-task style.
// Commits into the RecoveryStore are idempotent first-writer-wins, so a
// hung-then-resumed owner racing its backup cannot tear or duplicate
// output, and owners skip (migrate away) classes a backup already
// committed. The final result is assembled per class id from the store,
// byte-identical across {speculation on, off, fault-free}.
#pragma once

#include "eclat/compute_frequent.hpp"
#include "eclat/equivalence.hpp"
#include "parallel/parallel_common.hpp"
#include "parallel/pipeline.hpp"

namespace eclat::par {

struct ParEclatConfig {
  Count minsup = 1;
  IntersectKernel kernel = IntersectKernel::kMergeShortCircuit;
  ScheduleHeuristic schedule = ScheduleHeuristic::kGreedyWeight;
  /// Report frequent 1-itemsets too (costed extra work in the first scan;
  /// off reproduces the paper exactly, on makes results comparable with
  /// Apriori in the cross-validation tests).
  bool include_singletons = true;
  /// Progress-lease straggler detection and speculative re-execution
  /// (lease duration, launch threshold, suspector seed; mc/lease.hpp).
  /// Never affects the mined itemsets, only who mines them and when.
  mc::LeasePolicy lease;
  /// Corrupted-payload recovery: up to this many retransmissions per
  /// payload, with exponential virtual-time backoff between attempts,
  /// before the sender is marked suspect and the transfer abandoned.
  std::size_t max_retransmits = 4;
  /// First retry's backoff in virtual seconds (doubles per attempt).
  double retransmit_backoff = 1e-4;
  /// Replication factor R for the class tid-list images in the recovery
  /// store: each image lives on the R highest-ranked nodes of its
  /// rendezvous placement, and survivors re-replicate after every failure
  /// fold (parallel/recovery.hpp). 0 = full replication, the legacy
  /// every-node-holds-everything behaviour. When all R holders of an
  /// image are lost before recovery needs it, the class is rebuilt by
  /// lineage: re-inverting its tid-lists from the on-disk horizontal
  /// partitions. Never affects the mined itemsets, only recovery cost.
  std::size_t replication = 0;
};

/// Run parallel Eclat on the cluster. Fills phase_seconds with
/// "initialization", "transformation", "asynchronous" and "reduction".
ParallelOutput par_eclat(mc::Cluster& cluster, const HorizontalDatabase& db,
                         const ParEclatConfig& config);

}  // namespace eclat::par
