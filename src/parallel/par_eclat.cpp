#include "parallel/par_eclat.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "apriori/apriori.hpp"
#include "common/check.hpp"
#include "parallel/wire.hpp"
#include "vertical/tidlist.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

namespace {

std::vector<std::size_t> make_schedule(
    std::span<const EquivalenceClass> classes, std::size_t total,
    ScheduleHeuristic heuristic, const TriangleCounter& counter) {
  switch (heuristic) {
    case ScheduleHeuristic::kRoundRobin:
      return schedule_round_robin(classes, total);
    case ScheduleHeuristic::kGreedySupport: {
      std::vector<std::size_t> weights(classes.size());
      for (std::size_t c = 0; c < classes.size(); ++c) {
        weights[c] = support_weight(classes[c], counter);
      }
      return schedule_greedy_by_weight(weights, total);
    }
    case ScheduleHeuristic::kGreedyWeight:
    default:
      return schedule_greedy(classes, total);
  }
}

}  // namespace

ParallelOutput par_eclat(mc::Cluster& cluster, const HorizontalDatabase& db,
                         const ParEclatConfig& config) {
  ParallelOutput output;
  std::mutex output_mutex;

  const std::size_t total = cluster.topology().total();
  // Instrumentation only (never part of virtual time): per-processor
  // virtual timestamps at phase boundaries. Disjoint slots, no locking.
  std::vector<double> init_end(total, 0.0);
  std::vector<double> transform_end(total, 0.0);
  std::vector<double> async_end(total, 0.0);

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  cluster.run([&](mc::Processor& self) {
    const mc::Topology& topology = self.topology();
    const std::size_t me = self.id();
    const std::span<const Transaction> local =
        local_partition(db, topology, me);
    const std::size_t local_bytes = partition_bytes(local);

    // ----- Phase 1: initialization (first local scan, global L2). -----
    self.phase_begin("initialization");
    TriangleCounter counter(std::max<Item>(db.num_items(), 2));
    self.disk_read(local_bytes);
    self.compute([&] { counter.count(local); });

    std::vector<Count> item_counts;
    if (config.include_singletons) {
      item_counts =
          self.compute([&] { return count_items(local, db.num_items()); });
      self.sum_reduce(item_counts, mc::Processor::ReduceScheme::kTree);
    }
    // One-time reduction: the O(log P) scheme of the paper's footnote 2.
    self.sum_reduce(counter.raw(), mc::Processor::ReduceScheme::kTree);
    self.phase_end("initialization");
    init_end[me] = self.now();

    // ----- Phase 2: transformation. -----
    self.phase_begin("transformation");
    // Every processor derives the same L2, classes and schedule from the
    // global counts (paper §5.2.1: "done concurrently on all the
    // processors since all of them have access to the global L2").
    struct Plan {
      std::vector<PairKey> frequent_pairs;
      std::vector<EquivalenceClass> classes;
      std::vector<std::size_t> assignment;
      std::vector<PairKey> exchanged_pairs;  // pairs in classes of size >= 2
      std::unordered_map<PairKey, std::size_t> owner_of;
    };
    Plan plan = self.compute([&] {
      Plan p;
      p.frequent_pairs = counter.frequent_pairs(config.minsup);
      p.classes = partition_into_classes(p.frequent_pairs);
      p.assignment =
          make_schedule(p.classes, total, config.schedule, counter);
      for (std::size_t c = 0; c < p.classes.size(); ++c) {
        // Singleton classes generate no candidates (§4.1) — their
        // 2-itemsets are already globally counted, so no tid-lists move.
        if (p.classes[c].size() < 2) continue;
        for (PairKey key : p.classes[c].pair_keys()) {
          p.owner_of.emplace(key, p.assignment[c]);
          p.exchanged_pairs.push_back(key);
        }
      }
      return p;
    });

    // Second local scan: partial tid-lists for every exchanged 2-itemset.
    self.disk_read(local_bytes);
    std::unordered_map<PairKey, TidList> partial = self.compute(
        [&] { return invert_pairs(local, plan.exchanged_pairs); });

    // Route each partial list to its class owner. Pairs are serialized in
    // the global (class, member) order so receivers can merge partial
    // lists per source in one pass.
    std::vector<mc::Blob> outgoing(total);
    self.compute([&] {
      std::vector<wire::Writer> writers(total);
      for (PairKey key : plan.exchanged_pairs) {
        const std::size_t owner = plan.owner_of.at(key);
        writers[owner].put(key);
        writers[owner].put_vector(partial.at(key));
      }
      for (std::size_t dst = 0; dst < total; ++dst) {
        outgoing[dst] = writers[dst].take();
      }
    });
    std::vector<mc::Blob> incoming = self.all_to_all(std::move(outgoing));

    // Merge in source order: the database is block-partitioned, so source
    // p's tids all precede source p+1's — concatenation is already the
    // lexicographically sorted global tid-list (paper §6.3).
    std::unordered_map<PairKey, TidList> my_lists;
    std::size_t vertical_bytes = 0;
    self.compute([&] {
      for (std::size_t src = 0; src < total; ++src) {
        wire::Reader reader(incoming[src]);
        while (!reader.done()) {
          const auto key = reader.get<PairKey>();
          const std::vector<Tid> tids = reader.get_vector<Tid>();
          TidList& list = my_lists[key];
          list.insert(list.end(), tids.begin(), tids.end());
        }
      }
      for (const auto& [key, list] : my_lists) {
        // Block partitioning means source order == tid order; if this ever
        // breaks, every downstream intersection is silently wrong.
        ECLAT_DCHECK(is_valid_tidlist(list));
        vertical_bytes += sizeof(PairKey) + list.size() * sizeof(Tid);
      }
    });
    // The merged global tid-lists of the local classes go to local disk
    // (those of remote classes were never materialized here).
    self.disk_write(vertical_bytes);
    self.phase_end("transformation");
    transform_end[me] = self.now();

    // ----- Phase 3: asynchronous (third scan; zero communication). -----
    self.phase_begin("asynchronous");
    self.disk_read(vertical_bytes);
    std::vector<FrequentItemset> found;
    self.compute([&] {
      std::vector<std::size_t> histogram;
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        const EquivalenceClass& eq_class = plan.classes[c];
        if (eq_class.size() < 2 || plan.assignment[c] != me) continue;
        std::vector<Atom> atoms;
        atoms.reserve(eq_class.size());
        for (Item member : eq_class.members) {
          const PairKey key = make_pair_key(eq_class.prefix, member);
          atoms.push_back(Atom{{eq_class.prefix, member},
                               std::move(my_lists.at(key))});
        }
        compute_frequent(atoms, config.minsup, config.kernel, found,
                         histogram);
      }
    });
    self.phase_end("asynchronous");
    async_end[me] = self.now();

    // ----- Phase 4: final reduction (same scheme as initialization). ---
    self.phase_begin("reduction");
    wire::Writer writer;
    self.compute([&] {
      writer.put<std::uint64_t>(found.size());
      for (const FrequentItemset& f : found) {
        writer.put_vector(f.items);
        writer.put<Count>(f.support);
      }
    });
    std::vector<mc::Blob> gathered = self.all_gather(writer.take());
    self.phase_end("reduction");

    if (me == 0) {
      MiningResult result;
      result.database_scans = 3;  // two horizontal scans + vertical read
      if (config.include_singletons) {
        for (Item item = 0; item < db.num_items(); ++item) {
          if (item_counts[item] >= config.minsup) {
            result.itemsets.push_back(
                FrequentItemset{{item}, item_counts[item]});
          }
        }
      }
      for (PairKey key : plan.frequent_pairs) {
        result.itemsets.push_back(FrequentItemset{
            {pair_first(key), pair_second(key)},
            counter.get(pair_first(key), pair_second(key))});
      }
      for (const mc::Blob& blob : gathered) {
        wire::Reader reader(blob);
        const auto count = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i) {
          FrequentItemset f;
          f.items = reader.get_vector<Item>();
          f.support = reader.get<Count>();
          result.itemsets.push_back(std::move(f));
        }
      }
      normalize(result);
      for (std::size_t k = 1; k <= result.max_size(); ++k) {
        result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
      }
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  const double t_init = *std::max_element(init_end.begin(), init_end.end());
  const double t_transform =
      *std::max_element(transform_end.begin(), transform_end.end());
  const double t_async =
      *std::max_element(async_end.begin(), async_end.end());
  output.total_seconds = cluster.makespan();
  output.phase_seconds["initialization"] = t_init;
  output.phase_seconds["transformation"] = t_transform - t_init;
  output.phase_seconds["asynchronous"] = t_async - t_transform;
  output.phase_seconds["reduction"] = output.total_seconds - t_async;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

}  // namespace eclat::par
