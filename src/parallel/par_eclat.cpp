#include "parallel/par_eclat.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "apriori/apriori.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/result_io.hpp"
#include "parallel/recovery.hpp"
#include "parallel/wire.hpp"
#include "vertical/tidlist.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

namespace {

std::vector<std::size_t> survivors_of(const std::vector<bool>& failed) {
  std::vector<std::size_t> alive;
  for (std::size_t p = 0; p < failed.size(); ++p) {
    if (!failed[p]) alive.push_back(p);
  }
  return alive;
}

/// Open a sealed all-to-all payload; on checksum failure re-fetch from
/// the sender's transmit buffer, backing off exponentially in virtual
/// time between attempts (retransmissions go through the same fault-prone
/// channel and may arrive corrupted again). A link that stays bad past
/// config.max_retransmits escalates from "transient corruption" to
/// suspicion of the sender, and the transfer is abandoned — the frame
/// either opens within the budget or the run surfaces the error.
mc::Blob open_exchange_payload(mc::Processor& self, std::size_t src,
                               mc::Blob blob, const ParEclatConfig& config) {
  if (wire::open_frame(blob)) return blob;
  double backoff = config.retransmit_backoff;
  for (std::size_t attempt = 0; attempt < config.max_retransmits; ++attempt) {
    self.advance(backoff);
    backoff *= 2.0;
    blob = self.retransmit(src);
    if (wire::open_frame(blob)) return blob;
  }
  self.lease_suspect(src);
  throw std::runtime_error(
      "exchange payload from processor " + std::to_string(src) +
      " still corrupt after " + std::to_string(config.max_retransmits) +
      " retransmissions: sender suspected, transfer abandoned");
}

/// Per-class result checkpoint payload (the existing ECLATRES result
/// format, so recovery reuses result_io end to end).
mc::Blob checkpoint_bytes(const std::vector<FrequentItemset>& itemsets) {
  MiningResult partial;
  partial.itemsets = itemsets;
  return result_to_bytes(partial);
}

std::vector<FrequentItemset> itemsets_from_checkpoint(
    std::span<const std::uint8_t> payload) {
  return result_from_bytes({payload.begin(), payload.end()}).itemsets;
}

/// Re-mine one equivalence class from its sealed tid-list image in the
/// replicated store (used by both speculative backups and post-gather
/// recovery). The image decode is deterministic and the mining recursion
/// is too, so every re-mine of one class yields byte-identical
/// checkpoints — the invariant behind first-writer-wins commits.
std::vector<FrequentItemset> mine_class_image(mc::Processor& self,
                                              const mc::Blob& image,
                                              const ParEclatConfig& config,
                                              TidArena& arena) {
  self.disk_read(image.size(), 1);
  const wire::FrameResult frame = wire::open_frame(image);
  if (!frame) {
    throw std::runtime_error("corrupt tid-list image: " + frame.error);
  }
  std::vector<FrequentItemset> class_found;
  self.compute([&] {
    wire::Reader reader(frame.payload);
    std::vector<Atom> atoms;
    while (!reader.done()) {
      const auto key = reader.get<PairKey>();
      atoms.push_back(Atom{{pair_first(key), pair_second(key)},
                           reader.get_vector<Tid>()});
    }
    std::vector<std::size_t> histogram;
    compute_frequent(atoms, config.minsup, config.kernel, arena,
                     class_found, histogram);
  });
  return class_found;
}

}  // namespace

ParallelOutput par_eclat(mc::Cluster& cluster, const HorizontalDatabase& db,
                         const ParEclatConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff of the single writer's result to the caller
  std::mutex output_mutex;

  const std::size_t total = cluster.topology().total();
  // Instrumentation only (never part of virtual time): per-processor
  // virtual timestamps at phase boundaries. Disjoint slots, no locking.
  std::vector<double> init_end(total, 0.0);
  std::vector<double> transform_end(total, 0.0);
  std::vector<double> async_end(total, 0.0);
  std::vector<double> reduction_end(total, 0.0);
  // eclat-lint: allow(det-thread) instrumentation flag set inside the run, folded only after the threads join
  std::atomic<bool> recovery_ran{false};
  // eclat-lint: allow(det-thread) instrumentation counter folded only after the threads join
  std::atomic<std::uint64_t> lineage_rebuilds{0};
  // Per-processor replica-copy counts at run end (disjoint slots, written
  // only by finishing processors; all finishers fold identical snapshot
  // sequences, so their values agree).
  std::vector<std::uint64_t> replica_copies(total, 0);

  // Replicated recovery state (Memory Channel receive regions are
  // replicated on every node — see recovery.hpp): tid-list images of every
  // size >= 2 class and per-class result checkpoints.
  parallel::RecoveryStore store;

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const mc::Topology& topology = self.topology();
    const std::size_t me = self.id();
    const std::span<const Transaction> local =
        local_partition(db, topology, me);
    const std::size_t local_bytes = partition_bytes(local);

    // ----- Phase 1: initialization (first local scan, global L2). -----
    self.phase_begin("initialization");
    TriangleCounter counter(std::max<Item>(db.num_items(), 2));
    self.disk_read(local_bytes);
    self.compute([&] { counter.count(local); });

    const std::size_t items_len =
        config.include_singletons ? db.num_items() : 0;
    std::vector<Count> item_counts;
    std::vector<bool> item_fold_failed;
    if (config.include_singletons) {
      item_counts =
          self.compute([&] { return count_items(local, db.num_items()); });
      self.sum_reduce(item_counts, mc::Processor::ReduceScheme::kTree);
      item_fold_failed = self.failed_snapshot();
    }
    // One-time reduction: the O(log P) scheme of the paper's footnote 2.
    self.sum_reduce(counter.raw(), mc::Processor::ReduceScheme::kTree);
    std::vector<bool> pair_fold_failed = self.failed_snapshot();
    if (!config.include_singletons) item_fold_failed = pair_fold_failed;

    // Count repair: a processor that crashed before contributing to a
    // reduction leaves its partition out of the totals. Its partition is
    // still on its host's disk, so survivors re-scan it and fold the
    // missing counts in through extra (survivor-only) tree reductions,
    // repeating if a repairer itself dies mid-round. Afterwards the global
    // L2 — and hence classes, weights and schedule — equals the
    // fault-free run's.
    std::vector<bool> pair_covered(total), item_covered(total);
    for (std::size_t p = 0; p < total; ++p) {
      pair_covered[p] = !pair_fold_failed[p];
      item_covered[p] = !item_fold_failed[p];
    }
    const std::size_t tri_len = counter.raw().size();
    while (true) {
      std::vector<std::size_t> missing;
      for (std::size_t p = 0; p < total; ++p) {
        if (!pair_covered[p] || !item_covered[p]) missing.push_back(p);
      }
      if (missing.empty()) break;

      const std::vector<bool> failed = self.failed_snapshot();
      const std::vector<std::size_t> alive = survivors_of(failed);
      std::vector<std::size_t> repairer(total, total);
      for (std::size_t i = 0; i < missing.size(); ++i) {
        repairer[missing[i]] = alive[i % alive.size()];
      }

      // Triangle and item deltas concatenated: one reduction per round.
      std::vector<Count> delta(tri_len + items_len, 0);
      for (const std::size_t dead : missing) {
        if (repairer[dead] != me) continue;
        const std::span<const Transaction> part =
            local_partition(db, topology, dead);
        self.disk_read(partition_bytes(part), 1);
        self.compute([&] {
          if (!pair_covered[dead]) {
            TriangleCounter recount(std::max<Item>(db.num_items(), 2));
            recount.count(part);
            const std::span<const Count> raw = recount.raw();
            for (std::size_t i = 0; i < tri_len; ++i) delta[i] += raw[i];
          }
          if (items_len > 0 && !item_covered[dead]) {
            const std::vector<Count> recount =
                count_items(part, db.num_items());
            for (std::size_t i = 0; i < items_len; ++i) {
              delta[tri_len + i] += recount[i];
            }
          }
        });
        self.mark("count-repair", dead);
      }
      self.sum_reduce(delta, mc::Processor::ReduceScheme::kTree);
      const std::vector<bool> after = self.failed_snapshot();

      // The reduced delta holds exactly the partitions whose repairer was
      // alive at the fold; apply it once and mark those covered. A dead
      // repairer's partitions go around again.
      self.compute([&] {
        const std::span<Count> raw = counter.raw();
        for (std::size_t i = 0; i < tri_len; ++i) raw[i] += delta[i];
        for (std::size_t i = 0; i < items_len; ++i) {
          item_counts[i] += delta[tri_len + i];
        }
      });
      for (const std::size_t dead : missing) {
        if (!after[repairer[dead]]) {
          pair_covered[dead] = true;
          item_covered[dead] = true;
        }
      }
    }
    self.phase_end("initialization");
    init_end[me] = self.now();

    // ----- Phase 2: transformation. -----
    self.phase_begin("transformation");
    // Every processor derives the same L2, classes and schedule from the
    // global counts (paper §5.2.1: "done concurrently on all the
    // processors since all of them have access to the global L2"). The
    // schedule is always computed over all T processors — including ones
    // that already failed — so class ids, weights and the fault-free
    // ownership are identical in every run; failures only relocate work.
    // derive_plan is the backend-shared stage (parallel/pipeline.hpp): the
    // thread backend derives the identical plan from the identical counts.
    MiningPlan plan = self.compute([&] {
      return derive_plan(counter, config.minsup, total, config.schedule);
    });

    // Second local scan: partial tid-lists for every exchanged 2-itemset.
    self.disk_read(local_bytes);
    std::unordered_map<PairKey, TidList> partial = self.compute(
        [&] { return invert_pairs(local, plan.exchanged_pairs); });

    // The tid-list exchange, structured as a redo-until-committed loop so
    // crashes at any point inside it stay recoverable:
    //   1. snapshot the failed set F; reassign dead owners' classes
    //      greedily among the survivors, and hand each dead processor's
    //      *partition* to a survivor, which re-scans it from the host disk;
    //   2. all_to_all partition-TAGGED, CRC-sealed sections (a repairer
    //      sends the dead partition's sections under the dead id, so
    //      receivers merge partitions in ascending order regardless of who
    //      sent them — and a partition is never sent twice in one round);
    //   3. merge, store the owned classes' tid-list images in the
    //      replicated store, then a commit barrier;
    //   4. if the failed set after the commit still equals F, the round is
    //      committed; otherwise someone died mid-round — redo. Each redo
    //      loses at least one processor, so at most T rounds run, and the
    //      fault-free path is exactly one round plus one cheap barrier.
    std::unordered_map<PairKey, TidList> my_lists;
    std::vector<std::size_t> class_owner;
    std::size_t vertical_bytes = 0;
    std::vector<bool> commit_failed;
    // Class images sealed this round, published to the store only after
    // the commit barrier: a round that loses a processor mid-exchange
    // builds *incomplete* lists that the redo round replaces, and the
    // store is first-writer-wins — nothing may escape an uncommitted
    // round.
    std::vector<std::pair<std::size_t, mc::Blob>> staged_images;
    // Exchange frames are stamped with the redo round as their sequence
    // number; the replay filter drops duplicate deliveries (a retransmitted
    // frame this receiver already merged, or a stale frame from an
    // uncommitted round) so no section is ever double-merged.
    std::uint32_t exchange_round = 0;
    wire::ReplayFilter exchange_replay;
    while (true) {
      const std::vector<bool> failed = self.failed_snapshot();
      const std::vector<std::size_t> alive = survivors_of(failed);

      // Final ownership this round: survivors keep their fault-free
      // classes; dead owners' classes are re-placed greedily by weight.
      class_owner = plan.assignment;
      std::vector<std::size_t> orphaned;
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        if (failed[class_owner[c]]) orphaned.push_back(c);
      }
      if (!orphaned.empty()) {
        std::vector<std::size_t> weights(orphaned.size());
        for (std::size_t i = 0; i < orphaned.size(); ++i) {
          weights[i] = plan.classes[orphaned[i]].weight();
        }
        const std::vector<std::size_t> placement =
            schedule_greedy_by_weight(weights, alive.size());
        for (std::size_t i = 0; i < orphaned.size(); ++i) {
          class_owner[orphaned[i]] = alive[placement[i]];
        }
      }

      // Dead partitions round-robin over survivors for re-scanning.
      std::vector<std::size_t> partition_source(total);
      std::size_t next = 0;
      for (std::size_t q = 0; q < total; ++q) {
        partition_source[q] = failed[q] ? alive[next++ % alive.size()] : q;
      }
      std::unordered_map<std::size_t, std::unordered_map<PairKey, TidList>>
          repaired;
      for (std::size_t q = 0; q < total; ++q) {
        if (!failed[q] || partition_source[q] != me) continue;
        const std::span<const Transaction> part =
            local_partition(db, topology, q);
        self.disk_read(partition_bytes(part), 1);
        repaired[q] =
            self.compute([&] { return invert_pairs(part, plan.exchanged_pairs); });
        self.mark("partition-repair", q);
      }

      // Route each partition's sections to the class owners, tagged with
      // the source *partition* id and CRC-sealed.
      std::vector<mc::Blob> outgoing(total);
      self.compute([&] {
        std::vector<wire::Writer> writers(total);
        for (std::size_t q = 0; q < total; ++q) {
          const bool mine_own = q == me;
          const bool mine_repaired = failed[q] && partition_source[q] == me;
          if (!mine_own && !mine_repaired) continue;
          const auto& lists = mine_own ? partial : repaired.at(q);
          for (PairKey key : plan.exchanged_pairs) {
            const std::size_t owner = class_owner[plan.class_of.at(key)];
            writers[owner].put<std::uint64_t>(q);
            writers[owner].put(key);
            writers[owner].put_vector(lists.at(key));
          }
        }
        for (std::size_t dst = 0; dst < total; ++dst) {
          if (!failed[dst]) {
            outgoing[dst] = wire::seal_frame(writers[dst].take(),
                                             exchange_round);
          }
        }
      });
      std::vector<mc::Blob> incoming = self.all_to_all(std::move(outgoing));
      const std::vector<bool> a2a_failed = self.failed_snapshot();

      // Decode (checksum-validated, with retransmission on corruption) and
      // merge sections per pair in ascending partition order: the database
      // is block-partitioned, so that concatenation is the globally sorted
      // tid-list (paper §6.3).
      my_lists.clear();
      vertical_bytes = 0;
      self.compute([&] {
        std::unordered_map<PairKey,
                           std::vector<std::pair<std::uint64_t, TidList>>>
            sections;
        for (std::size_t src = 0; src < total; ++src) {
          if (a2a_failed[src]) continue;
          const mc::Blob blob = open_exchange_payload(
              self, src, std::move(incoming[src]), config);
          const wire::FrameResult frame = wire::open_frame(blob);
          if (!exchange_replay.accept(src, frame.seq)) {
            self.mark("duplicate-dropped", src);
            continue;
          }
          wire::Reader reader(frame.payload);
          while (!reader.done()) {
            const auto partition = reader.get<std::uint64_t>();
            const auto key = reader.get<PairKey>();
            sections[key].emplace_back(partition, reader.get_vector<Tid>());
          }
        }
        // eclat-lint: allow(det-unordered-iter) order-insensitive fold into the keyed my_lists; emission order comes from pair_keys()
        for (auto& [key, parts] : sections) {
          std::sort(parts.begin(), parts.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          TidList& list = my_lists[key];
          for (auto& [partition, tids] : parts) {
            list.insert(list.end(), tids.begin(), tids.end());
          }
          // Block partitioning means partition order == tid order; if this
          // ever breaks, every downstream intersection is silently wrong.
          ECLAT_DCHECK(is_valid_tidlist(list));
          vertical_bytes += sizeof(PairKey) + list.size() * sizeof(Tid);
        }
      });
      // The merged global tid-lists of the local classes go to local disk
      // (those of remote classes were never materialized here) — and their
      // sealed images into the replicated store, which is what makes a
      // later owner crash recoverable.
      self.disk_write(vertical_bytes);
      std::size_t image_bytes = 0;
      staged_images.clear();
      self.compute([&] {
        for (std::size_t c = 0; c < plan.classes.size(); ++c) {
          if (plan.classes[c].size() < 2 || class_owner[c] != me) continue;
          wire::Writer image;
          for (PairKey key : plan.classes[c].pair_keys()) {
            image.put(key);
            image.put_vector(my_lists.at(key));
          }
          mc::Blob sealed = wire::seal_frame(image.take());
          image_bytes += sealed.size();
          staged_images.emplace_back(c, std::move(sealed));
        }
      });
      self.disk_write(image_bytes);

      self.barrier();  // commit point
      commit_failed = self.failed_snapshot();
      if (commit_failed == failed) break;
      self.mark("exchange-redo");
      ++exchange_round;
    }
    // The round committed. First raise the store's epoch fence to this
    // survivor's commit epoch: any straggler whose view predates the
    // commit can no longer write (its puts carry an older epoch).
    store.raise_fence(self.commit_epoch());

    // Bounded-replication bookkeeping, one private tracker per processor:
    // every survivor folds the identical failure snapshots in the
    // identical order, so all trackers agree without sharing state.
    // Placement is fixed at the commit snapshot — nodes already dead at
    // commit never became holders.
    parallel::ReplicaTracker replicas(total, config.replication,
                                      plan.classes.size(), commit_failed);

    // Quorum gating: a processor cut to the minority side of a partition
    // must not commit into the replicated store (its writes could not
    // reach a quorum of receive regions on the real machine). Its puts
    // queue locally and flush at the first point it is back in quorum —
    // or die with its abort, in which case recovery re-mines the classes
    // from replicas or lineage. The epoch stamp is defense in depth: even
    // a put that somehow slipped through after the majority moved on
    // would be fenced off by its stale epoch.
    std::vector<std::pair<std::size_t, mc::Blob>> pending_images;
    std::vector<std::pair<std::size_t, mc::Blob>> pending_results;
    auto flush_pending = [&] {
      if (!self.quorum_member()) return false;
      for (auto& [c, sealed] : pending_images) {
        store.put_tidlists(c, std::move(sealed), self.commit_epoch());
      }
      pending_images.clear();
      for (auto& [c, sealed] : pending_results) {
        store.put_result(c, std::move(sealed), self.commit_epoch());
      }
      pending_results.clear();
      return true;
    };
    auto commit_image = [&](std::size_t c, mc::Blob sealed) {
      pending_images.emplace_back(c, std::move(sealed));
      flush_pending();
    };
    auto commit_result = [&](std::size_t c, mc::Blob sealed) {
      pending_results.emplace_back(c, std::move(sealed));
      flush_pending();
    };

    // Survivor-driven re-replication: fold a new failure snapshot into
    // the tracker; every survivor computes the identical transfer list
    // and charges only its own legs (the source re-reads the image from
    // its disk and sends it; the target writes its new copy).
    // One repair batch streams its legs: the images a source re-reads sit
    // in class order on its local disk (the transformation phase wrote
    // them that way), and a target appends its new copies to the same
    // log, so each side pays one seek per batch and then transfers at
    // the sequential rate.
    auto repair_replicas = [&](const std::vector<bool>& failed_now) {
      bool first_read = true;
      bool first_write = true;
      for (const parallel::ReplicaTransfer& transfer :
           replicas.on_failures(failed_now)) {
        const std::optional<mc::Blob> image = store.tidlists(transfer.class_id);
        if (!image) continue;  // never published (dead minority owner)
        if (transfer.source == me) {
          if (first_read) {
            self.disk_read(image->size(), 1);
            first_read = false;
          } else {
            self.disk_read_stream(image->size(), 1);
          }
          self.advance(self.cost().message_time(image->size()));
          self.mark("replica-send", transfer.class_id);
        }
        if (transfer.target == me) {
          if (first_write) {
            self.disk_write(image->size());
            first_write = false;
          } else {
            self.disk_write_stream(image->size());
          }
          self.mark("replica-recv", transfer.class_id);
        }
      }
    };

    // Publish the committed round's images. No fault probe sits between
    // the commit barrier and this loop, so in-quorum publishes are
    // immediately visible to speculators and recovery; queued ones are
    // covered by re-replication's `continue` above plus lineage.
    for (auto& [c, sealed] : staged_images) {
      commit_image(c, std::move(sealed));
    }
    self.phase_end("transformation");
    transform_end[me] = self.now();

    // ----- Phase 3: asynchronous (third scan; zero communication in the
    // fault-free case). -----
    // Each class is checkpointed as it finishes: a crash loses at most the
    // class being mined, never a completed one (checkpoints are whole-class
    // and written only after the class's mining returns). The vertical read
    // happens per class rather than as one bulk scan, so a class migrated
    // away also takes its (possibly stalled) disk access with it; seek
    // amortization below keeps the fault-free cost equal to the bulk scan.
    self.phase_begin("asynchronous");
    const bool speculate = config.lease.speculate;
    std::vector<std::size_t> my_classes;
    std::vector<std::size_t> class_bytes(plan.classes.size(), 0);
    for (std::size_t c = 0; c < plan.classes.size(); ++c) {
      if (plan.classes[c].size() < 2 || class_owner[c] != me) continue;
      my_classes.push_back(c);
      for (PairKey key : plan.classes[c].pair_keys()) {
        class_bytes[c] +=
            sizeof(PairKey) + my_lists.at(key).size() * sizeof(Tid);
      }
    }
    // Acquire a progress lease on every owned class up front, at the
    // commit-barrier timestamp (identical on all survivors): a processor
    // that stalls on its very first read is then already detectable.
    if (speculate) {
      for (const std::size_t c : my_classes) self.lease_acquire(c);
      if (my_classes.empty()) self.lease_touch();
    }

    std::vector<FrequentItemset> found;
    std::vector<std::size_t> histogram;
    // Strictly per-processor scratch (the arena is not thread-safe);
    // reused across this processor's classes and the recovery re-mines.
    TidArena arena;

    // Mine class `c` from wherever its data still lives: the replicated
    // image while at least one holder survives (and the image actually
    // reached the store), else lineage — rebuild the class's global
    // tid-lists from the on-disk horizontal partitions (every partition
    // file outlives its processor on the host's disk) and re-mine. Both
    // paths are deterministic functions of the class, so their
    // checkpoints are byte-identical to the owner's.
    auto mine_class_anywhere = [&](std::size_t c) {
      if (replicas.available(c)) {
        if (const std::optional<mc::Blob> image = store.tidlists(c)) {
          return mine_class_image(self, *image, config, arena);
        }
      }
      lineage_rebuilds.fetch_add(1, std::memory_order_relaxed);
      self.mark("class-lineage", c);
      const EquivalenceClass& eq_class = plan.classes[c];
      std::vector<std::span<const Transaction>> partitions(total);
      for (std::size_t q = 0; q < total; ++q) {
        partitions[q] = local_partition(db, topology, q);
        self.disk_read(partition_bytes(partitions[q]), 1);
      }
      std::vector<FrequentItemset> class_found;
      self.compute([&] {
        const std::vector<Atom> atoms =
            rebuild_class_atoms(eq_class, partitions);
        std::vector<std::size_t> lineage_histogram;
        compute_frequent(atoms, config.minsup, config.kernel, arena,
                         class_found, lineage_histogram);
      });
      return class_found;
    };
    // The owner's classes are laid out contiguously on its local disk (the
    // transformation phase wrote them in class order), so the sequential
    // pass pays one seek and then streams; a seek is re-paid only after a
    // gap — a class skipped because a backup already committed it.
    // Speculative and recovery image reads (mine_class_image) always seek.
    bool need_seek = true;
    for (const std::size_t c : my_classes) {
      const EquivalenceClass& eq_class = plan.classes[c];
      if (speculate) {
        // Dynamic migration: a backup committed this class while we were
        // behind — drop it, together with its pending disk read. Claims
        // alone do not release us (the claimant might die; an owner that
        // is alive must cover its class unless a commit exists).
        const mc::LeaseView view = self.lease_view(config.lease);
        if (view.is_committed(c)) {
          self.lease_release(c);
          self.mark("class-migrated", c);
          need_seek = true;
          continue;
        }
      }
      if (need_seek) {
        self.disk_read(class_bytes[c]);
        need_seek = false;
      } else {
        self.disk_read_stream(class_bytes[c]);
      }
      std::vector<FrequentItemset> class_found;
      self.compute([&] {
        const std::vector<Atom> atoms = take_class_atoms(eq_class, my_lists);
        compute_frequent(atoms, config.minsup, config.kernel, arena,
                         class_found, histogram);
      });
      mc::Blob sealed = wire::seal_frame(checkpoint_bytes(class_found));
      self.disk_write(sealed.size());
      commit_result(c, std::move(sealed));
      // A minority-partitioned owner keeps its commit private: the board
      // must not advertise a checkpoint whose store put is still queued
      // (a backup trusting it would skip a class recovery must re-mine).
      if (speculate && self.quorum_member()) self.lease_commit(c);
      self.fault_point("class-checkpointed");
      found.insert(found.end(),
                   std::make_move_iterator(class_found.begin()),
                   std::make_move_iterator(class_found.end()));
    }

    // Speculative re-execution: done with our own classes, watch the
    // board and back up suspected peers. Expired leases are taken
    // heaviest-first (same greedy weight order as the schedule); a prior
    // claim by a live processor defers to that processor. When nothing is
    // actionable we idle forward toward the earliest possible expiry —
    // in bounded steps, so a lease that gets released before it would
    // have expired costs an idler at most a quarter horizon of overshoot,
    // not the full wait — plus a seeded jitter that de-synchronizes
    // concurrent idlers, and look again; once no lease can ever expire,
    // the phase is over. All of this is driven purely by virtual time —
    // see mc/lease.hpp — so repeated runs of one (plan, seed) replay
    // identically.
    if (speculate) {
      const double horizon = config.lease.suspicion_after();
      Rng jitter(config.lease.seed ^
                 (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(me + 1)));
      while (true) {
        const mc::LeaseView view = self.lease_view(config.lease);
        std::size_t pick = plan.classes.size();
        std::size_t best_weight = 0;
        for (const mc::LeaseView::ExpiredLease& lease : view.expired) {
          if (view.is_committed(lease.task) || view.is_claimed(lease.task)) {
            continue;
          }
          if (class_owner[lease.task] == me) continue;  // cannot back
                                                        // ourselves up
          const std::size_t weight = plan.classes[lease.task].weight();
          if (pick == plan.classes.size() || weight > best_weight) {
            pick = lease.task;
            best_weight = weight;
          }
        }
        if (pick != plan.classes.size()) {
          self.lease_claim(pick);
          std::vector<FrequentItemset> class_found = mine_class_anywhere(pick);
          mc::Blob sealed = wire::seal_frame(checkpoint_bytes(class_found));
          self.disk_write(sealed.size());
          commit_result(pick, std::move(sealed));
          if (self.quorum_member()) self.lease_commit(pick);
          self.mark("class-speculated", pick);
          found.insert(found.end(),
                       std::make_move_iterator(class_found.begin()),
                       std::make_move_iterator(class_found.end()));
          continue;
        }
        if (view.next_expiry == std::numeric_limits<double>::infinity()) {
          break;  // no outstanding lease can expire anymore
        }
        const double step =
            std::min(view.next_expiry - self.now(), 0.25 * horizon) +
            jitter.uniform(0.0, 0.05 * horizon);
        self.advance(std::max(step, 0.0));
        self.lease_touch();
        flush_pending();  // heal point: idling forward may exit a window
      }
    }
    // From here on this processor publishes no further lease activity:
    // peers still observing must not wait on us once we block in the
    // reduction collectives.
    self.lease_done();
    // Last flush before the store goes write-quiescent: a processor that
    // healed during the asynchronous phase lands its queued commits here;
    // one still in the minority keeps them queued and will abort at the
    // gather below (the store must see no writes after the gather, so
    // the reads during recovery are globally consistent).
    flush_pending();
    self.phase_end("asynchronous");
    async_end[me] = self.now();

    // ----- Phase 4: final reduction (same scheme as initialization). ---
    self.phase_begin("reduction");
    wire::Writer writer;
    self.compute([&] {
      writer.put<std::uint64_t>(found.size());
      for (const FrequentItemset& f : found) {
        writer.put_vector(f.items);
        writer.put<Count>(f.support);
      }
    });
    // The gather models the reduction's cost (speculation means a class's
    // itemsets may be carried by both its owner and a backup — the wire
    // really pays for both copies); the authoritative per-class results
    // are assembled from the store below, deduplicated by class id.
    self.all_gather(wire::seal_frame(writer.take()));
    const std::vector<bool> gather_failed = self.failed_snapshot();
    // Fence off any processor whose view predates this fold, then repair
    // under-replicated images (survivors of the gather agree on the
    // snapshot, so they schedule identical transfers).
    store.raise_fence(self.commit_epoch());
    repair_replicas(gather_failed);
    self.phase_end("reduction");
    reduction_end[me] = self.now();

    // ----- Recovery: processors that died after the exchange committed
    // can leave owned classes without a result checkpoint (speculative
    // backups may already have covered some or all of them). The
    // unfinished ones are re-mined by survivors from the replicated
    // tid-list images (greedy reassignment by the same C(s,2) weights)
    // and committed into the store — first writer wins, so overlap with a
    // backup is harmless — with extra survivor gathers carrying the
    // re-mined checkpoints' cost. -----
    std::vector<std::size_t> new_failed;
    for (std::size_t p = 0; p < total; ++p) {
      if (gather_failed[p] && !commit_failed[p]) new_failed.push_back(p);
    }
    // Re-mined checkpoints travel through the gathers (tagged with their
    // class id), NOT through the store: survivors race each other in real
    // time here, and a put_result from a fast re-miner must not change
    // what a slow survivor computes as `unfinished` — the store is
    // write-quiescent from the reduction gather onwards, which is what
    // makes the reads below globally consistent.
    std::vector<std::vector<mc::Blob>> recovery_gathers;
    std::vector<std::vector<bool>> recovery_snapshots;
    std::vector<bool> final_failed = gather_failed;
    if (!new_failed.empty()) {
      std::vector<std::size_t> unfinished;
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        if (plan.classes[c].size() < 2) continue;
        const std::size_t owner = class_owner[c];
        if (gather_failed[owner] && !commit_failed[owner] &&
            !store.has_result(c)) {
          unfinished.push_back(c);
        }
      }
      if (!unfinished.empty()) {
        recovery_ran.store(true, std::memory_order_relaxed);
        self.phase_begin("recovery");
        while (!unfinished.empty()) {
          const std::vector<std::size_t> alive = survivors_of(final_failed);
          std::vector<std::size_t> weights(unfinished.size());
          for (std::size_t i = 0; i < unfinished.size(); ++i) {
            weights[i] = plan.classes[unfinished[i]].weight();
          }
          const std::vector<std::size_t> placement =
              schedule_greedy_by_weight(weights, alive.size());

          wire::Writer recovered;
          for (std::size_t i = 0; i < unfinished.size(); ++i) {
            const std::size_t c = unfinished[i];
            if (alive[placement[i]] != me) continue;
            std::vector<FrequentItemset> class_found = mine_class_anywhere(c);
            recovered.put<std::uint64_t>(c);
            recovered.put_vector(checkpoint_bytes(class_found));
            self.mark("class-recovered", c);
          }
          recovery_gathers.push_back(
              self.all_gather(wire::seal_frame(recovered.take())));
          recovery_snapshots.push_back(self.failed_snapshot());
          const std::vector<bool>& after = recovery_snapshots.back();
          // A re-miner that died mid-round is a fresh failure: fence it
          // off and restore the replication factor before going around.
          store.raise_fence(self.commit_epoch());
          repair_replicas(after);

          // Classes whose re-miner survived the gather are recovered; the
          // rest (their miner died mid-recovery) go around again.
          std::vector<std::size_t> remaining;
          for (std::size_t i = 0; i < unfinished.size(); ++i) {
            if (after[alive[placement[i]]]) remaining.push_back(unfinished[i]);
          }
          unfinished = std::move(remaining);
          final_failed = after;
        }
        self.phase_end("recovery");
      }
    }

    replica_copies[me] = replicas.total_replicas();

    // ----- Assembly on the lowest-id survivor. -----
    std::size_t root = total;
    for (std::size_t p = 0; p < total; ++p) {
      if (!final_failed[p]) {
        root = p;
        break;
      }
    }
    if (me == root) {
      MiningResult result;
      result.database_scans = 3;  // two horizontal scans + vertical read
      if (config.include_singletons) {
        append_singletons(result, item_counts, config.minsup);
      }
      append_frequent_pairs(result, plan.frequent_pairs, counter);
      // Re-mined classes from the recovery gathers, keyed by class id.
      std::unordered_map<std::size_t, std::vector<FrequentItemset>>
          recovered_classes;
      for (std::size_t round = 0; round < recovery_gathers.size(); ++round) {
        const std::vector<bool>& round_failed = recovery_snapshots[round];
        for (std::size_t src = 0; src < total; ++src) {
          if (round_failed[src]) continue;
          const wire::FrameResult frame =
              wire::open_frame(recovery_gathers[round][src]);
          if (!frame) {
            throw std::runtime_error("recovery payload corrupt: " +
                                     frame.error);
          }
          wire::Reader reader(frame.payload);
          while (!reader.done()) {
            const auto c = reader.get<std::uint64_t>();
            const auto bytes = reader.get_vector<std::uint8_t>();
            recovered_classes[c] =
                itemsets_from_checkpoint({bytes.data(), bytes.size()});
          }
        }
      }
      // Per-class assembly, deduplicated by class id: every size >= 2
      // class has exactly one authoritative checkpoint — committed to the
      // store by its owner or a speculative backup (first writer wins,
      // duplicates byte-identical), or carried by a recovery gather.
      // Walking class ids makes the result independent of *who* mined
      // what, which is why speculation cannot perturb the output.
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        if (plan.classes[c].size() < 2) continue;
        if (const std::optional<mc::Blob> checkpoint = store.result(c)) {
          const wire::FrameResult frame = wire::open_frame(*checkpoint);
          if (!frame) {
            throw std::runtime_error("result checkpoint corrupt: " +
                                     frame.error);
          }
          for (FrequentItemset& f :
               itemsets_from_checkpoint(frame.payload)) {
            result.itemsets.push_back(std::move(f));
          }
          continue;
        }
        const auto it = recovered_classes.find(c);
        if (it == recovered_classes.end()) {
          throw std::runtime_error("assembly: class " + std::to_string(c) +
                                   " has no checkpoint and was never "
                                   "recovered");
        }
        for (FrequentItemset& f : it->second) {
          result.itemsets.push_back(std::move(f));
        }
      }
      finalize_result(result);
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  const double t_init = *std::max_element(init_end.begin(), init_end.end());
  const double t_transform =
      *std::max_element(transform_end.begin(), transform_end.end());
  const double t_async =
      *std::max_element(async_end.begin(), async_end.end());
  const double t_reduction =
      *std::max_element(reduction_end.begin(), reduction_end.end());
  output.total_seconds = cluster.makespan();
  output.phase_seconds["initialization"] = t_init;
  output.phase_seconds["transformation"] = t_transform - t_init;
  output.phase_seconds["asynchronous"] = t_async - t_transform;
  if (recovery_ran.load(std::memory_order_relaxed)) {
    output.phase_seconds["reduction"] = t_reduction - t_async;
    output.phase_seconds["recovery"] = output.total_seconds - t_reduction;
  } else {
    output.phase_seconds["reduction"] = output.total_seconds - t_async;
  }
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  output.image_bytes = store.tidlist_bytes();
  output.replica_copies =
      *std::max_element(replica_copies.begin(), replica_copies.end());
  output.fenced_rejections = store.fenced_rejections();
  output.lineage_rebuilds = lineage_rebuilds.load(std::memory_order_relaxed);
  return output;
}

}  // namespace eclat::par
