// Replicated recovery state for crash-tolerant Parallel Eclat.
//
// On the real machine this state needs no extra machinery: Memory Channel
// receive regions are *replicated* (a multicast write lands in each mapped
// copy), and the exchanged tid-lists land on the owner's local disk. A
// surviving node therefore already holds, or can re-read, everything a
// failed peer was working on. The simulation models that with one shared
// RecoveryStore per run:
//
//   - tid-list images: the per-class atom payloads produced by the
//     transformation phase's exchange, keyed by equivalence-class id;
//   - result checkpoints: the frequent itemsets of each equivalence class,
//     written as the class finishes mining.
//
// Entries are whole-class and immutable once written (a checkpoint happens
// strictly after its class's mining completes), so a crash can never leave
// a torn entry: a class is either fully checkpointed or re-mined from its
// tid-list image. Blobs are stored sealed (wire::seal_frame), so a reader
// validates the CRC before trusting recovered bytes.
//
// Commits are idempotent first-writer-wins: a duplicate put keeps the
// original bytes. Duplicates are legitimate — a hung-then-resumed owner
// racing its speculative backup, or two recovery rounds covering the same
// class — but because mining a class from the same tid-list image is
// deterministic, a duplicate must be byte-identical to the first write;
// a debug contract enforces that, so a torn or divergent re-mine can
// never hide behind the idempotence.
//
// Epoch fencing (partition tolerance): every put carries the writer's
// commit epoch (Processor::commit_epoch — the failed count of its latest
// collective snapshot). Survivors raise the store's fence to the newest
// epoch they observe; a put stamped with an older epoch is *rejected*,
// not committed. That is what stops a healed minority processor from
// retroactively writing state it computed before it was cut off: by the
// time it could write, the majority has advanced the fence past it.
//
// Bounded replication: with full replication every node holds every class
// image. The ReplicaTracker below models a replication factor R instead —
// rendezvous placement of each class image on R nodes, plus deterministic
// survivor-driven re-replication after failures. Whether a class's image
// is still *available* (>= 1 live holder) is a pure function of the
// (class set, R, failure history) every survivor evaluates identically;
// when all R holders are lost, callers fall back to lineage recomputation
// from the on-disk partition files.
//
// The store itself is cost-free; callers charge the simulated disk writes
// and region traffic through the Processor they run on.
#pragma once
// eclat-lint: allow-file(det-thread) the replicated store is shared by every processor thread; puts are idempotent first-writer-wins commits
// eclat-lint: allow-file(det-unordered-iter) checkpointed_classes sorts ids before returning; no emission depends on hash order

#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mc/cluster.hpp"

namespace eclat::parallel {

class RecoveryStore {
 public:
  /// Record the sealed tid-list image of an equivalence class (called by
  /// the class's owner after the exchange round commits). First writer
  /// wins; returns true when this call created the entry, false when it
  /// was a duplicate or was rejected by the epoch fence.
  bool put_tidlists(std::size_t class_id, mc::Blob sealed,
                    std::size_t epoch = 0);

  /// Sealed tid-list image of a class, if any survivor retained one.
  std::optional<mc::Blob> tidlists(std::size_t class_id) const;

  /// Record the sealed result checkpoint of a fully-mined class. First
  /// writer wins; returns true when this call created the entry, false on
  /// a duplicate or an epoch-fenced rejection.
  bool put_result(std::size_t class_id, mc::Blob sealed,
                  std::size_t epoch = 0);

  std::optional<mc::Blob> result(std::size_t class_id) const;

  /// True when the class's result checkpoint exists.
  bool has_result(std::size_t class_id) const;

  /// Ids of all checkpointed classes, ascending.
  std::vector<std::size_t> checkpointed_classes() const;

  std::size_t tidlist_count() const;

  /// Total bytes of stored tid-list images (one logical copy each; the
  /// replicated footprint is this times the live holder count — see
  /// ReplicaTracker).
  std::size_t tidlist_bytes() const;

  /// Raise the fence to `epoch` (monotone). Every survivor calls this
  /// with its commit epoch after observing a new failure snapshot; puts
  /// stamped with an older epoch are rejected from then on.
  void raise_fence(std::size_t epoch);

  std::size_t fence() const;

  /// Puts rejected because their epoch was behind the fence.
  std::size_t fenced_rejections() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, mc::Blob> tidlists_;
  std::unordered_map<std::size_t, mc::Blob> results_;
  std::size_t fence_ = 0;
  std::size_t fenced_rejections_ = 0;
};

/// One re-replication transfer the tracker scheduled after a failure:
/// `source` (a surviving holder) streams class `class_id`'s image to
/// `target` (the new holder). Every survivor computes the identical
/// transfer list; each charges only the legs it participates in.
struct ReplicaTransfer {
  std::size_t class_id = 0;
  std::size_t source = 0;
  std::size_t target = 0;

  friend bool operator==(const ReplicaTransfer&,
                         const ReplicaTransfer&) = default;
};

/// Deterministic bounded-replication bookkeeping, one instance per
/// processor (never shared — determinism comes from every survivor
/// folding the identical failure snapshots in the identical order, not
/// from shared state).
///
/// Placement is highest-random-weight (rendezvous) hashing: every node
/// gets a pseudo-random weight per class, and the R highest-weighted
/// nodes hold the class's image. Rendezvous placement keeps the holder
/// sets of different classes spread over the cluster and — unlike
/// modulo placement — moves no unrelated replicas when membership
/// changes: a failure only refills the holder sets the dead node was in,
/// always with the next node in that class's fixed weight ranking.
class ReplicaTracker {
 public:
  /// `replication` = R; 0 means full replication (every node holds every
  /// image — the legacy multicast behaviour). `initial_failed` is the
  /// failure snapshot at the exchange commit: nodes already dead when the
  /// images were written never became holders.
  ReplicaTracker(std::size_t nodes, std::size_t replication,
                 std::size_t classes, const std::vector<bool>& initial_failed);

  /// Fixed per-class ranking of all nodes by descending rendezvous
  /// weight. The first R live entries are the class's holders.
  static std::vector<std::size_t> rendezvous_rank(std::size_t class_id,
                                                  std::size_t nodes);

  /// Fold a new failure snapshot in (must be a superset of every previous
  /// one). Drops dead holders and schedules re-replication: each
  /// under-replicated class that still has >= 1 live holder is refilled
  /// from its ranking, pairing the first surviving holder as source with
  /// each new target. Returns the transfers of *this* fold, ordered by
  /// (class, target); idempotent for a repeated snapshot.
  std::vector<ReplicaTransfer> on_failures(const std::vector<bool>& failed);

  /// True while at least one holder of the class's image is alive. When
  /// false the image is lost for good: recover the class by lineage
  /// (recompute from the on-disk horizontal partitions) instead.
  bool available(std::size_t class_id) const;

  /// Current live holders of the class, in ranking order.
  const std::vector<std::size_t>& holders(std::size_t class_id) const;

  /// Effective replication factor (min(R, nodes); nodes when R = 0).
  std::size_t replication() const { return r_; }

  /// Sum of live holder counts over all classes (the replicated-footprint
  /// multiplier for RecoveryStore::tidlist_bytes, in the uniform-size
  /// approximation; bench_chaos reports the exact per-class sum).
  std::size_t total_replicas() const;

 private:
  std::size_t nodes_;
  std::size_t r_;
  std::vector<bool> failed_;
  std::vector<std::vector<std::size_t>> rank_;     ///< per class, fixed
  std::vector<std::vector<std::size_t>> holders_;  ///< per class, live
};

}  // namespace eclat::parallel
