// Replicated recovery state for crash-tolerant Parallel Eclat.
//
// On the real machine this state needs no extra machinery: Memory Channel
// receive regions are *replicated on every node* (a multicast write lands
// in each mapped copy), and the exchanged tid-lists land on the owner's
// local disk. A surviving node therefore already holds, or can re-read,
// everything a failed peer was working on. The simulation models that with
// one shared RecoveryStore per run:
//
//   - tid-list images: the per-class atom payloads produced by the
//     transformation phase's exchange, keyed by equivalence-class id;
//   - result checkpoints: the frequent itemsets of each equivalence class,
//     written as the class finishes mining.
//
// Entries are whole-class and immutable once written (a checkpoint happens
// strictly after its class's mining completes), so a crash can never leave
// a torn entry: a class is either fully checkpointed or re-mined from its
// tid-list image. Blobs are stored sealed (wire::seal_frame), so a reader
// validates the CRC before trusting recovered bytes.
//
// Commits are idempotent first-writer-wins: a duplicate put keeps the
// original bytes. Duplicates are legitimate — a hung-then-resumed owner
// racing its speculative backup, or two recovery rounds covering the same
// class — but because mining a class from the same tid-list image is
// deterministic, a duplicate must be byte-identical to the first write;
// a debug contract enforces that, so a torn or divergent re-mine can
// never hide behind the idempotence.
//
// The store itself is cost-free; callers charge the simulated disk writes
// and region traffic through the Processor they run on.
#pragma once
// eclat-lint: allow-file(det-thread) the replicated store is shared by every processor thread; puts are idempotent first-writer-wins commits

#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mc/cluster.hpp"

namespace eclat::parallel {

class RecoveryStore {
 public:
  /// Record the sealed tid-list image of an equivalence class (called by
  /// the class's owner after the exchange round commits). First writer
  /// wins; returns true when this call created the entry.
  bool put_tidlists(std::size_t class_id, mc::Blob sealed);

  /// Sealed tid-list image of a class, if any survivor retained one.
  std::optional<mc::Blob> tidlists(std::size_t class_id) const;

  /// Record the sealed result checkpoint of a fully-mined class. First
  /// writer wins; returns true when this call created the entry.
  bool put_result(std::size_t class_id, mc::Blob sealed);

  std::optional<mc::Blob> result(std::size_t class_id) const;

  /// True when the class's result checkpoint exists.
  bool has_result(std::size_t class_id) const;

  /// Ids of all checkpointed classes, ascending.
  std::vector<std::size_t> checkpointed_classes() const;

  std::size_t tidlist_count() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, mc::Blob> tidlists_;
  std::unordered_map<std::size_t, mc::Blob> results_;
};

}  // namespace eclat::parallel
