#include "parallel/recovery.hpp"
// eclat-lint: allow-file(det-thread) the replicated store is shared by every processor thread; puts are idempotent first-writer-wins commits

#include <algorithm>

#include "common/check.hpp"

namespace eclat::parallel {

bool RecoveryStore::put_tidlists(std::size_t class_id, mc::Blob sealed) {
  std::lock_guard lock(mutex_);
  const auto it = tidlists_.find(class_id);
  if (it != tidlists_.end()) {
    // First-writer-wins: re-commits must reproduce the original bytes
    // exactly (the exchange merge is deterministic per class).
    ECLAT_DCHECK(it->second == sealed);
    return false;
  }
  tidlists_.emplace(class_id, std::move(sealed));
  return true;
}

std::optional<mc::Blob> RecoveryStore::tidlists(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  const auto it = tidlists_.find(class_id);
  if (it == tidlists_.end()) return std::nullopt;
  return it->second;
}

bool RecoveryStore::put_result(std::size_t class_id, mc::Blob sealed) {
  std::lock_guard lock(mutex_);
  const auto it = results_.find(class_id);
  if (it != results_.end()) {
    // A late original racing its speculative backup (or two recovery
    // rounds) re-mined the same class from the same image; the recursion
    // is deterministic, so anything but identical bytes is a bug.
    ECLAT_DCHECK(it->second == sealed);
    return false;
  }
  results_.emplace(class_id, std::move(sealed));
  return true;
}

std::optional<mc::Blob> RecoveryStore::result(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  const auto it = results_.find(class_id);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

bool RecoveryStore::has_result(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  return results_.count(class_id) != 0;
}

std::vector<std::size_t> RecoveryStore::checkpointed_classes() const {
  std::vector<std::size_t> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(results_.size());
    for (const auto& [class_id, blob] : results_) ids.push_back(class_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t RecoveryStore::tidlist_count() const {
  std::lock_guard lock(mutex_);
  return tidlists_.size();
}

void RecoveryStore::clear() {
  std::lock_guard lock(mutex_);
  tidlists_.clear();
  results_.clear();
}

}  // namespace eclat::parallel
