#include "parallel/recovery.hpp"
// eclat-lint: allow-file(det-thread) the replicated store is shared by every processor thread; puts are idempotent first-writer-wins commits

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/check.hpp"

namespace eclat::parallel {

bool RecoveryStore::put_tidlists(std::size_t class_id, mc::Blob sealed,
                                 std::size_t epoch) {
  std::lock_guard lock(mutex_);
  if (epoch < fence_) {
    // The writer's snapshot predates a failure the survivors have already
    // folded past: its view of the world is stale, so its commit is void.
    ++fenced_rejections_;
    return false;
  }
  const auto it = tidlists_.find(class_id);
  if (it != tidlists_.end()) {
    // First-writer-wins: re-commits must reproduce the original bytes
    // exactly (the exchange merge is deterministic per class).
    ECLAT_DCHECK(it->second == sealed);
    return false;
  }
  tidlists_.emplace(class_id, std::move(sealed));
  return true;
}

std::optional<mc::Blob> RecoveryStore::tidlists(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  const auto it = tidlists_.find(class_id);
  if (it == tidlists_.end()) return std::nullopt;
  return it->second;
}

bool RecoveryStore::put_result(std::size_t class_id, mc::Blob sealed,
                               std::size_t epoch) {
  std::lock_guard lock(mutex_);
  if (epoch < fence_) {
    ++fenced_rejections_;
    return false;
  }
  const auto it = results_.find(class_id);
  if (it != results_.end()) {
    // A late original racing its speculative backup (or two recovery
    // rounds) re-mined the same class from the same image; the recursion
    // is deterministic, so anything but identical bytes is a bug.
    ECLAT_DCHECK(it->second == sealed);
    return false;
  }
  results_.emplace(class_id, std::move(sealed));
  return true;
}

std::optional<mc::Blob> RecoveryStore::result(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  const auto it = results_.find(class_id);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

bool RecoveryStore::has_result(std::size_t class_id) const {
  std::lock_guard lock(mutex_);
  return results_.count(class_id) != 0;
}

std::vector<std::size_t> RecoveryStore::checkpointed_classes() const {
  std::vector<std::size_t> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(results_.size());
    for (const auto& [class_id, blob] : results_) ids.push_back(class_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t RecoveryStore::tidlist_count() const {
  std::lock_guard lock(mutex_);
  return tidlists_.size();
}

std::size_t RecoveryStore::tidlist_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [class_id, blob] : tidlists_) bytes += blob.size();
  return bytes;
}

void RecoveryStore::raise_fence(std::size_t epoch) {
  std::lock_guard lock(mutex_);
  fence_ = std::max(fence_, epoch);
}

std::size_t RecoveryStore::fence() const {
  std::lock_guard lock(mutex_);
  return fence_;
}

std::size_t RecoveryStore::fenced_rejections() const {
  std::lock_guard lock(mutex_);
  return fenced_rejections_;
}

void RecoveryStore::clear() {
  std::lock_guard lock(mutex_);
  tidlists_.clear();
  results_.clear();
  fence_ = 0;
  fenced_rejections_ = 0;
}

// --- ReplicaTracker ---------------------------------------------------------

namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: the rendezvous weight generator. Fixed
  // constants, no state — the ranking is a pure function of (class, node).
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::size_t> ReplicaTracker::rendezvous_rank(std::size_t class_id,
                                                         std::size_t nodes) {
  std::vector<std::pair<std::uint64_t, std::size_t>> weighted;
  weighted.reserve(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    const std::uint64_t weight =
        mix64(static_cast<std::uint64_t>(class_id) * 0x100000001b3ULL ^
              static_cast<std::uint64_t>(node));
    weighted.emplace_back(weight, node);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // total order even on ties
            });
  std::vector<std::size_t> rank;
  rank.reserve(nodes);
  for (const auto& [weight, node] : weighted) rank.push_back(node);
  return rank;
}

ReplicaTracker::ReplicaTracker(std::size_t nodes, std::size_t replication,
                               std::size_t classes,
                               const std::vector<bool>& initial_failed)
    : nodes_(nodes),
      r_(replication == 0 ? nodes : std::min(replication, nodes)),
      failed_(initial_failed) {
  ECLAT_CHECK(nodes > 0);
  ECLAT_CHECK(initial_failed.size() == nodes);
  rank_.reserve(classes);
  holders_.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    rank_.push_back(rendezvous_rank(c, nodes));
    // Initial holders: the image's multicast write at the exchange commit
    // lands only on replicas that are alive to receive it.
    std::vector<std::size_t> live;
    for (const std::size_t node : rank_.back()) {
      if (live.size() == r_) break;
      if (!failed_[node]) live.push_back(node);
    }
    holders_.push_back(std::move(live));
  }
}

std::vector<ReplicaTransfer> ReplicaTracker::on_failures(
    const std::vector<bool>& failed) {
  ECLAT_CHECK(failed.size() == nodes_);
  std::vector<ReplicaTransfer> transfers;
  for (std::size_t c = 0; c < holders_.size(); ++c) {
    std::vector<std::size_t>& holders = holders_[c];
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [&](std::size_t node) {
                                   return failed[node];
                                 }),
                  holders.end());
    if (holders.empty() || holders.size() >= r_) continue;
    // Under-replicated but alive: refill from the fixed ranking. The
    // first surviving holder streams the image to each new target —
    // every survivor schedules the identical transfers from the
    // identical snapshot, so no coordination is needed.
    const std::size_t source = holders.front();
    for (const std::size_t node : rank_[c]) {
      if (holders.size() == r_) break;
      if (failed[node]) continue;
      if (std::find(holders.begin(), holders.end(), node) != holders.end()) {
        continue;
      }
      holders.push_back(node);
      transfers.push_back(ReplicaTransfer{c, source, node});
    }
  }
  failed_ = failed;
  return transfers;
}

bool ReplicaTracker::available(std::size_t class_id) const {
  return !holders_[class_id].empty();
}

const std::vector<std::size_t>& ReplicaTracker::holders(
    std::size_t class_id) const {
  return holders_[class_id];
}

std::size_t ReplicaTracker::total_replicas() const {
  std::size_t n = 0;
  for (const std::vector<std::size_t>& h : holders_) n += h.size();
  return n;
}

}  // namespace eclat::parallel
