#include "parallel/count_distribution.hpp"

#include <algorithm>
#include <mutex>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "common/check.hpp"
#include "parallel/wire.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

ParallelOutput count_distribution(mc::Cluster& cluster,
                                  const HorizontalDatabase& db,
                                  const CountDistributionConfig& config) {
  ParallelOutput output;
  // eclat-lint: allow(det-thread) cross-thread handoff: proc 0 writes the output exactly once
  std::mutex output_mutex;

  const std::uint64_t mc_bytes_before = cluster.channel().total_bytes();
  const std::uint64_t mc_msgs_before = cluster.channel().total_messages();

  output.run_report = cluster.run([&](mc::Processor& self) {
    const mc::Topology& topology = self.topology();
    const std::span<const Transaction> local =
        local_partition(db, topology, self.id());
    const std::size_t local_bytes = partition_bytes(local);

    MiningResult result;

    // --- L1: scan the local partition, reduce the item counts. ---
    self.disk_read(local_bytes);
    std::vector<Count> item_counts = self.compute(
        [&] { return count_items(local, db.num_items()); });
    self.sum_reduce(item_counts);
    ++result.database_scans;

    std::vector<Itemset> level;
    self.compute([&] {
      for (Item item = 0; item < db.num_items(); ++item) {
        if (item_counts[item] >= config.minsup) {
          result.itemsets.push_back(
              FrequentItemset{{item}, item_counts[item]});
          level.push_back({item});
        }
      }
    });
    result.levels.push_back(LevelStats{
        1, static_cast<std::size_t>(db.num_items()), level.size()});

    // --- L2 via the shared triangular array (CCPD §5.1 optimization):
    // local counts, then one sum-reduction over the triangle. ---
    std::size_t k = 2;
    if (config.triangle_l2 && db.num_items() >= 2 && !level.empty()) {
      TriangleCounter counter(db.num_items());
      self.disk_read(local_bytes);
      self.compute([&] { counter.count(local); });
      self.sum_reduce(counter.raw());
      ++result.database_scans;

      std::size_t candidate_pairs = 0;
      std::vector<Itemset> next_level;
      self.compute([&] {
        for (std::size_t i = 0; i < level.size(); ++i) {
          for (std::size_t j = i + 1; j < level.size(); ++j) {
            ++candidate_pairs;
            const Item a = level[i][0];
            const Item b = level[j][0];
            const Count support = counter.get(a, b);
            if (support >= config.minsup) {
              result.itemsets.push_back(FrequentItemset{{a, b}, support});
              next_level.push_back({a, b});
            }
          }
        }
      });
      result.levels.push_back(
          LevelStats{2, candidate_pairs, next_level.size()});
      level = std::move(next_level);
      k = 3;
    }

    // --- Lk, k >= 3: every processor builds the same candidate tree from
    // the (globally identical) Lk-1, counts its partition, and the counts
    // are sum-reduced. The barrier inside the reduction is the paper's
    // per-iteration synchronization. ---
    const std::vector<std::uint32_t> bucket_map =
        config.balanced_tree
            ? balanced_bucket_map(item_counts, config.tree.fanout)
            : std::vector<std::uint32_t>{};

    while (!level.empty()) {
      std::vector<Itemset> candidates;
      if (!config.computation_balancing) {
        candidates = self.compute([&] {
          return generate_candidates(level, config.prune && k >= 3);
        });
      } else {
        // Computation balancing ([16]): each processor joins and prunes
        // only its strided share of the prefix runs, then the shares are
        // exchanged so everyone ends up with the identical full Ck.
        const std::size_t total = topology.total();
        std::vector<Itemset> mine = self.compute([&] {
          // Runs of equal (k-2)-prefix are the independent join units;
          // stride whole runs across processors.
          std::vector<Itemset> out;
          std::size_t run_begin = 0;
          std::size_t run_index = 0;
          const ItemsetSet frequent(level.begin(), level.end());
          while (run_begin < level.size()) {
            std::size_t run_end = run_begin + 1;
            while (run_end < level.size() &&
                   std::equal(level[run_begin].begin(),
                              level[run_begin].end() - 1,
                              level[run_end].begin())) {
              ++run_end;
            }
            if (run_index % total == self.id()) {
              std::vector<Itemset> run(level.begin() + run_begin,
                                       level.begin() + run_end);
              std::vector<Itemset> joined = join_level(run);
              if (config.prune && k >= 3) {
                joined = prune_candidates(std::move(joined), frequent);
              }
              out.insert(out.end(),
                         std::make_move_iterator(joined.begin()),
                         std::make_move_iterator(joined.end()));
            }
            run_begin = run_end;
            ++run_index;
          }
          return out;
        });
        wire::Writer writer;
        self.compute([&] {
          writer.put<std::uint64_t>(mine.size());
          for (const Itemset& candidate : mine) {
            writer.put_vector(candidate);
          }
        });
        const std::vector<mc::Blob> gathered =
            self.all_gather(writer.take());
        self.compute([&] {
          for (const mc::Blob& blob : gathered) {
            wire::Reader reader(blob);
            const auto count = reader.get<std::uint64_t>();
            for (std::uint64_t i = 0; i < count; ++i) {
              candidates.push_back(reader.get_vector<Item>());
            }
          }
        });
      }
      if (candidates.empty()) break;
      std::sort(candidates.begin(), candidates.end(), lex_less);

      HashTree tree(k, config.tree, bucket_map);
      self.compute([&] {
        for (const Itemset& candidate : candidates) tree.insert(candidate);
      });

      self.disk_read(local_bytes);
      self.compute([&] { tree.count_all(local); });
      ++result.database_scans;

      // Extract partial counts in the (deterministic) candidate order,
      // reduce, and select Lk — identically on every processor.
      std::vector<Count> counts(candidates.size());
      self.compute([&] {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          const Candidate* node = tree.find(candidates[i]);
          ECLAT_CHECK(node != nullptr);  // every inserted candidate resolves
          counts[i] = node->count;
        }
      });
      self.sum_reduce(counts);

      std::vector<Itemset> next_level;
      self.compute([&] {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (counts[i] >= config.minsup) {
            result.itemsets.push_back(
                FrequentItemset{candidates[i], counts[i]});
            next_level.push_back(candidates[i]);
          }
        }
      });
      result.levels.push_back(
          LevelStats{k, candidates.size(), next_level.size()});
      level = std::move(next_level);
      ++k;
    }

    self.barrier();
    if (self.id() == 0) {
      normalize(result);
      // eclat-lint: allow(det-thread) single-writer publish of the run's result
      std::lock_guard lock(output_mutex);
      output.result = std::move(result);
    }
  });

  output.total_seconds = cluster.makespan();
  output.phase_seconds["total"] = output.total_seconds;
  output.mc_bytes = cluster.channel().total_bytes() - mc_bytes_before;
  output.mc_messages = cluster.channel().total_messages() - mc_msgs_before;
  return output;
}

}  // namespace eclat::par
