// Backend-independent core of the Par-Eclat pipeline (paper §5-§6).
//
// Every execution backend — the deterministic mc::Cluster simulator and
// the native shared-memory thread pool (src/exec) — runs the *same*
// logical pipeline: count L1/L2, derive the replicated mining plan
// (frequent pairs → equivalence classes → class schedule), build global
// tid-lists per class, mine each class with Compute_Frequent, and
// assemble the result in deterministic commit order. This header is that
// shared logic, as pure functions of their inputs: no virtual time, no
// threads, no wire formats. What differs per backend is only *how* the
// stages are placed on processors and how the data moves between them.
//
// Determinism contract: every function here is a pure function of its
// arguments. derive_plan in particular assigns class ids by ascending
// prefix item, which is the commit order the final reduction walks —
// results assembled per class id are byte-identical no matter which
// worker mined which class, or in what interleaving (see DESIGN.md §9).
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "eclat/compute_frequent.hpp"
#include "eclat/equivalence.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::par {

/// Class-scheduling heuristic (§5.2.1; round-robin is the ablation
/// baseline).
enum class ScheduleHeuristic : std::uint8_t {
  kGreedyWeight,    ///< greedy over C(s,2) weights (the paper's default)
  kGreedySupport,   ///< greedy over support-aware weights (§5.2.1 idea)
  kRoundRobin,      ///< naive baseline for the scheduling ablation
};

/// Static class placement over `bins` processors (or hosts, for the
/// hybrid algorithms) under the chosen heuristic.
std::vector<std::size_t> make_schedule(
    std::span<const EquivalenceClass> classes, std::size_t bins,
    ScheduleHeuristic heuristic, const TriangleCounter& counter);

/// The replicated mining plan every participant derives independently
/// from the globally reduced L2 counts (paper §5.2.1: "done concurrently
/// on all the processors since all of them have access to the global
/// L2"). Class ids are dense and ordered by ascending prefix item; they
/// are both the scheduling unit and the commit order of the final
/// reduction.
struct MiningPlan {
  std::vector<PairKey> frequent_pairs;
  std::vector<EquivalenceClass> classes;
  /// Static owner of each class (processor for par_eclat and the thread
  /// backend, host for hybrid_eclat).
  std::vector<std::size_t> assignment;
  /// Pairs belonging to classes of size >= 2 — the tid-lists that move in
  /// the vertical exchange. Singleton classes generate no candidates
  /// (§4.1), so their lists never materialize.
  std::vector<PairKey> exchanged_pairs;
  /// Class id owning each exchanged pair.
  std::unordered_map<PairKey, std::size_t> class_of;
};

/// Derive the plan from the reduced global pair counts. Pure: identical
/// counts and parameters yield the identical plan on every caller.
MiningPlan derive_plan(const TriangleCounter& counter, Count minsup,
                       std::size_t bins, ScheduleHeuristic heuristic);

/// Build the atoms of one equivalence class by *moving* the class's
/// global tid-lists out of `lists` (keyed by pair). The atoms come out
/// sorted lexicographically, the order Compute_Frequent requires.
std::vector<Atom> take_class_atoms(
    const EquivalenceClass& eq_class,
    std::unordered_map<PairKey, TidList>& lists);

/// Lineage fallback: rebuild the atoms of one equivalence class straight
/// from the horizontal partitions (given in ascending block order), as if
/// the transformation phase had run for just this class. Because the
/// database is block-partitioned, concatenating per-partition inversions
/// in partition order reproduces the globally sorted tid-lists exactly —
/// the result is byte-for-byte the atoms the exchange would have
/// delivered, which is what keeps recovery output identical when every
/// replica of a class's image has been lost.
std::vector<Atom> rebuild_class_atoms(
    const EquivalenceClass& eq_class,
    std::span<const std::span<const Transaction>> partitions);

// --- Final-reduction assembly. All backends build the result in the same
// deterministic order: frequent 1-itemsets, then frequent pairs, then the
// per-class discoveries walked by ascending class id, then finalize. ---

/// Append the frequent 1-itemsets from the globally reduced item counts.
void append_singletons(MiningResult& result,
                       std::span<const Count> item_counts, Count minsup);

/// Append every frequent pair with its globally counted support.
void append_frequent_pairs(MiningResult& result,
                           std::span<const PairKey> frequent_pairs,
                           const TriangleCounter& counter);

/// Canonical order (normalize) + per-level frequency stats. After this
/// the result is a pure function of the itemset *set*, independent of the
/// order classes were mined or appended in.
void finalize_result(MiningResult& result);

}  // namespace eclat::par
