// Byte-level serialization helpers for payloads exchanged between simulated
// processors (tid-lists, itemsets, counts). Little-endian, fixed-width —
// all simulated processors share one address space, so no byte-swapping.
//
// The Reader treats its blob as untrusted input: every length prefix and
// every read is validated against the remaining bytes (overflow-safely)
// before any memcpy, and a malformed blob raises wire::Error instead of
// reading out of bounds. tests/test_wire_fuzz.cpp drives mutated and
// truncated blobs through it under ASan to keep that promise honest.
#pragma once

#include <cstdint>
#include <cstring>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hpp"
#include "mc/cluster.hpp"

namespace eclat::wire {

/// Raised when a blob is too short or a length prefix is inconsistent with
/// the bytes that follow. Derives from std::runtime_error so pre-existing
/// callers catching that type keep working.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only writer over a growable byte buffer.
class Writer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = blob_.size();
    blob_.resize(offset + sizeof(T));
    // eclat-lint: allow(contract-memcpy) destination was resized to exactly offset + sizeof(T) on the preceding line
    std::memcpy(blob_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(values.size());
    if (values.empty()) return;  // data() may be null; memcpy(_, null, 0) is UB
    const std::size_t offset = blob_.size();
    blob_.resize(offset + values.size() * sizeof(T));
    // eclat-lint: allow(contract-memcpy) destination was resized to exactly offset + count bytes on the preceding line
    std::memcpy(blob_.data() + offset, values.data(),
                values.size() * sizeof(T));
  }

  mc::Blob take() { return std::move(blob_); }

  std::size_t size() const { return blob_.size(); }

 private:
  mc::Blob blob_;
};

/// Sequential reader over a received byte range; throws wire::Error on
/// underrun or on a length prefix that exceeds the remaining payload. Does
/// not own the bytes — the blob (or frame) must outlive the Reader.
class Reader {
 public:
  explicit Reader(const mc::Blob& blob) : blob_(blob.data(), blob.size()) {}
  explicit Reader(std::span<const std::uint8_t> bytes) : blob_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) {
      throw Error("wire payload underrun: need " +
                  std::to_string(sizeof(T)) + " bytes, have " +
                  std::to_string(remaining()));
    }
    T value;
    std::memcpy(&value, blob_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = get<std::uint64_t>();
    // Validate the untrusted count against the bytes actually present
    // before sizing anything: `count * sizeof(T)` may overflow, so compare
    // in the division domain instead.
    if (count > remaining() / sizeof(T)) {
      throw Error("wire vector length " + std::to_string(count) +
                  " exceeds remaining payload of " +
                  std::to_string(remaining()) + " bytes");
    }
    std::vector<T> values(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(values.data(), blob_.data() + cursor_,
                  values.size() * sizeof(T));
    }
    cursor_ += values.size() * sizeof(T);
    return values;
  }

  /// Bytes not yet consumed.
  std::size_t remaining() const { return blob_.size() - cursor_; }

  bool done() const { return cursor_ == blob_.size(); }

 private:
  std::span<const std::uint8_t> blob_;
  std::size_t cursor_ = 0;
};

// --- CRC32-checked framing -------------------------------------------------
//
// Payloads that cross the simulated Memory Channel can be corrupted by the
// fault injector (bit flips, truncation), and retransmission after hub
// degradation or straggler re-execution can deliver the *same* frame more
// than once. A sealed frame carries enough redundancy to detect any
// mutation before a decoder touches the payload, plus a sender-assigned
// sequence number so receivers can suppress duplicate deliveries:
//
//   [magic u32] [seq u32] [payload length u64] [crc u32] [payload bytes]
//
// The CRC covers seq || payload, so a flipped sequence number is caught
// exactly like a flipped payload byte — a duplicate can't be smuggled past
// the ReplayFilter by corrupting its seq field.
//
// open_frame() is non-throwing by design: a CRC mismatch is an expected
// runtime event under fault injection (the receiver recovers via
// Processor::retransmit), not a programming error.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Chaining form: continue a CRC computation across discontiguous spans.
/// `crc32(b)` == `crc32(b2, crc32(b1))` when b = b1 || b2.
std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed);

inline constexpr std::uint32_t kFrameMagic = 0x45434C54;  // "ECLT"
inline constexpr std::size_t kFrameHeaderBytes =
    sizeof(std::uint32_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
    sizeof(std::uint32_t);

/// Wrap a payload in a checksummed frame stamped with `seq`. Senders that
/// may retransmit (exchange redo rounds, speculative re-sends) stamp each
/// logical send attempt so receivers can drop duplicates; 0 is fine for
/// point payloads that are never replayed.
mc::Blob seal_frame(const mc::Blob& payload, std::uint32_t seq = 0);

/// Outcome of open_frame. On success `payload` views into the frame blob
/// (which must outlive it) and `seq` is the sender's sequence number; on
/// failure `error` says what was wrong.
struct FrameResult {
  bool ok = false;
  std::string error;
  std::uint32_t seq = 0;
  std::span<const std::uint8_t> payload;

  explicit operator bool() const { return ok; }
};

/// Validate a sealed frame: magic, declared length vs actual bytes, CRC
/// over seq || payload. Never throws; corrupted input (truncated, flipped,
/// foreign) yields ok == false with a diagnostic.
FrameResult open_frame(const mc::Blob& frame);

/// Per-receiver duplicate-delivery suppression. accept(src, seq) returns
/// true the first time a (sender, sequence) pair is seen and false on
/// every replay — the receiver processes a logical message exactly once
/// no matter how many times retransmission delivers it. Sized for the
/// simulator (a few senders, small bounded seq ranges), so it simply
/// remembers every accepted pair.
class ReplayFilter {
 public:
  bool accept(std::size_t src, std::uint32_t seq) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(seq);
    return seen_.insert(key).second;
  }

  /// Pairs accepted so far.
  std::size_t size() const { return seen_.size(); }

 private:
  std::set<std::uint64_t> seen_;  // ordered: no hash-order iteration anywhere
};

}  // namespace eclat::wire
