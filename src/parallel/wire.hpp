// Byte-level serialization helpers for payloads exchanged between simulated
// processors (tid-lists, itemsets, counts). Little-endian, fixed-width —
// all simulated processors share one address space, so no byte-swapping.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "mc/cluster.hpp"

namespace eclat::wire {

/// Append-only writer over a growable byte buffer.
class Writer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = blob_.size();
    blob_.resize(offset + sizeof(T));
    std::memcpy(blob_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(values.size());
    const std::size_t offset = blob_.size();
    blob_.resize(offset + values.size() * sizeof(T));
    std::memcpy(blob_.data() + offset, values.data(),
                values.size() * sizeof(T));
  }

  mc::Blob take() { return std::move(blob_); }

  std::size_t size() const { return blob_.size(); }

 private:
  mc::Blob blob_;
};

/// Sequential reader over a received blob; throws on underrun.
class Reader {
 public:
  explicit Reader(const mc::Blob& blob) : blob_(blob) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, blob_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = get<std::uint64_t>();
    require(count * sizeof(T));
    std::vector<T> values(count);
    std::memcpy(values.data(), blob_.data() + cursor_, count * sizeof(T));
    cursor_ += count * sizeof(T);
    return values;
  }

  bool done() const { return cursor_ == blob_.size(); }

 private:
  void require(std::size_t bytes) const {
    if (cursor_ + bytes > blob_.size()) {
      throw std::runtime_error("wire payload underrun");
    }
  }

  const mc::Blob& blob_;
  std::size_t cursor_ = 0;
};

}  // namespace eclat::wire
