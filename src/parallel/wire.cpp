#include "parallel/wire.hpp"

#include <array>

namespace eclat::wire {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;  // undo the seed's final xor-out
  for (const std::uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32(bytes, 0);
}

namespace {

/// CRC over seq || payload: a flipped sequence number fails validation
/// just like a flipped payload byte.
std::uint32_t frame_crc(std::uint32_t seq,
                        std::span<const std::uint8_t> payload) {
  std::uint8_t seq_bytes[sizeof(std::uint32_t)];
  // eclat-lint: allow(contract-memcpy) serializes a live u32 into a fixed 4-byte buffer; no untrusted length involved
  std::memcpy(seq_bytes, &seq, sizeof(seq));
  return crc32(payload, crc32({seq_bytes, sizeof(seq_bytes)}));
}

}  // namespace

mc::Blob seal_frame(const mc::Blob& payload, std::uint32_t seq) {
  Writer writer;
  writer.put<std::uint32_t>(kFrameMagic);
  writer.put<std::uint32_t>(seq);
  writer.put<std::uint64_t>(payload.size());
  writer.put<std::uint32_t>(frame_crc(seq, {payload.data(), payload.size()}));
  mc::Blob frame = writer.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameResult open_frame(const mc::Blob& frame) {
  FrameResult result;
  if (frame.size() < kFrameHeaderBytes) {
    result.error = "frame shorter than header (" +
                   std::to_string(frame.size()) + " bytes)";
    return result;
  }
  Reader reader(frame);
  const auto magic = reader.get<std::uint32_t>();
  const auto seq = reader.get<std::uint32_t>();
  const auto length = reader.get<std::uint64_t>();
  const auto checksum = reader.get<std::uint32_t>();
  if (magic != kFrameMagic) {
    result.error = "bad frame magic";
    return result;
  }
  if (length != frame.size() - kFrameHeaderBytes) {
    result.error = "frame length mismatch: header says " +
                   std::to_string(length) + ", have " +
                   std::to_string(frame.size() - kFrameHeaderBytes);
    return result;
  }
  const std::span<const std::uint8_t> payload{
      frame.data() + kFrameHeaderBytes, static_cast<std::size_t>(length)};
  if (frame_crc(seq, payload) != checksum) {
    result.error = "frame checksum mismatch";
    return result;
  }
  result.ok = true;
  result.seq = seq;
  result.payload = payload;
  return result;
}

}  // namespace eclat::wire
