#include "parallel/parallel_common.hpp"

namespace eclat::par {

std::span<const Transaction> local_partition(const HorizontalDatabase& db,
                                             const mc::Topology& topology,
                                             std::size_t proc) {
  const std::vector<Block> blocks = db.block_partition(topology.total());
  return db.view(blocks[proc]);
}

std::size_t partition_bytes(std::span<const Transaction> transactions) {
  std::size_t bytes = 0;
  for (const Transaction& t : transactions) {
    bytes += sizeof(Tid) + sizeof(std::uint32_t) +
             t.items.size() * sizeof(Item);
  }
  return bytes;
}

}  // namespace eclat::par
