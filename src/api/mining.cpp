#include "api/mining.hpp"

#include <stdexcept>

namespace eclat::api {

namespace {

// Only par_eclat runs on the native thread backend so far; give the
// other parallel algorithms a pointed error instead of silently ignoring
// --backend=threads.
void require_mc_backend(const MineOptions& options, const char* algorithm) {
  if (options.backend == exec::BackendKind::kMc) return;
  throw std::invalid_argument(
      std::string("algorithm '") + algorithm +
      "' only runs on the mc backend; use --backend=mc (the default) or "
      "switch to --algorithm=pareclat for --backend=threads");
}

}  // namespace

par::ParallelOutput mine_with_stats(const HorizontalDatabase& db,
                                    const MineOptions& options) {
  const Count minsup = absolute_support(options.min_support, db.size());
  switch (options.algorithm) {
    case Algorithm::kEclat: {
      par::ParallelOutput output;
      EclatConfig config;
      config.minsup = minsup;
      config.kernel = options.kernel;
      output.result = eclat_sequential(db, config);
      return output;
    }
    case Algorithm::kEclatDiffsets: {
      par::ParallelOutput output;
      EclatConfig config;
      config.minsup = minsup;
      config.kernel = options.kernel;
      config.use_diffsets = true;
      output.result = eclat_sequential(db, config);
      return output;
    }
    case Algorithm::kApriori: {
      par::ParallelOutput output;
      AprioriConfig config;
      config.minsup = minsup;
      output.result = apriori(db, config);
      return output;
    }
    case Algorithm::kDhp: {
      par::ParallelOutput output;
      DhpConfig config;
      config.minsup = minsup;
      output.result = dhp(db, config);
      return output;
    }
    case Algorithm::kPartition: {
      par::ParallelOutput output;
      PartitionConfig config;
      config.minsup = minsup;
      output.result = partition_mine(db, config);
      return output;
    }
    case Algorithm::kParEclat: {
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.kernel = options.kernel;
      config.replication = options.replication;
      exec::ThreadBackendOptions thread_options;
      thread_options.threads = options.exec_threads;
      thread_options.scheduler = options.exec_scheduler;
      thread_options.max_retries = options.exec_max_retries;
      thread_options.mem_budget = options.exec_mem_budget;
      thread_options.faults = options.exec_faults;
      const std::unique_ptr<exec::Backend> backend = exec::make_backend(
          options.backend, options.topology, options.cost, thread_options);
      return backend->mine(db, config);
    }
    case Algorithm::kHybridEclat: {
      require_mc_backend(options, "hybrid");
      mc::Cluster cluster(options.topology, options.cost);
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.kernel = options.kernel;
      return par::hybrid_eclat(cluster, db, config);
    }
    case Algorithm::kCountDistribution: {
      require_mc_backend(options, "cd");
      mc::Cluster cluster(options.topology, options.cost);
      par::CountDistributionConfig config;
      config.minsup = minsup;
      return par::count_distribution(cluster, db, config);
    }
  }
  throw std::invalid_argument("unknown algorithm");
}

MiningResult mine(const HorizontalDatabase& db, const MineOptions& options) {
  return mine_with_stats(db, options).result;
}

std::vector<AssociationRule> mine_rules(const HorizontalDatabase& db,
                                        const MineOptions& options,
                                        double min_confidence) {
  const MiningResult result = mine(db, options);
  return generate_rules(result, db.size(), RuleConfig{min_confidence});
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "eclat") return Algorithm::kEclat;
  if (name == "declat" || name == "diffsets") return Algorithm::kEclatDiffsets;
  if (name == "apriori") return Algorithm::kApriori;
  if (name == "dhp") return Algorithm::kDhp;
  if (name == "partition") return Algorithm::kPartition;
  if (name == "pareclat" || name == "par-eclat") return Algorithm::kParEclat;
  if (name == "hybrid" || name == "hybrid-eclat") {
    return Algorithm::kHybridEclat;
  }
  if (name == "cd" || name == "count-distribution") {
    return Algorithm::kCountDistribution;
  }
  throw std::invalid_argument("unknown algorithm name: " + name);
}

}  // namespace eclat::api
