// Public facade of the library: one include for the common "mine this
// database" workflows. Power users can target the per-module headers
// directly (eclat/, apriori/, parallel/, rules/).
#pragma once

#include <string>

#include "apriori/apriori.hpp"
#include "apriori/dhp.hpp"
#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "eclat/eclat_seq.hpp"
#include "exec/backend.hpp"
#include "mc/cluster.hpp"
#include "parallel/count_distribution.hpp"
#include "parallel/hybrid.hpp"
#include "parallel/par_eclat.hpp"
#include "partition/partition.hpp"
#include "rules/rules.hpp"

namespace eclat::api {

enum class Algorithm : std::uint8_t {
  kEclat,                  ///< sequential Eclat (the default)
  kEclatDiffsets,          ///< sequential Eclat with dEclat diffsets
  kApriori,                ///< sequential Apriori
  kDhp,                    ///< Apriori + DHP hash filtering
  kPartition,              ///< two-scan Partition algorithm
  kParEclat,               ///< parallel Eclat on a simulated cluster
  kHybridEclat,            ///< host-aware parallel Eclat (paper §8.1)
  kCountDistribution,      ///< parallel Apriori baseline
};

struct MineOptions {
  Algorithm algorithm = Algorithm::kEclat;
  /// Relative minimum support (0.001 = the paper's 0.1%).
  double min_support = 0.01;
  /// Intersection kernel for the Eclat-family algorithms (kEclat,
  /// kEclatDiffsets, kParEclat, kHybridEclat); Apriori-family algorithms
  /// ignore it. See kernel_from_name for the flag spellings
  /// ("merge", "short-circuit", "gallop", "bitset", "chunked", "auto").
  IntersectKernel kernel = IntersectKernel::kMergeShortCircuit;
  /// Cluster shape for the parallel algorithms; ignored by sequential ones.
  mc::Topology topology{1, 1};
  mc::CostModel cost;
  /// Execution backend for kParEclat: the deterministic virtual-time
  /// simulator (default) or the native shared-memory thread pool. The
  /// other parallel algorithms are simulator-only for now and reject
  /// kThreads with an actionable error.
  exec::BackendKind backend = exec::BackendKind::kMc;
  /// Worker threads for the threads backend; 0 = hardware concurrency.
  std::size_t exec_threads = 0;
  /// Class scheduler for the threads backend.
  exec::ClassScheduler exec_scheduler = exec::ClassScheduler::kWorkStealing;
  /// Per-class retry budget on the threads backend: a class failing more
  /// than this many attempts quarantines the run (clean typed abort,
  /// exec::ExecClassQuarantined).
  std::uint32_t exec_max_retries = 2;
  /// Per-worker TidArena memory budget in bytes on the threads backend;
  /// 0 = unlimited. Over budget, workers degrade gracefully (demote
  /// representations, then fail and retry the one class) instead of
  /// growing without bound.
  std::size_t exec_mem_budget = 0;
  /// Deterministic fault schedule for the threads backend (tests/chaos;
  /// empty = fault-free production default).
  exec::ExecFaultPlan exec_faults;
  /// Replication factor for the recovery store's class tid-list images
  /// under kParEclat on the mc backend (0 = full replication). Bounds the
  /// replicated footprint; lost images fall back to lineage recomputation.
  std::size_t replication = 0;
};

/// Mine all frequent itemsets of `db`.
MiningResult mine(const HorizontalDatabase& db, const MineOptions& options);

/// Mine and also report virtual-time accounting (parallel algorithms) or
/// just the result with zero timing (sequential).
par::ParallelOutput mine_with_stats(const HorizontalDatabase& db,
                                    const MineOptions& options);

/// End-to-end KDD pipeline: frequent itemsets, then confident rules.
std::vector<AssociationRule> mine_rules(const HorizontalDatabase& db,
                                        const MineOptions& options,
                                        double min_confidence);

/// Parse an algorithm name ("eclat", "declat", "apriori", "dhp",
/// "partition", "pareclat", "hybrid", "cd").
Algorithm parse_algorithm(const std::string& name);

}  // namespace eclat::api
