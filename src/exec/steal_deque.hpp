// Chase–Lev-style work-stealing deque for equivalence-class scheduling
// (Chase & Lev, "Dynamic Circular Work-Stealing Deque", SPAA 2005; memory
// ordering after Lê et al., "Correct and Efficient Work-Stealing for Weak
// Memory Models", PPoPP 2013).
//
// One owner pushes and pops at the bottom (LIFO — the most recently
// queued class is the one whose tid-lists are hottest in cache); any
// number of thieves steal from the top (FIFO — the oldest entry, which
// under the ascending-weight seeding order of the thread backend is the
// heaviest class still queued on the victim).
//
// Deviations from the textbook structure, both deliberate:
//   - The ring buffer has a fixed capacity chosen at construction. Class
//     tasks are all known before mining starts (classes never spawn
//     sibling classes), so the owner pushes at most `capacity` entries
//     and growth is dead code we do not carry.
//   - The fence-based fast path is replaced by seq_cst operations on
//     top/bottom. ThreadSanitizer does not model standalone
//     atomic_thread_fence, so the fence variant reports false races and
//     cannot serve as the tsan canary this deque is meant to be; the
//     seq_cst variant is tsan-exact. Class mining is orders of magnitude
//     heavier than a deque operation, so the extra barrier is noise.
//
// Cells are atomics themselves: a steal may read a cell concurrently with
// the owner overwriting it after winning the CAS race; the CAS decides
// whose read was authoritative, and the atomic cell keeps the racing
// access defined.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace eclat::exec {

class StealDeque {
 public:
  /// Capacity must cover every push the owner will ever issue (the thread
  /// backend sizes it to the number of owned classes).
  explicit StealDeque(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        cells_(mask_ + 1) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: queue a task at the bottom.
  void push(std::size_t task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    // Capacity must cover every push (the ring never grows).
    ECLAT_CHECK(b - t < static_cast<std::int64_t>(mask_ + 1));
    cells_[static_cast<std::size_t>(b) & mask_].store(
        task, std::memory_order_relaxed);
    // Release: a thief that observes the new bottom also observes the
    // cell write above.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: take the most recently pushed task (LIFO).
  std::optional<std::size_t> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::size_t task =
        cells_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
    if (t != b) return task;  // more than one entry: no race possible
    // Last entry: race the thieves for it through the same CAS they use.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_relaxed);
    if (!won) return std::nullopt;  // a thief got there first
    return task;
  }

  /// Thieves: take the oldest queued task (FIFO). May spuriously fail
  /// under contention (another thief or the owner won the race) — callers
  /// loop over victims anyway.
  std::optional<std::size_t> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;  // empty (or owner mid-pop on last)
    const std::size_t task =
        cells_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return std::nullopt;  // lost the race; the read above was stale
    }
    return task;
  }

  /// Approximate size (exact when quiescent; a hint otherwise).
  std::size_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::size_t mask_;
  std::vector<std::atomic<std::size_t>> cells_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace eclat::exec
