// The simulator flavour of the backend seam: wraps a fresh mc::Cluster
// per run around the existing par_eclat pipeline. Keeps every research
// capability of the simulator — virtual-time makespans, fault plans,
// leases, straggler speculation — behind the same Backend interface the
// native thread pool implements.
#pragma once

#include "exec/backend.hpp"
#include "mc/cost_model.hpp"
#include "mc/topology.hpp"

namespace eclat::exec {

class McBackend final : public Backend {
 public:
  McBackend(const mc::Topology& topology, const mc::CostModel& cost)
      : topology_(topology), cost_(cost) {}

  std::string_view name() const override { return "mc"; }
  std::size_t workers() const override { return topology_.total(); }

  /// Runs par_eclat on a fresh Cluster. total_seconds stays the virtual
  /// makespan; wall_seconds additionally records how long the simulation
  /// itself took on the host.
  par::ParallelOutput mine(const HorizontalDatabase& db,
                           const par::ParEclatConfig& config) override;

 private:
  mc::Topology topology_;
  mc::CostModel cost_;
};

}  // namespace eclat::exec
