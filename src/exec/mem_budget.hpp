// Per-worker arena memory budget with graceful degradation.
//
// The budget is checked at MiningGuard checkpoints (class entry and
// every leading-atom boundary), where no scratch reference into the
// arena is outstanding. The degradation ladder, in order:
//
//   1. relieve: dead slots (past each level's `used` cursor) are
//      released outright; live tid-sets are demoted to the chunked
//      representation when the active kernel dispatches mixed
//      representations (kAuto/kChunked) — u16 containers roughly halve
//      a sparse list's bytes and drop a dense bitmap's empty chunks;
//   2. fail the class: still over budget after relief, the checkpoint
//      throws ClassMemoryExceeded — a TaskFailure, so only this class's
//      attempt dies. The worker drops its arena caches (the backend
//      calls TidArena::clear() on this failure) and the class is
//      retried — possibly on another worker — against a fresh arena
//      with demotion active from level 0;
//   3. quarantine: a class that exceeds the budget more than
//      --exec-max-retries times can genuinely not be mined within it,
//      and the run ends in the typed clean abort (ExecClassQuarantined)
//      rather than an OOM kill.
//
// A budget of 0 disables the whole mechanism (no memory_bytes() walks);
// a huge budget meters peak usage without ever tripping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "eclat/tid_arena.hpp"
#include "exec/exec_fault.hpp"

namespace eclat::exec {

/// Raised at a checkpoint when the arena stays over budget after the
/// relief pass. Retryable (a TaskFailure): the class is re-enqueued
/// against a cleared arena.
class ClassMemoryExceeded final : public TaskFailure {
 public:
  ClassMemoryExceeded(std::size_t class_id, std::size_t bytes,
                      std::size_t budget)
      : TaskFailure("exec: class " + std::to_string(class_id) +
                    " arena over memory budget (" + std::to_string(bytes) +
                    " > " + std::to_string(budget) + " bytes)") {}
};

class ArenaBudget {
 public:
  /// `demotable` — the active kernel tolerates representation demotion
  /// (kAuto/kChunked); forced sparse/dense kernels skip straight to
  /// failing the class.
  ArenaBudget(TidArena& arena, std::size_t budget_bytes, bool demotable)
      : arena_(arena), budget_(budget_bytes), demotable_(demotable) {}

  void set_class(std::size_t class_id) { class_id_ = class_id; }

  /// The checkpoint hook: meter, relieve, or fail the class.
  void check() {
    if (budget_ == 0) return;
    std::size_t bytes = arena_.memory_bytes();
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
    if (bytes <= budget_) return;
    demotions_ += arena_.relieve_memory(demotable_);
    bytes = arena_.memory_bytes();
    if (bytes > budget_) {
      throw ClassMemoryExceeded(class_id_, bytes, budget_);
    }
  }

  bool enabled() const { return budget_ != 0; }
  std::uint64_t demotions() const { return demotions_; }
  std::size_t peak_bytes() const { return peak_bytes_; }

 private:
  TidArena& arena_;
  std::size_t budget_;
  bool demotable_;
  std::size_t class_id_ = 0;
  std::uint64_t demotions_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace eclat::exec
