#include "exec/exec_fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"

namespace eclat::exec {

const char* to_string(ExecFaultKind kind) {
  switch (kind) {
    case ExecFaultKind::kNone:
      return "none";
    case ExecFaultKind::kThrow:
      return "throw";
    case ExecFaultKind::kCorrupt:
      return "corrupt";
    case ExecFaultKind::kStall:
      return "stall";
  }
  return "?";
}

ExecFaultEvent ExecFaultPlan::throw_on(std::size_t class_id,
                                       std::uint32_t times) {
  ExecFaultEvent event;
  event.kind = ExecFaultKind::kThrow;
  event.class_id = class_id;
  event.times = times;
  return event;
}

ExecFaultEvent ExecFaultPlan::corrupt_on(std::size_t class_id,
                                         std::uint32_t times) {
  ExecFaultEvent event = throw_on(class_id, times);
  event.kind = ExecFaultKind::kCorrupt;
  return event;
}

ExecFaultEvent ExecFaultPlan::stall_on(std::size_t class_id,
                                       std::uint32_t times) {
  ExecFaultEvent event = throw_on(class_id, times);
  event.kind = ExecFaultKind::kStall;
  return event;
}

ExecFaultEvent ExecFaultPlan::hashed(ExecFaultKind kind, std::uint64_t mod,
                                     std::uint64_t sel,
                                     std::uint32_t times) {
  ExecFaultEvent event;
  event.kind = kind;
  event.class_id = kAnyClass;
  event.mod = mod;
  event.sel = sel;
  event.times = times;
  return event;
}

void validate_exec_plan(const ExecFaultPlan& plan) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const ExecFaultEvent& event = plan.events[i];
    const auto reject = [&](const std::string& why) {
      throw std::invalid_argument("exec fault plan event " +
                                  std::to_string(i) + ": " + why);
    };
    if (event.kind == ExecFaultKind::kNone) {
      reject("kind 'none' injects nothing; use throw, corrupt or stall");
    }
    if (event.times == 0) {
      reject("times must be >= 1 (the first `times` attempts fault)");
    }
    if (event.class_id == kAnyClass) {
      if (event.mod == 0) {
        reject("hash-selected event needs mod >= 1");
      }
      if (event.sel >= event.mod) {
        reject("hash selector sel=" + std::to_string(event.sel) +
               " must be < mod=" + std::to_string(event.mod));
      }
    }
  }
}

std::string exec_plan_to_text(const ExecFaultPlan& plan) {
  std::ostringstream out;
  out << "exec-seed " << plan.seed << "\n";
  for (const ExecFaultEvent& e : plan.events) {
    out << "exec-event kind=" << to_string(e.kind) << " class=";
    if (e.class_id == kAnyClass) {
      out << "any";
    } else {
      out << e.class_id;
    }
    out << " mod=" << e.mod << " sel=" << e.sel << " times=" << e.times
        << "\n";
  }
  return out.str();
}

ExecFaultPlan exec_plan_from_text(const std::string& text) {
  ExecFaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("exec fault plan line " +
                                  std::to_string(line_no) + ": " + why);
    };
    if (head == "exec-seed") {
      if (!(tokens >> plan.seed)) fail("exec-seed needs an unsigned value");
      saw_seed = true;
      continue;
    }
    if (head != "exec-event") {
      fail("expected 'exec-seed' or 'exec-event', got '" + head + "'");
    }
    ExecFaultEvent event;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        fail("expected key=value, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      const auto as_ull = [&](const std::string& digits) -> std::uint64_t {
        try {
          return std::stoull(digits);
        } catch (const std::exception&) {
          fail("bad value '" + value + "' for key '" + key + "'");
        }
        return 0;  // unreachable; fail() threw
      };
      if (key == "kind") {
        bool known = false;
        for (const ExecFaultKind kind :
             {ExecFaultKind::kThrow, ExecFaultKind::kCorrupt,
              ExecFaultKind::kStall}) {
          if (value == to_string(kind)) {
            event.kind = kind;
            known = true;
          }
        }
        if (!known) fail("unknown fault kind '" + value + "'");
      } else if (key == "class") {
        event.class_id = value == "any"
                             ? kAnyClass
                             : static_cast<std::size_t>(as_ull(value));
      } else if (key == "mod") {
        event.mod = as_ull(value);
      } else if (key == "sel") {
        event.sel = as_ull(value);
      } else if (key == "times") {
        event.times = static_cast<std::uint32_t>(as_ull(value));
      } else {
        fail("unknown key '" + key + "'");
      }
    }
    plan.events.push_back(event);
  }
  if (!saw_seed) {
    throw std::invalid_argument("exec fault plan: missing 'exec-seed' line");
  }
  return plan;
}

InjectedTaskThrow::InjectedTaskThrow(std::size_t class_id,
                                     std::uint32_t attempt)
    : TaskFailure("exec fault: injected throw (class " +
                  std::to_string(class_id) + " attempt " +
                  std::to_string(attempt) + ")") {}

ExecClassQuarantined::ExecClassQuarantined(std::size_t class_id,
                                           std::uint32_t attempts,
                                           const std::string& last_error)
    : std::runtime_error("exec: class " + std::to_string(class_id) +
                         " quarantined after " + std::to_string(attempts) +
                         " failed attempts (" + last_error +
                         "); run aborted cleanly"),
      class_id_(class_id),
      attempts_(attempts) {}

ExecFaultInjector::ExecFaultInjector(const ExecFaultPlan& plan)
    : plan_(plan) {
  validate_exec_plan(plan_);
}

bool ExecFaultInjector::matches(const ExecFaultEvent& event,
                                std::size_t event_index,
                                std::size_t class_id) const {
  if (event.class_id != kAnyClass) return event.class_id == class_id;
  // Seeded hash selection: a fresh Rng stream per (class, event), so two
  // hash events in one plan select independent class subsets.
  Rng rng(plan_.seed ^ (0x9E3779B97F4A7C15ULL * (class_id + 1)) ^
          (0xBF58476D1CE4E5B9ULL * (event_index + 1)));
  return rng.below(event.mod) == event.sel;
}

ExecFaultKind ExecFaultInjector::fault_for(std::size_t class_id,
                                           std::uint32_t attempt) const {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const ExecFaultEvent& event = plan_.events[i];
    if (attempt >= event.times) continue;
    if (matches(event, i, class_id)) return event.kind;
  }
  return ExecFaultKind::kNone;
}

void ExecFaultInjector::corrupt_result(
    std::size_t class_id, std::uint32_t attempt, Count minsup,
    std::vector<FrequentItemset>& result) const {
  Rng rng(plan_.seed ^ (0x94D049BB133111EBULL * (class_id + 1)) ^
          (0xD6E8FEB86659FD93ULL * (attempt + 1)));
  // Every mutation mode produces a slot that validate_class_result is
  // guaranteed to reject, so detection (and therefore the retry
  // schedule) is deterministic.
  if (result.empty() || rng.below(3) == 0) {
    // Bogus extra itemset: two identical items can never be a valid
    // (strictly ascending, >= 3 items) mined itemset.
    FrequentItemset& bogus = result.emplace_back();
    bogus.items = {0, 0};
    bogus.support = minsup;
    return;
  }
  FrequentItemset& victim = result[rng.below(result.size())];
  if (minsup > 0 && rng.below(2) == 0) {
    victim.support = minsup - 1;  // below the support floor
  } else {
    std::swap(victim.items[0], victim.items[1]);  // breaks ascending order
  }
}

void validate_class_result(const EquivalenceClass& eq_class, Count minsup,
                           const std::vector<FrequentItemset>& result) {
  // Members arrive sorted from the frequent-pair split, but the contract
  // check must not rely on that: sort a local copy once per validation.
  std::vector<Item> members = eq_class.members;
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < result.size(); ++i) {
    const FrequentItemset& found = result[i];
    const auto reject = [&](const std::string& why) {
      throw ClassResultCorrupt(
          "exec: corrupt class result (class prefix " +
          std::to_string(eq_class.prefix) + ", itemset " +
          std::to_string(i) + ": " + why + ")");
    };
    if (found.items.size() < 3) {
      reject("only " + std::to_string(found.items.size()) +
             " items; class mining emits >= 3");
    }
    if (found.items.front() != eq_class.prefix) {
      reject("first item " + std::to_string(found.items.front()) +
             " is not the class prefix");
    }
    for (std::size_t k = 1; k < found.items.size(); ++k) {
      if (found.items[k] <= found.items[k - 1]) {
        reject("items not strictly ascending at position " +
               std::to_string(k));
      }
      if (!std::binary_search(members.begin(), members.end(),
                              found.items[k])) {
        reject("item " + std::to_string(found.items[k]) +
               " is not a class member");
      }
    }
    if (found.support < minsup) {
      reject("support " + std::to_string(found.support) +
             " below minsup " + std::to_string(minsup));
    }
  }
}

}  // namespace eclat::exec
