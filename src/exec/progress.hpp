// Monotonic-progress board for the thread backend's watchdog.
//
// Every worker owns one lease slot describing the class attempt it is
// executing. A global progress counter is bumped whenever any attempt
// ends (commit, failure, or cancellation) and whenever a lease is
// reclaimed — so "the counter stopped moving while leases are parked"
// is the deterministic signal that every remaining attempt is stalled
// and the watchdog must intervene.
//
// The lease lifecycle is a single atomic state machine:
//
//   kIdle -> begin() -> kRunning -> park() -> kParked
//     ^                    |                    | scan_and_reclaim (CAS)
//     |                    v                    v
//     +------- end() <- (task returns)      kReclaimed -> end() -> kIdle
//
// Only the owner moves kIdle/kRunning/kParked; only a scanner's CAS
// moves kParked -> kReclaimed, and that CAS succeeding is the exclusive
// license to account the stall and re-enqueue the class — exactly once
// per park, on exactly one thread. A lease that is merely slow (honest
// long class) never leaves kRunning, so the watchdog cannot
// false-positive: parking happens only at an injected-stall checkpoint.
// That is what keeps the reclaim schedule — like everything else on
// this backend — a pure function of the fault plan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/cancel.hpp"

namespace eclat::exec {

class ProgressBoard {
 public:
  enum class LeaseState : std::uint8_t {
    kIdle,
    kRunning,
    kParked,
    kReclaimed,
  };

  struct Lease {
    std::atomic<LeaseState> state{LeaseState::kIdle};
    std::atomic<std::size_t> class_id{0};
    std::atomic<std::uint32_t> attempt{0};
    CancelToken token;
  };

  /// Pass this as `self` to scan_and_reclaim to scan every lease,
  /// including the caller's own (the single-worker self-rescue).
  static constexpr std::size_t kScanAll = static_cast<std::size_t>(-1);

  explicit ProgressBoard(std::size_t workers) : leases_(workers) {}

  std::size_t workers() const { return leases_.size(); }

  std::uint64_t progress() const {
    return progress_.load(std::memory_order_acquire);
  }

  CancelToken& token(std::size_t w) { return leases_[w].token; }

  /// Owner side: claim the lease for one class attempt.
  void begin(std::size_t w, std::size_t class_id, std::uint32_t attempt) {
    Lease& lease = leases_[w];
    lease.token.reset();
    lease.class_id.store(class_id, std::memory_order_relaxed);
    lease.attempt.store(attempt, std::memory_order_relaxed);
    lease.state.store(LeaseState::kRunning, std::memory_order_release);
  }

  /// Owner side: the attempt ended (any outcome). Bumps progress.
  void end(std::size_t w) {
    leases_[w].state.store(LeaseState::kIdle, std::memory_order_release);
    progress_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Owner side: expose the lease to the watchdog (injected stall).
  void park(std::size_t w) {
    leases_[w].state.store(LeaseState::kParked, std::memory_order_release);
  }

  /// Watchdog side: reclaim every parked lease except the caller's own
  /// (or all of them with kScanAll). For each lease won by the CAS,
  /// `reclaim(class_id, attempt)` runs *before* the owner's token is
  /// cancelled, so the replacement attempt is accounted and enqueued
  /// before the parked owner can unwind and decrement the outstanding
  /// count. Returns the number of leases reclaimed.
  template <typename Reclaim>
  std::size_t scan_and_reclaim(std::size_t self, Reclaim&& reclaim) {
    std::size_t reclaimed = 0;
    for (std::size_t v = 0; v < leases_.size(); ++v) {
      if (v == self) continue;
      Lease& lease = leases_[v];
      LeaseState expected = LeaseState::kParked;
      if (!lease.state.compare_exchange_strong(expected,
                                               LeaseState::kReclaimed,
                                               std::memory_order_acq_rel)) {
        continue;
      }
      reclaim(lease.class_id.load(std::memory_order_relaxed),
              lease.attempt.load(std::memory_order_relaxed));
      lease.token.cancel();
      progress_.fetch_add(1, std::memory_order_acq_rel);
      ++reclaimed;
    }
    return reclaimed;
  }

 private:
  std::vector<Lease> leases_;
  std::atomic<std::uint64_t> progress_{0};
};

}  // namespace eclat::exec
