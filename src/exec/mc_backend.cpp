#include "exec/mc_backend.hpp"

#include "common/clock.hpp"
#include "mc/cluster.hpp"
#include "parallel/par_eclat.hpp"

namespace eclat::exec {

par::ParallelOutput McBackend::mine(const HorizontalDatabase& db,
                                    const par::ParEclatConfig& config) {
  WallStopwatch wall;
  mc::Cluster cluster(topology_, cost_);
  par::ParallelOutput output = par::par_eclat(cluster, db, config);
  output.backend = "mc";
  output.exec_threads = topology_.total();
  output.wall_seconds = wall.elapsed_seconds();
  return output;
}

}  // namespace eclat::exec
