// Per-class task isolation boundary: every class attempt on the thread
// backend runs inside capture_class_failure, which converts any escape
// into a typed TaskError instead of letting it unwind the worker loop.
// This is the single place where "a class task failed" is decided; the
// eclat-lint robust-catch rule requires every bare `catch (...)` in the
// tree to either rethrow or route through this helper, so failures
// cannot be silently swallowed anywhere else.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "exec/cancel.hpp"

namespace eclat::exec {

enum class TaskOutcome : std::uint8_t {
  kOk,         ///< the attempt produced a (validated) result
  kFailed,     ///< retryable failure — counts against the retry budget
  kCancelled,  ///< watchdog cancelled a parked lease; accounted there
};

struct TaskError {
  TaskOutcome outcome = TaskOutcome::kOk;
  std::string what;  ///< diagnostic of a failed attempt, empty otherwise
};

template <typename Fn>
TaskError capture_class_failure(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    return {};
  } catch (const ClassCancelled&) {
    return {TaskOutcome::kCancelled, {}};
  } catch (const std::exception& e) {
    return {TaskOutcome::kFailed, e.what()};
  }
  // eclat-lint: allow(robust-catch) this IS the fault-capture helper: an unknown exception becomes a typed, retry-accounted TaskError
  catch (...) {
    return {TaskOutcome::kFailed, "unknown exception"};
  }
}

}  // namespace eclat::exec
