// Execution-backend seam: the same Par-Eclat pipeline (L1/L2 counting,
// vertical exchange, asynchronous class mining, deterministic final
// reduction — parallel/pipeline.hpp) runs on two substrates:
//
//   - "mc"      the deterministic virtual-time cluster simulator
//               (mc/cluster.hpp), wrapped as McBackend. Replayable:
//               makespans, faults, stragglers and leases are pure
//               functions of (plan, seed). The research backend.
//   - "threads" a native shared-memory pool (ThreadBackend): one worker
//               per core, per-worker TidArenas, and per-worker
//               Chase–Lev work-stealing deques for dynamic class
//               scheduling. Real wall-clock speed, with a deterministic
//               per-class fault-tolerance layer (exec_fault.hpp): task
//               isolation, bounded retry, quarantine-then-clean-abort,
//               a cooperative stall watchdog and a per-worker arena
//               memory budget. DESIGN.md §11.
//
// Both backends produce byte-identical mined output for the same input
// and config — the commit-order reduction rule (results assembled per
// class id, then normalized) makes the result independent of which
// worker mined which class and in what interleaving. DESIGN.md §9.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "data/horizontal.hpp"
#include "exec/exec_fault.hpp"
#include "parallel/par_eclat.hpp"
#include "parallel/parallel_common.hpp"

namespace eclat::exec {

/// Which execution substrate runs the pipeline.
enum class BackendKind : std::uint8_t {
  kMc,       ///< deterministic virtual-time simulator (the default)
  kThreads,  ///< native shared-memory thread pool
};

/// How the asynchronous phase places equivalence classes on workers
/// (thread backend only; the mc backend always uses the paper's static
/// greedy schedule, which is also what seeds the deques here).
enum class ClassScheduler : std::uint8_t {
  kStatic,        ///< static greedy C(s,2) assignment, no migration
  kWorkStealing,  ///< static seed + Chase–Lev stealing for idle workers
};

const char* to_string(BackendKind kind);
const char* to_string(ClassScheduler scheduler);

/// Parse "mc" | "threads"; throws std::invalid_argument naming the
/// allowed values otherwise.
BackendKind parse_backend(std::string_view name);

/// Parse "static" | "steal"; throws std::invalid_argument naming the
/// allowed values otherwise.
ClassScheduler parse_scheduler(std::string_view name);

/// One execution substrate the Par-Eclat pipeline runs on.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable backend label ("mc" | "threads"); echoed into
  /// ParallelOutput::backend of every run.
  virtual std::string_view name() const = 0;

  /// Resolved worker count (simulated processors or real threads).
  virtual std::size_t workers() const = 0;

  /// Run the full Par-Eclat pipeline. The mined result is byte-identical
  /// across backends, worker counts and schedulers; only the timing
  /// accounting differs.
  virtual par::ParallelOutput mine(const HorizontalDatabase& db,
                                   const par::ParEclatConfig& config) = 0;
};

struct ThreadBackendOptions {
  /// Worker threads; 0 resolves to the hardware concurrency (and the
  /// resolved value is echoed in ParallelOutput::exec_threads).
  std::size_t threads = 0;
  ClassScheduler scheduler = ClassScheduler::kWorkStealing;
  /// Retry budget per class (--exec-max-retries): a class whose attempts
  /// fail more than this many times is quarantined and the run ends in
  /// the typed clean abort (ExecClassQuarantined).
  std::uint32_t max_retries = 2;
  /// Per-worker TidArena memory budget in bytes (--exec-mem-budget);
  /// 0 = unlimited (metering disabled). See mem_budget.hpp for the
  /// degradation ladder.
  std::size_t mem_budget = 0;
  /// Deterministic class-attempt fault schedule (empty = fault-free).
  ExecFaultPlan faults;
  /// Per-class task isolation + watchdog + validation layer. Disabling
  /// it restores the bare direct-call asynchronous phase (the overhead
  /// baseline bench_exec_faults measures against); a non-empty fault
  /// plan then has nothing to hook into and is rejected.
  bool isolation = true;
};

/// Construct a backend. The mc flavour mines on a fresh Cluster of the
/// given topology per run; the threads flavour ignores topology/cost and
/// uses `options`.
std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const mc::Topology& topology,
                                      const mc::CostModel& cost,
                                      const ThreadBackendOptions& options);

/// Resolve a requested thread count: 0 means hardware concurrency,
/// clamped to at least 1.
std::size_t resolve_threads(std::size_t requested);

}  // namespace eclat::exec
