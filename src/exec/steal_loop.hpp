// The bare work-stealing worker loop shared by the thread backend's
// isolation-off asynchronous phase: per-worker Chase–Lev deques seeded
// with a fixed task set, LIFO owner pops, FIFO steals from the victim
// with the most advisory load remaining.
//
// Termination accounting is exception-exact. `tasks_left` counts tasks
// not yet *retired*: the unit is decremented on every exit path of the
// task body, including an escaping exception, and an escape also raises
// `aborted` so peers stop waiting on a count that can no longer drain
// (the thrower's deque may still hold unacquired entries). Without the
// guard a throwing task leaks its unit; without the flag the peers spin
// forever on the leaked count — either way the join never happens. The
// regression for both lives in test_steal_deque.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"

namespace eclat::exec {

/// Run worker `w`'s share of the task set spread over `deques` (one per
/// worker, seeded before any worker starts). `load_of(task)` is the
/// advisory weight used for victim selection; `body(task)` executes the
/// task and may throw — the exception propagates to the caller after the
/// unit is retired and `aborted` is raised.
template <typename LoadOf, typename Body>
void run_stealing_loop(std::size_t w, std::deque<StealDeque>& deques,
                       std::vector<std::atomic<std::int64_t>>& loads,
                       std::atomic<std::size_t>& tasks_left,
                       std::atomic<bool>& aborted, LoadOf&& load_of,
                       Body&& body) {
  const std::size_t W = deques.size();
  const auto acquired = [&](std::size_t task, std::size_t victim) {
    loads[victim].fetch_sub(load_of(task), std::memory_order_relaxed);
    try {
      body(task);
    } catch (...) {
      aborted.store(true, std::memory_order_release);
      tasks_left.fetch_sub(1, std::memory_order_acq_rel);
      throw;
    }
    tasks_left.fetch_sub(1, std::memory_order_acq_rel);
  };
  while (!aborted.load(std::memory_order_acquire)) {
    if (const std::optional<std::size_t> task = deques[w].pop()) {
      acquired(*task, w);
      continue;
    }
    if (tasks_left.load(std::memory_order_acquire) == 0) break;
    // Steal from the victim with the most remaining weight. The load
    // counters are advisory (decremented at acquisition), so a miss just
    // means another spin — correctness only needs tasks_left/aborted.
    std::size_t victim = W;
    std::int64_t best = 0;
    for (std::size_t v = 0; v < W; ++v) {
      if (v == w) continue;
      const std::int64_t load = loads[v].load(std::memory_order_relaxed);
      if (load > best) {
        best = load;
        victim = v;
      }
    }
    if (victim == W) {
      std::this_thread::yield();
      continue;
    }
    if (const std::optional<std::size_t> task = deques[victim].steal()) {
      acquired(*task, victim);
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace eclat::exec
