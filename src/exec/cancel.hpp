// Cooperative cancellation for class-mining tasks on the thread backend.
//
// A CancelToken is owned by the worker's ProgressBoard lease and checked
// at every MiningGuard checkpoint of the mining recursion. Cancellation
// is one-way (cancel() is never undone within a task) and the only
// party that cancels a token is the watchdog reclaiming a *parked*
// lease — so an honest, progressing task never observes a cancel, and a
// replay cancels exactly the attempts the fault plan parked.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace eclat::exec {

class CancelToken {
 public:
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Raised by a task's MiningGuard when its token was cancelled (the
/// watchdog reclaimed the lease and already accounted + re-enqueued the
/// class). Not a TaskFailure: a cancellation is the *watchdog's* retry
/// accounting, so the cancelled owner just unwinds without counting a
/// second failure.
class ClassCancelled final : public std::runtime_error {
 public:
  ClassCancelled(std::size_t class_id, std::uint32_t attempt)
      : std::runtime_error("exec: class " + std::to_string(class_id) +
                           " attempt " + std::to_string(attempt) +
                           " cancelled by the watchdog") {}
};

}  // namespace eclat::exec
