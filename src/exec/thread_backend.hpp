// Native shared-memory execution of the Par-Eclat pipeline: the same
// four phases as the simulator path (parallel/pipeline.hpp), placed on a
// real thread pool instead of simulated processors.
//
//   1. Initialization — each worker counts items and pairs over its block
//      of the same T-way partition the simulator uses
//      (par::local_partition), then the partial counters are sum-merged.
//   2. Transformation — every worker derives the identical MiningPlan
//      from the merged counts (pure function); each worker inverts its
//      block into partial tid-lists; per-class global tid-lists are the
//      partials concatenated in block order, which keeps them globally
//      sorted (paper §6.3) — built in parallel, classes striped over
//      workers.
//   3. Asynchronous — each class is mined exactly once with
//      compute_frequent over a per-worker TidArena. Placement is either
//      the paper's static greedy schedule, or work-stealing: deques are
//      seeded with the static assignment in ascending-weight order, the
//      owner pops LIFO (heaviest first, hottest lists), idle workers
//      steal FIFO from the victim with the most remaining weight.
//   4. Final reduction — results are committed into per-class slots and
//      assembled on the main thread in ascending class id, then
//      normalized; output is therefore byte-identical to the sequential
//      reference and to the mc backend regardless of worker count,
//      scheduler, or interleaving (DESIGN.md §9).
//
// The fault/lease machinery of the simulator does not apply here: a
// ParEclatConfig's lease and retransmit knobs are ignored (threads do
// not crash by plan), and the run report is all-kFinished.
#pragma once

#include "exec/backend.hpp"

namespace eclat::exec {

class ThreadBackend final : public Backend {
 public:
  explicit ThreadBackend(const ThreadBackendOptions& options)
      : threads_(resolve_threads(options.threads)),
        scheduler_(options.scheduler) {}

  std::string_view name() const override { return "threads"; }
  /// Resolved worker count (--exec-threads=0 -> hardware concurrency).
  std::size_t workers() const override { return threads_; }
  ClassScheduler scheduler() const { return scheduler_; }

  /// total_seconds and wall_seconds are both host wall-clock here;
  /// phase_seconds carries the usual four phase labels.
  par::ParallelOutput mine(const HorizontalDatabase& db,
                           const par::ParEclatConfig& config) override;

 private:
  std::size_t threads_;
  ClassScheduler scheduler_;
};

}  // namespace eclat::exec
