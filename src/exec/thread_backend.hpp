// Native shared-memory execution of the Par-Eclat pipeline: the same
// four phases as the simulator path (parallel/pipeline.hpp), placed on a
// real thread pool instead of simulated processors.
//
//   1. Initialization — each worker counts items and pairs over its block
//      of the same T-way partition the simulator uses
//      (par::local_partition), then the partial counters are sum-merged.
//   2. Transformation — every worker derives the identical MiningPlan
//      from the merged counts (pure function); each worker inverts its
//      block into partial tid-lists; per-class global tid-lists are the
//      partials concatenated in block order, which keeps them globally
//      sorted (paper §6.3) — built in parallel, classes striped over
//      workers.
//   3. Asynchronous — each class runs as an isolated task with
//      compute_frequent over a per-worker TidArena. Placement is either
//      the paper's static greedy schedule, or work-stealing: deques are
//      seeded with the static assignment in ascending-weight order, the
//      owner pops LIFO (heaviest first, hottest lists), idle workers
//      steal FIFO from the victim with the most remaining weight.
//      Under isolation (the default) every attempt runs inside
//      capture_class_failure: an exception fails only that class, which
//      is retried with backoff-in-attempts up to --exec-max-retries and
//      quarantined past that; a cooperative MiningGuard checkpoint
//      drives a stall watchdog (injected stalls only — honest long
//      classes never park) and the per-worker arena memory budget;
//      every mined slot is contract-validated and committed
//      first-writer-wins. The fault schedule, retry sequence, and
//      quarantine outcome are pure functions of (plan, seed, class id,
//      attempt index) — DESIGN.md §11.
//   4. Final reduction — results are committed into per-class slots and
//      assembled on the main thread in ascending class id, then
//      normalized; output is therefore byte-identical to the sequential
//      reference and to the mc backend regardless of worker count,
//      scheduler, interleaving, or recovered faults (DESIGN.md §9).
//
// A run either completes with the byte-identical result or throws the
// typed clean abort ExecClassQuarantined after the pool has drained
// (lowest quarantined class id, deterministic). ParEclatConfig's mc
// lease/retransmit knobs are still ignored (those model the simulated
// cluster, not this pool); the run report is all-kFinished on success.
#pragma once

#include "exec/backend.hpp"

namespace eclat::exec {

class ThreadBackend final : public Backend {
 public:
  explicit ThreadBackend(const ThreadBackendOptions& options)
      : threads_(resolve_threads(options.threads)),
        scheduler_(options.scheduler),
        max_retries_(options.max_retries),
        mem_budget_(options.mem_budget),
        faults_(options.faults),
        isolation_(options.isolation) {}

  std::string_view name() const override { return "threads"; }
  /// Resolved worker count (--exec-threads=0 -> hardware concurrency).
  std::size_t workers() const override { return threads_; }
  ClassScheduler scheduler() const { return scheduler_; }

  /// total_seconds and wall_seconds are both host wall-clock here;
  /// phase_seconds carries the usual four phase labels. Throws
  /// ExecClassQuarantined when a class exhausts its retry budget, and
  /// std::invalid_argument for a non-empty fault plan with isolation
  /// disabled (the bare path has no injection hooks).
  par::ParallelOutput mine(const HorizontalDatabase& db,
                           const par::ParEclatConfig& config) override;

 private:
  std::size_t threads_;
  ClassScheduler scheduler_;
  std::uint32_t max_retries_;
  std::size_t mem_budget_;
  ExecFaultPlan faults_;
  bool isolation_;
};

}  // namespace eclat::exec
