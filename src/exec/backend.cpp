#include "exec/backend.hpp"

#include <stdexcept>
#include <string>
#include <thread>

#include "exec/mc_backend.hpp"
#include "exec/thread_backend.hpp"

namespace eclat::exec {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMc:
      return "mc";
    case BackendKind::kThreads:
      return "threads";
  }
  return "?";
}

const char* to_string(ClassScheduler scheduler) {
  switch (scheduler) {
    case ClassScheduler::kStatic:
      return "static";
    case ClassScheduler::kWorkStealing:
      return "steal";
  }
  return "?";
}

BackendKind parse_backend(std::string_view name) {
  if (name == "mc") return BackendKind::kMc;
  if (name == "threads") return BackendKind::kThreads;
  throw std::invalid_argument(
      "unknown backend '" + std::string(name) +
      "' (expected 'mc' for the deterministic virtual-time simulator or "
      "'threads' for the native shared-memory pool)");
}

ClassScheduler parse_scheduler(std::string_view name) {
  if (name == "static") return ClassScheduler::kStatic;
  if (name == "steal") return ClassScheduler::kWorkStealing;
  throw std::invalid_argument(
      "unknown scheduler '" + std::string(name) +
      "' (expected 'static' for the greedy C(s,2) assignment or 'steal' "
      "for work-stealing; thread backend only)");
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const mc::Topology& topology,
                                      const mc::CostModel& cost,
                                      const ThreadBackendOptions& options) {
  switch (kind) {
    case BackendKind::kMc:
      return std::make_unique<McBackend>(topology, cost);
    case BackendKind::kThreads:
      return std::make_unique<ThreadBackend>(options);
  }
  throw std::invalid_argument("unknown BackendKind");
}

}  // namespace eclat::exec
