// Deterministic, seeded fault injection for the native thread backend —
// the exec-level mirror of mc/fault.hpp.
//
// An ExecFaultPlan is a list of ExecFaultEvents attached to a
// ThreadBackend before a run. The injection site is a *class attempt*:
// (class id, attempt index), where attempts of one class are numbered
// 0, 1, 2, ... in the order the scheduler executes them (the first
// attempt is 0; every retry or watchdog re-enqueue allocates the next
// index). Because the attempt sequence of a class is strictly
// sequential — at most one attempt of a class is pending or running at
// a time, except for the brief overlap between a parked owner and its
// already-accounted backup — the fault a given attempt experiences is a
// pure function of (plan, class id, attempt index), independent of
// thread interleaving. No wall clock is consulted anywhere.
//
// Fault kinds:
//   - kThrow: the class task raises InjectedTaskThrow at task start.
//     Exercises exception capture + bounded retry.
//   - kCorrupt: the task mines normally, then its result slot is
//     deterministically mutated (seeded Rng draws) to violate the class
//     result contract. The backend validates every slot before commit,
//     so the corruption is detected, the partial is discarded, and the
//     attempt counts as a failure. Exercises the output-validation path.
//   - kStall: the task parks at the first cooperative MiningGuard
//     checkpoint inside the recursion and stops progressing until the
//     monotonic-progress watchdog cancels its lease and re-enqueues the
//     class. Exercises cancellation + first-writer-wins commits. A
//     class that never reaches a checkpoint (no atoms to mine) is
//     immune — the event is a harmless no-op there, like an mc fault
//     site the pipeline never visits.
//
// An event targets either an explicit class id or, for generated chaos
// schedules that cannot know the class count up front, a seeded hash
// selector: the event matches class c when a draw from
// Rng(seed ^ mix(c, event index)) lands on `sel` of `mod` buckets.
// `times` bounds how many leading attempts of a matching class fault;
// attempt `times` and later run clean, so a plan decides completion vs
// quarantine deterministically: a class faulted more than
// --exec-max-retries times quarantines, anything less completes with
// byte-identical output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "eclat/equivalence.hpp"

namespace eclat::exec {

enum class ExecFaultKind : std::uint8_t { kNone, kThrow, kCorrupt, kStall };

const char* to_string(ExecFaultKind kind);

inline constexpr std::size_t kAnyClass = static_cast<std::size_t>(-1);

struct ExecFaultEvent {
  ExecFaultKind kind = ExecFaultKind::kThrow;

  /// Explicit target class, or kAnyClass to select by seeded hash.
  std::size_t class_id = kAnyClass;

  /// Hash selector (class_id == kAnyClass only): the event matches class
  /// c when Rng(seed ^ mix(c, event index)).below(mod) == sel. mod >= 1,
  /// sel < mod (validate_exec_plan enforces both).
  std::uint64_t mod = 0;
  std::uint64_t sel = 0;

  /// How many leading attempts of a matching class fault (>= 1). The
  /// attempt numbered `times` runs clean.
  std::uint32_t times = 1;
};

/// A reproducible exec failure schedule: seed + events. Value type;
/// attach via ThreadBackendOptions::faults.
struct ExecFaultPlan {
  std::uint64_t seed = 0x5eed;
  std::vector<ExecFaultEvent> events;

  bool empty() const { return events.empty(); }

  static ExecFaultEvent throw_on(std::size_t class_id,
                                 std::uint32_t times = 1);
  static ExecFaultEvent corrupt_on(std::size_t class_id,
                                   std::uint32_t times = 1);
  static ExecFaultEvent stall_on(std::size_t class_id,
                                 std::uint32_t times = 1);
  /// Hash-selected event: matches ~1/mod of the classes.
  static ExecFaultEvent hashed(ExecFaultKind kind, std::uint64_t mod,
                               std::uint64_t sel, std::uint32_t times = 1);
};

/// Construction-time sanity check (also run by ExecFaultInjector): throws
/// std::invalid_argument naming the offending event for a kNone kind,
/// times == 0, or a hash selector with mod == 0 or sel >= mod.
void validate_exec_plan(const ExecFaultPlan& plan);

/// Line-based text form ("exec-seed ..." then one "exec-event ..." line
/// per event) so a failing schedule found by the chaos soak leg can be
/// attached as an artifact and replayed verbatim. exec_plan_from_text
/// throws std::invalid_argument naming the offending line.
std::string exec_plan_to_text(const ExecFaultPlan& plan);
ExecFaultPlan exec_plan_from_text(const std::string& text);

/// Base of every *retryable* per-class task failure the isolation layer
/// captures: injected throws, corrupt-result detection, memory-budget
/// exhaustion. A failure never escapes the worker loop — it is counted
/// against the class's retry budget and the class is re-enqueued or
/// quarantined.
class TaskFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised at task start when a kThrow event fires.
class InjectedTaskThrow final : public TaskFailure {
 public:
  InjectedTaskThrow(std::size_t class_id, std::uint32_t attempt);
};

/// Raised by validate_class_result when a mined class slot violates the
/// structural contract (injected corruption, or a real bug).
class ClassResultCorrupt final : public TaskFailure {
 public:
  using TaskFailure::TaskFailure;
};

/// The clean typed abort of a threads-backend run: a class exceeded its
/// retry budget. Thrown by ThreadBackend::mine after the worker pool has
/// fully drained (every other class ran to its own conclusion), naming
/// the lowest quarantined class id — which makes the diagnostic, like
/// the outcome, a pure function of the plan.
class ExecClassQuarantined final : public std::runtime_error {
 public:
  ExecClassQuarantined(std::size_t class_id, std::uint32_t attempts,
                       const std::string& last_error);
  std::size_t class_id() const { return class_id_; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  std::size_t class_id_;
  std::uint32_t attempts_;
};

/// Per-run view of an ExecFaultPlan. Pure and shared: fault_for and
/// corrupt_result hold no trigger state (the attempt index the backend
/// passes in *is* the trigger), so concurrent probes from worker threads
/// need no synchronization and replays are exact by construction.
class ExecFaultInjector {
 public:
  explicit ExecFaultInjector(const ExecFaultPlan& plan);

  /// The fault injected into `attempt` of `class_id`; kNone when clean.
  ExecFaultKind fault_for(std::size_t class_id, std::uint32_t attempt) const;

  /// Deterministically mutate a mined class result so that
  /// validate_class_result rejects it (seeded by plan seed, class id and
  /// attempt — a replay corrupts the identical byte).
  void corrupt_result(std::size_t class_id, std::uint32_t attempt,
                      Count minsup,
                      std::vector<FrequentItemset>& result) const;

  bool empty() const { return plan_.empty(); }

 private:
  bool matches(const ExecFaultEvent& event, std::size_t event_index,
               std::size_t class_id) const;

  ExecFaultPlan plan_;
};

/// Structural contract every committed class slot must satisfy — the
/// isolation layer runs this on *every* mined result (honest results
/// pass by construction of the recursion): each itemset has >= 3 items,
/// starts with the class prefix, is strictly ascending, draws its tail
/// from the class members, and meets minsup. Throws ClassResultCorrupt
/// naming the class and the first offending itemset.
void validate_class_result(const EquivalenceClass& eq_class, Count minsup,
                           const std::vector<FrequentItemset>& result);

}  // namespace eclat::exec
