#include "exec/thread_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apriori/apriori.hpp"
#include "common/clock.hpp"
#include "eclat/compute_frequent.hpp"
#include "eclat/tid_arena.hpp"
#include "exec/steal_deque.hpp"
#include "parallel/parallel_common.hpp"
#include "parallel/pipeline.hpp"
#include "vertical/simd/dispatch.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::exec {

namespace {

// Spawn-join SPMD region: run `body(w)` on `workers` real threads, join
// them all, then rethrow the first exception any worker raised. Every
// region boundary is a full barrier (thread join), so plain writes made
// inside one region are visible in the next without further
// synchronization.
template <typename Body>
void parallel_region(std::size_t workers, Body&& body) {
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

par::ParallelOutput ThreadBackend::mine(const HorizontalDatabase& db,
                                        const par::ParEclatConfig& config) {
  const std::size_t W = threads_;
  // Resolve the SIMD kernel table once on the coordinating thread (the
  // cpuid probe and ECLAT_FORCE_SCALAR read live behind magic statics,
  // so workers then only load a settled pointer) and cross-check every
  // dispatched kernel against the scalar reference before any worker
  // mines with it.
  simd::self_check();
  // Same block partition as the simulator path: Topology{1, W} makes
  // local_partition split the database into W equal contiguous blocks,
  // so per-block partial tid-lists concatenated in block order are
  // globally sorted (paper §6.3) for any W.
  const mc::Topology topo{1, W};
  WallStopwatch wall;

  // ----- Phase 1: initialization. Per-worker local counts, then a
  // sum-merge — exact integer arithmetic, so the merged counts equal the
  // simulator's tree reduction for any W. -----
  std::vector<TriangleCounter> counters(W, TriangleCounter(db.num_items()));
  std::vector<std::vector<Count>> item_partials(W);
  parallel_region(W, [&](std::size_t w) {
    const std::span<const Transaction> local =
        par::local_partition(db, topo, w);
    counters[w].count(local);
    if (config.include_singletons) {
      item_partials[w] = count_items(local, db.num_items());
    }
  });
  TriangleCounter counter = std::move(counters[0]);
  for (std::size_t w = 1; w < W; ++w) counter.merge(counters[w]);
  std::vector<Count> item_counts(db.num_items(), 0);
  for (const std::vector<Count>& partial : item_partials) {
    for (std::size_t i = 0; i < partial.size(); ++i) {
      item_counts[i] += partial[i];
    }
  }
  const double t_init = wall.elapsed_seconds();

  // ----- Phase 2: transformation. The plan is a pure function of the
  // merged counts; each worker inverts its block, then per-class global
  // tid-lists are assembled (classes striped over workers; each pair
  // belongs to exactly one class, so writers never collide and the
  // per-block maps are only read). -----
  const par::MiningPlan plan =
      par::derive_plan(counter, config.minsup, W, config.schedule);
  std::vector<std::unordered_map<PairKey, TidList>> block_lists(W);
  parallel_region(W, [&](std::size_t w) {
    block_lists[w] =
        invert_pairs(par::local_partition(db, topo, w), plan.exchanged_pairs);
  });
  std::vector<std::vector<Atom>> class_atoms(plan.classes.size());
  parallel_region(W, [&](std::size_t w) {
    for (std::size_t c = w; c < plan.classes.size(); c += W) {
      const EquivalenceClass& eq_class = plan.classes[c];
      if (eq_class.size() < 2) continue;  // no candidates (§4.1)
      std::vector<Atom> atoms;
      atoms.reserve(eq_class.size());
      for (Item member : eq_class.members) {
        const PairKey key = make_pair_key(eq_class.prefix, member);
        TidList tids;
        for (std::size_t b = 0; b < W; ++b) {
          const auto it = block_lists[b].find(key);
          if (it == block_lists[b].end()) continue;
          tids.insert(tids.end(), it->second.begin(), it->second.end());
        }
        atoms.push_back(Atom{{eq_class.prefix, member}, std::move(tids)});
      }
      class_atoms[c] = std::move(atoms);
    }
  });
  const double t_transform = wall.elapsed_seconds();

  // ----- Phase 3: asynchronous. Each class is mined exactly once, by
  // whichever worker acquires it, into its own result slot; per-worker
  // arenas keep mining allocation-free and deterministic per class. The
  // level histogram is recomputed from the final result (finalize_result),
  // so the per-worker one is scratch. -----
  std::vector<std::vector<FrequentItemset>> slots(plan.classes.size());
  const auto mine_class = [&](std::size_t c, TidArena& arena,
                              std::vector<std::size_t>& histogram) {
    if (class_atoms[c].empty()) return;
    compute_frequent(class_atoms[c], config.minsup, config.kernel, arena,
                     slots[c], histogram);
  };

  if (scheduler_ == ClassScheduler::kStatic || plan.classes.empty()) {
    parallel_region(W, [&](std::size_t w) {
      TidArena arena;
      std::vector<std::size_t> histogram;
      for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        if (plan.assignment[c] == w) mine_class(c, arena, histogram);
      }
    });
  } else {
    // Work-stealing: deques seeded with the static assignment in
    // ascending-weight order, so the owner's LIFO pop yields its heaviest
    // class first (LPT-style) and a thief's FIFO steal takes the heaviest
    // class still queued on the victim.
    const auto load_of = [&](std::size_t c) {
      return static_cast<std::int64_t>(plan.classes[c].weight()) + 1;
    };
    std::vector<std::vector<std::size_t>> owned(W);
    for (std::size_t c = 0; c < plan.classes.size(); ++c) {
      owned[plan.assignment[c]].push_back(c);
    }
    // std::deque, not vector: StealDeque is pinned (atomics are neither
    // movable nor copyable) and deque never relocates elements.
    std::deque<StealDeque> deques;
    std::vector<std::atomic<std::int64_t>> loads(W);
    for (std::size_t w = 0; w < W; ++w) {
      std::stable_sort(owned[w].begin(), owned[w].end(),
                       [&](std::size_t a, std::size_t b) {
                         return plan.classes[a].weight() <
                                plan.classes[b].weight();
                       });
      deques.emplace_back(owned[w].empty() ? 1 : owned[w].size());
      std::int64_t total = 0;
      for (std::size_t c : owned[w]) {
        deques[w].push(c);
        total += load_of(c);
      }
      loads[w].store(total, std::memory_order_relaxed);
    }
    std::atomic<std::size_t> tasks_left{plan.classes.size()};

    parallel_region(W, [&](std::size_t w) {
      TidArena arena;
      std::vector<std::size_t> histogram;
      const auto acquired = [&](std::size_t c, std::size_t victim) {
        loads[victim].fetch_sub(load_of(c), std::memory_order_relaxed);
        tasks_left.fetch_sub(1, std::memory_order_relaxed);
        mine_class(c, arena, histogram);
      };
      while (true) {
        if (const std::optional<std::size_t> c = deques[w].pop()) {
          acquired(*c, w);
          continue;
        }
        if (tasks_left.load(std::memory_order_relaxed) == 0) break;
        // Steal from the victim with the most remaining weight. The load
        // counters are advisory (decremented at acquisition), so a miss
        // just means another spin — correctness only needs tasks_left.
        std::size_t victim = W;
        std::int64_t best = 0;
        for (std::size_t v = 0; v < W; ++v) {
          if (v == w) continue;
          const std::int64_t load = loads[v].load(std::memory_order_relaxed);
          if (load > best) {
            best = load;
            victim = v;
          }
        }
        if (victim == W) {
          std::this_thread::yield();
          continue;
        }
        if (const std::optional<std::size_t> c = deques[victim].steal()) {
          acquired(*c, victim);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  const double t_async = wall.elapsed_seconds();

  // ----- Phase 4: final reduction in commit order — singletons, pairs,
  // then the class slots by ascending class id, then normalize. This is
  // what makes the output independent of scheduling and interleaving. -----
  par::ParallelOutput output;
  output.result.database_scans = 3;  // two horizontal scans + vertical read
  if (config.include_singletons) {
    par::append_singletons(output.result, item_counts, config.minsup);
  }
  par::append_frequent_pairs(output.result, plan.frequent_pairs, counter);
  for (std::vector<FrequentItemset>& slot : slots) {
    for (FrequentItemset& found : slot) {
      output.result.itemsets.push_back(std::move(found));
    }
  }
  par::finalize_result(output.result);

  const double total = wall.elapsed_seconds();
  output.run_report.outcomes.assign(W, mc::ProcessorOutcome::kFinished);
  output.total_seconds = total;
  output.wall_seconds = total;
  output.phase_seconds["initialization"] = t_init;
  output.phase_seconds["transformation"] = t_transform - t_init;
  output.phase_seconds["asynchronous"] = t_async - t_transform;
  output.phase_seconds["reduction"] = total - t_async;
  output.backend = "threads";
  output.exec_threads = W;
  return output;
}

}  // namespace eclat::exec
