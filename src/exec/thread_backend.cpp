#include "exec/thread_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apriori/apriori.hpp"
#include "common/clock.hpp"
#include "eclat/compute_frequent.hpp"
#include "eclat/mining_guard.hpp"
#include "eclat/tid_arena.hpp"
#include "exec/cancel.hpp"
#include "exec/exec_fault.hpp"
#include "exec/fault_capture.hpp"
#include "exec/mem_budget.hpp"
#include "exec/progress.hpp"
#include "exec/steal_deque.hpp"
#include "exec/steal_loop.hpp"
#include "parallel/parallel_common.hpp"
#include "parallel/pipeline.hpp"
#include "vertical/simd/dispatch.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::exec {

namespace {

// Spawn-join SPMD region: run `body(w)` on `workers` real threads, join
// them all, then rethrow the first exception any worker raised. Every
// region boundary is a full barrier (thread join), so plain writes made
// inside one region are visible in the next without further
// synchronization.
template <typename Body>
void parallel_region(std::size_t workers, Body&& body) {
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

// One class attempt queued for re-execution after a failure or a
// watchdog reclaim. ready_at is in units of the global task-acquisition
// counter — backoff-in-attempts, never wall time, so a replay acquires
// the same attempt sequence per class.
struct RetryTask {
  std::size_t class_id = 0;
  std::uint32_t attempt = 0;
  std::uint64_t ready_at = 0;
};

// The per-attempt MiningGuard the isolation layer plants into the
// compute_frequent recursion: checks the lease's cancellation token,
// consumes a pending injected stall by parking the lease until the
// watchdog reclaims it, and meters the arena memory budget. All three
// hooks fire only at checkpoint granularity (class entry + leading-atom
// boundaries), where no scratch reference into the arena is live.
class TaskGuard final : public MiningGuard {
 public:
  TaskGuard(ProgressBoard& board, std::size_t worker, std::size_t class_id,
            std::uint32_t attempt, bool stall_pending, ArenaBudget* budget,
            const std::function<void()>& park_scan)
      : board_(board),
        worker_(worker),
        class_id_(class_id),
        attempt_(attempt),
        stall_pending_(stall_pending),
        budget_(budget),
        park_scan_(park_scan) {}

  void checkpoint() override {
    if (board_.token(worker_).cancelled()) {
      throw ClassCancelled(class_id_, attempt_);
    }
    if (stall_pending_) {
      stall_pending_ = false;
      park_and_wait();
    }
    if (budget_ != nullptr) budget_->check();
  }

 private:
  // An injected stall: expose the lease to the watchdog and stop
  // progressing. The only way out is cancellation (the reclaiming scan
  // has already accounted the stall and re-enqueued the class). While
  // parked, periodically scan the other leases ourselves so that "every
  // worker is parked at once" still unwinds — with a single worker the
  // scan covers our own lease (self-rescue) and fires immediately.
  [[noreturn]] void park_and_wait() {
    board_.park(worker_);
    std::size_t spins = 0;
    while (!board_.token(worker_).cancelled()) {
      if ((spins++ & 0xFFu) == 0) park_scan_();
      std::this_thread::yield();
    }
    throw ClassCancelled(class_id_, attempt_);
  }

  ProgressBoard& board_;
  std::size_t worker_;
  std::size_t class_id_;
  std::uint32_t attempt_;
  bool stall_pending_;
  ArenaBudget* budget_;
  const std::function<void()>& park_scan_;
};

}  // namespace

par::ParallelOutput ThreadBackend::mine(const HorizontalDatabase& db,
                                        const par::ParEclatConfig& config) {
  const std::size_t W = threads_;
  if (!isolation_ && (!faults_.empty() || mem_budget_ != 0)) {
    throw std::invalid_argument(
        "exec: fault injection and memory budgets require task isolation "
        "(drop --exec-isolation=off)");
  }
  const ExecFaultInjector injector(faults_);
  // Resolve the SIMD kernel table once on the coordinating thread (the
  // cpuid probe and ECLAT_FORCE_SCALAR read live behind magic statics,
  // so workers then only load a settled pointer) and cross-check every
  // dispatched kernel against the scalar reference before any worker
  // mines with it.
  simd::self_check();
  // Same block partition as the simulator path: Topology{1, W} makes
  // local_partition split the database into W equal contiguous blocks,
  // so per-block partial tid-lists concatenated in block order are
  // globally sorted (paper §6.3) for any W.
  const mc::Topology topo{1, W};
  WallStopwatch wall;

  // ----- Phase 1: initialization. Per-worker local counts, then a
  // sum-merge — exact integer arithmetic, so the merged counts equal the
  // simulator's tree reduction for any W. -----
  std::vector<TriangleCounter> counters(W, TriangleCounter(db.num_items()));
  std::vector<std::vector<Count>> item_partials(W);
  parallel_region(W, [&](std::size_t w) {
    const std::span<const Transaction> local =
        par::local_partition(db, topo, w);
    counters[w].count(local);
    if (config.include_singletons) {
      item_partials[w] = count_items(local, db.num_items());
    }
  });
  TriangleCounter counter = std::move(counters[0]);
  for (std::size_t w = 1; w < W; ++w) counter.merge(counters[w]);
  std::vector<Count> item_counts(db.num_items(), 0);
  for (const std::vector<Count>& partial : item_partials) {
    for (std::size_t i = 0; i < partial.size(); ++i) {
      item_counts[i] += partial[i];
    }
  }
  const double t_init = wall.elapsed_seconds();

  // ----- Phase 2: transformation. The plan is a pure function of the
  // merged counts; each worker inverts its block, then per-class global
  // tid-lists are assembled (classes striped over workers; each pair
  // belongs to exactly one class, so writers never collide and the
  // per-block maps are only read). -----
  const par::MiningPlan plan =
      par::derive_plan(counter, config.minsup, W, config.schedule);
  std::vector<std::unordered_map<PairKey, TidList>> block_lists(W);
  parallel_region(W, [&](std::size_t w) {
    block_lists[w] =
        invert_pairs(par::local_partition(db, topo, w), plan.exchanged_pairs);
  });
  std::vector<std::vector<Atom>> class_atoms(plan.classes.size());
  parallel_region(W, [&](std::size_t w) {
    for (std::size_t c = w; c < plan.classes.size(); c += W) {
      const EquivalenceClass& eq_class = plan.classes[c];
      if (eq_class.size() < 2) continue;  // no candidates (§4.1)
      std::vector<Atom> atoms;
      atoms.reserve(eq_class.size());
      for (Item member : eq_class.members) {
        const PairKey key = make_pair_key(eq_class.prefix, member);
        TidList tids;
        for (std::size_t b = 0; b < W; ++b) {
          const auto it = block_lists[b].find(key);
          if (it == block_lists[b].end()) continue;
          tids.insert(tids.end(), it->second.begin(), it->second.end());
        }
        atoms.push_back(Atom{{eq_class.prefix, member}, std::move(tids)});
      }
      class_atoms[c] = std::move(atoms);
    }
  });
  const double t_transform = wall.elapsed_seconds();

  // ----- Phase 3: asynchronous. Each class runs as an isolated task into
  // its own result slot; per-worker arenas keep mining allocation-free
  // and deterministic per class. The level histogram is recomputed from
  // the final result (finalize_result), so the per-worker one is scratch. -----
  const std::size_t num_classes = plan.classes.size();
  std::vector<std::vector<FrequentItemset>> slots(num_classes);
  const auto load_of = [&](std::size_t c) {
    return static_cast<std::int64_t>(plan.classes[c].weight()) + 1;
  };
  // Deques seeded with the static assignment in ascending-weight order,
  // so the owner's LIFO pop yields its heaviest class first (LPT-style)
  // and a thief's FIFO steal takes the heaviest class still queued on
  // the victim. Both schedulers seed identically; only stealing differs.
  std::vector<std::vector<std::size_t>> owned(W);
  for (std::size_t c = 0; c < num_classes; ++c) {
    owned[plan.assignment[c]].push_back(c);
  }
  // std::deque, not vector: StealDeque is pinned (atomics are neither
  // movable nor copyable) and deque never relocates elements.
  std::deque<StealDeque> deques;
  std::vector<std::atomic<std::int64_t>> loads(W);
  for (std::size_t w = 0; w < W; ++w) {
    std::stable_sort(owned[w].begin(), owned[w].end(),
                     [&](std::size_t a, std::size_t b) {
                       return plan.classes[a].weight() <
                              plan.classes[b].weight();
                     });
    deques.emplace_back(owned[w].empty() ? 1 : owned[w].size());
    std::int64_t total = 0;
    for (std::size_t c : owned[w]) {
      deques[w].push(c);
      total += load_of(c);
    }
    loads[w].store(total, std::memory_order_relaxed);
  }

  std::uint64_t stat_failures_total = 0;
  std::uint64_t stat_retries_total = 0;
  std::uint64_t stat_reclaims_total = 0;
  std::uint64_t stat_demotions_total = 0;
  std::uint64_t stat_peak_bytes = 0;

  if (!isolation_) {
    // Bare direct-call phase (the overhead baseline): no capture, no
    // retries, no validation. A task exception aborts the whole region,
    // with exception-exact tasks_left accounting on the stealing path
    // (steal_loop.hpp).
    std::atomic<std::size_t> tasks_left{num_classes};
    std::atomic<bool> aborted{false};
    parallel_region(W, [&](std::size_t w) {
      TidArena arena;
      std::vector<std::size_t> histogram;
      const auto mine_class = [&](std::size_t c) {
        if (class_atoms[c].empty()) return;
        compute_frequent(class_atoms[c], config.minsup, config.kernel, arena,
                         slots[c], histogram);
      };
      if (scheduler_ == ClassScheduler::kStatic) {
        for (std::size_t c = 0; c < num_classes; ++c) {
          if (plan.assignment[c] == w) mine_class(c);
        }
        return;
      }
      run_stealing_loop(w, deques, loads, tasks_left, aborted, load_of,
                        mine_class);
    });
  } else {
    // Isolated execution. Shared scheduling state:
    //   outstanding  — class attempts not yet retired; the loop's exit
    //                  condition. Every retry/reclaim enqueue increments
    //                  it *before* the enqueuer's own unit retires, so it
    //                  can never transiently read 0 with work pending.
    //   acquisitions — total attempts started; the clock for retry
    //                  backoff (backoff-in-attempts, not time).
    //   retry_pool   — failed/reclaimed attempts awaiting re-execution on
    //                  any worker; a desperate take ignores ready_at so
    //                  an otherwise-idle pool cannot deadlock on backoff.
    std::mutex retry_mutex;
    std::vector<RetryTask> retry_pool;
    std::atomic<std::size_t> retry_size{0};
    std::atomic<std::size_t> outstanding{num_classes};
    std::atomic<std::uint64_t> acquisitions{0};
    std::vector<std::atomic<std::uint32_t>> next_attempt(num_classes);
    std::vector<std::atomic<std::uint32_t>> failures(num_classes);
    std::vector<std::atomic<std::uint8_t>> committed(num_classes);
    std::vector<std::atomic<std::uint8_t>> quarantined(num_classes);
    std::vector<std::string> quarantine_msg(num_classes);
    for (auto& a : next_attempt) a.store(1, std::memory_order_relaxed);
    ProgressBoard board(W);
    std::atomic<std::uint64_t> stat_failures{0};
    std::atomic<std::uint64_t> stat_retries{0};
    std::atomic<std::uint64_t> stat_reclaims{0};
    std::vector<std::uint64_t> worker_demotions(W, 0);
    std::vector<std::uint64_t> worker_peak(W, 0);
    const bool demotable = config.kernel == IntersectKernel::kAuto ||
                           config.kernel == IntersectKernel::kChunked;

    // The message is written before the release-store on the flag, and
    // the post-join read acquires the flag first — so the string is safe
    // to read unsynchronized there. A class quarantines at most once
    // (failures are strictly sequential per class).
    const auto quarantine = [&](std::size_t c, const std::string& why) {
      quarantine_msg[c] = why;
      quarantined[c].store(1, std::memory_order_release);
    };

    const auto enqueue_retry = [&](std::size_t c, std::uint64_t ready_at) {
      const std::uint32_t attempt =
          next_attempt[c].fetch_add(1, std::memory_order_relaxed);
      outstanding.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(retry_mutex);
        retry_pool.push_back(RetryTask{c, attempt, ready_at});
      }
      retry_size.fetch_add(1, std::memory_order_release);
    };

    // Watchdog reclaim of one parked lease (runs under the exclusive CAS
    // license of ProgressBoard::scan_and_reclaim, before the owner's
    // token is cancelled). A reclaim counts as a failure of the parked
    // attempt, which bounds how often a stalling class can respawn.
    const auto reclaim_parked = [&](std::size_t c, std::uint32_t attempt) {
      stat_reclaims.fetch_add(1, std::memory_order_relaxed);
      stat_failures.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t n =
          failures[c].fetch_add(1, std::memory_order_acq_rel) + 1;
      if (n > max_retries_) {
        quarantine(c, "attempt " + std::to_string(attempt) +
                          " stalled; lease reclaimed by the watchdog");
      } else {
        enqueue_retry(c, acquisitions.load(std::memory_order_relaxed));
      }
    };

    const auto take_retry = [&](bool desperate) -> std::optional<RetryTask> {
      if (retry_size.load(std::memory_order_acquire) == 0) {
        return std::nullopt;
      }
      const std::uint64_t now = acquisitions.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(retry_mutex);
      std::size_t best = retry_pool.size();
      for (std::size_t i = 0; i < retry_pool.size(); ++i) {
        if (retry_pool[i].ready_at <= now) {
          best = i;
          break;
        }
      }
      if (best == retry_pool.size()) {
        if (!desperate || retry_pool.empty()) return std::nullopt;
        best = 0;
        for (std::size_t i = 1; i < retry_pool.size(); ++i) {
          if (retry_pool[i].ready_at < retry_pool[best].ready_at) best = i;
        }
      }
      const RetryTask task = retry_pool[best];
      retry_pool.erase(retry_pool.begin() +
                       static_cast<std::ptrdiff_t>(best));
      retry_size.fetch_sub(1, std::memory_order_release);
      return task;
    };

    parallel_region(W, [&](std::size_t w) {
      TidArena arena;
      ArenaBudget budget(arena, mem_budget_, demotable);
      std::vector<FrequentItemset> scratch;
      std::vector<std::size_t> histogram;
      const auto scan = [&](std::size_t self) {
        return board.scan_and_reclaim(self, reclaim_parked);
      };
      // What a parked lease runs while waiting for its own reclaim: scan
      // the *other* leases (all of them — self-rescue — when this is the
      // only worker).
      const std::function<void()> park_scan = [&] {
        scan(W == 1 ? ProgressBoard::kScanAll : w);
      };

      const auto run_task = [&](std::size_t c, std::uint32_t attempt) {
        board.begin(w, c, attempt);
        budget.set_class(c);
        const ExecFaultKind fault = injector.fault_for(c, attempt);
        scratch.clear();
        TaskGuard guard(board, w, c, attempt,
                        fault == ExecFaultKind::kStall,
                        budget.enabled() ? &budget : nullptr, park_scan);
        const TaskError err = capture_class_failure([&] {
          if (fault == ExecFaultKind::kThrow) {
            throw InjectedTaskThrow(c, attempt);
          }
          if (!class_atoms[c].empty()) {
            compute_frequent(class_atoms[c], config.minsup, config.kernel,
                             arena, scratch, histogram, nullptr, &guard);
          }
          if (fault == ExecFaultKind::kCorrupt) {
            injector.corrupt_result(c, attempt, config.minsup, scratch);
          }
          validate_class_result(plan.classes[c], config.minsup, scratch);
        });
        board.end(w);
        switch (err.outcome) {
          case TaskOutcome::kOk: {
            // First writer wins: a reclaimed-then-resurrected owner can
            // never overwrite the backup's already-committed slot (and
            // vice versa), so the committed bytes are attempt-order
            // independent — and identical anyway, since every honest
            // attempt of a class mines the same atoms.
            std::uint8_t expected = 0;
            if (committed[c].compare_exchange_strong(
                    expected, 1, std::memory_order_acq_rel)) {
              slots[c] = std::move(scratch);
            }
            break;
          }
          case TaskOutcome::kCancelled:
            // The watchdog already accounted this attempt when it
            // reclaimed the lease; just unwind.
            break;
          case TaskOutcome::kFailed: {
            stat_failures.fetch_add(1, std::memory_order_relaxed);
            const std::uint32_t n =
                failures[c].fetch_add(1, std::memory_order_acq_rel) + 1;
            if (n > max_retries_) {
              quarantine(c, err.what);
            } else {
              stat_retries.fetch_add(1, std::memory_order_relaxed);
              const std::uint64_t backoff =
                  1ull << std::min<std::uint32_t>(n, 6);
              enqueue_retry(
                  c, acquisitions.load(std::memory_order_relaxed) + backoff);
            }
            // Fresh arena for whatever runs here next: a failed attempt
            // may have left demoted or oversized scratch behind.
            arena.clear();
            if (budget.enabled()) arena.relieve_memory(false);
            break;
          }
        }
      };

      const auto execute = [&](std::size_t c, std::uint32_t attempt) {
        acquisitions.fetch_add(1, std::memory_order_relaxed);
        run_task(c, attempt);
        // Retire after run_task: any retry it enqueued has already
        // incremented outstanding, so the count cannot dip to 0 with
        // work still pending.
        outstanding.fetch_sub(1, std::memory_order_acq_rel);
      };

      while (outstanding.load(std::memory_order_acquire) != 0) {
        if (const std::optional<std::size_t> c = deques[w].pop()) {
          loads[w].fetch_sub(load_of(*c), std::memory_order_relaxed);
          execute(*c, 0);
          continue;
        }
        if (const std::optional<RetryTask> t = take_retry(false)) {
          execute(t->class_id, t->attempt);
          continue;
        }
        if (scheduler_ == ClassScheduler::kWorkStealing) {
          std::size_t victim = W;
          std::int64_t best = 0;
          for (std::size_t v = 0; v < W; ++v) {
            if (v == w) continue;
            const std::int64_t load =
                loads[v].load(std::memory_order_relaxed);
            if (load > best) {
              best = load;
              victim = v;
            }
          }
          if (victim != W) {
            if (const std::optional<std::size_t> c = deques[victim].steal()) {
              loads[victim].fetch_sub(load_of(*c),
                                      std::memory_order_relaxed);
              execute(*c, 0);
              continue;
            }
          }
        }
        if (const std::optional<RetryTask> t = take_retry(true)) {
          execute(t->class_id, t->attempt);
          continue;
        }
        // Idle and nothing acquirable: the only possible pending work is
        // parked on another worker's lease — scan for it. Reclaiming is
        // CAS-gated on kParked, which only an injected stall ever sets,
        // so an honest slow class cannot be reclaimed by mistake.
        scan(w);
        std::this_thread::yield();
      }
      worker_demotions[w] = budget.demotions();
      worker_peak[w] = budget.peak_bytes();
    });

    // Clean typed abort, decided after the pool fully drained: every
    // class ran to its own conclusion, so the *lowest* quarantined class
    // id — and with it the whole diagnostic — is a pure function of the
    // fault plan, not of thread interleaving.
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (quarantined[c].load(std::memory_order_acquire)) {
        throw ExecClassQuarantined(c, failures[c].load(std::memory_order_relaxed),
                                   quarantine_msg[c]);
      }
    }
    stat_failures_total = stat_failures.load(std::memory_order_relaxed);
    stat_retries_total = stat_retries.load(std::memory_order_relaxed);
    stat_reclaims_total = stat_reclaims.load(std::memory_order_relaxed);
    for (std::size_t w = 0; w < W; ++w) {
      stat_demotions_total += worker_demotions[w];
      stat_peak_bytes = std::max<std::uint64_t>(stat_peak_bytes, worker_peak[w]);
    }
  }
  const double t_async = wall.elapsed_seconds();

  // ----- Phase 4: final reduction in commit order — singletons, pairs,
  // then the class slots by ascending class id, then normalize. This is
  // what makes the output independent of scheduling and interleaving. -----
  par::ParallelOutput output;
  output.result.database_scans = 3;  // two horizontal scans + vertical read
  if (config.include_singletons) {
    par::append_singletons(output.result, item_counts, config.minsup);
  }
  par::append_frequent_pairs(output.result, plan.frequent_pairs, counter);
  for (std::vector<FrequentItemset>& slot : slots) {
    for (FrequentItemset& found : slot) {
      output.result.itemsets.push_back(std::move(found));
    }
  }
  par::finalize_result(output.result);

  const double total = wall.elapsed_seconds();
  output.run_report.outcomes.assign(W, mc::ProcessorOutcome::kFinished);
  output.total_seconds = total;
  output.wall_seconds = total;
  output.phase_seconds["initialization"] = t_init;
  output.phase_seconds["transformation"] = t_transform - t_init;
  output.phase_seconds["asynchronous"] = t_async - t_transform;
  output.phase_seconds["reduction"] = total - t_async;
  output.backend = "threads";
  output.exec_threads = W;
  output.exec_task_failures = stat_failures_total;
  output.exec_task_retries = stat_retries_total;
  output.exec_stall_reclaims = stat_reclaims_total;
  output.exec_arena_demotions = stat_demotions_total;
  output.exec_arena_peak_bytes = stat_peak_bytes;
  return output;
}

}  // namespace eclat::exec
