#include "clique/item_graph.hpp"

#include <algorithm>

namespace eclat {

ItemGraph::ItemGraph(std::span<const PairKey> edges) {
  for (PairKey key : edges) {
    max_item_ = std::max<std::size_t>(
        max_item_, std::max(pair_first(key), pair_second(key)));
  }
  adjacency_.resize(max_item_ + 1);
  for (PairKey key : edges) {
    adjacency_[pair_first(key)].push_back(pair_second(key));
    adjacency_[pair_second(key)].push_back(pair_first(key));
    ++edge_count_;
  }
  for (Item v = 0; v <= max_item_; ++v) {
    auto& row = adjacency_[v];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    if (!row.empty()) vertices_.push_back(v);
  }
}

bool ItemGraph::adjacent(Item a, Item b) const {
  if (a >= adjacency_.size()) return false;
  const auto& row = adjacency_[a];
  return std::binary_search(row.begin(), row.end(), b);
}

std::span<const Item> ItemGraph::neighbors(Item vertex) const {
  if (vertex >= adjacency_.size()) return {};
  return adjacency_[vertex];
}

namespace {

/// Bron-Kerbosch with pivoting over sorted vertex vectors.
struct BronKerbosch {
  const ItemGraph& graph;
  std::size_t max_cliques;
  const std::function<void(const Itemset&)>& emit;
  std::size_t emitted = 0;

  bool run(Itemset& r, std::vector<Item> p, std::vector<Item> x) {
    if (p.empty() && x.empty()) {
      if (emitted == max_cliques) return false;
      ++emitted;
      Itemset clique = r;
      std::sort(clique.begin(), clique.end());
      emit(clique);
      return true;
    }
    // Pivot: the vertex of P ∪ X with the most neighbours in P minimizes
    // the branching set P \ N(pivot).
    Item pivot = 0;
    std::size_t best = 0;
    bool have_pivot = false;
    for (const std::vector<Item>* side : {&p, &x}) {
      for (Item u : *side) {
        std::size_t hits = 0;
        for (Item v : p) {
          if (graph.adjacent(u, v)) ++hits;
        }
        if (!have_pivot || hits > best) {
          pivot = u;
          best = hits;
          have_pivot = true;
        }
      }
    }

    std::vector<Item> branch;
    for (Item v : p) {
      if (!graph.adjacent(pivot, v)) branch.push_back(v);
    }
    for (Item v : branch) {
      std::vector<Item> p_next;
      std::vector<Item> x_next;
      for (Item w : p) {
        if (graph.adjacent(v, w)) p_next.push_back(w);
      }
      for (Item w : x) {
        if (graph.adjacent(v, w)) x_next.push_back(w);
      }
      r.push_back(v);
      const bool keep_going = run(r, std::move(p_next), std::move(x_next));
      r.pop_back();
      if (!keep_going) return false;
      // Move v from P to X.
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
    return true;
  }
};

}  // namespace

bool maximal_cliques(const ItemGraph& graph, std::span<const Item> subset,
                     std::size_t max_cliques,
                     const std::function<void(const Itemset&)>& emit) {
  BronKerbosch search{graph, max_cliques, emit};
  Itemset r;
  return search.run(r, std::vector<Item>(subset.begin(), subset.end()), {});
}

std::vector<CliqueClass> clique_classes(
    std::span<const PairKey> frequent_pairs,
    std::size_t max_cliques_per_prefix) {
  const ItemGraph graph(frequent_pairs);
  std::vector<CliqueClass> classes;

  for (Item prefix : graph.vertices()) {
    // Larger neighbours of the prefix: the plain class [prefix].
    std::vector<Item> larger;
    for (Item v : graph.neighbors(prefix)) {
      if (v > prefix) larger.push_back(v);
    }
    if (larger.empty()) continue;

    std::vector<CliqueClass> refined;
    const bool complete = maximal_cliques(
        graph, larger, max_cliques_per_prefix, [&](const Itemset& clique) {
          refined.push_back(
              CliqueClass{prefix, std::vector<Item>(clique.begin(),
                                                    clique.end())});
        });
    if (!complete) {
      // Clique blow-up: fall back to the coarse prefix class.
      classes.push_back(CliqueClass{prefix, std::move(larger)});
      continue;
    }
    std::sort(refined.begin(), refined.end(),
              [](const CliqueClass& a, const CliqueClass& b) {
                return lex_less(a.members, b.members);
              });
    for (CliqueClass& sub : refined) classes.push_back(std::move(sub));
  }
  return classes;
}

}  // namespace eclat
