// Clique-Eclat: sequential Eclat driven by clique-refined classes instead
// of prefix equivalence classes (the "Clique" algorithm of the companion
// report [18]). Same three-phase structure as eclat_sequential; candidate
// sub-lattices are restricted to maximal cliques of the L2 graph, so
// fewer impossible candidates are ever intersected. Since one itemset can
// live in several maximal cliques, results are deduplicated.
#pragma once

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "eclat/compute_frequent.hpp"

namespace eclat {

struct CliqueEclatConfig {
  Count minsup = 1;
  IntersectKernel kernel = IntersectKernel::kMergeShortCircuit;
  bool include_singletons = true;
  std::size_t max_cliques_per_prefix = 256;  ///< fall-back threshold
};

struct CliqueEclatStats {
  std::size_t plain_classes = 0;    ///< prefix classes (Eclat's clusters)
  std::size_t clique_subclasses = 0;
  std::size_t plain_weight = 0;     ///< Σ C(s,2) over prefix classes
  std::size_t clique_weight = 0;    ///< Σ C(s,2) over clique classes
  std::size_t duplicates = 0;       ///< itemsets found in several cliques
  IntersectStats intersect;         ///< kernel counters for the mining phase
};

MiningResult clique_eclat(const HorizontalDatabase& db,
                          const CliqueEclatConfig& config,
                          CliqueEclatStats* stats = nullptr);

}  // namespace eclat
