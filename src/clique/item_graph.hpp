// The L2 item graph and maximal-clique machinery behind the "Clique"
// family of algorithms in the paper's companion report [18] (Zaki et al.,
// "New Algorithms for Fast Discovery of Association Rules", URCS TR 651).
//
// Vertices are items, edges are frequent 2-itemsets. Every frequent
// itemset induces a clique in this graph (downward closure makes all its
// pairs frequent), so the maximal cliques bound the search space more
// tightly than prefix-based equivalence classes: a class [a] splits into
// one sub-class per maximal clique through a, and candidates are only
// generated inside cliques.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

/// Undirected graph over item ids with O(1) adjacency tests.
class ItemGraph {
 public:
  /// Build from frequent pairs (vertices are all items mentioned).
  explicit ItemGraph(std::span<const PairKey> edges);

  bool adjacent(Item a, Item b) const;

  /// Sorted neighbours of `vertex` (empty for unknown vertices).
  std::span<const Item> neighbors(Item vertex) const;

  /// Sorted list of vertices with at least one edge.
  std::span<const Item> vertices() const { return vertices_; }

  std::size_t edge_count() const { return edge_count_; }

 private:
  std::vector<Item> vertices_;
  std::vector<std::vector<Item>> adjacency_;  // indexed by item id
  std::size_t max_item_ = 0;
  std::size_t edge_count_ = 0;
};

/// All maximal cliques of `graph` restricted to the vertex set `subset`
/// (Bron-Kerbosch with pivoting). Cliques are emitted as sorted itemsets.
/// Enumeration aborts (returns false) once `max_cliques` have been
/// emitted — the caller then falls back to coarser clustering.
bool maximal_cliques(const ItemGraph& graph, std::span<const Item> subset,
                     std::size_t max_cliques,
                     const std::function<void(const Itemset&)>& emit);

/// Clique-refined equivalence classes: for every prefix item a, the
/// maximal cliques of the subgraph induced on a's larger neighbours each
/// yield one sub-class (a, clique members). Falls back to the plain
/// prefix class when a prefix's clique count exceeds `max_cliques_per_
/// prefix`. Classes come out sorted by (prefix, members).
struct CliqueClass {
  Item prefix = 0;
  std::vector<Item> members;  // sorted, all > prefix

  std::size_t weight() const {
    return members.size() < 2 ? 0 : members.size() * (members.size() - 1) / 2;
  }
};

std::vector<CliqueClass> clique_classes(
    std::span<const PairKey> frequent_pairs,
    std::size_t max_cliques_per_prefix = 256);

}  // namespace eclat
