#include "clique/clique_eclat.hpp"

#include <algorithm>
#include <unordered_map>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "clique/item_graph.hpp"
#include "eclat/equivalence.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

MiningResult clique_eclat(const HorizontalDatabase& db,
                          const CliqueEclatConfig& config,
                          CliqueEclatStats* stats) {
  MiningResult result;
  CliqueEclatStats local_stats;
  const std::span<const Transaction> all(db.transactions());

  // Initialization: identical to Eclat.
  TriangleCounter counter(std::max<Item>(db.num_items(), 2));
  counter.count(all);
  ++result.database_scans;

  if (config.include_singletons) {
    const std::vector<Count> item_counts = count_items(all, db.num_items());
    for (Item item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= config.minsup) {
        result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
      }
    }
  }

  const std::vector<PairKey> frequent_pairs =
      counter.frequent_pairs(config.minsup);
  for (PairKey key : frequent_pairs) {
    result.itemsets.push_back(FrequentItemset{
        {pair_first(key), pair_second(key)},
        counter.get(pair_first(key), pair_second(key))});
  }

  // Transformation: tid-lists for the frequent pairs.
  std::unordered_map<PairKey, TidList> tidlists =
      invert_pairs(all, frequent_pairs);
  ++result.database_scans;

  // Clustering: clique-refined classes, with bookkeeping against the
  // plain prefix classes for the stats.
  const std::vector<EquivalenceClass> plain =
      partition_into_classes(frequent_pairs);
  for (const EquivalenceClass& eq_class : plain) {
    ++local_stats.plain_classes;
    local_stats.plain_weight += eq_class.weight();
  }
  const std::vector<CliqueClass> classes =
      clique_classes(frequent_pairs, config.max_cliques_per_prefix);
  for (const CliqueClass& sub : classes) {
    ++local_stats.clique_subclasses;
    local_stats.clique_weight += sub.weight();
  }

  // Asynchronous phase per clique sub-class, deduplicating across cliques.
  ItemsetSet seen;
  std::vector<std::size_t> histogram;
  TidArena arena;
  for (const CliqueClass& sub : classes) {
    if (sub.members.size() < 2) continue;
    std::vector<Atom> atoms;
    atoms.reserve(sub.members.size());
    for (Item member : sub.members) {
      const PairKey key = make_pair_key(sub.prefix, member);
      atoms.push_back(Atom{{sub.prefix, member}, tidlists.at(key)});
    }
    std::vector<FrequentItemset> found;
    std::vector<std::size_t> sub_histogram;
    compute_frequent(atoms, config.minsup, config.kernel, arena, found,
                     sub_histogram, &local_stats.intersect);
    for (FrequentItemset& f : found) {
      if (seen.insert(f.items).second) {
        if (histogram.size() <= f.items.size()) {
          histogram.resize(f.items.size() + 1, 0);
        }
        ++histogram[f.items.size()];
        result.itemsets.push_back(std::move(f));
      } else {
        ++local_stats.duplicates;
      }
    }
  }

  result.levels.push_back(LevelStats{1, 0, result.count_of_size(1)});
  result.levels.push_back(LevelStats{2, 0, frequent_pairs.size()});
  for (std::size_t k = 3; k < histogram.size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, histogram[k]});
  }

  normalize(result);
  if (stats) *stats = local_stats;
  return result;
}

}  // namespace eclat
