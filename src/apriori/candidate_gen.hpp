// Level-wise candidate generation (paper §2): Ck is produced by joining
// Lk-1 with itself on a shared (k-2)-prefix, then pruning any candidate
// with an infrequent (k-1)-subset.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace eclat {

/// FNV-1a hash over an itemset's items, for subset-pruning lookups.
struct ItemsetHash {
  std::size_t operator()(const Itemset& itemset) const;
};

using ItemsetSet = std::unordered_set<Itemset, ItemsetHash>;

/// Join step: every pair in `level` sharing the first k-2 items yields one
/// k-candidate. `level` must be sorted lexicographically and all members
/// must have equal length k-1 >= 1.
std::vector<Itemset> join_level(std::span<const Itemset> level);

/// Prune step: drop candidates having any (k-1)-subset outside `frequent`.
/// (Only the k-2 subsets not used by the join need checking, but we test
/// all k for clarity; the two extra lookups are O(1).)
std::vector<Itemset> prune_candidates(std::vector<Itemset> candidates,
                                      const ItemsetSet& frequent);

/// Convenience: join + (optionally) prune.
std::vector<Itemset> generate_candidates(std::span<const Itemset> level,
                                         bool prune);

}  // namespace eclat
