// DHP — the Direct Hashing and Pruning algorithm (Park, Chen & Yu, SIGMOD
// 1995), reference [11] of the paper and the algorithm its parallel
// cousin PDM [12] builds on. Included as the related-work baseline the
// paper compares against conceptually ("both PDM and DHP perform worse
// than Count Distribution and Apriori").
//
// Two ideas on top of Apriori:
//   1. *Hash filtering*: while scanning for Lk, every (k+1)-subset of each
//      transaction is hashed into a bucket-count table. A (k+1)-candidate
//      can only be frequent if its bucket total reaches minsup, so the
//      next level's candidate set shrinks before it is ever counted.
//   2. *Transaction trimming*: items that stop appearing in surviving
//      candidates are dropped from the working copy of each transaction.
#pragma once

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "hashtree/hash_tree.hpp"

namespace eclat {

struct DhpConfig {
  Count minsup = 1;
  std::size_t hash_buckets = 1 << 16;  ///< pair/triple filter table size
  bool trim_transactions = true;       ///< drop dead items between levels
  HashTreeConfig tree;                 ///< counting structure for k >= 3
};

struct DhpStats {
  std::size_t c2_unfiltered = 0;  ///< candidate pairs Apriori would count
  std::size_t c2_filtered = 0;    ///< pairs surviving the hash filter
  std::size_t c3_unfiltered = 0;  ///< 3-candidates before the filter
  std::size_t c3_filtered = 0;    ///< after
  std::size_t items_trimmed = 0;  ///< items dropped by trimming
};

/// Mine all frequent itemsets with DHP. Identical results to Apriori.
MiningResult dhp(const HorizontalDatabase& db, const DhpConfig& config,
                 DhpStats* stats = nullptr);

/// The bucket index DHP hashes an itemset into (exposed for tests).
std::size_t dhp_bucket(const Itemset& itemset, std::size_t buckets);

}  // namespace eclat
