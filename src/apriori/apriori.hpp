// Sequential Apriori (paper §2, Agrawal & Srikant 1994): the level-wise
// algorithm every parallel baseline in the paper builds on. One database
// scan per level; candidates live in a hash tree for fast subset counting.
#pragma once

#include <span>

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "hashtree/hash_tree.hpp"

namespace eclat {

struct AprioriConfig {
  Count minsup = 1;          ///< absolute minimum support (transactions)
  bool prune = true;         ///< (k-1)-subset pruning of candidates
  bool triangle_l2 = true;   ///< count C2 in a triangular array (paper §5.1)
                             ///< rather than a depth-2 hash tree
  bool balanced_tree = true; ///< CCPD hash-tree balancing
  HashTreeConfig tree;       ///< hash-tree tuning knobs
};

/// Mine all frequent itemsets of `db` with sequential Apriori.
MiningResult apriori(const HorizontalDatabase& db, const AprioriConfig& config);

/// Frequency of each single item over a span of transactions (the L1 scan).
std::vector<Count> count_items(std::span<const Transaction> transactions,
                               Item num_items);

}  // namespace eclat
