#include "apriori/candidate_gen.hpp"

#include <algorithm>

namespace eclat {

std::size_t ItemsetHash::operator()(const Itemset& itemset) const {
  std::size_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (Item item : itemset) {
    hash ^= item;
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

std::vector<Itemset> join_level(std::span<const Itemset> level) {
  std::vector<Itemset> candidates;
  if (level.empty()) return candidates;
  const std::size_t k_minus_1 = level.front().size();

  // Members sharing a (k-2)-prefix are adjacent because the level is
  // sorted, so scan runs of equal prefixes and join all pairs inside each.
  std::size_t run_begin = 0;
  while (run_begin < level.size()) {
    std::size_t run_end = run_begin + 1;
    while (run_end < level.size() &&
           std::equal(level[run_begin].begin(),
                      level[run_begin].end() - 1,
                      level[run_end].begin())) {
      ++run_end;
    }
    for (std::size_t i = run_begin; i < run_end; ++i) {
      for (std::size_t j = i + 1; j < run_end; ++j) {
        Itemset candidate = level[i];
        candidate.push_back(level[j][k_minus_1 - 1]);
        candidates.push_back(std::move(candidate));
      }
    }
    run_begin = run_end;
  }
  return candidates;
}

std::vector<Itemset> prune_candidates(std::vector<Itemset> candidates,
                                      const ItemsetSet& frequent) {
  std::vector<Itemset> kept;
  kept.reserve(candidates.size());
  Itemset subset;
  for (Itemset& candidate : candidates) {
    bool all_frequent = true;
    subset.assign(candidate.begin() + 1, candidate.end());
    // Rotate each position out in turn: subset starts as the candidate
    // minus its first item, and each step swaps the removed position.
    for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
      if (drop > 0) subset[drop - 1] = candidate[drop - 1];
      if (frequent.find(subset) == frequent.end()) {
        all_frequent = false;
        break;
      }
    }
    if (all_frequent) kept.push_back(std::move(candidate));
  }
  return kept;
}

std::vector<Itemset> generate_candidates(std::span<const Itemset> level,
                                         bool prune) {
  std::vector<Itemset> candidates = join_level(level);
  if (!prune || level.empty() || level.front().size() < 2) return candidates;
  ItemsetSet frequent(level.begin(), level.end());
  return prune_candidates(std::move(candidates), frequent);
}

}  // namespace eclat
