#include "apriori/dhp.hpp"

#include <algorithm>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"

namespace eclat {

std::size_t dhp_bucket(const Itemset& itemset, std::size_t buckets) {
  // FNV-1a over the items, folded into the table.
  std::size_t hash = 1469598103934665603ULL;
  for (Item item : itemset) {
    hash ^= item;
    hash *= 1099511628211ULL;
  }
  return hash % buckets;
}

MiningResult dhp(const HorizontalDatabase& db, const DhpConfig& config,
                 DhpStats* stats) {
  MiningResult result;
  DhpStats local_stats;

  // Working copy of the transactions (trimming shrinks it level by level).
  std::vector<Itemset> working;
  working.reserve(db.size());
  for (const Transaction& t : db.transactions()) working.push_back(t.items);

  // --- Scan 1: count items AND hash all pairs into the filter table. ---
  std::vector<Count> item_counts(db.num_items(), 0);
  std::vector<Count> pair_buckets(config.hash_buckets, 0);
  Itemset probe(2);
  for (const Itemset& items : working) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      ++item_counts[items[i]];
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        probe[0] = items[i];
        probe[1] = items[j];
        ++pair_buckets[dhp_bucket(probe, config.hash_buckets)];
      }
    }
  }
  ++result.database_scans;

  std::vector<Item> frequent_items;
  for (Item item = 0; item < db.num_items(); ++item) {
    if (item_counts[item] >= config.minsup) {
      result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
      frequent_items.push_back(item);
    }
  }
  result.levels.push_back(LevelStats{
      1, static_cast<std::size_t>(db.num_items()), frequent_items.size()});

  // --- C2: frequent-item pairs surviving the bucket filter. ---
  std::vector<Itemset> c2;
  for (std::size_t i = 0; i < frequent_items.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent_items.size(); ++j) {
      ++local_stats.c2_unfiltered;
      probe[0] = frequent_items[i];
      probe[1] = frequent_items[j];
      if (pair_buckets[dhp_bucket(probe, config.hash_buckets)] >=
          config.minsup) {
        c2.push_back(probe);
        ++local_stats.c2_filtered;
      }
    }
  }
  pair_buckets.clear();
  pair_buckets.shrink_to_fit();

  // Trim: drop infrequent items from the working transactions.
  auto trim_to = [&](const std::vector<Count>& keep_count, Count threshold) {
    for (Itemset& items : working) {
      const std::size_t before = items.size();
      std::erase_if(items, [&](Item item) {
        return keep_count[item] < threshold;
      });
      local_stats.items_trimmed += before - items.size();
    }
  };
  if (config.trim_transactions) trim_to(item_counts, config.minsup);

  // --- Scan 2: exact pair counting + hashing triples for the next
  // filter. Pairs are counted in a hash set filter + map. ---
  ItemsetSet c2_set(c2.begin(), c2.end());
  std::unordered_map<Itemset, Count, ItemsetHash> pair_counts;
  pair_counts.reserve(c2.size());
  for (const Itemset& candidate : c2) pair_counts.emplace(candidate, 0);
  std::vector<Count> triple_buckets(config.hash_buckets, 0);
  Itemset triple(3);
  for (const Itemset& items : working) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        probe[0] = items[i];
        probe[1] = items[j];
        const auto it = pair_counts.find(probe);
        if (it != pair_counts.end()) ++it->second;
      }
    }
    // Hash every 3-subset for the level-3 filter.
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        for (std::size_t l = j + 1; l < items.size(); ++l) {
          triple[0] = items[i];
          triple[1] = items[j];
          triple[2] = items[l];
          ++triple_buckets[dhp_bucket(triple, config.hash_buckets)];
        }
      }
    }
  }
  ++result.database_scans;

  std::vector<Itemset> level;
  for (const Itemset& candidate : c2) {
    const Count support = pair_counts.at(candidate);
    if (support >= config.minsup) {
      result.itemsets.push_back(FrequentItemset{candidate, support});
      level.push_back(candidate);
    }
  }
  std::sort(level.begin(), level.end(), lex_less);
  result.levels.push_back(LevelStats{2, c2.size(), level.size()});

  // --- k >= 3: Apriori-style levels; level 3 additionally passes the
  // triple bucket filter. ---
  const std::vector<std::uint32_t> bucket_map =
      balanced_bucket_map(item_counts, config.tree.fanout);
  std::size_t k = 3;
  while (!level.empty()) {
    std::vector<Itemset> candidates = generate_candidates(level, true);
    if (k == 3) {
      local_stats.c3_unfiltered = candidates.size();
      std::erase_if(candidates, [&](const Itemset& candidate) {
        return triple_buckets[dhp_bucket(candidate, config.hash_buckets)] <
               config.minsup;
      });
      local_stats.c3_filtered = candidates.size();
      triple_buckets.clear();
      triple_buckets.shrink_to_fit();
    }
    if (candidates.empty()) break;

    HashTree tree(k, config.tree, bucket_map);
    for (Itemset& candidate : candidates) tree.insert(std::move(candidate));
    Tid tid = 0;
    for (const Itemset& items : working) {
      tree.count_transaction(Transaction{tid++, items});
    }
    ++result.database_scans;

    std::vector<Itemset> next_level;
    tree.for_each([&](const Candidate& candidate) {
      if (candidate.count >= config.minsup) {
        result.itemsets.push_back(
            FrequentItemset{candidate.items, candidate.count});
        next_level.push_back(candidate.items);
      }
    });
    std::sort(next_level.begin(), next_level.end(), lex_less);
    result.levels.push_back(LevelStats{k, tree.size(), next_level.size()});

    // Trim items that vanished from the surviving level.
    if (config.trim_transactions && !next_level.empty()) {
      std::vector<Count> appearances(db.num_items(), 0);
      for (const Itemset& itemset : next_level) {
        for (Item item : itemset) ++appearances[item];
      }
      trim_to(appearances, 1);
    }

    level = std::move(next_level);
    ++k;
  }

  normalize(result);
  if (stats) *stats = local_stats;
  return result;
}

}  // namespace eclat
