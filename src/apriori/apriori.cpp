#include "apriori/apriori.hpp"

#include <algorithm>

#include "apriori/candidate_gen.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat {

std::vector<Count> count_items(std::span<const Transaction> transactions,
                               Item num_items) {
  std::vector<Count> counts(num_items, 0);
  for (const Transaction& t : transactions) {
    for (Item item : t.items) ++counts[item];
  }
  return counts;
}

MiningResult apriori(const HorizontalDatabase& db,
                     const AprioriConfig& config) {
  MiningResult result;
  const std::span<const Transaction> all(db.transactions());

  // --- L1: one scan counting single items. ---
  const std::vector<Count> item_counts = count_items(all, db.num_items());
  ++result.database_scans;

  std::vector<Itemset> level;  // Lk-1, sorted lexicographically
  for (Item item = 0; item < db.num_items(); ++item) {
    if (item_counts[item] >= config.minsup) {
      result.itemsets.push_back(FrequentItemset{{item}, item_counts[item]});
      level.push_back({item});
    }
  }
  result.levels.push_back(
      LevelStats{1, static_cast<std::size_t>(db.num_items()), level.size()});

  // --- L2: either a triangular count array (one scan, no hash tree) or
  // the generic hash-tree path, selected by config. ---
  std::size_t k = 2;
  if (config.triangle_l2 && db.num_items() >= 2 && !level.empty()) {
    TriangleCounter counter(db.num_items());
    counter.count(all);
    ++result.database_scans;
    std::vector<Itemset> next_level;
    std::size_t candidate_pairs = 0;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        ++candidate_pairs;
        const Item a = level[i][0];
        const Item b = level[j][0];
        const Count support = counter.get(a, b);
        if (support >= config.minsup) {
          result.itemsets.push_back(FrequentItemset{{a, b}, support});
          next_level.push_back({a, b});
        }
      }
    }
    result.levels.push_back(LevelStats{2, candidate_pairs,
                                       next_level.size()});
    level = std::move(next_level);
    k = 3;
  }

  // --- Lk for k >= 3 (or 2 when triangle_l2 is off): candidate join +
  // prune, hash-tree counting, one scan per level. ---
  const std::vector<std::uint32_t> bucket_map =
      config.balanced_tree
          ? balanced_bucket_map(item_counts, config.tree.fanout)
          : std::vector<std::uint32_t>{};

  while (!level.empty()) {
    std::vector<Itemset> candidates =
        generate_candidates(level, config.prune && k >= 3);
    if (candidates.empty()) break;

    HashTree tree(k, config.tree, bucket_map);
    for (Itemset& candidate : candidates) tree.insert(std::move(candidate));
    tree.count_all(all);
    ++result.database_scans;

    std::vector<Itemset> next_level;
    tree.for_each([&](const Candidate& candidate) {
      if (candidate.count >= config.minsup) {
        result.itemsets.push_back(
            FrequentItemset{candidate.items, candidate.count});
        next_level.push_back(candidate.items);
      }
    });
    std::sort(next_level.begin(), next_level.end(), lex_less);
    result.levels.push_back(
        LevelStats{k, tree.size(), next_level.size()});
    level = std::move(next_level);
    ++k;
  }

  normalize(result);
  return result;
}

}  // namespace eclat
