// Result types shared by all mining algorithms (sequential and parallel).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace eclat {

/// Per-level accounting, filled in as an algorithm iterates.
struct LevelStats {
  std::size_t k = 0;           ///< itemset size of this level
  std::size_t candidates = 0;  ///< |Ck| after pruning
  std::size_t frequent = 0;    ///< |Lk|
};

/// The set of all frequent itemsets plus bookkeeping that the benchmarks
/// report (scan counts back the paper's "three scans" claim).
struct MiningResult {
  std::vector<FrequentItemset> itemsets;
  std::vector<LevelStats> levels;
  std::size_t database_scans = 0;  ///< full passes over the (local) data

  /// Number of frequent itemsets of size k (Figure 6's series).
  std::size_t count_of_size(std::size_t k) const {
    return static_cast<std::size_t>(
        std::count_if(itemsets.begin(), itemsets.end(),
                      [k](const FrequentItemset& f) {
                        return f.items.size() == k;
                      }));
  }

  /// Largest frequent-itemset size found.
  std::size_t max_size() const {
    std::size_t max_k = 0;
    for (const FrequentItemset& f : itemsets) {
      max_k = std::max(max_k, f.items.size());
    }
    return max_k;
  }
};

/// Canonical order (by size, then lexicographic) so results from different
/// algorithms compare with operator== in tests.
void normalize(MiningResult& result);

/// Convert a relative minimum support (e.g. 0.001 for the paper's 0.1%)
/// into the absolute transaction count used internally (ceiling, >= 1).
Count absolute_support(double fraction, std::size_t num_transactions);

}  // namespace eclat
