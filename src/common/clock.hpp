// Timing utilities: wall clock, per-thread CPU clock (used to charge compute
// work to a simulated processor's virtual clock), and a simple stopwatch.
#pragma once

#include <cstdint>

namespace eclat {

/// Nanoseconds of CPU time consumed by the *calling thread* so far.
/// Backed by CLOCK_THREAD_CPUTIME_ID, so it excludes time the thread spends
/// descheduled — exactly what the virtual-time cluster simulation needs on
/// an oversubscribed host.
std::int64_t thread_cpu_ns();

/// Nanoseconds of monotonic wall-clock time.
std::int64_t wall_ns();

/// Measures elapsed thread-CPU time between construction/reset and now.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_ns_(thread_cpu_ns()) {}

  void reset() { start_ns_ = thread_cpu_ns(); }

  /// Elapsed thread-CPU nanoseconds since the last reset.
  std::int64_t elapsed_ns() const { return thread_cpu_ns() - start_ns_; }

 private:
  std::int64_t start_ns_;
};

/// Measures elapsed wall-clock time between construction/reset and now.
class WallStopwatch {
 public:
  WallStopwatch() : start_ns_(wall_ns()) {}

  void reset() { start_ns_ = wall_ns(); }

  std::int64_t elapsed_ns() const { return wall_ns() - start_ns_; }

  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace eclat
