// Deterministic pseudo-random generation for the synthetic-data generator
// and the test suite.
//
// We ship our own xoshiro256** instead of <random> engines because the
// standard does not pin down distribution algorithms across library
// implementations; reproducibility of the generated databases (and hence of
// every benchmark table) requires bit-exact streams everywhere.
#pragma once

#include <cstdint>

namespace eclat {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Poisson variate with the given mean. Uses Knuth's method for small
  /// means and a normal approximation (rounded, clamped at 0) for large.
  std::uint64_t poisson(double mean);

  /// Standard normal variate (Box-Muller, one value per call).
  double normal();

  /// Fork an independent stream; children of distinct calls never collide
  /// in practice (seeded from the parent stream via splitmix64 scrambling).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace eclat
