// Minimal command-line flag parsing for the example and benchmark binaries.
//
// Syntax: "--name=value" or "--name value"; bare "--name" sets a boolean.
// Unrecognized arguments are kept as positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace eclat {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Non-negative integer (counts, retry budgets). Throws
  /// std::invalid_argument on a negative or non-numeric value rather than
  /// silently wrapping it into a huge count.
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;

  /// Value restricted to an enumerated set (e.g. --kernel=merge|gallop).
  /// Returns `fallback` when absent; throws std::invalid_argument naming
  /// the flag and the allowed values when present but not in `choices`.
  std::string get_choice(const std::string& name,
                         std::span<const std::string_view> choices,
                         const std::string& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace eclat
