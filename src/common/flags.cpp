#include "common/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace eclat {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + "=" + text +
                                ": expected an integer");
  }
  return value;
}

std::uint64_t Flags::get_uint(const std::string& name,
                              std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    throw std::invalid_argument("--" + name + "=" + text +
                                ": expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + "=" + text +
                                ": expected a number");
  }
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::string Flags::get_choice(const std::string& name,
                              std::span<const std::string_view> choices,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  for (const std::string_view choice : choices) {
    if (it->second == choice) return it->second;
  }
  std::string allowed;
  for (const std::string_view choice : choices) {
    if (!allowed.empty()) allowed += "|";
    allowed += choice;
  }
  throw std::invalid_argument("--" + name + "=" + it->second +
                              ": expected one of " + allowed);
}

}  // namespace eclat
