// Debug contracts for invariants that are too expensive — or too
// embarrassing — to fail silently.
//
//   ECLAT_CHECK(cond)    always compiled in; aborts with file:line when the
//                        condition is false. Use on cold paths and at trust
//                        boundaries (deserialization, cross-module inputs).
//   ECLAT_DCHECK(cond)   compiled in for debug builds and whenever
//                        ECLAT_ENABLE_DCHECKS is defined (the sanitizer
//                        presets define it); otherwise the condition is
//                        type-checked but never evaluated. Use on hot paths
//                        (per-intersection invariants, per-element bounds).
//   ECLAT_UNREACHABLE(msg)  marks control flow that must not be reached.
//
// Failures abort rather than throw: a broken invariant means the process
// state is untrustworthy, and abort() gives sanitizers/ctest a crisp
// failure with a stack trace instead of an unwound, half-consistent one.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(ECLAT_ENABLE_DCHECKS) || !defined(NDEBUG)
#define ECLAT_DCHECKS_ENABLED 1
#else
#define ECLAT_DCHECKS_ENABLED 0
#endif

namespace eclat::check_detail {

[[noreturn]] inline void fail(const char* kind, const char* what,
                              const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n", kind, what, file, line);
  std::fflush(stderr);
  // eclat-lint: allow(contract-abort) this IS the uniform abort path the contract macros funnel into
  std::abort();
}

}  // namespace eclat::check_detail

#define ECLAT_CHECK(cond)                                              \
  (static_cast<bool>(cond)                                             \
       ? static_cast<void>(0)                                          \
       : ::eclat::check_detail::fail("ECLAT_CHECK", #cond, __FILE__,   \
                                     __LINE__))

#if ECLAT_DCHECKS_ENABLED
#define ECLAT_DCHECK(cond) ECLAT_CHECK(cond)
#else
// Parse and type-check the condition without evaluating it, so DCHECK-only
// helpers never rot and never trigger unused warnings.
#define ECLAT_DCHECK(cond) \
  (true ? static_cast<void>(0) : static_cast<void>(cond))
#endif

#define ECLAT_UNREACHABLE(msg)                                        \
  ::eclat::check_detail::fail("ECLAT_UNREACHABLE", msg, __FILE__,     \
                              __LINE__)
