#include "common/clock.hpp"

#include <ctime>

namespace eclat {
namespace {

std::int64_t read_clock(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000LL + ts.tv_nsec;
}

}  // namespace

std::int64_t thread_cpu_ns() { return read_clock(CLOCK_THREAD_CPUTIME_ID); }

std::int64_t wall_ns() { return read_clock(CLOCK_MONOTONIC); }

}  // namespace eclat
