#include "common/types.hpp"

#include <algorithm>

namespace eclat {

std::string to_string(const Itemset& itemset) {
  std::string out = "{";
  for (std::size_t i = 0; i < itemset.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(itemset[i]);
  }
  out += '}';
  return out;
}

bool is_sorted_itemset(const Itemset& itemset) {
  for (std::size_t i = 1; i < itemset.size(); ++i) {
    if (itemset[i - 1] >= itemset[i]) return false;
  }
  return true;
}

bool is_subset(const Itemset& sub, const Itemset& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool lex_less(const Itemset& a, const Itemset& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace eclat
