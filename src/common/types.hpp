// Fundamental types shared by every module of the parallel-Eclat library.
//
// Terminology follows the paper (Zaki et al., SPAA 1997):
//   - An *item* is one of N distinct attributes, identified by a dense id.
//   - A *tid* is a transaction identifier; transactions are numbered
//     0..|D|-1 in generation order, so a block partition of the database
//     owns a contiguous, monotonically increasing tid range.
//   - An *itemset* is a lexicographically sorted set of distinct items.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eclat {

/// Dense item identifier. The paper uses N = 1000 items; 32 bits is ample.
using Item = std::uint32_t;

/// Transaction identifier. Databases up to 6.4M transactions fit easily.
using Tid = std::uint32_t;

/// Support count (number of transactions containing an itemset).
using Count = std::uint64_t;

/// A sorted set of distinct items. Invariant: strictly increasing.
using Itemset = std::vector<Item>;

/// A frequent itemset together with its global support count.
struct FrequentItemset {
  Itemset items;
  Count support = 0;

  friend bool operator==(const FrequentItemset&,
                         const FrequentItemset&) = default;
};

/// Render an itemset as "{3 17 204}" for logs and test diagnostics.
std::string to_string(const Itemset& itemset);

/// True iff `itemset` is strictly increasing (the class invariant).
bool is_sorted_itemset(const Itemset& itemset);

/// True iff `sub` is a subset of `super` (both must be sorted).
bool is_subset(const Itemset& sub, const Itemset& super);

/// Lexicographic comparison used to order itemsets within a level.
bool lex_less(const Itemset& a, const Itemset& b);

}  // namespace eclat
