#include "common/rng.hpp"

#include <cmath>

namespace eclat {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method on the high 64 bits of a
  // 128-bit product.
  while (true) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(product);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

double Rng::uniform() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > threshold);
    return k - 1;
  }
  const double value = std::round(mean + std::sqrt(mean) * normal());
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::split() {
  std::uint64_t seed = next() ^ 0xd3833e804f4c574bULL;
  return Rng(splitmix64(seed));
}

}  // namespace eclat
