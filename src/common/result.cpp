#include "common/result.hpp"

#include <cmath>

namespace eclat {

void normalize(MiningResult& result) {
  std::sort(result.itemsets.begin(), result.itemsets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return lex_less(a.items, b.items);
            });
}

Count absolute_support(double fraction, std::size_t num_transactions) {
  const double raw = fraction * static_cast<double>(num_transactions);
  const Count support = static_cast<Count>(std::ceil(raw));
  return support == 0 ? 1 : support;
}

}  // namespace eclat
