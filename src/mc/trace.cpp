#include "mc/trace.hpp"
// eclat-lint: allow-file(det-thread) the trace sink is appended to from every processor thread; events carry virtual timestamps and are sorted before rendering

#include <algorithm>
#include <map>
#include <ostream>

#include "common/check.hpp"

namespace eclat::mc {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhaseBegin:
      return "phase-begin";
    case TraceKind::kPhaseEnd:
      return "phase-end";
    case TraceKind::kDisk:
      return "disk";
    case TraceKind::kMessage:
      return "message";
    case TraceKind::kCompute:
      return "compute";
    case TraceKind::kBarrier:
      return "barrier";
    case TraceKind::kMark:
      return "mark";
    case TraceKind::kFault:
      return "fault";
  }
  ECLAT_UNREACHABLE("invalid TraceKind");
}

void Trace::record(std::size_t processor, double time, TraceKind kind,
                   std::string label, std::uint64_t detail) {
  std::lock_guard lock(mutex_);
  events_.push_back(
      TraceEvent{processor, time, kind, std::move(label), detail});
}

std::vector<TraceEvent> Trace::sorted() const {
  std::vector<TraceEvent> copy;
  {
    std::lock_guard lock(mutex_);
    copy = events_;
  }
  std::stable_sort(copy.begin(), copy.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.processor < b.processor;
                   });
  return copy;
}

std::size_t Trace::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Trace::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

void Trace::dump(std::ostream& out) const {
  for (const TraceEvent& event : sorted()) {
    out << "[" << event.time << "s] p" << event.processor << " "
        << to_string(event.kind) << " " << event.label;
    if (event.detail != 0) out << " (" << event.detail << ")";
    out << '\n';
  }
}

void Trace::dump_csv(std::ostream& out) const {
  out << "processor,time,kind,label,detail\n";
  for (const TraceEvent& event : sorted()) {
    out << event.processor << ',' << event.time << ','
        << to_string(event.kind) << ',' << event.label << ','
        << event.detail << '\n';
  }
}

double Trace::phase_span(const std::string& label) const {
  // Per processor: sum of (end - begin) pairs; report the max.
  std::map<std::size_t, double> open;
  std::map<std::size_t, double> spans;
  for (const TraceEvent& event : sorted()) {
    if (event.label != label) continue;
    if (event.kind == TraceKind::kPhaseBegin) {
      open[event.processor] = event.time;
    } else if (event.kind == TraceKind::kPhaseEnd) {
      const auto it = open.find(event.processor);
      if (it != open.end()) {
        spans[event.processor] += event.time - it->second;
        open.erase(it);
      }
    }
  }
  double max_span = 0.0;
  for (const auto& [processor, span] : spans) {
    max_span = std::max(max_span, span);
  }
  return max_span;
}

}  // namespace eclat::mc
