// Cluster topology: H hosts with P processors each (the paper's testbed is
// 8 hosts x 4 processors). Processor ids are dense, 0..T-1, grouped by
// host: host(p) = p / procs_per_host.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace eclat::mc {

struct Topology {
  std::size_t hosts = 1;
  std::size_t procs_per_host = 1;

  std::size_t total() const { return hosts * procs_per_host; }

  std::size_t host_of(std::size_t proc) const { return proc / procs_per_host; }

  /// Index of a processor within its host (0..procs_per_host-1).
  std::size_t slot_of(std::size_t proc) const { return proc % procs_per_host; }

  /// True if the two processors share a host (and therefore a local disk
  /// and, on the real machine, physical RAM).
  bool same_host(std::size_t a, std::size_t b) const {
    return host_of(a) == host_of(b);
  }

  void validate() const {
    if (hosts == 0 || procs_per_host == 0) {
      throw std::invalid_argument("topology dimensions must be positive");
    }
  }

  /// "P=4,H=8,T=32" — the labels used in the paper's Table 2 / Figure 7.
  std::string label() const {
    return "P=" + std::to_string(procs_per_host) +
           ",H=" + std::to_string(hosts) + ",T=" + std::to_string(total());
  }

  friend bool operator==(const Topology&, const Topology&) = default;
};

}  // namespace eclat::mc
