#include "mc/memory_channel.hpp"
// eclat-lint: allow-file(det-thread) the Memory Channel model is real shared memory between processor threads; access costs are charged to virtual clocks

#include <cstring>
#include <stdexcept>

#include "common/check.hpp"

namespace eclat::mc {

MemoryChannel::RegionId MemoryChannel::create_region(std::size_t bytes) {
  std::lock_guard lock(regions_mutex_);
  regions_.emplace_back(bytes, std::uint8_t{0});
  return regions_.size() - 1;
}

std::size_t MemoryChannel::region_size(RegionId region) const {
  std::lock_guard lock(regions_mutex_);
  return regions_.at(region).size();
}

double MemoryChannel::write(RegionId region, std::size_t offset,
                            std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t>* buffer;
  {
    std::lock_guard lock(regions_mutex_);
    buffer = &regions_.at(region);
  }
  // Overflow-safe bounds check: offset + data.size() could wrap.
  if (offset > buffer->size() || data.size() > buffer->size() - offset) {
    throw std::out_of_range("region write out of bounds");
  }
  // Disjoint concurrent writes are safe on the underlying bytes; a deque
  // never relocates existing elements on emplace_back.
  if (!data.empty()) {
    std::memcpy(buffer->data() + offset, data.data(), data.size());
  }

  phase_hub_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
  total_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  return cost_.message_time(data.size());
}

double MemoryChannel::read(RegionId region, std::size_t offset,
                           std::span<std::uint8_t> out) const {
  const std::vector<std::uint8_t>* buffer;
  {
    std::lock_guard lock(regions_mutex_);
    buffer = &regions_.at(region);
  }
  if (offset > buffer->size() || out.size() > buffer->size() - offset) {
    throw std::out_of_range("region read out of bounds");
  }
  if (!out.empty()) {
    std::memcpy(out.data(), buffer->data() + offset, out.size());
  }
  return cost_.memcpy_time(out.size());
}

}  // namespace eclat::mc
