// Virtual-time cluster simulation: the SPMD substrate the parallel mining
// algorithms run on.
//
// Each simulated processor is a real std::thread, so the concurrency
// structure (phases, barriers, data exchange) is genuinely exercised; but
// *time* is virtual. Every processor owns a clock (seconds) advanced by:
//   - measured thread-CPU time of compute sections, scaled by
//     CostModel::cpu_scale (so results do not depend on the host machine's
//     core count or load);
//   - modeled disk-scan time with per-host contention;
//   - modeled Memory Channel message/collective time.
// Barriers and collectives advance every participant to the maximum clock
// (plus the collective's own cost), exactly like lock-step phases on the
// real machine. The reported "total execution time" of an algorithm is the
// maximum final clock — deterministic for a fixed dataset and topology.
//
// Failure semantics: a FaultPlan attached with set_fault_plan can crash
// processors (ProcessorFailed), stall disks, corrupt payloads and degrade
// the hub — deterministically, from a seeded schedule. A crashed processor
// deregisters from the PhaseBarrier, and every collective completes with
// survivor-only semantics: surviving processors fold only surviving slots
// and keep running; Cluster::run reports a per-processor outcome instead
// of rethrowing-and-hanging. The failed set visible to an SPMD body is the
// epoch snapshot taken at its last collective, so every survivor of one
// generation observes the identical set and failure-handling control flow
// stays globally consistent.
//
// Non-fail-stop slowness (kDiskStall stragglers, bounded or unbounded
// kHang) is invisible to the barrier layer; the progress-lease board
// (mc/lease.hpp, exposed via the Processor::lease_* methods) is how
// algorithms detect and migrate around it deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "mc/cost_model.hpp"
#include "mc/fault.hpp"
#include "mc/lease.hpp"
#include "mc/memory_channel.hpp"
#include "mc/phase_barrier.hpp"
#include "mc/trace.hpp"
#include "mc/topology.hpp"

namespace eclat::mc {

/// Opaque byte payload for point-to-point style exchange.
using Blob = std::vector<std::uint8_t>;

class Cluster;

/// How one simulated processor ended a run.
enum class ProcessorOutcome : std::uint8_t {
  kFinished,     ///< body returned normally
  kCrashed,      ///< an injected ProcessorFailed fault fired
  kHung,         ///< an injected unbounded ProcessorHung fault fired
  kPartitioned,  ///< cut off from quorum by an injected partition window
  kAborted,      ///< the body threw any other exception
};

const char* to_string(ProcessorOutcome outcome);

/// Per-processor outcome of a Cluster::run. Replaces the old behaviour of
/// rethrowing the first exception while peers hang at a barrier: crashes
/// are *reported*, non-fault exceptions are still rethrown (first one)
/// after every thread has joined, with the rest logged to the Trace.
struct RunReport {
  std::vector<ProcessorOutcome> outcomes;

  bool all_finished() const {
    for (const ProcessorOutcome o : outcomes) {
      if (o != ProcessorOutcome::kFinished) return false;
    }
    return true;
  }

  std::size_t crashed() const {
    std::size_t n = 0;
    for (const ProcessorOutcome o : outcomes) {
      if (o == ProcessorOutcome::kCrashed) ++n;
    }
    return n;
  }

  std::size_t partitioned() const {
    std::size_t n = 0;
    for (const ProcessorOutcome o : outcomes) {
      if (o == ProcessorOutcome::kPartitioned) ++n;
    }
    return n;
  }

  std::size_t finished() const {
    std::size_t n = 0;
    for (const ProcessorOutcome o : outcomes) {
      if (o == ProcessorOutcome::kFinished) ++n;
    }
    return n;
  }

  /// Ids of processors that did not finish.
  std::vector<std::size_t> failed() const {
    std::vector<std::size_t> ids;
    for (std::size_t p = 0; p < outcomes.size(); ++p) {
      if (outcomes[p] != ProcessorOutcome::kFinished) ids.push_back(p);
    }
    return ids;
  }
};

/// Handle an SPMD body uses to act as one processor of the cluster.
/// Not copyable; lives for the duration of Cluster::run.
class Processor {
 public:
  std::size_t id() const { return id_; }
  std::size_t host() const;
  const Topology& topology() const;
  const CostModel& cost() const;

  /// Current virtual time, seconds.
  double now() const;

  /// Advance this processor's clock.
  void advance(double seconds);

  /// Run `body`, measure its thread-CPU time, and charge it (scaled) to
  /// the clock. Returns body's result.
  template <typename F>
  auto compute(F&& body) {
    fault_probe(FaultOp::kCompute);
    // eclat-lint: allow(det-wallclock) measured thread-CPU feeds virtual time scaled by cost().cpu_scale; deterministic runs pin cpu_scale = 0
    CpuStopwatch watch;
    if constexpr (std::is_void_v<decltype(body())>) {
      body();
      const auto ns = watch.elapsed_ns();
      advance(static_cast<double>(ns) * 1e-9 * cost().cpu_scale);
      trace_compute(static_cast<std::uint64_t>(ns));
    } else {
      auto result = body();
      const auto ns = watch.elapsed_ns();
      advance(static_cast<double>(ns) * 1e-9 * cost().cpu_scale);
      trace_compute(static_cast<std::uint64_t>(ns));
      return result;
    }
  }

  /// Charge a sequential scan of `bytes` from the host-local disk.
  /// `scanners` = processors of this host scanning concurrently
  /// (0 = assume all of them, the common SPMD case).
  void disk_read(std::size_t bytes, std::size_t scanners = 0);
  void disk_write(std::size_t bytes, std::size_t scanners = 0);

  /// Like disk_read, but the head is already positioned (the previous
  /// access on this processor ended where this read starts), so no seek
  /// is charged — only transfer. Use for runs of contiguous reads; the
  /// first read of the run, and the first after skipping ahead, must go
  /// through disk_read.
  void disk_read_stream(std::size_t bytes, std::size_t scanners = 0);

  /// Seek-free counterpart of disk_write, for appending runs of records
  /// to a log the head is already parked at (e.g. streaming several
  /// replica images in one re-replication batch). The first write of a
  /// batch must go through disk_write.
  void disk_write_stream(std::size_t bytes, std::size_t scanners = 0);

  // --- Collectives. Every *surviving* processor of the cluster must call
  // the same sequence of collectives (standard SPMD discipline); failed
  // processors are excluded from the fold and their result slots stay
  // empty. ---

  /// Synchronize; clocks jump to max + barrier cost + any outstanding
  /// hub-bandwidth deficit of the closing phase.
  void barrier();

  /// How a sum-reduction is charged in virtual time. The data movement is
  /// identical; only the cost model differs.
  enum class ReduceScheme : std::uint8_t {
    /// The paper's §6.2 scheme: processors update a shared Memory Channel
    /// array one at a time (mutually exclusive), O(P) updates end to end.
    /// CCPD/Count Distribution pays this every iteration.
    kSerialized,
    /// Recursive-doubling allreduce, O(log P) rounds — the alternative the
    /// paper's footnote 2 points out. Parallel Eclat uses it for its
    /// single initialization reduction.
    kTree,
    /// Serialized across *hosts* only (one representative per host; the
    /// intra-host combine is shared memory). The hybrid algorithms' (§8.1)
    /// inter-host reduction.
    kSerializedHosts,
  };

  /// Element-wise global sum of `values` (same length on every survivor);
  /// on return every surviving processor holds the survivor totals.
  void sum_reduce(std::span<Count> values,
                  ReduceScheme scheme = ReduceScheme::kSerialized);

  /// Deliver root's payload to every processor (MC writes are multicast,
  /// §6.1, so the root pays one message). A failed root delivers an empty
  /// payload.
  Blob broadcast(std::size_t root, Blob payload);

  /// Personalized all-to-all: `outgoing[d]` goes to processor d; returns
  /// `incoming[s]` from processor s. Models the §6.3 lock-step
  /// write/read-phase exchange through bounded transmit buffers. Rows from
  /// processors that had failed before the fold arrive empty — consult
  /// failed_snapshot() for who participated.
  std::vector<Blob> all_to_all(std::vector<Blob> outgoing);

  /// Every surviving processor contributes `payload`; all receive all
  /// surviving contributions (failed slots are empty).
  std::vector<Blob> all_gather(Blob payload);

  // --- Failure handling. ---

  /// The failed-processor set as of this processor's most recent
  /// collective (the epoch snapshot folded under the barrier lock). Every
  /// participant of one generation sees the identical set, which is what
  /// keeps SPMD failure-handling decisions globally consistent.
  std::vector<bool> failed_snapshot() const;

  /// Ids set in failed_snapshot().
  std::vector<std::size_t> failed_processors() const;

  /// Commit epoch as of this processor's most recent collective: the
  /// number of processors in its epoch snapshot that had failed. The
  /// counter is monotone and advances exactly when the failed set grows,
  /// so it fences first-writer-wins stores: a survivor that observed a
  /// newer epoch raises the store's fence, and writes stamped with an
  /// older epoch — a healed minority replaying pre-partition state — are
  /// rejected instead of committed.
  std::size_t commit_epoch() const;

  /// False while an active partition window leaves this processor on a
  /// side without quorum (at its current clock). Commits that require a
  /// quorum acknowledgement must be queued locally until this turns true
  /// again (the window healed) — or dropped with the processor when its
  /// next collective aborts it.
  bool quorum_member() const;

  /// Named injection site for algorithm-level fault points (e.g. "after
  /// this equivalence class was checkpointed"). No-op without a fault
  /// plan; may throw ProcessorFailed.
  void fault_point(const std::string& label);

  /// Fetch the pristine copy of the last collective payload delivered from
  /// `src` to this processor after its delivered copy failed validation
  /// (the fault injector keeps corrupted deliveries' originals in the
  /// cluster's retransmit buffer). Charges a full retransmission. Throws
  /// std::logic_error when nothing was corrupted — a decoder rejecting an
  /// uncorrupted payload is a bug, not a recoverable fault.
  Blob retransmit(std::size_t src);

  // --- Progress leases (see mc/lease.hpp). Deterministic straggler
  // detection: algorithms acquire a lease per unit of owned work, renew
  // at fault_point probes, and observe peers through lease_view. Every
  // call below also publishes this processor's clock to the board. ---

  /// Start a progress lease on `task`, held by this processor.
  void lease_acquire(std::size_t task);
  /// Renew every lease this processor holds (also done by fault_point).
  void lease_renew();
  /// Drop the lease on `task` without committing (work migrated away).
  void lease_release(std::size_t task);
  /// Announce a speculative claim on a suspected peer's task.
  void lease_claim(std::size_t task);
  /// Announce a commit of `task`; releases this processor's own lease.
  void lease_commit(std::size_t task);
  /// Publish this processor's clock with no other fact (idle progress).
  void lease_touch();
  /// This processor will publish no further lease activity this run.
  void lease_done();
  /// Explicitly mark `proc` suspect (e.g. retransmissions exhausted).
  void lease_suspect(std::size_t proc);
  /// Virtual-time-consistent view of peers' progress at now(). Blocks in
  /// real time (free) until the view is complete; see mc/lease.hpp.
  LeaseView lease_view(const LeasePolicy& policy);

  /// Direct Memory Channel access for algorithm-specific region use.
  MemoryChannel& channel();

  /// Region write/read that charge this processor's clock. Writes are
  /// subject to injected region corruption (CRC-protect what matters).
  void region_write(MemoryChannel::RegionId region, std::size_t offset,
                    std::span<const std::uint8_t> data);
  void region_read(MemoryChannel::RegionId region, std::size_t offset,
                   std::span<std::uint8_t> out);

  // --- Tracing (no-ops unless a Trace is attached to the cluster). ---
  void phase_begin(const std::string& label);
  void phase_end(const std::string& label);
  void mark(const std::string& label, std::uint64_t detail = 0);

 private:
  friend class Cluster;
  Processor(Cluster* cluster, std::size_t id) : cluster_(cluster), id_(id) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  void trace_compute(std::uint64_t nanoseconds);
  /// Probe the fault injector at an injection site; throws
  /// ProcessorFailed on a crash event, returns the disk-stall multiplier.
  double fault_probe(FaultOp op, const std::string& label = "");

  Cluster* cluster_;
  std::size_t id_;
  std::string phase_;  ///< current phase label (set by phase_begin/end)
};

class Cluster {
 public:
  Cluster(const Topology& topology, const CostModel& cost = {});

  /// Run `body` as one instance per processor (T real threads). May be
  /// called repeatedly; clocks, failure state and the fault injector are
  /// reset per run. Injected crashes (ProcessorFailed) are *reported* in
  /// the RunReport; any other exception is rethrown here after all
  /// threads join (first one wins, the rest are logged to the Trace).
  RunReport run(const std::function<void(Processor&)>& body);

  const Topology& topology() const { return topology_; }
  const CostModel& cost() const { return cost_; }
  MemoryChannel& channel() { return channel_; }

  /// Final per-processor clocks of the last run.
  const std::vector<double>& clocks() const { return clocks_; }

  /// Total execution time of the last run = max final clock.
  double makespan() const;

  /// Attach a deterministic failure schedule; each subsequent run()
  /// instantiates a fresh FaultInjector from it, so every run replays the
  /// identical schedule. Pass an empty plan (or clear_fault_plan) to run
  /// fault-free.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  void clear_fault_plan() { fault_plan_ = FaultPlan{}; }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Outcomes of the last run (also returned by run()).
  const RunReport& last_run_report() const { return report_; }

  /// Attach an event sink; processors then record disk scans, compute
  /// sections, barriers, phase markers and fault events with virtual
  /// timestamps. Pass nullptr to detach. The Trace must outlive
  /// subsequent runs.
  void set_trace(Trace* trace) { trace_ = trace; }
  Trace* trace() { return trace_; }

 private:
  friend class Processor;

  /// Arrive at the barrier; `fold` (may be empty) runs on the last
  /// arriver, then the epoch snapshot is captured. Every collective and
  /// barrier funnels through here.
  void sync(const std::function<void()>& fold);

  void apply_phase_floor_and_sync(double extra_cost);
  double max_survivor_clock() const;
  void fill_survivor_clocks(double value);
  /// Hub aggregate bandwidth, after any active degradation fault.
  double hub_bandwidth();

  Topology topology_;
  CostModel cost_;
  MemoryChannel channel_;
  PhaseBarrier barrier_;
  LeaseBoard lease_board_;
  Trace* trace_ = nullptr;

  FaultPlan fault_plan_;
  std::unique_ptr<FaultInjector> injector_;  ///< fresh per run
  RunReport report_;

  std::vector<double> clocks_;
  double phase_start_max_ = 0.0;  // max clock at the last barrier

  // Epoch snapshot of the failed set, rewritten by every fold while the
  // barrier lock is held; read by survivors between collectives (the
  // barrier's release/arrive edges order those reads against the next
  // fold's write).
  std::vector<bool> epoch_failed_;

  // Pristine copies of payloads the injector corrupted in the last
  // collective, keyed [dst][src]; consumed by Processor::retransmit.
  std::vector<std::unordered_map<std::size_t, Blob>> retransmit_store_;

  // Collective scratch state (written before a barrier, folded by the
  // last arriver, consumed after release — see the data-flow note in
  // cluster.cpp).
  std::vector<std::span<Count>> reduce_slots_;
  std::vector<Count> reduce_accum_;
  std::vector<Blob> gather_slots_;
  std::vector<Blob> gather_result_;
  std::vector<std::vector<Blob>> a2a_out_;
  std::vector<std::vector<Blob>> a2a_in_;
  Blob bcast_payload_;
};

}  // namespace eclat::mc
