// Virtual-time cluster simulation: the SPMD substrate the parallel mining
// algorithms run on.
//
// Each simulated processor is a real std::thread, so the concurrency
// structure (phases, barriers, data exchange) is genuinely exercised; but
// *time* is virtual. Every processor owns a clock (seconds) advanced by:
//   - measured thread-CPU time of compute sections, scaled by
//     CostModel::cpu_scale (so results do not depend on the host machine's
//     core count or load);
//   - modeled disk-scan time with per-host contention;
//   - modeled Memory Channel message/collective time.
// Barriers and collectives advance every participant to the maximum clock
// (plus the collective's own cost), exactly like lock-step phases on the
// real machine. The reported "total execution time" of an algorithm is the
// maximum final clock — deterministic for a fixed dataset and topology.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "mc/cost_model.hpp"
#include "mc/memory_channel.hpp"
#include "mc/phase_barrier.hpp"
#include "mc/trace.hpp"
#include "mc/topology.hpp"

namespace eclat::mc {

/// Opaque byte payload for point-to-point style exchange.
using Blob = std::vector<std::uint8_t>;

class Cluster;

/// Handle an SPMD body uses to act as one processor of the cluster.
/// Not copyable; lives for the duration of Cluster::run.
class Processor {
 public:
  std::size_t id() const { return id_; }
  std::size_t host() const;
  const Topology& topology() const;
  const CostModel& cost() const;

  /// Current virtual time, seconds.
  double now() const;

  /// Advance this processor's clock.
  void advance(double seconds);

  /// Run `body`, measure its thread-CPU time, and charge it (scaled) to
  /// the clock. Returns body's result.
  template <typename F>
  auto compute(F&& body) {
    CpuStopwatch watch;
    if constexpr (std::is_void_v<decltype(body())>) {
      body();
      const auto ns = watch.elapsed_ns();
      advance(static_cast<double>(ns) * 1e-9 * cost().cpu_scale);
      trace_compute(static_cast<std::uint64_t>(ns));
    } else {
      auto result = body();
      const auto ns = watch.elapsed_ns();
      advance(static_cast<double>(ns) * 1e-9 * cost().cpu_scale);
      trace_compute(static_cast<std::uint64_t>(ns));
      return result;
    }
  }

  /// Charge a sequential scan of `bytes` from the host-local disk.
  /// `scanners` = processors of this host scanning concurrently
  /// (0 = assume all of them, the common SPMD case).
  void disk_read(std::size_t bytes, std::size_t scanners = 0);
  void disk_write(std::size_t bytes, std::size_t scanners = 0);

  // --- Collectives. Every processor of the cluster must call the same
  // sequence of collectives (standard SPMD discipline). ---

  /// Synchronize; clocks jump to max + barrier cost + any outstanding
  /// hub-bandwidth deficit of the closing phase.
  void barrier();

  /// How a sum-reduction is charged in virtual time. The data movement is
  /// identical; only the cost model differs.
  enum class ReduceScheme : std::uint8_t {
    /// The paper's §6.2 scheme: processors update a shared Memory Channel
    /// array one at a time (mutually exclusive), O(P) updates end to end.
    /// CCPD/Count Distribution pays this every iteration.
    kSerialized,
    /// Recursive-doubling allreduce, O(log P) rounds — the alternative the
    /// paper's footnote 2 points out. Parallel Eclat uses it for its
    /// single initialization reduction.
    kTree,
    /// Serialized across *hosts* only (one representative per host; the
    /// intra-host combine is shared memory). The hybrid algorithms' (§8.1)
    /// inter-host reduction.
    kSerializedHosts,
  };

  /// Element-wise global sum of `values` (same length everywhere); on
  /// return every processor holds the totals.
  void sum_reduce(std::span<Count> values,
                  ReduceScheme scheme = ReduceScheme::kSerialized);

  /// Deliver root's payload to every processor (MC writes are multicast,
  /// §6.1, so the root pays one message).
  Blob broadcast(std::size_t root, Blob payload);

  /// Personalized all-to-all: `outgoing[d]` goes to processor d; returns
  /// `incoming[s]` from processor s. Models the §6.3 lock-step
  /// write/read-phase exchange through bounded transmit buffers.
  std::vector<Blob> all_to_all(std::vector<Blob> outgoing);

  /// Every processor contributes `payload`; all receive all contributions.
  std::vector<Blob> all_gather(Blob payload);

  /// Direct Memory Channel access for algorithm-specific region use.
  MemoryChannel& channel();

  /// Region write/read that charge this processor's clock.
  void region_write(MemoryChannel::RegionId region, std::size_t offset,
                    std::span<const std::uint8_t> data);
  void region_read(MemoryChannel::RegionId region, std::size_t offset,
                   std::span<std::uint8_t> out);

  // --- Tracing (no-ops unless a Trace is attached to the cluster). ---
  void phase_begin(const std::string& label);
  void phase_end(const std::string& label);
  void mark(const std::string& label, std::uint64_t detail = 0);

 private:
  friend class Cluster;
  Processor(Cluster* cluster, std::size_t id) : cluster_(cluster), id_(id) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  void trace_compute(std::uint64_t nanoseconds);

  Cluster* cluster_;
  std::size_t id_;
};

class Cluster {
 public:
  Cluster(const Topology& topology, const CostModel& cost = {});

  /// Run `body` as one instance per processor (T real threads). May be
  /// called repeatedly; clocks are reset per run. Exceptions thrown by any
  /// instance are rethrown here after all threads join.
  void run(const std::function<void(Processor&)>& body);

  const Topology& topology() const { return topology_; }
  const CostModel& cost() const { return cost_; }
  MemoryChannel& channel() { return channel_; }

  /// Final per-processor clocks of the last run.
  const std::vector<double>& clocks() const { return clocks_; }

  /// Total execution time of the last run = max final clock.
  double makespan() const;

  /// Attach an event sink; processors then record disk scans, compute
  /// sections, barriers and phase markers with virtual timestamps.
  /// Pass nullptr to detach. The Trace must outlive subsequent runs.
  void set_trace(Trace* trace) { trace_ = trace; }
  Trace* trace() { return trace_; }

 private:
  friend class Processor;

  void apply_phase_floor_and_sync(double extra_cost);

  Topology topology_;
  CostModel cost_;
  MemoryChannel channel_;
  PhaseBarrier barrier_;
  Trace* trace_ = nullptr;

  std::vector<double> clocks_;
  double phase_start_max_ = 0.0;  // max clock at the last barrier

  // Collective scratch state (written before a barrier, folded by the
  // last arriver, consumed after release — see the data-flow note in
  // cluster.cpp).
  std::vector<std::span<Count>> reduce_slots_;
  std::vector<Count> reduce_accum_;
  std::vector<Blob> gather_slots_;
  std::vector<Blob> gather_result_;
  std::vector<std::vector<Blob>> a2a_out_;
  std::vector<std::vector<Blob>> a2a_in_;
  Blob bcast_payload_;
};

}  // namespace eclat::mc
