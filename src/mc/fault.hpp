// Deterministic, seeded fault injection for the simulated cluster.
//
// A FaultPlan is a list of FaultEvents attached to a Cluster before a run.
// Each event names a *site* — (processor, operation kind, phase label,
// call count) — or a virtual-time trigger, and a fault kind:
//
//   - kCrash: the processor raises ProcessorFailed at the injection site.
//     The cluster marks it failed in the PhaseBarrier so every collective
//     completes with survivor-only semantics instead of deadlocking.
//   - kDiskStall: the matching disk scan(s) take `severity` times longer —
//     a straggler, visible in the makespan but never in the mined output.
//   - kHang: the processor silently stops progressing at the injection
//     site — no exception a peer could observe, no barrier deregistration
//     it performs itself. With duration < 0 it never resumes
//     (ProcessorHung is raised so the *simulation* can reap the thread;
//     semantically the processor just went quiet). With duration >= 0 it
//     resumes after that much virtual time without having renewed its
//     progress leases — the hang-then-resume straggler that races its
//     speculative backups. Only the lease layer (mc/lease.hpp) can detect
//     either form.
//   - kCorruptMessage: bit flips or truncation applied to a payload
//     delivered by all_to_all, exercising the CRC-framed wire decoders.
//     The pristine payload stays in the cluster's retransmit buffer, so a
//     receiver that detects the corruption can recover it at a modeled
//     retransmission cost.
//   - kCorruptRegion: same mutation applied to a raw MemoryChannel region
//     write issued through Processor::region_write.
//   - kHubDegrade: divides the hub's aggregate bandwidth by `severity`
//     during a virtual-time window.
//   - kPartition: a deterministic virtual-time window [at_time, at_time +
//     duration) that splits the processors into two groups (`members` and
//     its complement). A group holds quorum iff it contains a strict
//     majority of *all* processors. While the window is active, a
//     processor on a non-quorum side that attempts any collective
//     operation (barrier, reduce, broadcast, all-to-all, all-gather)
//     aborts with ProcessorPartitioned — it cannot reach enough peers to
//     complete the rendezvous — while the quorum side completes with
//     survivor-only semantics once the minority has deregistered. A
//     processor whose own clock passes the window end before its next
//     collective was never observably cut: the partition healed under it.
//     When neither side holds quorum, every processor that communicates
//     in-window aborts and the run ends as a deterministic clean abort.
//
// Every random draw (which bytes flip, truncation points) comes from
// eclat::Rng streams forked from FaultPlan::seed, and every trigger
// counter is advanced only by the thread that owns it — so a (plan, seed)
// pair reproduces the exact same failure schedule on every run.
// validate_plan() rejects malformed plans (ambiguous shared trigger
// counters, out-of-order partition windows) with an actionable
// std::invalid_argument at construction instead of a debug-only contract.
#pragma once
// eclat-lint: allow-file(det-thread) injector state spans processor threads; every trigger counter is advanced only by its owning thread, so replays are exact

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace eclat::mc {

enum class FaultKind : std::uint8_t {
  kCrash,
  kDiskStall,
  kHang,
  kCorruptMessage,
  kCorruptRegion,
  kHubDegrade,
  kPartition,
};

/// Operation kinds a fault site can match. kPoint matches the explicit
/// Processor::fault_point(label) probes algorithms place at recovery-
/// relevant boundaries (e.g. par_eclat's "class-checkpointed").
enum class FaultOp : std::uint8_t {
  kAny,
  kCompute,
  kDiskRead,
  kDiskWrite,
  kBarrier,
  kSumReduce,
  kBroadcast,
  kAllToAll,
  kAllGather,
  kRegionWrite,
  kPoint,
};

const char* to_string(FaultKind kind);
const char* to_string(FaultOp op);

inline constexpr std::size_t kAnyProcessor = static_cast<std::size_t>(-1);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;

  /// Target processor. Required (not kAnyProcessor) for kCrash,
  /// kDiskStall and kCorruptRegion so trigger counters stay single-owner
  /// (that is what makes the schedule deterministic). For kCorruptMessage
  /// this is the *destination*; kAnyProcessor matches any destination.
  std::size_t processor = kAnyProcessor;

  /// kCorruptMessage only: source processor filter (kAnyProcessor = any).
  std::size_t peer = kAnyProcessor;

  FaultOp op = FaultOp::kAny;
  std::string phase;  ///< phase label filter; empty matches any phase
  std::string label;  ///< kPoint probes only: fault_point label filter

  /// Fire on the Nth matching probe (0 = the first one).
  std::size_t after_calls = 0;

  /// Alternative trigger: fire at the first matching probe whose virtual
  /// time is >= at_time (enabled when >= 0). For kHubDegrade this is the
  /// start of the degradation window.
  double at_time = -1.0;

  /// kDiskStall: time multiplier. kCorruptMessage/kCorruptRegion: maximum
  /// bytes mutated. kHubDegrade: aggregate-bandwidth divisor.
  double severity = 8.0;

  /// kDiskStall only: keep stalling every later matching scan too
  /// (a persistent straggler rather than a single hiccup).
  bool persistent = false;

  /// kHubDegrade: window length in virtual seconds (< 0 = forever).
  /// kHang: how long the processor stays silent (< 0 = it never resumes).
  /// kPartition: window length; must be positive (partitions heal — an
  /// everlasting cut is indistinguishable from crashing the minority).
  double duration = -1.0;

  /// kPartition only: one side of the cut. The other side is the
  /// complement. Must be a non-empty proper subset of the processors,
  /// without duplicates (validate_plan enforces all of it).
  std::vector<std::size_t> members;
};

/// A reproducible failure schedule: seed + events. Value type; attach to a
/// Cluster with Cluster::set_fault_plan. Convenience builders cover the
/// common single-fault cases.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  static FaultEvent crash(std::size_t proc, FaultOp op,
                          std::string phase = "",
                          std::size_t after_calls = 0);
  static FaultEvent crash_at_point(std::size_t proc, std::string label,
                                   std::size_t after_calls = 0);
  static FaultEvent crash_at_time(std::size_t proc, double at_time);
  /// A failing/contended disk: multiplies the duration of every disk
  /// access (reads and writes — device fault, not op fault) on `proc`.
  static FaultEvent disk_stall(std::size_t proc, double multiplier,
                               std::string phase = "",
                               bool persistent = true);
  static FaultEvent hang(std::size_t proc, FaultOp op, std::string phase = "",
                         std::size_t after_calls = 0, double duration = -1.0);
  static FaultEvent hang_at_point(std::size_t proc, std::string label,
                                  std::size_t after_calls = 0,
                                  double duration = -1.0);
  static FaultEvent hang_at_time(std::size_t proc, double at_time,
                                 double duration = -1.0);
  static FaultEvent corrupt_message(std::size_t dst, std::size_t src,
                                    std::size_t after_calls = 0,
                                    double max_bytes = 8.0);
  static FaultEvent corrupt_region(std::size_t proc,
                                   std::size_t after_calls = 0,
                                   double max_bytes = 8.0);
  static FaultEvent hub_degrade(double divisor, double from,
                                double duration = -1.0);
  /// Network partition: `members` vs the rest, active over the virtual-
  /// time window [from, from + duration).
  static FaultEvent partition(std::vector<std::size_t> members, double from,
                              double duration);
};

/// Construction-time sanity check of a plan, also run by FaultInjector:
/// throws std::invalid_argument — with a message naming the offending
/// event — when an owner-kind event lacks an explicit in-range target
/// processor, when two count-triggered events of the same kind share a
/// single-owner trigger counter (same site, same after_calls: both would
/// fire on the same probe, which makes the schedule ambiguous), or when a
/// partition window has out-of-order bounds or a member set that is not a
/// non-empty proper subset of the processors.
void validate_plan(const FaultPlan& plan, std::size_t total_processors);

/// Raised inside a simulated processor when a kCrash event fires. The
/// cluster catches it, deregisters the processor from the barrier (so
/// peers never deadlock) and reports the outcome as kCrashed.
class ProcessorFailed : public std::runtime_error {
 public:
  ProcessorFailed(std::size_t processor, const std::string& site);
  std::size_t processor() const { return processor_; }

 private:
  std::size_t processor_;
};

/// Raised inside a simulated processor when an *unbounded* kHang event
/// fires. Semantically the processor just stops making progress — it
/// crashes nothing and deregisters from nothing on its own — but the
/// simulation must reap the real thread, so the cluster catches this,
/// marks the processor terminal on the LeaseBoard, deregisters it and
/// reports kHung. Peers only ever learn about it through expired leases.
class ProcessorHung : public std::runtime_error {
 public:
  ProcessorHung(std::size_t processor, const std::string& site);
  std::size_t processor() const { return processor_; }

 private:
  std::size_t processor_;
};

/// Raised inside a simulated processor when it attempts a collective
/// operation while an active kPartition window leaves it on a side
/// without quorum: it cannot rendezvous with a majority, so it aborts the
/// phase cleanly. The cluster catches this, deregisters the processor
/// (releasing the quorum side's barriers) and reports kPartitioned.
class ProcessorPartitioned : public std::runtime_error {
 public:
  ProcessorPartitioned(std::size_t processor, const std::string& site);
  std::size_t processor() const { return processor_; }

 private:
  std::size_t processor_;
};

/// What a fault probe decided, besides possibly throwing: the disk-time
/// multiplier of active stalls and a silent-stall duration from a
/// *bounded* hang (0 when none) to be added to the processor's clock
/// without any lease renewal.
struct ProbeResult {
  double stall = 1.0;
  double hang_seconds = 0.0;
};

/// Per-run instantiation of a FaultPlan. Owned by Cluster::run; one fresh
/// injector per run, so repeated runs of one cluster replay the identical
/// schedule.
///
/// Thread-safety contract: probe() and corrupt_region_write() are called
/// from the target processor's own thread and each event's trigger state
/// is owned by that single thread (enforced by requiring an explicit
/// processor on those kinds). corrupt_message() and hub_divisor() fold
/// shared trigger state; folds are serialized by the barrier lock, and
/// corrupt_message() additionally serializes itself internally because
/// retransmissions re-probe it from processor threads. Plans that corrupt
/// retransmissions should therefore name an explicit dst *and* src, so
/// the firing order does not depend on which receiver retries first.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::size_t total_processors);

  /// Probe an injection site. Throws ProcessorFailed when a crash event
  /// fires and ProcessorHung when an unbounded hang fires; otherwise
  /// returns the combined disk-time multiplier of active stalls plus any
  /// bounded-hang stall duration.
  ProbeResult probe(std::size_t proc, FaultOp op, const std::string& phase,
                    const std::string& label, double now);

  /// Fold-side: maybe mutate a payload delivered src -> dst. Returns true
  /// when the payload was corrupted (caller then saves the pristine copy
  /// for retransmission).
  bool corrupt_message(std::size_t dst, std::size_t src,
                       std::vector<std::uint8_t>& payload);

  /// Processor-side: maybe mutate the bytes of a raw region write.
  bool corrupt_region_write(std::size_t proc, const std::string& phase,
                            std::vector<std::uint8_t>& data);

  /// Aggregate-bandwidth divisor active at virtual time `now` (>= 1.0).
  double hub_divisor(double now);

  /// True when `proc` sits on a side without quorum of a kPartition
  /// window active at virtual time `now`. Read-only (no trigger state) so
  /// processors may poll it between collectives — e.g. to defer commits
  /// that need a quorum acknowledgement until the partition heals.
  bool partition_minority(std::size_t proc, double now) const;

  /// Total faults injected so far (all kinds, all processors).
  std::size_t injected() const;

 private:
  struct EventState {
    FaultEvent event;
    std::size_t hits = 0;
    bool fired = false;
  };

  void mutate(std::vector<std::uint8_t>& bytes, std::size_t max_bytes,
              Rng& rng);

  std::size_t total_processors_;
  std::vector<EventState> events_;
  std::vector<Rng> proc_rng_;  ///< one stream per processor (crash sites,
                               ///< region corruption)
  Rng fold_rng_;               ///< fold-side draws (message corruption)
  std::mutex message_mutex_;   ///< serializes corrupt_message (folds and
                               ///< per-processor retransmissions)
  std::atomic<std::size_t> injected_{0};
};

}  // namespace eclat::mc
