// Progress leases: deterministic straggler detection in virtual time.
//
// The LeaseBoard is a per-run bulletin board on which every processor
// publishes timestamped progress facts: lease acquisitions/renewals/
// releases on the tasks it owns, speculative claims, commits, and its own
// current virtual clock. A processor that wants to act on peers' progress
// asks for a LeaseView at its own virtual time T. The board then blocks
// the caller — in *real* time, which is free in the simulation — until
// every other processor has either finished, terminated, or published a
// clock past T, and answers the query from events with timestamp <= T
// only. Because each processor's published clock is monotone, the answer
// is a pure function of (fault plan, seed, T): real-thread scheduling can
// delay a view but never change its contents. That is what keeps
// suspicion, speculation and migration decisions bit-identical across
// runs, unlike wall-clock failure detectors.
//
// Release condition for observer `me` waiting at time T, for every other
// processor p:
//
//     done(p) || terminal(p) || clock(p) > T || (clock(p) == T && p > me)
//
// The id tie-break makes the "simultaneous observers" case well-defined
// (the lower id is served first) and excludes symmetric deadlock: among
// the waiting processors with the minimal published clock, the one with
// the highest id is always released.
//
// Claims order by (time, processor) lexicographically; a claim shadows an
// observer's own intent iff its key precedes (T, me) and the claimant was
// still live at T (terminal_time > T) — except that a claimant that has
// declared done shadows permanently, because a death after done (e.g. a
// partition cut at the next collective) publishes its terminal fact
// outside the protocol window the release condition can order against.
// Commits are permanent facts.
// Terminal processors (crashed / hung / aborted) stop publishing forever,
// so waiters release immediately; their outstanding leases simply stop
// being renewed, which is exactly how a silent hang becomes visible.
//
// Protocol obligation: while any processor may still call view_at, every
// live processor must eventually publish (renew / touch / done) — in
// particular it must call lease_done() before blocking in a collective
// the observer has not reached, or the observer's real-time wait would
// deadlock against the barrier. The cluster marks done/terminal on every
// thread-exit path as a backstop.
#pragma once
// eclat-lint: allow-file(det-thread) the lease board is shared across processor threads; it blocks in real time (free) and answers only from virtual-time-stamped events

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace eclat::mc {

/// Tunables for lease-based speculation. Durations are virtual seconds.
struct LeasePolicy {
  /// Master switch for speculative re-execution of expired-lease tasks.
  bool speculate = true;

  /// A lease not renewed for this long is expired and its holder
  /// suspected. Must exceed the longest fault-free inter-probe gap or
  /// healthy processors are suspected spuriously (harmless for
  /// correctness — first-writer-wins absorbs the duplicates — but wasted
  /// work).
  double lease_duration = 0.25;

  /// Backup launch threshold: speculation starts once a lease is overdue
  /// by lease_duration * speculation_threshold. 1.0 = speculate at
  /// expiry; see EXPERIMENTS.md "straggler ablation" for the sweep behind
  /// the default.
  double speculation_threshold = 1.0;

  /// Seed for the suspector's idle-poll jitter stream (forked per
  /// processor), de-synchronizing concurrent idle speculators
  /// deterministically.
  std::uint64_t seed = 0x1ea5e;

  /// Effective expiry horizon.
  double suspicion_after() const {
    return lease_duration * speculation_threshold;
  }
};

/// A virtual-time-consistent answer to "who is behind at time T?".
/// Produced by LeaseBoard::view_at; every set below is filtered to events
/// with timestamp <= the view's time.
struct LeaseView {
  struct ExpiredLease {
    std::size_t task = 0;
    std::size_t holder = 0;
    double renewed = 0.0;  ///< last renewal <= time
    double expiry = 0.0;   ///< renewed + suspicion horizon
  };

  double time = 0.0;
  std::size_t observer = 0;

  /// Outstanding leases whose last renewal is at least the suspicion
  /// horizon in the past, sorted by task id.
  std::vector<ExpiredLease> expired;

  /// Tasks with a commit at or before `time`, sorted.
  std::vector<std::size_t> committed;

  /// Tasks with a prior claim — claim key (t, proc) < (time, observer)
  /// and the claimant not terminal by `time` — sorted.
  std::vector<std::size_t> claimed;

  /// Processors explicitly marked suspect (e.g. retransmission
  /// exhaustion) at or before `time`, sorted.
  std::vector<std::size_t> suspects;

  /// Earliest future expiry among outstanding, not-yet-expired leases;
  /// +inf when none (nothing left to wait for).
  double next_expiry = std::numeric_limits<double>::infinity();

  bool is_committed(std::size_t task) const;
  bool is_claimed(std::size_t task) const;
};

/// The bulletin board. One instance per Cluster, reset per run. All
/// methods are thread-safe; publishing methods also act as a clock
/// publication for the calling processor and wake blocked observers.
class LeaseBoard {
 public:
  explicit LeaseBoard(std::size_t total_processors);

  /// Forget everything from the previous run.
  void reset();

  // --- Publications. `now` must be monotone per processor (it is a
  // Processor virtual clock). ---

  /// Publish the caller's clock with no other fact attached.
  void touch(std::size_t proc, double now);

  /// Start a lease on `task`, held by `proc`, renewed as of `now`.
  void acquire(std::size_t proc, std::size_t task, double now);

  /// Renew every outstanding lease held by `proc`.
  void renew_all(std::size_t proc, double now);

  /// End `proc`'s lease on `task` without committing (e.g. the task was
  /// migrated away). No-op if no outstanding lease.
  void release(std::size_t proc, std::size_t task, double now);

  /// Record a speculative claim on `task` by `proc`.
  void claim(std::size_t proc, std::size_t task, double now);

  /// Record a commit of `task` by `proc`; also releases `proc`'s own
  /// lease on `task` if outstanding.
  void commit(std::size_t proc, std::size_t task, double now);

  /// Explicitly mark `proc` suspect (retransmission exhaustion escalates
  /// here). Published on behalf of the *observer*, so pass the observer's
  /// clock.
  void mark_suspect(std::size_t proc, std::size_t reporter, double now);

  /// `proc` will publish no further lease activity this run but keeps
  /// running (normal completion of its lease-managed work).
  void mark_done(std::size_t proc, double now);

  /// `proc` stopped executing at `now` (crash / hang / abort). Claims it
  /// made strictly after... — claims dated <= now stay valid history;
  /// viewers disregard claims whose claimant has terminal_time <= their
  /// view time.
  void mark_terminal(std::size_t proc, double now);

  // --- Observation. ---

  /// Block (real time) until every other processor satisfies the release
  /// condition for (observer, time), then answer from events dated <=
  /// time. `policy.suspicion_after()` sets the expiry horizon.
  LeaseView view_at(std::size_t observer, double time,
                    const LeasePolicy& policy);

  /// Number of lease acquisitions recorded this run (diagnostics).
  std::size_t lease_count() const;

 private:
  struct LeaseRecord {
    std::size_t task = 0;
    std::size_t holder = 0;
    double acquired = 0.0;
    std::vector<double> renewals;  ///< ascending; front() == acquired
    double released = -1.0;        ///< < 0 while outstanding
  };

  struct ClaimRecord {
    std::size_t task = 0;
    std::size_t proc = 0;
    double time = 0.0;
  };

  struct CommitRecord {
    std::size_t task = 0;
    std::size_t proc = 0;
    double time = 0.0;
  };

  struct SuspectRecord {
    std::size_t proc = 0;
    double time = 0.0;
  };

  void publish_locked(std::size_t proc, double now);

  mutable std::mutex mutex_;
  std::condition_variable published_;

  std::size_t total_ = 0;
  std::vector<double> clock_;          ///< last published clock per proc
  std::vector<bool> done_;             ///< no further lease activity
  std::vector<double> terminal_time_;  ///< < 0 while live
  std::vector<LeaseRecord> leases_;
  std::vector<ClaimRecord> claims_;
  std::vector<CommitRecord> commits_;
  std::vector<SuspectRecord> suspects_;
};

}  // namespace eclat::mc
