#include "mc/fault.hpp"
// eclat-lint: allow-file(det-thread) injector state spans processor threads; every trigger counter is advanced only by its owning thread, so replays are exact

#include <algorithm>

namespace eclat::mc {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDiskStall: return "disk-stall";
    case FaultKind::kHang: return "hang";
    case FaultKind::kCorruptMessage: return "corrupt-message";
    case FaultKind::kCorruptRegion: return "corrupt-region";
    case FaultKind::kHubDegrade: return "hub-degrade";
    case FaultKind::kPartition: return "partition";
  }
  return "?";
}

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::kAny: return "any";
    case FaultOp::kCompute: return "compute";
    case FaultOp::kDiskRead: return "disk-read";
    case FaultOp::kDiskWrite: return "disk-write";
    case FaultOp::kBarrier: return "barrier";
    case FaultOp::kSumReduce: return "sum-reduce";
    case FaultOp::kBroadcast: return "broadcast";
    case FaultOp::kAllToAll: return "all-to-all";
    case FaultOp::kAllGather: return "all-gather";
    case FaultOp::kRegionWrite: return "region-write";
    case FaultOp::kPoint: return "point";
  }
  return "?";
}

FaultEvent FaultPlan::crash(std::size_t proc, FaultOp op, std::string phase,
                            std::size_t after_calls) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.op = op;
  event.phase = std::move(phase);
  event.after_calls = after_calls;
  return event;
}

FaultEvent FaultPlan::crash_at_point(std::size_t proc, std::string label,
                                     std::size_t after_calls) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.op = FaultOp::kPoint;
  event.label = std::move(label);
  event.after_calls = after_calls;
  return event;
}

FaultEvent FaultPlan::crash_at_time(std::size_t proc, double at_time) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.at_time = at_time;
  return event;
}

FaultEvent FaultPlan::disk_stall(std::size_t proc, double multiplier,
                                 std::string phase, bool persistent) {
  FaultEvent event;
  event.kind = FaultKind::kDiskStall;
  event.processor = proc;
  event.op = FaultOp::kDiskRead;
  event.phase = std::move(phase);
  event.severity = multiplier;
  event.persistent = persistent;
  return event;
}

FaultEvent FaultPlan::hang(std::size_t proc, FaultOp op, std::string phase,
                           std::size_t after_calls, double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.op = op;
  event.phase = std::move(phase);
  event.after_calls = after_calls;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::hang_at_point(std::size_t proc, std::string label,
                                    std::size_t after_calls,
                                    double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.op = FaultOp::kPoint;
  event.label = std::move(label);
  event.after_calls = after_calls;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::hang_at_time(std::size_t proc, double at_time,
                                   double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.at_time = at_time;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::corrupt_message(std::size_t dst, std::size_t src,
                                      std::size_t after_calls,
                                      double max_bytes) {
  FaultEvent event;
  event.kind = FaultKind::kCorruptMessage;
  event.processor = dst;
  event.peer = src;
  event.after_calls = after_calls;
  event.severity = max_bytes;
  return event;
}

FaultEvent FaultPlan::corrupt_region(std::size_t proc,
                                     std::size_t after_calls,
                                     double max_bytes) {
  FaultEvent event;
  event.kind = FaultKind::kCorruptRegion;
  event.processor = proc;
  event.op = FaultOp::kRegionWrite;
  event.after_calls = after_calls;
  event.severity = max_bytes;
  return event;
}

FaultEvent FaultPlan::hub_degrade(double divisor, double from,
                                  double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHubDegrade;
  event.severity = divisor;
  event.at_time = from;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::partition(std::vector<std::size_t> members, double from,
                                double duration) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.members = std::move(members);
  event.at_time = from;
  event.duration = duration;
  return event;
}

namespace {

/// The trigger identity of a count-triggered event: two events of one
/// kind with identical site filters and the same after_calls would fire
/// on the exact same probe — an ambiguous schedule validate_plan rejects.
std::string trigger_signature(const FaultEvent& event) {
  return std::to_string(static_cast<int>(event.kind)) + "|" +
         std::to_string(event.processor) + "|" + std::to_string(event.peer) +
         "|" + std::to_string(static_cast<int>(event.op)) + "|" +
         event.phase + "|" + event.label + "|" +
         std::to_string(event.after_calls);
}

}  // namespace

void validate_plan(const FaultPlan& plan, std::size_t total_processors) {
  std::vector<std::string> seen_triggers;
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& event = plan.events[i];
    const bool needs_owner = event.kind == FaultKind::kCrash ||
                             event.kind == FaultKind::kDiskStall ||
                             event.kind == FaultKind::kHang ||
                             event.kind == FaultKind::kCorruptRegion;
    if (needs_owner && event.processor >= total_processors) {
      throw std::invalid_argument(
          std::string(to_string(event.kind)) +
          " fault events need an explicit target processor "
          "(determinism requires single-owner trigger counters)");
    }
    if (event.kind == FaultKind::kPartition) {
      if (!(event.at_time >= 0.0) || !(event.duration > 0.0)) {
        throw std::invalid_argument(
            "partition event " + std::to_string(i) +
            " has an out-of-order window: needs at_time >= 0 and "
            "duration > 0 so [from, from + duration) is non-empty "
            "(partitions heal; crash the processors instead of cutting "
            "them forever)");
      }
      if (event.members.empty() ||
          event.members.size() >= total_processors) {
        throw std::invalid_argument(
            "partition event " + std::to_string(i) +
            " must cut a non-empty proper subset of the " +
            std::to_string(total_processors) +
            " processors (both sides need at least one member)");
      }
      std::vector<bool> in_group(total_processors, false);
      for (const std::size_t p : event.members) {
        if (p >= total_processors) {
          throw std::invalid_argument(
              "partition event " + std::to_string(i) + " names processor " +
              std::to_string(p) + ", but the cluster has only " +
              std::to_string(total_processors) + " processors");
        }
        if (in_group[p]) {
          throw std::invalid_argument(
              "partition event " + std::to_string(i) +
              " lists processor " + std::to_string(p) + " twice");
        }
        in_group[p] = true;
      }
      continue;  // partitions are window-triggered; no trigger counter
    }
    if (event.kind == FaultKind::kHubDegrade || event.at_time >= 0.0) {
      continue;  // time/window triggers cannot collide on a counter
    }
    std::string signature = trigger_signature(event);
    for (const std::string& prior : seen_triggers) {
      if (prior == signature) {
        throw std::invalid_argument(
            "two " + std::string(to_string(event.kind)) +
            " events share one single-owner trigger counter (processor " +
            std::to_string(event.processor) + ", op " + to_string(event.op) +
            ", phase '" + event.phase + "', label '" + event.label +
            "', after_calls " + std::to_string(event.after_calls) +
            "): both would fire on the same probe — distinguish their "
            "sites or after_calls");
      }
    }
    seen_triggers.push_back(std::move(signature));
  }
}

ProcessorFailed::ProcessorFailed(std::size_t processor,
                                 const std::string& site)
    : std::runtime_error("processor " + std::to_string(processor) +
                         " failed at " + site),
      processor_(processor) {}

ProcessorHung::ProcessorHung(std::size_t processor, const std::string& site)
    : std::runtime_error("processor " + std::to_string(processor) +
                         " hung at " + site),
      processor_(processor) {}

ProcessorPartitioned::ProcessorPartitioned(std::size_t processor,
                                           const std::string& site)
    : std::runtime_error("processor " + std::to_string(processor) +
                         " partitioned away from quorum at " + site),
      processor_(processor) {}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             std::size_t total_processors)
    : total_processors_(total_processors),
      fold_rng_(plan.seed ^ 0xf01df01df01df01dULL) {
  validate_plan(plan, total_processors);
  events_.reserve(plan.events.size());
  for (const FaultEvent& event : plan.events) {
    events_.push_back(EventState{event, 0, false});
  }
  // One independent stream per processor: forked deterministically from
  // the plan seed so a processor's draws never depend on peer timing.
  Rng seeder(plan.seed);
  proc_rng_.reserve(total_processors);
  for (std::size_t p = 0; p < total_processors; ++p) {
    proc_rng_.push_back(seeder.split());
  }
}

namespace {

bool is_collective(FaultOp op) {
  return op == FaultOp::kBarrier || op == FaultOp::kSumReduce ||
         op == FaultOp::kBroadcast || op == FaultOp::kAllToAll ||
         op == FaultOp::kAllGather;
}

bool site_matches(const FaultEvent& event, FaultOp op,
                  const std::string& phase, const std::string& label) {
  // A stalled disk is a device fault: it slows every access, so a
  // kDiskStall registered against either disk op matches both.
  const bool both_disk =
      event.kind == FaultKind::kDiskStall &&
      (op == FaultOp::kDiskRead || op == FaultOp::kDiskWrite) &&
      (event.op == FaultOp::kDiskRead || event.op == FaultOp::kDiskWrite);
  if (event.op != FaultOp::kAny && event.op != op && !both_disk)
    return false;
  if (!event.phase.empty() && event.phase != phase) return false;
  if (!event.label.empty() && event.label != label) return false;
  return true;
}

}  // namespace

ProbeResult FaultInjector::probe(std::size_t proc, FaultOp op,
                                 const std::string& phase,
                                 const std::string& label, double now) {
  // A collective needs a majority rendezvous: a processor cut off from
  // quorum by an active partition window aborts the phase right here.
  // Read-only (several minority processors probe the same window
  // concurrently), so no trigger state to race on.
  if (is_collective(op) && partition_minority(proc, now)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    throw ProcessorPartitioned(
        proc, std::string(to_string(op)) +
                  (phase.empty() ? "" : "/" + phase));
  }
  ProbeResult result;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCrash &&
        event.kind != FaultKind::kDiskStall &&
        event.kind != FaultKind::kHang) {
      continue;
    }
    if (event.processor != proc) continue;
    if (!site_matches(event, op, phase, label)) continue;

    bool fires = false;
    if (event.at_time >= 0.0) {
      fires = !state.fired && now >= event.at_time;
    } else {
      fires = !state.fired && state.hits == event.after_calls;
      ++state.hits;
    }
    if (fires) {
      state.fired = true;
      injected_.fetch_add(1, std::memory_order_relaxed);
      const std::string site = std::string(to_string(op)) +
                               (phase.empty() ? "" : "/" + phase) +
                               (label.empty() ? "" : "/" + label);
      if (event.kind == FaultKind::kCrash) {
        throw ProcessorFailed(proc, site);
      }
      if (event.kind == FaultKind::kHang) {
        if (event.duration < 0.0) throw ProcessorHung(proc, site);
        result.hang_seconds += event.duration;
        continue;
      }
      result.stall *= event.severity;
    } else if (state.fired && event.persistent &&
               event.kind == FaultKind::kDiskStall) {
      result.stall *= event.severity;
    }
  }
  return result;
}

bool FaultInjector::corrupt_message(std::size_t dst, std::size_t src,
                                    std::vector<std::uint8_t>& payload) {
  // Retransmissions re-probe this from processor threads, concurrently
  // with each other (the original deliveries stay fold-serialized).
  std::lock_guard<std::mutex> lock(message_mutex_);
  bool corrupted = false;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCorruptMessage || state.fired) continue;
    if (event.processor != kAnyProcessor && event.processor != dst) continue;
    if (event.peer != kAnyProcessor && event.peer != src) continue;
    if (payload.empty()) continue;  // nothing to corrupt; keep waiting
    if (state.hits++ != event.after_calls) continue;
    state.fired = true;
    injected_.fetch_add(1, std::memory_order_relaxed);
    mutate(payload, static_cast<std::size_t>(event.severity), fold_rng_);
    corrupted = true;
  }
  return corrupted;
}

bool FaultInjector::corrupt_region_write(std::size_t proc,
                                         const std::string& phase,
                                         std::vector<std::uint8_t>& data) {
  bool corrupted = false;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCorruptRegion || state.fired) continue;
    if (event.processor != proc) continue;
    if (!event.phase.empty() && event.phase != phase) continue;
    if (data.empty()) continue;
    if (state.hits++ != event.after_calls) continue;
    state.fired = true;
    injected_.fetch_add(1, std::memory_order_relaxed);
    mutate(data, static_cast<std::size_t>(event.severity),
           proc_rng_[proc]);
    corrupted = true;
  }
  return corrupted;
}

double FaultInjector::hub_divisor(double now) {
  double divisor = 1.0;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kHubDegrade) continue;
    const double from = std::max(event.at_time, 0.0);
    const bool active =
        now >= from && (event.duration < 0.0 || now < from + event.duration);
    if (active) {
      if (!state.fired) {
        state.fired = true;
        injected_.fetch_add(1, std::memory_order_relaxed);
      }
      divisor *= event.severity;
    }
  }
  return std::max(divisor, 1.0);
}

bool FaultInjector::partition_minority(std::size_t proc, double now) const {
  for (const EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kPartition) continue;
    if (now < event.at_time || now >= event.at_time + event.duration) {
      continue;  // window not active at this processor's clock
    }
    const bool in_group =
        std::find(event.members.begin(), event.members.end(), proc) !=
        event.members.end();
    const std::size_t side_size = in_group
                                      ? event.members.size()
                                      : total_processors_ -
                                            event.members.size();
    // Quorum = strict majority of *all* processors (the static membership
    // the run started with; crashed processors still count toward the
    // denominator, exactly like a real quorum system's configured size).
    if (side_size * 2 <= total_processors_) return true;
  }
  return false;
}

std::size_t FaultInjector::injected() const {
  return injected_.load(std::memory_order_relaxed);
}

void FaultInjector::mutate(std::vector<std::uint8_t>& bytes,
                           std::size_t max_bytes, Rng& rng) {
  // Truncation 1 time in 4, bit flips otherwise — both must be caught by
  // the CRC32 frame check, never decoded into wrong counts.
  if (rng.below(4) == 0) {
    bytes.resize(rng.below(bytes.size()));
    return;
  }
  const std::size_t flips =
      1 + rng.below(std::max<std::size_t>(max_bytes, 1));
  for (std::size_t f = 0; f < flips; ++f) {
    bytes[rng.below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
  }
}

}  // namespace eclat::mc
