#include "mc/fault.hpp"
// eclat-lint: allow-file(det-thread) injector state spans processor threads; every trigger counter is advanced only by its owning thread, so replays are exact

#include <algorithm>

namespace eclat::mc {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDiskStall: return "disk-stall";
    case FaultKind::kHang: return "hang";
    case FaultKind::kCorruptMessage: return "corrupt-message";
    case FaultKind::kCorruptRegion: return "corrupt-region";
    case FaultKind::kHubDegrade: return "hub-degrade";
  }
  return "?";
}

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::kAny: return "any";
    case FaultOp::kCompute: return "compute";
    case FaultOp::kDiskRead: return "disk-read";
    case FaultOp::kDiskWrite: return "disk-write";
    case FaultOp::kBarrier: return "barrier";
    case FaultOp::kSumReduce: return "sum-reduce";
    case FaultOp::kBroadcast: return "broadcast";
    case FaultOp::kAllToAll: return "all-to-all";
    case FaultOp::kAllGather: return "all-gather";
    case FaultOp::kRegionWrite: return "region-write";
    case FaultOp::kPoint: return "point";
  }
  return "?";
}

FaultEvent FaultPlan::crash(std::size_t proc, FaultOp op, std::string phase,
                            std::size_t after_calls) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.op = op;
  event.phase = std::move(phase);
  event.after_calls = after_calls;
  return event;
}

FaultEvent FaultPlan::crash_at_point(std::size_t proc, std::string label,
                                     std::size_t after_calls) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.op = FaultOp::kPoint;
  event.label = std::move(label);
  event.after_calls = after_calls;
  return event;
}

FaultEvent FaultPlan::crash_at_time(std::size_t proc, double at_time) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.processor = proc;
  event.at_time = at_time;
  return event;
}

FaultEvent FaultPlan::disk_stall(std::size_t proc, double multiplier,
                                 std::string phase, bool persistent) {
  FaultEvent event;
  event.kind = FaultKind::kDiskStall;
  event.processor = proc;
  event.op = FaultOp::kDiskRead;
  event.phase = std::move(phase);
  event.severity = multiplier;
  event.persistent = persistent;
  return event;
}

FaultEvent FaultPlan::hang(std::size_t proc, FaultOp op, std::string phase,
                           std::size_t after_calls, double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.op = op;
  event.phase = std::move(phase);
  event.after_calls = after_calls;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::hang_at_point(std::size_t proc, std::string label,
                                    std::size_t after_calls,
                                    double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.op = FaultOp::kPoint;
  event.label = std::move(label);
  event.after_calls = after_calls;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::hang_at_time(std::size_t proc, double at_time,
                                   double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHang;
  event.processor = proc;
  event.at_time = at_time;
  event.duration = duration;
  return event;
}

FaultEvent FaultPlan::corrupt_message(std::size_t dst, std::size_t src,
                                      std::size_t after_calls,
                                      double max_bytes) {
  FaultEvent event;
  event.kind = FaultKind::kCorruptMessage;
  event.processor = dst;
  event.peer = src;
  event.after_calls = after_calls;
  event.severity = max_bytes;
  return event;
}

FaultEvent FaultPlan::corrupt_region(std::size_t proc,
                                     std::size_t after_calls,
                                     double max_bytes) {
  FaultEvent event;
  event.kind = FaultKind::kCorruptRegion;
  event.processor = proc;
  event.op = FaultOp::kRegionWrite;
  event.after_calls = after_calls;
  event.severity = max_bytes;
  return event;
}

FaultEvent FaultPlan::hub_degrade(double divisor, double from,
                                  double duration) {
  FaultEvent event;
  event.kind = FaultKind::kHubDegrade;
  event.severity = divisor;
  event.at_time = from;
  event.duration = duration;
  return event;
}

ProcessorFailed::ProcessorFailed(std::size_t processor,
                                 const std::string& site)
    : std::runtime_error("processor " + std::to_string(processor) +
                         " failed at " + site),
      processor_(processor) {}

ProcessorHung::ProcessorHung(std::size_t processor, const std::string& site)
    : std::runtime_error("processor " + std::to_string(processor) +
                         " hung at " + site),
      processor_(processor) {}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             std::size_t total_processors)
    : fold_rng_(plan.seed ^ 0xf01df01df01df01dULL) {
  events_.reserve(plan.events.size());
  for (const FaultEvent& event : plan.events) {
    const bool needs_owner = event.kind == FaultKind::kCrash ||
                             event.kind == FaultKind::kDiskStall ||
                             event.kind == FaultKind::kHang ||
                             event.kind == FaultKind::kCorruptRegion;
    if (needs_owner && event.processor >= total_processors) {
      throw std::invalid_argument(
          std::string(to_string(event.kind)) +
          " fault events need an explicit target processor "
          "(determinism requires single-owner trigger counters)");
    }
    events_.push_back(EventState{event, 0, false});
  }
  // One independent stream per processor: forked deterministically from
  // the plan seed so a processor's draws never depend on peer timing.
  Rng seeder(plan.seed);
  proc_rng_.reserve(total_processors);
  for (std::size_t p = 0; p < total_processors; ++p) {
    proc_rng_.push_back(seeder.split());
  }
}

namespace {

bool site_matches(const FaultEvent& event, FaultOp op,
                  const std::string& phase, const std::string& label) {
  // A stalled disk is a device fault: it slows every access, so a
  // kDiskStall registered against either disk op matches both.
  const bool both_disk =
      event.kind == FaultKind::kDiskStall &&
      (op == FaultOp::kDiskRead || op == FaultOp::kDiskWrite) &&
      (event.op == FaultOp::kDiskRead || event.op == FaultOp::kDiskWrite);
  if (event.op != FaultOp::kAny && event.op != op && !both_disk)
    return false;
  if (!event.phase.empty() && event.phase != phase) return false;
  if (!event.label.empty() && event.label != label) return false;
  return true;
}

}  // namespace

ProbeResult FaultInjector::probe(std::size_t proc, FaultOp op,
                                 const std::string& phase,
                                 const std::string& label, double now) {
  ProbeResult result;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCrash &&
        event.kind != FaultKind::kDiskStall &&
        event.kind != FaultKind::kHang) {
      continue;
    }
    if (event.processor != proc) continue;
    if (!site_matches(event, op, phase, label)) continue;

    bool fires = false;
    if (event.at_time >= 0.0) {
      fires = !state.fired && now >= event.at_time;
    } else {
      fires = !state.fired && state.hits == event.after_calls;
      ++state.hits;
    }
    if (fires) {
      state.fired = true;
      injected_.fetch_add(1, std::memory_order_relaxed);
      const std::string site = std::string(to_string(op)) +
                               (phase.empty() ? "" : "/" + phase) +
                               (label.empty() ? "" : "/" + label);
      if (event.kind == FaultKind::kCrash) {
        throw ProcessorFailed(proc, site);
      }
      if (event.kind == FaultKind::kHang) {
        if (event.duration < 0.0) throw ProcessorHung(proc, site);
        result.hang_seconds += event.duration;
        continue;
      }
      result.stall *= event.severity;
    } else if (state.fired && event.persistent &&
               event.kind == FaultKind::kDiskStall) {
      result.stall *= event.severity;
    }
  }
  return result;
}

bool FaultInjector::corrupt_message(std::size_t dst, std::size_t src,
                                    std::vector<std::uint8_t>& payload) {
  // Retransmissions re-probe this from processor threads, concurrently
  // with each other (the original deliveries stay fold-serialized).
  std::lock_guard<std::mutex> lock(message_mutex_);
  bool corrupted = false;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCorruptMessage || state.fired) continue;
    if (event.processor != kAnyProcessor && event.processor != dst) continue;
    if (event.peer != kAnyProcessor && event.peer != src) continue;
    if (payload.empty()) continue;  // nothing to corrupt; keep waiting
    if (state.hits++ != event.after_calls) continue;
    state.fired = true;
    injected_.fetch_add(1, std::memory_order_relaxed);
    mutate(payload, static_cast<std::size_t>(event.severity), fold_rng_);
    corrupted = true;
  }
  return corrupted;
}

bool FaultInjector::corrupt_region_write(std::size_t proc,
                                         const std::string& phase,
                                         std::vector<std::uint8_t>& data) {
  bool corrupted = false;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kCorruptRegion || state.fired) continue;
    if (event.processor != proc) continue;
    if (!event.phase.empty() && event.phase != phase) continue;
    if (data.empty()) continue;
    if (state.hits++ != event.after_calls) continue;
    state.fired = true;
    injected_.fetch_add(1, std::memory_order_relaxed);
    mutate(data, static_cast<std::size_t>(event.severity),
           proc_rng_[proc]);
    corrupted = true;
  }
  return corrupted;
}

double FaultInjector::hub_divisor(double now) {
  double divisor = 1.0;
  for (EventState& state : events_) {
    const FaultEvent& event = state.event;
    if (event.kind != FaultKind::kHubDegrade) continue;
    const double from = std::max(event.at_time, 0.0);
    const bool active =
        now >= from && (event.duration < 0.0 || now < from + event.duration);
    if (active) {
      if (!state.fired) {
        state.fired = true;
        injected_.fetch_add(1, std::memory_order_relaxed);
      }
      divisor *= event.severity;
    }
  }
  return std::max(divisor, 1.0);
}

std::size_t FaultInjector::injected() const {
  return injected_.load(std::memory_order_relaxed);
}

void FaultInjector::mutate(std::vector<std::uint8_t>& bytes,
                           std::size_t max_bytes, Rng& rng) {
  // Truncation 1 time in 4, bit flips otherwise — both must be caught by
  // the CRC32 frame check, never decoded into wrong counts.
  if (rng.below(4) == 0) {
    bytes.resize(rng.below(bytes.size()));
    return;
  }
  const std::size_t flips =
      1 + rng.below(std::max<std::size_t>(max_bytes, 1));
  for (std::size_t f = 0; f < flips; ++f) {
    bytes[rng.below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
  }
}

}  // namespace eclat::mc
