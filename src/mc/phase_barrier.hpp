// Reusable generation barrier with an on-last hook: the hook runs on the
// final arriving thread, under the barrier's lock, before anyone is
// released. Collectives use it to fold per-processor state (virtual
// clocks, byte counters) deterministically at phase boundaries.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace eclat::mc {

class PhaseBarrier {
 public:
  explicit PhaseBarrier(std::size_t participants);

  /// Block until all participants arrive. `on_last` (if non-empty) runs
  /// exactly once per generation, on the last arriving thread, while the
  /// barrier lock is held — all other participants are still blocked.
  void arrive_and_wait(const std::function<void()>& on_last = {});

  std::size_t participants() const { return participants_; }

 private:
  const std::size_t participants_;
  std::mutex mutex_;
  std::condition_variable released_;
  std::size_t waiting_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace eclat::mc
