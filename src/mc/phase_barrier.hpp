// Reusable generation barrier with an on-last hook and failure epochs.
//
// The hook runs on the final arriving thread, under the barrier's lock,
// before anyone is released. Collectives use it to fold per-processor
// state (virtual clocks, byte counters) deterministically at phase
// boundaries.
//
// Failure epochs: a participant that crashes calls deregister() instead of
// ever arriving again. The barrier marks it failed, shrinks the active
// count, and — if everyone else is already waiting — completes the
// generation on the deregistering thread (running the pending fold), so a
// crash can never deadlock the survivors. Folds observe the failed set via
// failed_in_fold() and implement survivor-only semantics.
#pragma once
// eclat-lint: allow-file(det-thread) the PhaseBarrier IS the simulator's real-thread rendezvous; virtual time is layered above it

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace eclat::mc {

class PhaseBarrier {
 public:
  explicit PhaseBarrier(std::size_t participants);

  /// Block until all *active* participants arrive. `on_last` (if
  /// non-empty) runs exactly once per generation, while the barrier lock
  /// is held — all other participants are still blocked. In SPMD use every
  /// arriver passes the same logical hook; the first one's copy is the one
  /// that runs (possibly on a deregistering thread, see deregister()).
  void arrive_and_wait(const std::function<void()>& on_last = {});

  /// Permanently remove a participant (processor crash). Never blocks. If
  /// the remaining active participants are all waiting, the pending
  /// generation completes here: the stored hook runs on *this* thread and
  /// the waiters release.
  void deregister(std::size_t participant);

  /// Restore all participants to active (start of a fresh cluster run).
  /// Must not be called while any thread is waiting.
  void reset();

  /// The failed set, readable without synchronization only from inside an
  /// on_last hook (the barrier lock is held there).
  const std::vector<bool>& failed_in_fold() const { return failed_; }

  /// Locked copy of the failed set, callable from anywhere.
  std::vector<bool> failed_snapshot() const;

  std::size_t participants() const { return participants_; }

  /// Participants still active (not deregistered). Locked.
  std::size_t active() const;

 private:
  void complete_generation_locked();

  const std::size_t participants_;
  mutable std::mutex mutex_;
  std::condition_variable released_;
  std::size_t waiting_ = 0;
  std::size_t generation_ = 0;
  std::size_t active_;
  std::vector<bool> failed_;
  std::function<void()> pending_hook_;
};

}  // namespace eclat::mc
