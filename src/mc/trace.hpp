// Virtual-time event tracing for cluster runs: every processor can record
// phase markers and resource events with its virtual timestamp, and the
// collected timeline can be rendered as text or CSV after the run. Used
// by the examples to show where the paper's algorithms spend their time,
// and by tests to assert ordering properties of the simulation.
#pragma once
// eclat-lint: allow-file(det-thread) the trace sink is appended to from every processor thread; events carry virtual timestamps and are sorted before rendering

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace eclat::mc {

enum class TraceKind : std::uint8_t {
  kPhaseBegin,
  kPhaseEnd,
  kDisk,     ///< a disk scan (detail = bytes)
  kMessage,  ///< network transfer (detail = bytes)
  kCompute,  ///< a compute section (detail = nanoseconds of CPU)
  kBarrier,
  kMark,     ///< free-form annotation
  kFault,    ///< injected fault or failure-handling action (crash,
             ///< disk-stall, corrupt payload, retransmit, recovery step)
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  std::size_t processor = 0;
  double time = 0.0;  ///< virtual seconds at the moment of recording
  TraceKind kind = TraceKind::kMark;
  std::string label;
  std::uint64_t detail = 0;
};

/// Thread-safe event sink shared by all processors of one run.
class Trace {
 public:
  void record(std::size_t processor, double time, TraceKind kind,
              std::string label, std::uint64_t detail = 0);

  /// All events, ordered by (time, processor). Call after Cluster::run.
  std::vector<TraceEvent> sorted() const;

  std::size_t size() const;
  void clear();

  /// Human-readable timeline, one line per event.
  void dump(std::ostream& out) const;

  /// Machine-readable CSV: processor,time,kind,label,detail.
  void dump_csv(std::ostream& out) const;

  /// Total virtual seconds spent between matching kPhaseBegin/kPhaseEnd
  /// markers with `label`, maximized over processors (the phase's
  /// contribution to the makespan).
  double phase_span(const std::string& label) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace eclat::mc
