// Virtual-time cost model of the paper's testbed (§6.1, §8):
//   - DEC Memory Channel: 5.2 us process-to-process write latency,
//     30 MB/s per-link bandwidth, ~32 MB/s aggregate hub bandwidth,
//     guaranteed write ordering, optional write-doubling (each processor
//     writes its payload twice — once to its own receive region, once to
//     the transmit region — so same-host peers see it without loop-back).
//   - One local disk per host; simultaneous scanners on a host contend
//     (the effect behind the paper's "fewer processors per host wins"
//     observation in §8.1).
//   - 233 MHz Alpha cores: measured thread-CPU nanoseconds are scaled by
//     `cpu_scale` to approximate the testbed's speed. The scale factor is
//     a constant, so it never changes *relative* results.
//
// All times are in seconds; bandwidths in bytes/second.
#pragma once

#include <cstddef>

namespace eclat::mc {

struct CostModel {
  // Memory Channel network.
  double mc_latency = 5.2e-6;           ///< per remote write/message
  double link_bandwidth = 30.0e6;       ///< per-link transfer rate
  double aggregate_bandwidth = 32.0e6;  ///< hub ceiling across all links
  bool write_doubling = true;           ///< double-charge remote writes
  std::size_t exchange_buffer = 2 << 20;  ///< 2 MB transmit/receive buffers

  // Local disk, one per host.
  double disk_seek = 12.0e-3;       ///< per scan start
  double disk_bandwidth = 6.0e6;    ///< sustained sequential rate
  /// Extra serialization when n processors of one host scan concurrently:
  /// effective per-processor bandwidth = disk_bandwidth / (1 + (n-1) *
  /// contention). 0 = no contention, 1 = perfect serialization, > 1 =
  /// interfering streams (head thrashing drops aggregate throughput below
  /// a single sequential stream — the mid-90s disk behaviour behind the
  /// paper's §8.1 observation that fewer processors per host win).
  double disk_contention = 1.5;

  // CPU: measured thread-CPU time * cpu_scale = simulated seconds. A
  // 233 MHz in-order Alpha is roughly 50x slower than a modern x86 core
  // on this pointer-and-branch heavy code; the constant only positions
  // compute relative to the (fixed, device-specified) network and disk
  // rates, never relative results between algorithms at one scale.
  double cpu_scale = 50.0;

  // Local memory copies (receive-region drains and the like).
  double memcpy_bandwidth = 80.0e6;

  /// Cost of moving `bytes` over one Memory Channel link in one message.
  double message_time(std::size_t bytes) const {
    const double factor = write_doubling ? 2.0 : 1.0;
    return mc_latency + factor * static_cast<double>(bytes) / link_bandwidth;
  }

  /// Cost of a barrier among `total` processors (dissemination-style:
  /// ceil(log2(total)) rounds of remote writes).
  double barrier_time(std::size_t total) const {
    std::size_t rounds = 0;
    for (std::size_t span = 1; span < total; span *= 2) ++rounds;
    return static_cast<double>(rounds) * mc_latency;
  }

  /// Per-processor time to scan `bytes` from the host-local disk while
  /// `scanners` processors of the same host scan concurrently.
  double disk_time(std::size_t bytes, std::size_t scanners) const {
    const double slowdown =
        1.0 + disk_contention * static_cast<double>(scanners - 1);
    return disk_seek +
           static_cast<double>(bytes) / disk_bandwidth * slowdown;
  }

  /// Like disk_time but without the seek: the head is already positioned
  /// because the previous access ended where this one starts.
  double disk_stream_time(std::size_t bytes, std::size_t scanners) const {
    const double slowdown =
        1.0 + disk_contention * static_cast<double>(scanners - 1);
    return static_cast<double>(bytes) / disk_bandwidth * slowdown;
  }

  double memcpy_time(std::size_t bytes) const {
    return static_cast<double>(bytes) / memcpy_bandwidth;
  }
};

}  // namespace eclat::mc
