#include "mc/phase_barrier.hpp"
// eclat-lint: allow-file(det-thread) the PhaseBarrier IS the simulator's real-thread rendezvous; virtual time is layered above it

#include <stdexcept>
#include <utility>

namespace eclat::mc {

PhaseBarrier::PhaseBarrier(std::size_t participants)
    : participants_(participants),
      active_(participants),
      failed_(participants, false) {
  if (participants == 0) {
    throw std::invalid_argument("barrier needs at least one participant");
  }
}

void PhaseBarrier::complete_generation_locked() {
  // Complete the generation *before* running the hook, and notify even if
  // the hook throws: a fold that raises (e.g. an SPMD contract violation)
  // must not leave the other participants blocked forever.
  auto hook = std::exchange(pending_hook_, nullptr);
  waiting_ = 0;
  ++generation_;
  struct Notifier {
    std::condition_variable& cv;
    ~Notifier() { cv.notify_all(); }
  } notifier{released_};
  if (hook) hook();
}

void PhaseBarrier::arrive_and_wait(const std::function<void()>& on_last) {
  std::unique_lock lock(mutex_);
  const std::size_t my_generation = generation_;
  if (!pending_hook_ && on_last) pending_hook_ = on_last;
  if (++waiting_ == active_) {
    complete_generation_locked();
    return;
  }
  released_.wait(lock,
                 [&] { return generation_ != my_generation; });
}

void PhaseBarrier::deregister(std::size_t participant) {
  std::unique_lock lock(mutex_);
  if (participant >= participants_ || failed_[participant]) return;
  failed_[participant] = true;
  --active_;
  // If every surviving participant is already blocked at the barrier, the
  // generation can never complete by arrival — finish it here, on the
  // deregistering (crashing) thread, so the survivors release.
  if (active_ > 0 && waiting_ == active_) {
    complete_generation_locked();
  }
}

void PhaseBarrier::reset() {
  std::unique_lock lock(mutex_);
  if (waiting_ != 0) {
    throw std::logic_error("PhaseBarrier::reset with threads waiting");
  }
  active_ = participants_;
  failed_.assign(participants_, false);
  pending_hook_ = nullptr;
}

std::vector<bool> PhaseBarrier::failed_snapshot() const {
  std::unique_lock lock(mutex_);
  return failed_;
}

std::size_t PhaseBarrier::active() const {
  std::unique_lock lock(mutex_);
  return active_;
}

}  // namespace eclat::mc
