#include "mc/phase_barrier.hpp"

#include <stdexcept>

namespace eclat::mc {

PhaseBarrier::PhaseBarrier(std::size_t participants)
    : participants_(participants) {
  if (participants == 0) {
    throw std::invalid_argument("barrier needs at least one participant");
  }
}

void PhaseBarrier::arrive_and_wait(const std::function<void()>& on_last) {
  std::unique_lock lock(mutex_);
  const std::size_t my_generation = generation_;
  if (++waiting_ == participants_) {
    if (on_last) on_last();
    waiting_ = 0;
    ++generation_;
    released_.notify_all();
    return;
  }
  released_.wait(lock,
                 [&] { return generation_ != my_generation; });
}

}  // namespace eclat::mc
