#include "mc/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace eclat::mc {

// Data-flow note for the collective scratch state
// ------------------------------------------------
// Every collective follows: publish into slots owned by *this* processor →
// arrive at the barrier (the last arriver folds all slots and rewrites the
// clocks while everyone else is still blocked) → consume from slots owned
// by this processor. A processor can only reach the *next* collective's
// fold after finishing its consume, and the next fold only runs when every
// processor has arrived — so fold never races with a publish or consume of
// the previous round, and a single barrier round per collective suffices.

Cluster::Cluster(const Topology& topology, const CostModel& cost)
    : topology_(topology),
      cost_(cost),
      channel_(cost),
      barrier_(topology.total()) {
  topology_.validate();
  const std::size_t total = topology_.total();
  clocks_.assign(total, 0.0);
  reduce_slots_.assign(total, {});
  gather_slots_.assign(total, {});
  a2a_out_.assign(total, {});
  a2a_in_.assign(total, std::vector<Blob>(total));
}

double Cluster::makespan() const {
  return clocks_.empty() ? 0.0
                         : *std::max_element(clocks_.begin(), clocks_.end());
}

void Cluster::run(const std::function<void(Processor&)>& body) {
  const std::size_t total = topology_.total();
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  phase_start_max_ = 0.0;
  channel_.reset_phase();

  std::vector<std::exception_ptr> errors(total);
  std::vector<std::thread> threads;
  threads.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    threads.emplace_back([this, &body, &errors, p] {
      Processor self(this, p);
      try {
        body(self);
      } catch (...) {
        errors[p] = std::current_exception();
        // Keep the SPMD program from deadlocking on peers stuck at a
        // barrier: there is no recovery path, so fail loudly.
        std::terminate();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

namespace {

/// Max element of a clock vector.
double max_clock(const std::vector<double>& clocks) {
  return *std::max_element(clocks.begin(), clocks.end());
}

}  // namespace

// --- Processor ---

std::size_t Processor::host() const {
  return cluster_->topology().host_of(id_);
}

const Topology& Processor::topology() const { return cluster_->topology(); }

const CostModel& Processor::cost() const { return cluster_->cost(); }

double Processor::now() const { return cluster_->clocks_[id_]; }

void Processor::advance(double seconds) {
  cluster_->clocks_[id_] += seconds;
}

void Processor::disk_read(std::size_t bytes, std::size_t scanners) {
  if (scanners == 0) scanners = topology().procs_per_host;
  advance(cost().disk_time(bytes, scanners));
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kDisk, "scan", bytes);
  }
}

void Processor::disk_write(std::size_t bytes, std::size_t scanners) {
  disk_read(bytes, scanners);  // same model both directions
}

MemoryChannel& Processor::channel() { return cluster_->channel_; }

void Processor::region_write(MemoryChannel::RegionId region,
                             std::size_t offset,
                             std::span<const std::uint8_t> data) {
  advance(cluster_->channel_.write(region, offset, data));
}

void Processor::region_read(MemoryChannel::RegionId region,
                            std::size_t offset,
                            std::span<std::uint8_t> out) {
  advance(cluster_->channel_.read(region, offset, out));
}

void Cluster::apply_phase_floor_and_sync(double extra_cost) {
  // Runs inside a barrier fold. Any bytes pushed through raw region writes
  // since the previous sync point may have been hub-limited: stretch the
  // phase to total_bytes / aggregate_bandwidth when the per-link charges
  // did not already cover it.
  double now = max_clock(clocks_);
  const double phase_elapsed = now - phase_start_max_;
  const double hub_floor =
      static_cast<double>(channel_.phase_hub_bytes()) /
      cost_.aggregate_bandwidth;
  if (hub_floor > phase_elapsed) now += hub_floor - phase_elapsed;
  now += extra_cost;
  std::fill(clocks_.begin(), clocks_.end(), now);
  phase_start_max_ = now;
  channel_.reset_phase();
}

void Processor::barrier() {
  Cluster& cluster = *cluster_;
  cluster.barrier_.arrive_and_wait([&cluster] {
    cluster.apply_phase_floor_and_sync(
        cluster.cost_.barrier_time(cluster.topology_.total()));
  });
  if (Trace* trace = cluster.trace_) {
    trace->record(id_, now(), TraceKind::kBarrier, "barrier");
  }
}

void Processor::phase_begin(const std::string& label) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kPhaseBegin, label);
  }
}

void Processor::phase_end(const std::string& label) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kPhaseEnd, label);
  }
}

void Processor::mark(const std::string& label, std::uint64_t detail) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kMark, label, detail);
  }
}

void Processor::trace_compute(std::uint64_t nanoseconds) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kCompute, "compute", nanoseconds);
  }
}

void Processor::sum_reduce(std::span<Count> values, ReduceScheme scheme) {
  Cluster& cluster = *cluster_;
  cluster.reduce_slots_[id_] = values;
  const std::size_t total = cluster.topology_.total();

  cluster.barrier_.arrive_and_wait([&cluster, total, scheme] {
    // All slots must agree on length (SPMD contract).
    const std::size_t length = cluster.reduce_slots_[0].size();
    for (const auto& slot : cluster.reduce_slots_) {
      if (slot.size() != length) {
        throw std::logic_error("sum_reduce length mismatch across procs");
      }
    }
    cluster.reduce_accum_.assign(length, 0);
    for (const auto& slot : cluster.reduce_slots_) {
      for (std::size_t i = 0; i < length; ++i) {
        cluster.reduce_accum_[i] += slot[i];
      }
    }

    const std::size_t bytes = length * sizeof(Count);
    cluster.channel_.account(static_cast<std::uint64_t>(bytes) * total,
                             total);
    const double update_cost = cluster.cost_.message_time(bytes);
    double finish = 0.0;
    if (scheme == ReduceScheme::kSerialized) {
      // Processors update the shared Memory Channel array one at a time
      // (the paper's O(P) mutually exclusive scheme, §6.2), serialized
      // here by processor id, then synchronize.
      for (std::size_t p = 0; p < total; ++p) {
        finish = std::max(finish, cluster.clocks_[p]) + update_cost;
      }
    } else if (scheme == ReduceScheme::kSerializedHosts) {
      // One representative per host takes a turn at the shared array; the
      // intra-host combine happens in host RAM (charged as memcpy).
      const std::size_t hosts = cluster.topology_.hosts;
      finish = max_clock(cluster.clocks_) +
               static_cast<double>(hosts) * update_cost +
               cluster.cost_.memcpy_time(bytes) *
                   static_cast<double>(cluster.topology_.procs_per_host);
    } else {
      // Recursive doubling: ceil(log2 P) rounds, each a full-vector
      // exchange running on all links concurrently.
      std::size_t rounds = 0;
      for (std::size_t span = 1; span < total; span *= 2) ++rounds;
      finish = max_clock(cluster.clocks_) +
               static_cast<double>(rounds) * update_cost;
    }
    std::fill(cluster.clocks_.begin(), cluster.clocks_.end(), finish);
    cluster.phase_start_max_ = finish;
    cluster.channel_.reset_phase();

    // Every processor then reads the totals back from its receive region.
    const double read_cost = cluster.cost_.memcpy_time(bytes);
    for (double& clock : cluster.clocks_) clock += read_cost;
  });

  std::copy(cluster.reduce_accum_.begin(), cluster.reduce_accum_.end(),
            values.begin());
}

Blob Processor::broadcast(std::size_t root, Blob payload) {
  Cluster& cluster = *cluster_;
  // Publish through the root's own slot; the fold moves it into the shared
  // broadcast buffer, which is only ever rewritten by a later fold (after
  // every consumer of this round has moved on).
  if (id_ == root) cluster.gather_slots_[id_] = std::move(payload);

  cluster.barrier_.arrive_and_wait([&cluster, root] {
    cluster.bcast_payload_ = std::move(cluster.gather_slots_[root]);
    cluster.gather_slots_[root].clear();
    // Memory Channel writes are multicast: the root pays one message, the
    // hub fans it out, receivers drain their receive region locally.
    const std::size_t bytes = cluster.bcast_payload_.size();
    cluster.channel_.account(bytes, 1);
    cluster.apply_phase_floor_and_sync(0.0);
    const double send = cluster.cost_.message_time(bytes);
    const double drain = cluster.cost_.memcpy_time(bytes);
    for (std::size_t p = 0; p < cluster.clocks_.size(); ++p) {
      cluster.clocks_[p] += send + (p == root ? 0.0 : drain);
    }
    cluster.phase_start_max_ = max_clock(cluster.clocks_);
  });

  return cluster.bcast_payload_;
}

std::vector<Blob> Processor::all_to_all(std::vector<Blob> outgoing) {
  Cluster& cluster = *cluster_;
  const std::size_t total = cluster.topology_.total();
  if (outgoing.size() != total) {
    throw std::invalid_argument("all_to_all needs one payload per processor");
  }
  cluster.a2a_out_[id_] = std::move(outgoing);

  cluster.barrier_.arrive_and_wait([&cluster, total] {
    // Route payloads (the self-payload short-circuits locally for free).
    // Consumers move their whole inbox row out, so rebuild each row to
    // full width before writing into it.
    for (std::size_t dst = 0; dst < total; ++dst) {
      cluster.a2a_in_[dst].resize(total);
    }
    std::uint64_t total_bytes = 0;
    std::vector<std::uint64_t> sent(total, 0);
    std::vector<std::uint64_t> received(total, 0);
    for (std::size_t src = 0; src < total; ++src) {
      for (std::size_t dst = 0; dst < total; ++dst) {
        Blob& payload = cluster.a2a_out_[src][dst];
        if (src != dst) {
          sent[src] += payload.size();
          received[dst] += payload.size();
          total_bytes += payload.size();
        }
        cluster.a2a_in_[dst][src] = std::move(payload);
      }
      cluster.a2a_out_[src].clear();
    }
    cluster.channel_.account(total_bytes, total * (total - 1));

    // Time model of the §6.3 lock-step exchange: alternating write/read
    // phases through bounded transmit/receive buffer pairs. Rounds are
    // driven by the heaviest sender; each round ends in a barrier. Links
    // run at link_bandwidth (write-doubled), the hub caps the aggregate.
    const CostModel& cost = cluster.cost_;
    cluster.apply_phase_floor_and_sync(0.0);
    const double start = cluster.phase_start_max_;

    std::uint64_t max_sent = 0;
    for (std::uint64_t s : sent) max_sent = std::max(max_sent, s);
    const std::size_t rounds = std::max<std::size_t>(
        1, (max_sent + cost.exchange_buffer - 1) / cost.exchange_buffer);

    const double doubling = cost.write_doubling ? 2.0 : 1.0;
    double slowest = 0.0;
    for (std::size_t p = 0; p < total; ++p) {
      const double t =
          static_cast<double>(rounds) *
              (cost.barrier_time(total) +
               static_cast<double>(total - 1) * cost.mc_latency) +
          doubling * static_cast<double>(sent[p]) / cost.link_bandwidth +
          cost.memcpy_time(received[p]);
      slowest = std::max(slowest, t);
    }
    const double hub_floor =
        static_cast<double>(total_bytes) / cost.aggregate_bandwidth;
    const double finish = start + std::max(slowest, hub_floor);
    std::fill(cluster.clocks_.begin(), cluster.clocks_.end(), finish);
    cluster.phase_start_max_ = finish;
  });

  return std::move(cluster.a2a_in_[id_]);
}

std::vector<Blob> Processor::all_gather(Blob payload) {
  Cluster& cluster = *cluster_;
  const std::size_t total = cluster.topology_.total();
  cluster.gather_slots_[id_] = std::move(payload);

  cluster.barrier_.arrive_and_wait([&cluster, total] {
    // Move the published payloads into the round's result buffer so the
    // slots are free for the next round's publishes immediately.
    cluster.gather_result_.assign(total, Blob{});
    std::uint64_t total_bytes = 0;
    double send_time = 0.0;
    const CostModel& cost = cluster.cost_;
    for (std::size_t p = 0; p < total; ++p) {
      cluster.gather_result_[p] = std::move(cluster.gather_slots_[p]);
      cluster.gather_slots_[p].clear();
      total_bytes += cluster.gather_result_[p].size();
      send_time = std::max(
          send_time, cost.message_time(cluster.gather_result_[p].size()));
    }
    // Each processor multicasts its payload (one message each, in
    // parallel across links); the hub caps the aggregate; everyone drains
    // all T payloads from its receive region.
    cluster.channel_.account(total_bytes, total);
    cluster.apply_phase_floor_and_sync(0.0);
    const double hub_floor =
        static_cast<double>(total_bytes) / cost.aggregate_bandwidth;
    const double finish = cluster.phase_start_max_ +
                          std::max(send_time, hub_floor) +
                          cost.memcpy_time(total_bytes);
    std::fill(cluster.clocks_.begin(), cluster.clocks_.end(), finish);
    cluster.phase_start_max_ = finish;
  });

  return cluster.gather_result_;
}

}  // namespace eclat::mc
