#include "mc/cluster.hpp"
// eclat-lint: allow-file(det-thread) the Cluster owns the real threads simulated processors run on

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace eclat::mc {

// Data-flow note for the collective scratch state
// ------------------------------------------------
// Every collective follows: publish into slots owned by *this* processor →
// arrive at the barrier (the last arriver folds all slots and rewrites the
// clocks while everyone else is still blocked) → consume from slots owned
// by this processor. A processor can only reach the *next* collective's
// fold after finishing its consume, and the next fold only runs when every
// processor has arrived — so fold never races with a publish or consume of
// the previous round, and a single barrier round per collective suffices.
//
// Failure extension: a crashing processor clears its publish slots, then
// deregisters (under the barrier lock), so the next fold — which acquires
// that same lock — observes both the cleared slots and the updated failed
// set. Folds skip failed slots and advance only survivor clocks; a crashed
// processor's clock freezes at the moment of its crash. Every fold ends by
// snapshotting the failed set into epoch_failed_, which is what
// Processor::failed_snapshot() hands to the SPMD bodies: all survivors of
// one generation observe the identical set.

const char* to_string(ProcessorOutcome outcome) {
  switch (outcome) {
    case ProcessorOutcome::kFinished:
      return "finished";
    case ProcessorOutcome::kCrashed:
      return "crashed";
    case ProcessorOutcome::kHung:
      return "hung";
    case ProcessorOutcome::kPartitioned:
      return "partitioned";
    case ProcessorOutcome::kAborted:
      return "aborted";
  }
  return "unknown";
}

Cluster::Cluster(const Topology& topology, const CostModel& cost)
    : topology_(topology),
      cost_(cost),
      channel_(cost),
      barrier_(topology.total()),
      lease_board_(topology.total()) {
  topology_.validate();
  const std::size_t total = topology_.total();
  clocks_.assign(total, 0.0);
  epoch_failed_.assign(total, false);
  retransmit_store_.resize(total);
  reduce_slots_.assign(total, {});
  gather_slots_.assign(total, {});
  a2a_out_.assign(total, {});
  a2a_in_.assign(total, std::vector<Blob>(total));
}

double Cluster::makespan() const {
  return clocks_.empty() ? 0.0
                         : *std::max_element(clocks_.begin(), clocks_.end());
}

RunReport Cluster::run(const std::function<void(Processor&)>& body) {
  const std::size_t total = topology_.total();
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  phase_start_max_ = 0.0;
  channel_.reset_phase();
  barrier_.reset();
  epoch_failed_.assign(total, false);
  for (auto& store : retransmit_store_) store.clear();
  lease_board_.reset();
  injector_ = fault_plan_.empty()
                  ? nullptr
                  : std::make_unique<FaultInjector>(fault_plan_, total);
  report_.outcomes.assign(total, ProcessorOutcome::kFinished);

  std::vector<std::exception_ptr> errors(total);
  std::vector<std::thread> threads;
  threads.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    threads.emplace_back([this, &body, &errors, p] {
      Processor self(this, p);
      try {
        body(self);
        // Whatever the body did or did not publish, this processor will
        // never publish again: release any peer blocked in a lease view.
        lease_board_.mark_done(p, clocks_[p]);
      } catch (const ProcessorFailed& failure) {
        // Injected crash: report it, release the peers. Clear this
        // processor's publish slots *before* deregistering — the barrier
        // lock taken by deregister orders the clears before the next fold.
        report_.outcomes[p] = ProcessorOutcome::kCrashed;
        if (trace_) {
          trace_->record(p, clocks_[p], TraceKind::kFault,
                         std::string("crash: ") + failure.what());
        }
        reduce_slots_[p] = {};
        gather_slots_[p].clear();
        a2a_out_[p].clear();
        lease_board_.mark_terminal(p, clocks_[p]);
        barrier_.deregister(p);
      } catch (const ProcessorHung& hang) {
        // Unbounded hang: semantically the processor goes silent forever;
        // the simulation reaps the real thread exactly like a crash so
        // peers' barriers complete with survivor semantics. Detection is
        // the lease layer's job — the board records *when* it went quiet,
        // and peers may only act once their own virtual clocks pass the
        // lease expiry.
        report_.outcomes[p] = ProcessorOutcome::kHung;
        if (trace_) {
          trace_->record(p, clocks_[p], TraceKind::kFault,
                         std::string("hang: ") + hang.what());
        }
        reduce_slots_[p] = {};
        gather_slots_[p].clear();
        a2a_out_[p].clear();
        lease_board_.mark_terminal(p, clocks_[p]);
        barrier_.deregister(p);
      } catch (const ProcessorPartitioned& cut) {
        // Cut off from quorum: the processor aborts its phase cleanly —
        // nothing it had queued for a quorum acknowledgement commits.
        // Deregistering releases the quorum side's pending rendezvous, so
        // the majority completes with survivor-only semantics.
        report_.outcomes[p] = ProcessorOutcome::kPartitioned;
        if (trace_) {
          trace_->record(p, clocks_[p], TraceKind::kFault,
                         std::string("partition: ") + cut.what());
        }
        reduce_slots_[p] = {};
        gather_slots_[p].clear();
        a2a_out_[p].clear();
        lease_board_.mark_terminal(p, clocks_[p]);
        barrier_.deregister(p);
      } catch (...) {
        // Genuine bug in the SPMD body. Still deregister so peers release
        // (no deadlock), then surface the exception after the join.
        errors[p] = std::current_exception();
        report_.outcomes[p] = ProcessorOutcome::kAborted;
        reduce_slots_[p] = {};
        gather_slots_[p].clear();
        a2a_out_[p].clear();
        lease_board_.mark_terminal(p, clocks_[p]);
        barrier_.deregister(p);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Non-fault exceptions: rethrow the first, log the rest to the trace so
  // they are not silently swallowed.
  std::exception_ptr first;
  for (std::size_t p = 0; p < total; ++p) {
    if (!errors[p]) continue;
    if (!first) {
      first = errors[p];
      continue;
    }
    if (trace_) {
      std::string what = "aborted: unknown exception";
      try {
        std::rethrow_exception(errors[p]);
      } catch (const std::exception& e) {
        what = std::string("aborted: ") + e.what();
      }
      // eclat-lint: allow(robust-catch) diagnostic extraction only: a non-std escape keeps the default what; the original is rethrown below
      catch (...) {
      }
      trace_->record(p, clocks_[p], TraceKind::kFault, what);
    }
  }
  if (first) std::rethrow_exception(first);
  return report_;
}

void Cluster::sync(const std::function<void()>& fold) {
  barrier_.arrive_and_wait([this, &fold] {
    if (fold) fold();
    epoch_failed_ = barrier_.failed_in_fold();
  });
}

double Cluster::max_survivor_clock() const {
  // Fold-only: reads the failed set without locking (the barrier lock is
  // held inside a fold).
  const std::vector<bool>& failed = barrier_.failed_in_fold();
  double max_clock = 0.0;
  for (std::size_t p = 0; p < clocks_.size(); ++p) {
    if (!failed[p]) max_clock = std::max(max_clock, clocks_[p]);
  }
  return max_clock;
}

void Cluster::fill_survivor_clocks(double value) {
  const std::vector<bool>& failed = barrier_.failed_in_fold();
  for (std::size_t p = 0; p < clocks_.size(); ++p) {
    if (!failed[p]) clocks_[p] = value;
  }
}

double Cluster::hub_bandwidth() {
  double bandwidth = cost_.aggregate_bandwidth;
  if (injector_) bandwidth /= injector_->hub_divisor(max_survivor_clock());
  return bandwidth;
}

// --- Processor ---

std::size_t Processor::host() const {
  return cluster_->topology().host_of(id_);
}

const Topology& Processor::topology() const { return cluster_->topology(); }

const CostModel& Processor::cost() const { return cluster_->cost(); }

double Processor::now() const { return cluster_->clocks_[id_]; }

void Processor::advance(double seconds) {
  cluster_->clocks_[id_] += seconds;
}

double Processor::fault_probe(FaultOp op, const std::string& label) {
  FaultInjector* injector = cluster_->injector_.get();
  if (!injector) return 1.0;
  const ProbeResult result = injector->probe(id_, op, phase_, label, now());
  if (result.hang_seconds > 0.0) {
    // Bounded hang: the processor goes silent for the duration — its
    // clock advances with no lease renewal in between, so peers watching
    // the board see its leases expire mid-hang and may start backups the
    // resumed original then races (first-writer-wins absorbs the tie).
    advance(result.hang_seconds);
    if (Trace* trace = cluster_->trace_) {
      trace->record(id_, now(), TraceKind::kFault, "hang",
                    static_cast<std::uint64_t>(result.hang_seconds * 1e6));
    }
  }
  return result.stall;
}

void Processor::fault_point(const std::string& label) {
  fault_probe(FaultOp::kPoint, label);
  // A fault_point is a progress probe: surviving it renews every lease
  // this processor holds (and publishes its clock either way).
  cluster_->lease_board_.renew_all(id_, now());
}

void Processor::lease_acquire(std::size_t task) {
  cluster_->lease_board_.acquire(id_, task, now());
}

void Processor::lease_renew() { cluster_->lease_board_.renew_all(id_, now()); }

void Processor::lease_release(std::size_t task) {
  cluster_->lease_board_.release(id_, task, now());
}

void Processor::lease_claim(std::size_t task) {
  cluster_->lease_board_.claim(id_, task, now());
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kMark, "lease-claim", task);
  }
}

void Processor::lease_commit(std::size_t task) {
  cluster_->lease_board_.commit(id_, task, now());
}

void Processor::lease_touch() { cluster_->lease_board_.touch(id_, now()); }

void Processor::lease_done() { cluster_->lease_board_.mark_done(id_, now()); }

void Processor::lease_suspect(std::size_t proc) {
  cluster_->lease_board_.mark_suspect(proc, id_, now());
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kFault, "suspect", proc);
  }
}

LeaseView Processor::lease_view(const LeasePolicy& policy) {
  return cluster_->lease_board_.view_at(id_, now(), policy);
}

std::vector<bool> Processor::failed_snapshot() const {
  return cluster_->epoch_failed_;
}

std::vector<std::size_t> Processor::failed_processors() const {
  std::vector<std::size_t> ids;
  const std::vector<bool>& failed = cluster_->epoch_failed_;
  for (std::size_t p = 0; p < failed.size(); ++p) {
    if (failed[p]) ids.push_back(p);
  }
  return ids;
}

std::size_t Processor::commit_epoch() const {
  // The epoch is the failed count of this processor's snapshot: monotone,
  // and it grows exactly at the folds where the failed set grows — the
  // same read-stability argument as failed_snapshot() applies.
  std::size_t epoch = 0;
  for (const bool failed : cluster_->epoch_failed_) {
    if (failed) ++epoch;
  }
  return epoch;
}

bool Processor::quorum_member() const {
  const FaultInjector* injector = cluster_->injector_.get();
  return !injector || !injector->partition_minority(id_, now());
}

Blob Processor::retransmit(std::size_t src) {
  auto& store = cluster_->retransmit_store_[id_];
  const auto it = store.find(src);
  if (it == store.end()) {
    throw std::logic_error(
        "retransmit: no corrupted payload from that source — a decoder "
        "rejecting a pristine payload is a bug, not a recoverable fault");
  }
  // The retransmission goes through the same fault-prone channel as the
  // original delivery: further kCorruptMessage events matching (dst, src)
  // may mangle it again, in which case the pristine copy stays buffered
  // for the next retry.
  Blob delivered = it->second;
  const std::size_t pristine_bytes = delivered.size();
  FaultInjector* injector = cluster_->injector_.get();
  const bool corrupted_again =
      injector && injector->corrupt_message(id_, src, delivered);
  if (!corrupted_again) store.erase(it);
  // The data is still in the sender's Memory Channel transmit buffer; the
  // receiver pays a full (point-to-point) re-transfer of it.
  advance(cluster_->cost_.message_time(pristine_bytes));
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kFault, "retransmit",
                  pristine_bytes);
    if (corrupted_again) {
      trace->record(id_, now(), TraceKind::kFault, "corrupt-message",
                    pristine_bytes);
    }
  }
  return delivered;
}

void Processor::disk_read(std::size_t bytes, std::size_t scanners) {
  const double stall = fault_probe(FaultOp::kDiskRead);
  if (scanners == 0) scanners = topology().procs_per_host;
  advance(cost().disk_time(bytes, scanners) * stall);
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kDisk, "scan", bytes);
    if (stall > 1.0) {
      trace->record(id_, now(), TraceKind::kFault, "disk-stall", bytes);
    }
  }
}

void Processor::disk_read_stream(std::size_t bytes, std::size_t scanners) {
  const double stall = fault_probe(FaultOp::kDiskRead);
  if (scanners == 0) scanners = topology().procs_per_host;
  advance(cost().disk_stream_time(bytes, scanners) * stall);
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kDisk, "scan", bytes);
    if (stall > 1.0) {
      trace->record(id_, now(), TraceKind::kFault, "disk-stall", bytes);
    }
  }
}

void Processor::disk_write(std::size_t bytes, std::size_t scanners) {
  const double stall = fault_probe(FaultOp::kDiskWrite);
  if (scanners == 0) scanners = topology().procs_per_host;
  advance(cost().disk_time(bytes, scanners) * stall);  // same model as read
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kDisk, "write", bytes);
    if (stall > 1.0) {
      trace->record(id_, now(), TraceKind::kFault, "disk-stall", bytes);
    }
  }
}

void Processor::disk_write_stream(std::size_t bytes, std::size_t scanners) {
  const double stall = fault_probe(FaultOp::kDiskWrite);
  if (scanners == 0) scanners = topology().procs_per_host;
  advance(cost().disk_stream_time(bytes, scanners) * stall);
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kDisk, "write", bytes);
    if (stall > 1.0) {
      trace->record(id_, now(), TraceKind::kFault, "disk-stall", bytes);
    }
  }
}

MemoryChannel& Processor::channel() { return cluster_->channel_; }

void Processor::region_write(MemoryChannel::RegionId region,
                             std::size_t offset,
                             std::span<const std::uint8_t> data) {
  fault_probe(FaultOp::kRegionWrite);
  FaultInjector* injector = cluster_->injector_.get();
  if (injector) {
    std::vector<std::uint8_t> copy(data.begin(), data.end());
    if (injector->corrupt_region_write(id_, phase_, copy)) {
      if (Trace* trace = cluster_->trace_) {
        trace->record(id_, now(), TraceKind::kFault, "corrupt-region",
                      data.size());
      }
      advance(cluster_->channel_.write(region, offset, copy));
      return;
    }
  }
  advance(cluster_->channel_.write(region, offset, data));
}

void Processor::region_read(MemoryChannel::RegionId region,
                            std::size_t offset,
                            std::span<std::uint8_t> out) {
  advance(cluster_->channel_.read(region, offset, out));
}

void Cluster::apply_phase_floor_and_sync(double extra_cost) {
  // Runs inside a barrier fold. Any bytes pushed through raw region writes
  // since the previous sync point may have been hub-limited: stretch the
  // phase to total_bytes / aggregate_bandwidth when the per-link charges
  // did not already cover it.
  double now = max_survivor_clock();
  const double phase_elapsed = now - phase_start_max_;
  const double hub_floor =
      static_cast<double>(channel_.phase_hub_bytes()) / hub_bandwidth();
  if (hub_floor > phase_elapsed) now += hub_floor - phase_elapsed;
  now += extra_cost;
  fill_survivor_clocks(now);
  phase_start_max_ = now;
  channel_.reset_phase();
}

void Processor::barrier() {
  fault_probe(FaultOp::kBarrier);
  Cluster& cluster = *cluster_;
  cluster.sync([&cluster] {
    std::size_t survivors = 0;
    for (const bool failed : cluster.barrier_.failed_in_fold()) {
      if (!failed) ++survivors;
    }
    cluster.apply_phase_floor_and_sync(cluster.cost_.barrier_time(survivors));
  });
  if (Trace* trace = cluster.trace_) {
    trace->record(id_, now(), TraceKind::kBarrier, "barrier");
  }
}

void Processor::phase_begin(const std::string& label) {
  phase_ = label;
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kPhaseBegin, label);
  }
}

void Processor::phase_end(const std::string& label) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kPhaseEnd, label);
  }
  phase_.clear();
}

void Processor::mark(const std::string& label, std::uint64_t detail) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kMark, label, detail);
  }
}

void Processor::trace_compute(std::uint64_t nanoseconds) {
  if (Trace* trace = cluster_->trace_) {
    trace->record(id_, now(), TraceKind::kCompute, "compute", nanoseconds);
  }
}

void Processor::sum_reduce(std::span<Count> values, ReduceScheme scheme) {
  fault_probe(FaultOp::kSumReduce);
  Cluster& cluster = *cluster_;
  cluster.reduce_slots_[id_] = values;
  const std::size_t total = cluster.topology_.total();

  cluster.sync([&cluster, total, scheme] {
    const std::vector<bool>& failed = cluster.barrier_.failed_in_fold();
    // All *survivor* slots must agree on length (SPMD contract); failed
    // processors' slots are cleared on crash and excluded from the fold.
    std::size_t length = 0;
    std::size_t survivors = 0;
    for (std::size_t p = 0; p < total; ++p) {
      if (failed[p]) continue;
      if (survivors++ == 0) {
        length = cluster.reduce_slots_[p].size();
      } else if (cluster.reduce_slots_[p].size() != length) {
        throw std::logic_error("sum_reduce length mismatch across procs");
      }
    }
    cluster.reduce_accum_.assign(length, 0);
    for (std::size_t p = 0; p < total; ++p) {
      if (failed[p]) continue;
      const auto& slot = cluster.reduce_slots_[p];
      for (std::size_t i = 0; i < length; ++i) {
        cluster.reduce_accum_[i] += slot[i];
      }
    }

    const std::size_t bytes = length * sizeof(Count);
    cluster.channel_.account(static_cast<std::uint64_t>(bytes) * survivors,
                             survivors);
    const double update_cost = cluster.cost_.message_time(bytes);
    double finish = 0.0;
    if (scheme == ReduceScheme::kSerialized) {
      // Processors update the shared Memory Channel array one at a time
      // (the paper's O(P) mutually exclusive scheme, §6.2), serialized
      // here by processor id, then synchronize.
      for (std::size_t p = 0; p < total; ++p) {
        if (failed[p]) continue;
        finish = std::max(finish, cluster.clocks_[p]) + update_cost;
      }
    } else if (scheme == ReduceScheme::kSerializedHosts) {
      // One representative per host takes a turn at the shared array; the
      // intra-host combine happens in host RAM (charged as memcpy).
      const std::size_t hosts = cluster.topology_.hosts;
      finish = cluster.max_survivor_clock() +
               static_cast<double>(hosts) * update_cost +
               cluster.cost_.memcpy_time(bytes) *
                   static_cast<double>(cluster.topology_.procs_per_host);
    } else {
      // Recursive doubling: ceil(log2 S) rounds over the survivors, each a
      // full-vector exchange running on all links concurrently.
      std::size_t rounds = 0;
      for (std::size_t span = 1; span < survivors; span *= 2) ++rounds;
      finish = cluster.max_survivor_clock() +
               static_cast<double>(rounds) * update_cost;
    }
    cluster.fill_survivor_clocks(finish);
    cluster.phase_start_max_ = finish;
    cluster.channel_.reset_phase();

    // Every survivor then reads the totals back from its receive region.
    const double read_cost = cluster.cost_.memcpy_time(bytes);
    for (std::size_t p = 0; p < total; ++p) {
      if (!failed[p]) cluster.clocks_[p] += read_cost;
    }
  });

  std::copy(cluster.reduce_accum_.begin(), cluster.reduce_accum_.end(),
            values.begin());
}

Blob Processor::broadcast(std::size_t root, Blob payload) {
  fault_probe(FaultOp::kBroadcast);
  Cluster& cluster = *cluster_;
  // Publish through the root's own slot; the fold moves it into the shared
  // broadcast buffer, which is only ever rewritten by a later fold (after
  // every consumer of this round has moved on). A root that crashed before
  // publishing delivers an empty payload (its slot is cleared on crash).
  if (id_ == root) cluster.gather_slots_[id_] = std::move(payload);

  cluster.sync([&cluster, root] {
    const std::vector<bool>& failed = cluster.barrier_.failed_in_fold();
    cluster.bcast_payload_ = std::move(cluster.gather_slots_[root]);
    cluster.gather_slots_[root].clear();
    // Memory Channel writes are multicast: the root pays one message, the
    // hub fans it out, receivers drain their receive region locally.
    const std::size_t bytes = cluster.bcast_payload_.size();
    cluster.channel_.account(bytes, 1);
    cluster.apply_phase_floor_and_sync(0.0);
    const double send = cluster.cost_.message_time(bytes);
    const double drain = cluster.cost_.memcpy_time(bytes);
    for (std::size_t p = 0; p < cluster.clocks_.size(); ++p) {
      if (failed[p]) continue;
      cluster.clocks_[p] += send + (p == root ? 0.0 : drain);
    }
    cluster.phase_start_max_ = cluster.max_survivor_clock();
  });

  return cluster.bcast_payload_;
}

std::vector<Blob> Processor::all_to_all(std::vector<Blob> outgoing) {
  fault_probe(FaultOp::kAllToAll);
  Cluster& cluster = *cluster_;
  const std::size_t total = cluster.topology_.total();
  if (outgoing.size() != total) {
    throw std::invalid_argument("all_to_all needs one payload per processor");
  }
  cluster.a2a_out_[id_] = std::move(outgoing);

  cluster.sync([&cluster, total] {
    const std::vector<bool>& failed = cluster.barrier_.failed_in_fold();
    FaultInjector* injector = cluster.injector_.get();
    // Route payloads (the self-payload short-circuits locally for free).
    // Consumers move their whole inbox row out, so rebuild each row to
    // full width before writing into it. Failed sources' rows stay empty.
    for (std::size_t dst = 0; dst < total; ++dst) {
      cluster.a2a_in_[dst].assign(total, Blob{});
      cluster.retransmit_store_[dst].clear();
    }
    std::uint64_t total_bytes = 0;
    std::uint64_t messages = 0;
    std::vector<std::uint64_t> sent(total, 0);
    std::vector<std::uint64_t> received(total, 0);
    for (std::size_t src = 0; src < total; ++src) {
      if (failed[src]) continue;  // crashed senders' outboxes are cleared
      for (std::size_t dst = 0; dst < total; ++dst) {
        if (failed[dst]) continue;  // no delivery to the dead
        Blob& payload = cluster.a2a_out_[src][dst];
        if (src != dst) {
          sent[src] += payload.size();
          received[dst] += payload.size();
          total_bytes += payload.size();
          ++messages;
          if (injector && !payload.empty()) {
            Blob pristine = payload;
            if (injector->corrupt_message(dst, src, payload)) {
              // Keep the original: it is still sitting in the sender's
              // transmit buffer, recoverable via Processor::retransmit.
              if (Trace* trace = cluster.trace_) {
                trace->record(dst, cluster.clocks_[dst], TraceKind::kFault,
                              "corrupt-message", pristine.size());
              }
              cluster.retransmit_store_[dst][src] = std::move(pristine);
            }
          }
        }
        cluster.a2a_in_[dst][src] = std::move(payload);
      }
      cluster.a2a_out_[src].clear();
    }
    cluster.channel_.account(total_bytes, messages);

    // Time model of the §6.3 lock-step exchange: alternating write/read
    // phases through bounded transmit/receive buffer pairs. Rounds are
    // driven by the heaviest sender; each round ends in a barrier. Links
    // run at link_bandwidth (write-doubled), the hub caps the aggregate.
    const CostModel& cost = cluster.cost_;
    cluster.apply_phase_floor_and_sync(0.0);
    const double start = cluster.phase_start_max_;

    std::size_t survivors = 0;
    for (std::size_t p = 0; p < total; ++p) {
      if (!failed[p]) ++survivors;
    }
    std::uint64_t max_sent = 0;
    for (std::uint64_t s : sent) max_sent = std::max(max_sent, s);
    const std::size_t rounds = std::max<std::size_t>(
        1, (max_sent + cost.exchange_buffer - 1) / cost.exchange_buffer);

    const double doubling = cost.write_doubling ? 2.0 : 1.0;
    double slowest = 0.0;
    for (std::size_t p = 0; p < total; ++p) {
      if (failed[p]) continue;
      const double t =
          static_cast<double>(rounds) *
              (cost.barrier_time(survivors) +
               static_cast<double>(survivors - 1) * cost.mc_latency) +
          doubling * static_cast<double>(sent[p]) / cost.link_bandwidth +
          cost.memcpy_time(received[p]);
      slowest = std::max(slowest, t);
    }
    const double hub_floor =
        static_cast<double>(total_bytes) / cluster.hub_bandwidth();
    const double finish = start + std::max(slowest, hub_floor);
    cluster.fill_survivor_clocks(finish);
    cluster.phase_start_max_ = finish;
  });

  return std::move(cluster.a2a_in_[id_]);
}

std::vector<Blob> Processor::all_gather(Blob payload) {
  fault_probe(FaultOp::kAllGather);
  Cluster& cluster = *cluster_;
  const std::size_t total = cluster.topology_.total();
  cluster.gather_slots_[id_] = std::move(payload);

  cluster.sync([&cluster, total] {
    const std::vector<bool>& failed = cluster.barrier_.failed_in_fold();
    // Move the published payloads into the round's result buffer so the
    // slots are free for the next round's publishes immediately. Failed
    // processors' slots stay empty.
    cluster.gather_result_.assign(total, Blob{});
    std::uint64_t total_bytes = 0;
    std::uint64_t messages = 0;
    double send_time = 0.0;
    const CostModel& cost = cluster.cost_;
    for (std::size_t p = 0; p < total; ++p) {
      if (failed[p]) continue;
      cluster.gather_result_[p] = std::move(cluster.gather_slots_[p]);
      cluster.gather_slots_[p].clear();
      total_bytes += cluster.gather_result_[p].size();
      ++messages;
      send_time = std::max(
          send_time, cost.message_time(cluster.gather_result_[p].size()));
    }
    // Each survivor multicasts its payload (one message each, in parallel
    // across links); the hub caps the aggregate; everyone drains all
    // surviving payloads from its receive region.
    cluster.channel_.account(total_bytes, messages);
    cluster.apply_phase_floor_and_sync(0.0);
    const double hub_floor =
        static_cast<double>(total_bytes) / cluster.hub_bandwidth();
    const double finish = cluster.phase_start_max_ +
                          std::max(send_time, hub_floor) +
                          cost.memcpy_time(total_bytes);
    cluster.fill_survivor_clocks(finish);
    cluster.phase_start_max_ = finish;
  });

  return cluster.gather_result_;
}

}  // namespace eclat::mc
