// Functional + cost model of the DEC Memory Channel network (paper §6.1).
//
// The real device maps "regions" of a global address space into process
// address spaces for transmit and/or receive; writes to a transmit region
// are forwarded through a hub and DMA-ed into every receive region with the
// same identifier. The simulation collapses the per-node receive copies
// into one buffer per region (contents are identical on every node), keeps
// the device guarantees that matter to the algorithms — write ordering
// within a region, visibility after a synchronization — and accounts costs:
//
//   - each write charges the *writer* `CostModel::message_time(bytes)`
//     (doubled when write-doubling is on, §6.1);
//   - all written bytes accumulate into a per-phase hub counter; the
//     cluster barrier stretches the phase to `hub_bytes /
//     aggregate_bandwidth` when the hub, not the links, is the bottleneck;
//   - reads are local RAM (receive-region) accesses at memcpy bandwidth.
#pragma once
// eclat-lint: allow-file(det-thread) the Memory Channel model is real shared memory between processor threads; access costs are charged to virtual clocks

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "mc/cost_model.hpp"

namespace eclat::mc {

class MemoryChannel {
 public:
  using RegionId = std::size_t;

  explicit MemoryChannel(const CostModel& cost) : cost_(cost) {}

  /// Allocate a region of `bytes` zero-initialized bytes. Thread-safe.
  RegionId create_region(std::size_t bytes);

  std::size_t region_size(RegionId region) const;

  /// Write `data` at `offset`; returns the virtual-time cost to charge to
  /// the writing processor. Concurrent writers must target disjoint byte
  /// ranges (the algorithms guarantee this by construction).
  double write(RegionId region, std::size_t offset,
               std::span<const std::uint8_t> data);

  /// Read into `out` from `offset`; returns the (local-memory) cost.
  double read(RegionId region, std::size_t offset,
              std::span<std::uint8_t> out) const;

  /// Bytes pushed through the hub since the last phase reset.
  std::uint64_t phase_hub_bytes() const {
    return phase_hub_bytes_.load(std::memory_order_relaxed);
  }

  /// Called by the cluster barrier after folding the phase into the clocks.
  void reset_phase() {
    phase_hub_bytes_.store(0, std::memory_order_relaxed);
  }

  /// Record traffic that moved outside the region API (the cluster
  /// collectives route functionally through shared slots but still
  /// represent real Memory Channel transfers). Lifetime counters only;
  /// collectives fold their own timing, so the phase counter is skipped.
  void account(std::uint64_t bytes, std::uint64_t messages) {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    total_messages_.fetch_add(messages, std::memory_order_relaxed);
  }

  // Lifetime totals, for the traffic accounting in EXPERIMENTS.md.
  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  const CostModel& cost() const { return cost_; }

 private:
  CostModel cost_;
  mutable std::mutex regions_mutex_;  // guards the deque, not the buffers
  std::deque<std::vector<std::uint8_t>> regions_;
  std::atomic<std::uint64_t> phase_hub_bytes_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_messages_{0};
};

}  // namespace eclat::mc
