#include "mc/lease.hpp"
// eclat-lint: allow-file(det-thread) the lease board is shared across processor threads; it blocks in real time (free) and answers only from virtual-time-stamped events

#include <algorithm>

#include "common/check.hpp"

namespace eclat::mc {

bool LeaseView::is_committed(std::size_t task) const {
  return std::binary_search(committed.begin(), committed.end(), task);
}

bool LeaseView::is_claimed(std::size_t task) const {
  return std::binary_search(claimed.begin(), claimed.end(), task);
}

LeaseBoard::LeaseBoard(std::size_t total_processors) : total_(total_processors) {
  reset();
}

void LeaseBoard::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_.assign(total_, 0.0);
  done_.assign(total_, false);
  terminal_time_.assign(total_, -1.0);
  leases_.clear();
  claims_.clear();
  commits_.clear();
  suspects_.clear();
  published_.notify_all();
}

void LeaseBoard::publish_locked(std::size_t proc, double now) {
  ECLAT_DCHECK(proc < total_);
  // Virtual clocks are monotone per processor; the board keeps the max so
  // a stale republication can never un-release a waiting observer.
  clock_[proc] = std::max(clock_[proc], now);
  published_.notify_all();
}

void LeaseBoard::touch(std::size_t proc, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked(proc, now);
}

void LeaseBoard::acquire(std::size_t proc, std::size_t task, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  LeaseRecord record;
  record.task = task;
  record.holder = proc;
  record.acquired = now;
  record.renewals.push_back(now);
  leases_.push_back(std::move(record));
  publish_locked(proc, now);
}

void LeaseBoard::renew_all(std::size_t proc, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (LeaseRecord& lease : leases_) {
    if (lease.holder != proc || lease.released >= 0.0) continue;
    ECLAT_DCHECK(lease.renewals.empty() || lease.renewals.back() <= now);
    lease.renewals.push_back(now);
  }
  publish_locked(proc, now);
}

void LeaseBoard::release(std::size_t proc, std::size_t task, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (LeaseRecord& lease : leases_) {
    if (lease.holder == proc && lease.task == task && lease.released < 0.0) {
      lease.released = now;
    }
  }
  publish_locked(proc, now);
}

void LeaseBoard::claim(std::size_t proc, std::size_t task, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  claims_.push_back(ClaimRecord{task, proc, now});
  publish_locked(proc, now);
}

void LeaseBoard::commit(std::size_t proc, std::size_t task, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  commits_.push_back(CommitRecord{task, proc, now});
  for (LeaseRecord& lease : leases_) {
    if (lease.holder == proc && lease.task == task && lease.released < 0.0) {
      lease.released = now;
    }
  }
  publish_locked(proc, now);
}

void LeaseBoard::mark_suspect(std::size_t proc, std::size_t reporter,
                              double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  suspects_.push_back(SuspectRecord{proc, now});
  publish_locked(reporter, now);
}

void LeaseBoard::mark_done(std::size_t proc, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  done_[proc] = true;
  publish_locked(proc, now);
}

void LeaseBoard::mark_terminal(std::size_t proc, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (terminal_time_[proc] < 0.0) terminal_time_[proc] = now;
  publish_locked(proc, now);
}

LeaseView LeaseBoard::view_at(std::size_t observer, double time,
                              const LeasePolicy& policy) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Publish the observer's own clock first: a peer blocked at the same
  // virtual time must be able to see us, or two simultaneous observers
  // would wait on each other forever (the id tie-break then settles who
  // goes first).
  publish_locked(observer, time);
  published_.wait(lock, [&] {
    for (std::size_t p = 0; p < total_; ++p) {
      if (p == observer) continue;
      const bool released = done_[p] || terminal_time_[p] >= 0.0 ||
                            clock_[p] > time ||
                            (clock_[p] == time && p > observer);
      if (!released) return false;
    }
    return true;
  });

  // Every peer is now past `time` (or will never publish again), so the
  // records dated <= time are complete: the view is a pure function of
  // virtual time.
  LeaseView view;
  view.time = time;
  view.observer = observer;
  const double horizon = policy.suspicion_after();

  for (const LeaseRecord& lease : leases_) {
    if (lease.acquired > time) continue;
    if (lease.released >= 0.0 && lease.released <= time) continue;
    // Last renewal at or before `time` (renewals are ascending).
    const auto it = std::upper_bound(lease.renewals.begin(),
                                     lease.renewals.end(), time);
    ECLAT_DCHECK(it != lease.renewals.begin());
    const double renewed = *(it - 1);
    const double expiry = renewed + horizon;
    if (expiry <= time) {
      view.expired.push_back(
          LeaseView::ExpiredLease{lease.task, lease.holder, renewed, expiry});
    } else {
      view.next_expiry = std::min(view.next_expiry, expiry);
    }
  }
  std::sort(view.expired.begin(), view.expired.end(),
            [](const LeaseView::ExpiredLease& a,
               const LeaseView::ExpiredLease& b) { return a.task < b.task; });

  for (const CommitRecord& commit : commits_) {
    if (commit.time <= time) view.committed.push_back(commit.task);
  }
  std::sort(view.committed.begin(), view.committed.end());
  view.committed.erase(
      std::unique(view.committed.begin(), view.committed.end()),
      view.committed.end());

  for (const ClaimRecord& claim : claims_) {
    // A claim shadows this observer iff it strictly precedes (time,
    // observer) in (t, proc) order and the claimant was still live at
    // `time` — a claim by a processor that is virtually dead by now will
    // never be honoured, so it must not block a backup. Exception: a
    // claimant that already declared done shadows permanently. Death
    // after done (a partition or hang at the next collective) publishes
    // its terminal fact outside the board protocol — done_ is what
    // released our wait above, so terminal_time_ may or may not have
    // landed when we read it. Ignoring it for done claimants keeps the
    // view a pure function of virtual time; a shadowed class the dead
    // claimant never committed is re-mined by the post-gather recovery
    // rounds, not by a racing backup.
    const bool precedes = claim.time < time ||
                          (claim.time == time && claim.proc < observer);
    if (!precedes) continue;
    const double terminal = terminal_time_[claim.proc];
    if (!done_[claim.proc] && terminal >= 0.0 && terminal <= time) continue;
    view.claimed.push_back(claim.task);
  }
  std::sort(view.claimed.begin(), view.claimed.end());
  view.claimed.erase(std::unique(view.claimed.begin(), view.claimed.end()),
                     view.claimed.end());

  for (const SuspectRecord& suspect : suspects_) {
    if (suspect.time <= time) view.suspects.push_back(suspect.proc);
  }
  std::sort(view.suspects.begin(), view.suspects.end());
  view.suspects.erase(
      std::unique(view.suspects.begin(), view.suspects.end()),
      view.suspects.end());

  return view;
}

std::size_t LeaseBoard::lease_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leases_.size();
}

}  // namespace eclat::mc
