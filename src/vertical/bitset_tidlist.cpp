#include "vertical/bitset_tidlist.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"
#include "vertical/simd/dispatch.hpp"

namespace eclat {

namespace {

constexpr std::size_t word_count_for(Tid universe) {
  return (static_cast<std::size_t>(universe) + 63) / 64;
}

/// Words per short-circuit bound check. The word kernels come from the
/// runtime-dispatched SIMD table, so the AND runs in blocks and the
/// abort bound is evaluated between them. The bound is a proof (count +
/// 64·remaining < minsup implies the final count misses minsup), so
/// checking it at block granularity never changes the boolean outcome —
/// only how many words an abort scans first.
constexpr std::size_t kBoundBlockWords = 64;

}  // namespace

void BitsetTidList::assign(std::span<const Tid> tids, Tid universe) {
  ECLAT_DCHECK(is_valid_tidlist(tids));
  ECLAT_DCHECK(tids.empty() || tids.back() < universe);
  universe_ = universe;
  words_.assign(word_count_for(universe), 0);
  for (const Tid t : tids) {
    words_[t >> 6] |= std::uint64_t{1} << (t & 63);
  }
  count_ = tids.size();
}

void BitsetTidList::reset(Tid universe) {
  universe_ = universe;
  words_.assign(word_count_for(universe), 0);
  count_ = 0;
}

void BitsetTidList::append_to(TidList& out) const {
  const std::size_t old = out.size();
  out.resize(old + count_);
  const std::size_t decoded = simd::kernels().decode_words(
      words_.data(), words_.size(), 0, out.data() + old);
  ECLAT_DCHECK(decoded == count_);
  (void)decoded;
}

TidList BitsetTidList::to_tidlist() const {
  TidList out;
  out.reserve(count_);
  append_to(out);
  return out;
}

std::size_t BitsetTidList::assign_and(const BitsetTidList& a,
                                      const BitsetTidList& b) {
  ECLAT_DCHECK(a.universe_ == b.universe_);
  universe_ = a.universe_;
  const std::size_t n = std::min(a.words_.size(), b.words_.size());
  words_.resize(n);
  const std::size_t count = static_cast<std::size_t>(simd::kernels().and_words(
      a.words_.data(), b.words_.data(), words_.data(), n));
  count_ = count;
  return count;
}

bool BitsetTidList::assign_and_bounded(const BitsetTidList& a,
                                       const BitsetTidList& b, Count minsup,
                                       std::uint64_t* words_scanned) {
  ECLAT_DCHECK(a.universe_ == b.universe_);
  // Result popcount <= min of the input popcounts: the same pre-scan
  // rejection the sparse short-circuit kernel applies.
  if (std::min(a.count_, b.count_) < minsup) return false;
  universe_ = a.universe_;
  const std::size_t n = std::min(a.words_.size(), b.words_.size());
  words_.resize(n);
  const simd::KernelTable& kt = simd::kernels();
  std::size_t count = 0;
  for (std::size_t w = 0; w < n; w += kBoundBlockWords) {
    const std::size_t k = std::min(kBoundBlockWords, n - w);
    count += static_cast<std::size_t>(kt.and_words(
        a.words_.data() + w, b.words_.data() + w, words_.data() + w, k));
    // Even if every remaining bit survives the AND, the result caps at
    // count + 64 * (words remaining); abort once that drops below minsup.
    if (count + 64 * (n - w - k) < minsup) {
      if (words_scanned != nullptr) *words_scanned += w + k;
      return false;
    }
  }
  if (words_scanned != nullptr) *words_scanned += n;
  count_ = count;
  return count >= minsup;
}

std::optional<std::size_t> BitsetTidList::and_count(
    const BitsetTidList& a, const BitsetTidList& b, Count minsup,
    std::uint64_t* words_scanned) {
  ECLAT_DCHECK(a.universe_ == b.universe_);
  if (std::min(a.count_, b.count_) < minsup) return std::nullopt;
  const std::size_t n = std::min(a.words_.size(), b.words_.size());
  const simd::KernelTable& kt = simd::kernels();
  std::size_t count = 0;
  for (std::size_t w = 0; w < n; w += kBoundBlockWords) {
    const std::size_t k = std::min(kBoundBlockWords, n - w);
    count += static_cast<std::size_t>(
        kt.and_words(a.words_.data() + w, b.words_.data() + w, nullptr, k));
    if (count + 64 * (n - w - k) < minsup) {
      if (words_scanned != nullptr) *words_scanned += w + k;
      return std::nullopt;
    }
  }
  if (words_scanned != nullptr) *words_scanned += n;
  if (count < minsup) return std::nullopt;
  return count;
}

bool BitsetTidList::assign_andnot_bounded(const BitsetTidList& a,
                                          const BitsetTidList& b,
                                          std::size_t budget,
                                          std::uint64_t* words_scanned) {
  ECLAT_DCHECK(a.universe_ == b.universe_);
  universe_ = a.universe_;
  const std::size_t n = a.words_.size();
  words_.resize(n);
  const simd::KernelTable& kt = simd::kernels();
  std::size_t count = 0;
  for (std::size_t w = 0; w < n; w += kBoundBlockWords) {
    const std::size_t k = std::min(kBoundBlockWords, n - w);
    count += static_cast<std::size_t>(kt.andnot_words(
        a.words_.data() + w, b.words_.data() + w, words_.data() + w, k));
    if (count > budget) {
      if (words_scanned != nullptr) *words_scanned += w + k;
      return false;
    }
  }
  if (words_scanned != nullptr) *words_scanned += n;
  count_ = count;
  return true;
}

bool BitsetTidList::assign_minus_sparse(const BitsetTidList& a,
                                        std::span<const Tid> tids,
                                        std::size_t budget,
                                        std::uint64_t* words_scanned) {
  ECLAT_DCHECK(is_valid_tidlist(tids));
  // Quick reject: even if every tid of `tids` hits a set bit of `a`, the
  // result keeps a.count − |tids| bits.
  if (a.count_ > budget + tids.size()) return false;
  universe_ = a.universe_;
  words_ = a.words_;
  std::size_t removed = 0;
  for (const Tid t : tids) {
    ECLAT_DCHECK(t < universe_);
    std::uint64_t& word = words_[t >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (t & 63);
    removed += static_cast<std::size_t>((word & mask) != 0);
    word &= ~mask;
  }
  if (words_scanned != nullptr) *words_scanned += words_.size();
  count_ = a.count_ - removed;
  return count_ <= budget;
}

}  // namespace eclat
