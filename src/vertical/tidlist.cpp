#include "vertical/tidlist.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eclat {

bool is_valid_tidlist(std::span<const Tid> tids) {
  for (std::size_t i = 1; i < tids.size(); ++i) {
    if (tids[i - 1] >= tids[i]) return false;
  }
  return true;
}

TidList intersect(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

std::size_t intersection_size(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::optional<TidList> intersect_short_circuit(std::span<const Tid> a,
                                               std::span<const Tid> b,
                                               Count minsup) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  // Result support <= matched + remaining elements of the shorter list.
  if (std::min(a.size(), b.size()) < minsup) return std::nullopt;
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::size_t bound =
        out.size() + std::min(a.size() - i, b.size() - j);
    if (bound < minsup) return std::nullopt;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  if (out.size() < minsup) return std::nullopt;
  return out;
}

namespace {

/// First index in [lo, span.size()) with span[index] >= target, found by
/// doubling probes from `lo` then binary search within the bracket.
std::size_t gallop_lower_bound(std::span<const Tid> span, std::size_t lo,
                               Tid target) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < span.size() && span[hi] < target) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, span.size());
  const auto* begin = span.data() + lo;
  const auto* end = span.data() + hi;
  return static_cast<std::size_t>(
      std::lower_bound(begin, end, target) - span.data());
}

}  // namespace

TidList intersect_gallop(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  if (a.size() > b.size()) return intersect_gallop(b, a);
  TidList out;
  out.reserve(a.size());
  std::size_t j = 0;
  for (const Tid target : a) {
    j = gallop_lower_bound(b, j, target);
    if (j == b.size()) break;
    if (b[j] == target) {
      out.push_back(target);
      ++j;
    }
  }
  return out;
}

TidList difference(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  TidList out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

TidList unite(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  TidList out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  ECLAT_DCHECK(is_valid_tidlist(out));
  return out;
}

}  // namespace eclat
