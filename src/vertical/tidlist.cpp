#include "vertical/tidlist.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eclat {

bool is_valid_tidlist(std::span<const Tid> tids) {
  for (std::size_t i = 1; i < tids.size(); ++i) {
    if (tids[i - 1] >= tids[i]) return false;
  }
  return true;
}

TidList intersect(std::span<const Tid> a, std::span<const Tid> b) {
  TidList out;
  intersect_into(a, b, out);
  return out;
}

void intersect_into(std::span<const Tid> a, std::span<const Tid> b,
                    TidList& out, std::size_t* visited) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  out.clear();
  out.reserve(std::min(a.size(), b.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
}

std::size_t intersection_size(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::optional<TidList> intersect_short_circuit(std::span<const Tid> a,
                                               std::span<const Tid> b,
                                               Count minsup) {
  TidList out;
  if (!intersect_short_circuit_into(a, b, minsup, out)) return std::nullopt;
  return out;
}

bool intersect_short_circuit_into(std::span<const Tid> a,
                                  std::span<const Tid> b, Count minsup,
                                  TidList& out, std::size_t* visited) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  // Result support <= matched + remaining elements of the shorter list.
  if (std::min(a.size(), b.size()) < minsup) return false;
  out.clear();
  out.reserve(std::min(a.size(), b.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::size_t bound =
        out.size() + std::min(a.size() - i, b.size() - j);
    if (bound < minsup) {
      if (visited != nullptr) *visited += i + j;
      return false;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
  return out.size() >= minsup;
}

std::optional<Count> intersect_count_bounded(std::span<const Tid> a,
                                             std::span<const Tid> b,
                                             Count minsup,
                                             std::size_t* visited) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  if (std::min(a.size(), b.size()) < minsup) return std::nullopt;
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (count + std::min(a.size() - i, b.size() - j) < minsup) {
      if (visited != nullptr) *visited += i + j;
      return std::nullopt;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
  if (count < minsup) return std::nullopt;
  return count;
}

namespace {

/// First index in [lo, span.size()) with span[index] >= target, found by
/// doubling probes from `lo` then binary search within the bracket.
/// `probes`, when non-null, accumulates the elements compared against.
std::size_t gallop_lower_bound(std::span<const Tid> span, std::size_t lo,
                               Tid target, std::size_t* probes) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < span.size() && span[hi] < target) {
    if (probes != nullptr) ++*probes;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, span.size());
  std::size_t width = hi - lo;
  while (width > 0) {
    if (probes != nullptr) ++*probes;
    const std::size_t half = width / 2;
    if (span[lo + half] < target) {
      lo += half + 1;
      width -= half + 1;
    } else {
      width = half;
    }
  }
  return lo;
}

}  // namespace

TidList intersect_gallop(std::span<const Tid> a, std::span<const Tid> b) {
  TidList out;
  intersect_gallop_into(a, b, out);
  return out;
}

void intersect_gallop_into(std::span<const Tid> a, std::span<const Tid> b,
                           TidList& out, std::size_t* visited) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  if (a.size() > b.size()) {
    intersect_gallop_into(b, a, out, visited);
    return;
  }
  out.clear();
  out.reserve(a.size());
  std::size_t j = 0;
  std::size_t scanned = 0;
  for (const Tid target : a) {
    ++scanned;
    j = gallop_lower_bound(b, j, target, visited != nullptr ? &scanned
                                                            : nullptr);
    if (j == b.size()) break;
    if (b[j] == target) {
      out.push_back(target);
      ++j;
    }
  }
  if (visited != nullptr) *visited += scanned;
}

bool difference_bounded_into(std::span<const Tid> a, std::span<const Tid> b,
                             std::size_t max_size, TidList& out,
                             std::size_t* visited) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  out.clear();
  out.reserve(std::min(a.size(), max_size + 1));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size()) {
    if (j == b.size() || a[i] < b[j]) {
      if (out.size() == max_size) {
        if (visited != nullptr) *visited += i + j;
        return false;
      }
      out.push_back(a[i]);
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
  return true;
}

TidList difference(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  TidList out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

TidList unite(std::span<const Tid> a, std::span<const Tid> b) {
  ECLAT_DCHECK(is_valid_tidlist(a));
  ECLAT_DCHECK(is_valid_tidlist(b));
  TidList out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  ECLAT_DCHECK(is_valid_tidlist(out));
  return out;
}

}  // namespace eclat
