// Portable reference kernels: always compiled, always in the binary.
// Every vector kernel must compute bit-identical results to these — the
// dispatcher's self_check() and the forced-scalar differential tests
// enforce it.
#include <algorithm>
#include <bit>

#include "vertical/simd/kernels_internal.hpp"

namespace eclat::simd::detail {

std::uint64_t scalar_and_words(const std::uint64_t* a, const std::uint64_t* b,
                               std::uint64_t* out, std::size_t n) {
  std::uint64_t count = 0;
  if (out != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = a[i] & b[i];
      out[i] = v;
      count += static_cast<std::uint64_t>(std::popcount(v));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      count += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    }
  }
  return count;
}

std::uint64_t scalar_andnot_words(const std::uint64_t* a,
                                  const std::uint64_t* b, std::uint64_t* out,
                                  std::size_t n) {
  std::uint64_t count = 0;
  if (out != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = a[i] & ~b[i];
      out[i] = v;
      count += static_cast<std::uint64_t>(std::popcount(v));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      count += static_cast<std::uint64_t>(std::popcount(a[i] & ~b[i]));
    }
  }
  return count;
}

std::size_t scalar_intersect_u16(const std::uint16_t* a, std::size_t na,
                                 const std::uint16_t* b, std::size_t nb,
                                 std::uint16_t* out, std::size_t* visited) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
  return k;
}

std::size_t scalar_intersect_u16_count(const std::uint16_t* a, std::size_t na,
                                       const std::uint16_t* b, std::size_t nb,
                                       std::size_t* visited) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++k;
      ++i;
      ++j;
    }
  }
  if (visited != nullptr) *visited += i + j;
  return k;
}

namespace {

/// First index in [lo, nl) with large[index] >= target: doubling probes
/// from lo, then binary search within the bracket. Mirrors
/// gallop_lower_bound in tidlist.cpp, including probe accounting.
std::size_t gallop_lower_bound_u32(const std::uint32_t* large, std::size_t nl,
                                   std::size_t lo, std::uint32_t target,
                                   std::size_t* probes) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < nl && large[hi] < target) {
    if (probes != nullptr) ++*probes;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, nl);
  std::size_t width = hi - lo;
  while (width > 0) {
    if (probes != nullptr) ++*probes;
    const std::size_t half = width / 2;
    if (large[lo + half] < target) {
      lo += half + 1;
      width -= half + 1;
    } else {
      width = half;
    }
  }
  return lo;
}

}  // namespace

std::size_t scalar_gallop_u32(const std::uint32_t* small, std::size_t ns,
                              const std::uint32_t* large, std::size_t nl,
                              std::uint32_t* out, std::size_t* visited) {
  std::size_t j = 0;
  std::size_t k = 0;
  std::size_t scanned = 0;
  std::size_t* probes = visited != nullptr ? &scanned : nullptr;
  for (std::size_t i = 0; i < ns; ++i) {
    ++scanned;
    j = gallop_lower_bound_u32(large, nl, j, small[i], probes);
    if (j == nl) break;
    if (large[j] == small[i]) {
      out[k++] = small[i];
      ++j;
    }
  }
  if (visited != nullptr) *visited += scanned;
  return k;
}

std::size_t scalar_gallop_u32_count(const std::uint32_t* small, std::size_t ns,
                                    const std::uint32_t* large, std::size_t nl,
                                    std::size_t* visited) {
  std::size_t j = 0;
  std::size_t k = 0;
  std::size_t scanned = 0;
  std::size_t* probes = visited != nullptr ? &scanned : nullptr;
  for (std::size_t i = 0; i < ns; ++i) {
    ++scanned;
    j = gallop_lower_bound_u32(large, nl, j, small[i], probes);
    if (j == nl) break;
    if (large[j] == small[i]) {
      ++k;
      ++j;
    }
  }
  if (visited != nullptr) *visited += scanned;
  return k;
}

std::size_t scalar_decode_words(const std::uint64_t* words, std::size_t n,
                                std::uint32_t base, std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t w = 0; w < n; ++w) {
    if (words[w] == 0) {
      // Decode cost on sparse bitmaps is dominated by empty space: skip
      // zero words eight at a time before falling back per word.
      while (w + 8 <= n &&
             (words[w] | words[w + 1] | words[w + 2] | words[w + 3] |
              words[w + 4] | words[w + 5] | words[w + 6] |
              words[w + 7]) == 0) {
        w += 8;
      }
      if (w == n) break;  // skipped to the end (n divisible by 8)
      if (words[w] == 0) continue;
    }
    std::uint64_t word = words[w];
    const std::uint32_t word_base =
        base + static_cast<std::uint32_t>(w * 64);
    while (word != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
      out[k++] = word_base + bit;
      word &= word - 1;  // clear lowest set bit
    }
  }
  return k;
}

const KernelTable& scalar_table() {
  static const KernelTable table = {
      .level = IsaLevel::kScalar,
      .and_words = &scalar_and_words,
      .andnot_words = &scalar_andnot_words,
      .intersect_u16 = &scalar_intersect_u16,
      .intersect_u16_count = &scalar_intersect_u16_count,
      .gallop_u32 = &scalar_gallop_u32,
      .gallop_u32_count = &scalar_gallop_u32_count,
      .decode_words = &scalar_decode_words,
  };
  return table;
}

}  // namespace eclat::simd::detail
