#include "vertical/simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "vertical/simd/kernels_internal.hpp"

namespace eclat::simd {

namespace {

bool force_scalar_env() {
  const char* value = std::getenv("ECLAT_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

bool cpuid_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool cpuid_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

/// Highest level both compiled into this binary and executable on this
/// host. The *_table() accessors report through their level field what
/// the build actually contains.
IsaLevel supported_max() {
  if (cpuid_avx512() &&
      detail::avx512_table().level == IsaLevel::kAvx512) {
    return IsaLevel::kAvx512;
  }
  if (cpuid_avx2() && detail::avx2_table().level == IsaLevel::kAvx2) {
    return IsaLevel::kAvx2;
  }
  return IsaLevel::kScalar;
}

IsaLevel clamp_to_supported(IsaLevel level) {
  const IsaLevel max = supported_max();
  return level < max ? level : max;
}

// Dispatch state. Resolved once via magic static; the override is a
// plain pointer-sized global written only from the single-threaded
// test/bench hook (override_isa_level documents it must not race with
// mining workers). Deliberately not std::atomic: src/vertical is
// covered by the det-thread lint rule — all cross-thread coordination
// lives in src/exec, and workers only ever read the immutable tables.
struct OverrideSlot {
  bool set = false;
  IsaLevel level = IsaLevel::kScalar;
};
OverrideSlot g_override;

}  // namespace

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  ECLAT_UNREACHABLE("invalid IsaLevel");
}

bool cpu_has_avx2() {
  static const bool value = cpuid_avx2();
  return value;
}

bool cpu_has_avx512bw() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool value = __builtin_cpu_supports("avx512bw") != 0;
  return value;
#else
  return false;
#endif
}

IsaLevel detected_isa_level() {
  static const IsaLevel level =
      force_scalar_env() ? IsaLevel::kScalar : supported_max();
  return level;
}

IsaLevel active_level() {
  return g_override.set ? clamp_to_supported(g_override.level)
                        : detected_isa_level();
}

const KernelTable& kernels_for(IsaLevel level) {
  switch (clamp_to_supported(level)) {
    case IsaLevel::kScalar:
      return detail::scalar_table();
    case IsaLevel::kAvx2:
      return detail::avx2_table();
    case IsaLevel::kAvx512:
      return detail::avx512_table();
  }
  ECLAT_UNREACHABLE("invalid IsaLevel");
}

const KernelTable& kernels() { return kernels_for(active_level()); }

void override_isa_level(std::optional<IsaLevel> level) {
  g_override.set = level.has_value();
  if (level.has_value()) g_override.level = *level;
}

void self_check() {
  const KernelTable& table = kernels();
  if (table.level == IsaLevel::kScalar) return;

  // Word kernels: 67 words (not a multiple of any vector width) with
  // asymmetric bit patterns so AND and ANDNOT differ.
  constexpr std::size_t kWords = 67;
  std::uint64_t a[kWords];
  std::uint64_t b[kWords];
  for (std::size_t i = 0; i < kWords; ++i) {
    a[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
    b[i] = (a[i] >> 3) ^ 0x0123456789abcdefULL;
  }
  std::uint64_t got_words[kWords];
  std::uint64_t want_words[kWords];
  ECLAT_CHECK(table.and_words(a, b, got_words, kWords) ==
              detail::scalar_and_words(a, b, want_words, kWords));
  ECLAT_CHECK(std::memcmp(got_words, want_words, sizeof(got_words)) == 0);
  ECLAT_CHECK(table.andnot_words(a, b, got_words, kWords) ==
              detail::scalar_andnot_words(a, b, want_words, kWords));
  ECLAT_CHECK(std::memcmp(got_words, want_words, sizeof(got_words)) == 0);
  ECLAT_CHECK(table.and_words(a, b, nullptr, kWords) ==
              detail::scalar_and_words(a, b, nullptr, kWords));

  // Decode: the same asymmetric words plus an all-zero prefix (exercises
  // the zero-skip) and a nonzero base offset.
  std::uint64_t sparse_words[kWords] = {};
  for (std::size_t i = 20; i < kWords; i += 7) sparse_words[i] = a[i];
  std::uint32_t got_decoded[512];  // 7 nonzero words = at most 448 bits
  std::uint32_t want_decoded[512];
  const std::size_t got_d =
      table.decode_words(sparse_words, kWords, 1u << 16, got_decoded);
  const std::size_t want_d = detail::scalar_decode_words(
      sparse_words, kWords, 1u << 16, want_decoded);
  ECLAT_CHECK(got_d == want_d);
  ECLAT_CHECK(std::memcmp(got_decoded, want_decoded,
                          got_d * sizeof(std::uint32_t)) == 0);

  // Sparse u16 kernel: includes tid 0 (the cmpestrm-vs-cmpistrm trap)
  // and 0xffff, with block-straddling matches.
  std::uint16_t sa[24];
  std::uint16_t sb[21];
  for (std::size_t i = 0; i < 24; ++i) {
    sa[i] = static_cast<std::uint16_t>(i * 3);
  }
  for (std::size_t i = 0; i < 20; ++i) {
    sb[i] = static_cast<std::uint16_t>(i * 5);
  }
  sb[20] = 0xffff;
  std::uint16_t got_u16[24 + 8];
  std::uint16_t want_u16[24 + 8];
  const std::size_t got_n =
      table.intersect_u16(sa, 24, sb, 21, got_u16, nullptr);
  const std::size_t want_n =
      detail::scalar_intersect_u16(sa, 24, sb, 21, want_u16, nullptr);
  ECLAT_CHECK(got_n == want_n);
  ECLAT_CHECK(std::memcmp(got_u16, want_u16,
                          got_n * sizeof(std::uint16_t)) == 0);
  ECLAT_CHECK(table.intersect_u16_count(sa, 24, sb, 21, nullptr) == want_n);

  // Gallop: a short probe list against a long run with scattered hits.
  std::uint32_t small[9];
  std::uint32_t large[400];
  for (std::size_t i = 0; i < 9; ++i) {
    small[i] = static_cast<std::uint32_t>(i * i * 17);
  }
  for (std::size_t i = 0; i < 400; ++i) {
    large[i] = static_cast<std::uint32_t>(i * 2);
  }
  std::uint32_t got_u32[9];
  std::uint32_t want_u32[9];
  const std::size_t got_g = table.gallop_u32(small, 9, large, 400, got_u32,
                                             nullptr);
  const std::size_t want_g =
      detail::scalar_gallop_u32(small, 9, large, 400, want_u32, nullptr);
  ECLAT_CHECK(got_g == want_g);
  ECLAT_CHECK(std::memcmp(got_u32, want_u32,
                          got_g * sizeof(std::uint32_t)) == 0);
  ECLAT_CHECK(table.gallop_u32_count(small, 9, large, 400, nullptr) ==
              want_g);
}

}  // namespace eclat::simd
