// Internal wiring between the per-ISA translation units and the
// dispatcher. Each ISA level exports its table through one accessor; a
// level whose translation unit was compiled without the matching -m
// flags returns the next lower table (level field tells the dispatcher
// what it actually got). Nothing outside src/vertical/simd/ includes
// this header — external code goes through dispatch.hpp.
#pragma once

#include "dispatch.hpp"

namespace eclat::simd::detail {

const KernelTable& scalar_table();
const KernelTable& avx2_table();    // scalar_table() if not compiled
const KernelTable& avx512_table();  // avx2_table() if not compiled

// Scalar reference implementations, exported so the vector tables can
// fall back per-entry (e.g. the AVX-512 table reuses the AVX2 sparse
// kernels) and so self_check() always has the ground truth.
std::uint64_t scalar_and_words(const std::uint64_t* a, const std::uint64_t* b,
                               std::uint64_t* out, std::size_t n);
std::uint64_t scalar_andnot_words(const std::uint64_t* a,
                                  const std::uint64_t* b, std::uint64_t* out,
                                  std::size_t n);
std::size_t scalar_intersect_u16(const std::uint16_t* a, std::size_t na,
                                 const std::uint16_t* b, std::size_t nb,
                                 std::uint16_t* out, std::size_t* visited);
std::size_t scalar_intersect_u16_count(const std::uint16_t* a, std::size_t na,
                                       const std::uint16_t* b, std::size_t nb,
                                       std::size_t* visited);
std::size_t scalar_gallop_u32(const std::uint32_t* small, std::size_t ns,
                              const std::uint32_t* large, std::size_t nl,
                              std::uint32_t* out, std::size_t* visited);
std::size_t scalar_gallop_u32_count(const std::uint32_t* small, std::size_t ns,
                                    const std::uint32_t* large, std::size_t nl,
                                    std::size_t* visited);
std::size_t scalar_decode_words(const std::uint64_t* words, std::size_t n,
                                std::uint32_t base, std::uint32_t* out);

}  // namespace eclat::simd::detail
