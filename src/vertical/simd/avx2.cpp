// AVX2 + SSE4.2 kernels. This translation unit is compiled with
// -mavx2 (see src/vertical/CMakeLists.txt) when the compiler supports
// it; the dispatcher only installs this table after CPUID confirms the
// host executes AVX2, so the binary stays runnable on older machines.
//
// Word kernels: 256-bit AND / ANDNOT with the Mula nibble-LUT popcount
// (no hardware VPOPCNT below AVX-512, so popcount via PSHUFB is the
// fastest portable-AVX2 reduction). Sparse kernels: the classic
// STTNI block intersection — _mm_cmpestrm compares each 8×u16 block of
// one list against a block of the other in a single instruction, and a
// 256-entry shuffle table compresses the match mask into the output.
// _mm_cmpestrm (explicit length), NOT _mm_cmpistrm: the implicit-length
// form treats the value 0 as a terminator and tid 0 is a valid tid.
#if defined(__AVX2__) && defined(__SSE4_2__)
#include <immintrin.h>

#include <algorithm>
#include <array>
#include <bit>
#endif

#include "vertical/simd/kernels_internal.hpp"

namespace eclat::simd::detail {

#if defined(__AVX2__) && defined(__SSE4_2__)

namespace {

std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

/// Per-byte popcount of v via two 16-entry nibble lookups (Mula).
__m256i popcount_epu8(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

template <bool kNot>
std::uint64_t and_words_impl(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes (~first) & second, so the operand order flips.
    const __m256i v =
        kNot ? _mm256_andnot_si256(vb, va) : _mm256_and_si256(va, vb);
    if (out != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
    // Byte counts fit u8 (max 8 per byte); SAD against zero folds each
    // 8-byte lane into a u64 without overflow at any n.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_epu8(v), zero));
  }
  std::uint64_t count = hsum_epi64(acc);
  for (; i < n; ++i) {
    const std::uint64_t v = kNot ? (a[i] & ~b[i]) : (a[i] & b[i]);
    if (out != nullptr) out[i] = v;
    count += static_cast<std::uint64_t>(std::popcount(v));
  }
  return count;
}

std::uint64_t avx2_and_words(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, std::size_t n) {
  return and_words_impl<false>(a, b, out, n);
}

std::uint64_t avx2_andnot_words(const std::uint64_t* a, const std::uint64_t* b,
                                std::uint64_t* out, std::size_t n) {
  return and_words_impl<true>(a, b, out, n);
}

/// mask (8 bits, one per u16 lane) -> PSHUFB control compressing the
/// selected lanes to the front, 0xff elsewhere.
constexpr std::array<std::array<std::uint8_t, 16>, 256> make_compress_table() {
  std::array<std::array<std::uint8_t, 16>, 256> table{};
  for (std::size_t mask = 0; mask < 256; ++mask) {
    std::size_t pos = 0;
    for (std::size_t lane = 0; lane < 8; ++lane) {
      if ((mask >> lane & 1U) != 0) {
        table[mask][pos * 2] = static_cast<std::uint8_t>(lane * 2);
        table[mask][pos * 2 + 1] = static_cast<std::uint8_t>(lane * 2 + 1);
        ++pos;
      }
    }
    for (; pos < 8; ++pos) {
      table[mask][pos * 2] = 0xff;
      table[mask][pos * 2 + 1] = 0xff;
    }
  }
  return table;
}

constexpr auto kCompressU16 = make_compress_table();

template <bool kCount>
std::size_t intersect_u16_impl(const std::uint16_t* a, std::size_t na,
                               const std::uint16_t* b, std::size_t nb,
                               std::uint16_t* out, std::size_t* visited) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t k = 0;
  constexpr int kMode = _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK;
  while (ia + 8 <= na && ib + 8 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    const __m128i match = _mm_cmpestrm(va, 8, vb, 8, kMode);
    const unsigned mask =
        static_cast<unsigned>(_mm_extract_epi32(match, 0)) & 0xffU;
    if constexpr (!kCount) {
      // Compress the matched lanes of vb to the front and store all 16
      // bytes; the table contract gives `out` 8 lanes of slack past the
      // true result, so the overwrite beyond k + popcount is harmless.
      const __m128i shuf = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(kCompressU16[mask].data()));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_shuffle_epi8(vb, shuf));
    }
    k += static_cast<std::size_t>(std::popcount(mask));
    // Advance whichever block has the smaller maximum; both lists are
    // strictly increasing, so every element of the retired block has
    // been compared against everything that could still equal it.
    const std::uint16_t amax = a[ia + 7];
    const std::uint16_t bmax = b[ib + 7];
    if (amax <= bmax) ia += 8;
    if (bmax <= amax) ib += 8;
  }
  // Scalar merge over the remainder (under 8 elements on one side).
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      if constexpr (!kCount) out[k] = a[ia];
      ++k;
      ++ia;
      ++ib;
    }
  }
  if (visited != nullptr) *visited += ia + ib;
  return k;
}

std::size_t avx2_intersect_u16(const std::uint16_t* a, std::size_t na,
                               const std::uint16_t* b, std::size_t nb,
                               std::uint16_t* out, std::size_t* visited) {
  return intersect_u16_impl<false>(a, na, b, nb, out, visited);
}

std::size_t avx2_intersect_u16_count(const std::uint16_t* a, std::size_t na,
                                     const std::uint16_t* b, std::size_t nb,
                                     std::size_t* visited) {
  return intersect_u16_impl<true>(a, na, b, nb, nullptr, visited);
}

/// First index in [lo, nl) with large[index] >= target. Doubling probes
/// bracket the gap, binary search narrows it to <= 32 elements, and an
/// 8-wide compare scan finds the boundary inside the final window. The
/// sign-bit flip turns the signed epi32 compare into an unsigned one.
std::size_t avx2_lower_bound_u32(const std::uint32_t* large, std::size_t nl,
                                 std::size_t lo, std::uint32_t target,
                                 std::size_t* probes) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < nl && large[hi] < target) {
    if (probes != nullptr) ++*probes;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, nl);
  std::size_t width = hi - lo;
  while (width > 32) {
    if (probes != nullptr) ++*probes;
    const std::size_t half = width / 2;
    if (large[lo + half] < target) {
      lo += half + 1;
      width -= half + 1;
    } else {
      width = half;
    }
  }
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i vt = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(target)), sign);
  while (width >= 8) {
    if (probes != nullptr) ++*probes;
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(large + lo)),
        sign);
    // Lane mask of large[lo + lane] < target; sortedness makes it a
    // prefix of ones, so countr_one is the in-window lower bound.
    const unsigned less = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vt, v))));
    if (less != 0xffU) return lo + std::countr_one(less);
    lo += 8;
    width -= 8;
  }
  while (width > 0 && large[lo] < target) {
    if (probes != nullptr) ++*probes;
    ++lo;
    --width;
  }
  return lo;
}

template <bool kCount>
std::size_t gallop_u32_impl(const std::uint32_t* small, std::size_t ns,
                            const std::uint32_t* large, std::size_t nl,
                            std::uint32_t* out, std::size_t* visited) {
  std::size_t j = 0;
  std::size_t k = 0;
  std::size_t scanned = 0;
  std::size_t* probes = visited != nullptr ? &scanned : nullptr;
  for (std::size_t i = 0; i < ns; ++i) {
    ++scanned;
    j = avx2_lower_bound_u32(large, nl, j, small[i], probes);
    if (j == nl) break;
    if (large[j] == small[i]) {
      if constexpr (!kCount) out[k] = small[i];
      ++k;
      ++j;
    }
  }
  if (visited != nullptr) *visited += scanned;
  return k;
}

std::size_t avx2_gallop_u32(const std::uint32_t* small, std::size_t ns,
                            const std::uint32_t* large, std::size_t nl,
                            std::uint32_t* out, std::size_t* visited) {
  return gallop_u32_impl<false>(small, ns, large, nl, out, visited);
}

std::size_t avx2_gallop_u32_count(const std::uint32_t* small, std::size_t ns,
                                  const std::uint32_t* large, std::size_t nl,
                                  std::size_t* visited) {
  return gallop_u32_impl<true>(small, ns, large, nl, nullptr, visited);
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table = {
      .level = IsaLevel::kAvx2,
      .and_words = &avx2_and_words,
      .andnot_words = &avx2_andnot_words,
      .intersect_u16 = &avx2_intersect_u16,
      .intersect_u16_count = &avx2_intersect_u16_count,
      .gallop_u32 = &avx2_gallop_u32,
      .gallop_u32_count = &avx2_gallop_u32_count,
      // No AVX2 bit-position compress instruction exists (vpcompressd is
      // AVX-512); the zero-skipping scalar decode is the best fit here.
      .decode_words = &scalar_decode_words,
  };
  return table;
}

#else  // !(__AVX2__ && __SSE4_2__)

// Compiled without AVX2 codegen support: serve the scalar table (its
// level field tells the dispatcher the vector path is unavailable).
const KernelTable& avx2_table() { return scalar_table(); }

#endif

}  // namespace eclat::simd::detail
