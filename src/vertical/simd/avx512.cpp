// AVX-512 word kernels: 512-bit AND / ANDNOT with the hardware
// VPOPCNTDQ per-word popcount — the reduction the Mula LUT approximates
// in one instruction. The sparse kernels are taken over from the AVX2
// table unchanged (STTNI block intersection does not widen past 128
// bits, and the gallop is latency- not width-bound). Compiled with
// -mavx512f -mavx512bw -mavx512vpopcntdq when available; installed only
// after CPUID confirms all three features.
#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)
// GCC's AVX-512 intrinsic headers build unmasked ops on top of
// _mm512_undefined_epi32(), which -Wmaybe-uninitialized flags at every
// inline expansion point (GCC PR105593). Suppress for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>

#include <bit>
#endif

#include "vertical/simd/kernels_internal.hpp"

namespace eclat::simd::detail {

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)

namespace {

template <bool kNot>
std::uint64_t and_words_impl(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    // andnot computes (~first) & second, so the operand order flips.
    const __m512i v =
        kNot ? _mm512_andnot_si512(vb, va) : _mm512_and_si512(va, vb);
    if (out != nullptr) _mm512_storeu_si512(out + i, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  // GCC 12's _mm512_reduce_add_epi64 header expands through
  // _mm512_undefined_epi32 and trips -Wmaybe-uninitialized under
  // -Werror, so reduce through memory instead (one store outside the
  // hot loop).
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3] +
                        lanes[4] + lanes[5] + lanes[6] + lanes[7];
  for (; i < n; ++i) {
    const std::uint64_t v = kNot ? (a[i] & ~b[i]) : (a[i] & b[i]);
    if (out != nullptr) out[i] = v;
    count += static_cast<std::uint64_t>(std::popcount(v));
  }
  return count;
}

std::uint64_t avx512_and_words(const std::uint64_t* a, const std::uint64_t* b,
                               std::uint64_t* out, std::size_t n) {
  return and_words_impl<false>(a, b, out, n);
}

std::uint64_t avx512_andnot_words(const std::uint64_t* a,
                                  const std::uint64_t* b, std::uint64_t* out,
                                  std::size_t n) {
  return and_words_impl<true>(a, b, out, n);
}

std::size_t avx512_decode_words(const std::uint64_t* words, std::size_t n,
                                std::uint32_t base, std::uint32_t* out) {
  // Empty space is skipped a 512-bit load at a time and the nonzero-word
  // mask steers straight to the populated words (no per-word scan inside
  // a group). A sparse word decodes through the two-op countr_zero loop;
  // only words dense enough to amortize the vector setup go through
  // vpcompressd on four 16-bit sub-masks. Output is ascending either
  // way — same bytes as the scalar reference.
  constexpr int kCompressMinBits = 16;
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  std::size_t k = 0;
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i v = _mm512_loadu_si512(words + w);
    auto nz = static_cast<unsigned>(_mm512_test_epi64_mask(v, v));
    while (nz != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(nz));
      nz &= nz - 1;
      std::uint64_t word = words[w + j];
      const auto word_base =
          base + static_cast<std::uint32_t>((w + j) * 64);
      if (std::popcount(word) < kCompressMinBits) {
        while (word != 0) {
          const auto bit =
              static_cast<std::uint32_t>(std::countr_zero(word));
          out[k++] = word_base + bit;
          word &= word - 1;
        }
        continue;
      }
      __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(
                                         static_cast<int>(word_base)),
                                     iota);
      for (unsigned quarter = 0; quarter < 4; ++quarter) {
        const auto m =
            static_cast<__mmask16>(word >> (16 * quarter) & 0xffff);
        if (m != 0) {
          _mm512_mask_compressstoreu_epi32(out + k, m, idx);
          k += static_cast<std::size_t>(
              std::popcount(static_cast<std::uint32_t>(m)));
        }
        idx = _mm512_add_epi32(idx, sixteen);
      }
    }
  }
  if (w < n) k += scalar_decode_words(words + w, n - w,
                                      base + static_cast<std::uint32_t>(
                                                 w * 64),
                                      out + k);
  return k;
}

}  // namespace

const KernelTable& avx512_table() {
  static const KernelTable table = {
      .level = IsaLevel::kAvx512,
      .and_words = &avx512_and_words,
      .andnot_words = &avx512_andnot_words,
      .intersect_u16 = avx2_table().intersect_u16,
      .intersect_u16_count = avx2_table().intersect_u16_count,
      .gallop_u32 = avx2_table().gallop_u32,
      .gallop_u32_count = avx2_table().gallop_u32_count,
      .decode_words = &avx512_decode_words,
  };
  return table;
}

#else  // AVX-512 codegen unavailable in this build

const KernelTable& avx512_table() { return avx2_table(); }

#endif

}  // namespace eclat::simd::detail
