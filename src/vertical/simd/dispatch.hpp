// Runtime-dispatched SIMD kernel table for the tid-list layer.
//
// One binary carries every code path: the scalar kernels are always
// compiled, the AVX2 and AVX-512 translation units are compiled with
// their own -m flags (see src/vertical/CMakeLists.txt), and the host's
// CPUID decides — once, at first use — which function pointers the
// active table holds. `ECLAT_NATIVE` therefore stops being the only way
// to get vector code: a portable build dispatches to AVX-512 on a
// machine that has it and falls back to scalar anywhere else.
//
// Dispatch contract (DESIGN.md §5): every kernel in every table computes
// the exact same mathematical result — the ISA level changes throughput
// only, never bytes. The differential tests pin this by re-mining under
// `override_isa_level` at every level the host supports.
//
// The table is resolved once per process and immutable afterwards, so a
// per-worker "copy" is one pointer load; `self_check()` lets each
// execution-backend worker validate its dispatched table against the
// scalar reference before mining (cheap, and catches a miscompiled or
// misdetected vector path at startup instead of in a diff).
//
// `ECLAT_FORCE_SCALAR=1` in the environment pins the scalar table — the
// CI sanitizer matrix runs a forced-scalar leg so the fallback path
// stays exercised on hosts where it would otherwise never run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace eclat::simd {

enum class IsaLevel : std::uint8_t {
  kScalar,  ///< portable C++ (always available)
  kAvx2,    ///< AVX2 word AND + vectorized popcount, SSE4.2 u16 intersect
  kAvx512,  ///< AVX-512BW + VPOPCNTDQ word kernels
};

/// Canonical lowercase name ("scalar", "avx2", "avx512").
const char* isa_name(IsaLevel level);

/// The kernel table: raw loops over unowned memory. All pointers are
/// non-null in every table (unsupported levels fall back to the next
/// lower implementation), so call sites never branch on availability.
struct KernelTable {
  IsaLevel level = IsaLevel::kScalar;

  /// popcount(a & b) over n words; when out != nullptr also stores a & b.
  std::uint64_t (*and_words)(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, std::size_t n);

  /// popcount(a & ~b) over n words; when out != nullptr stores a & ~b.
  std::uint64_t (*andnot_words)(const std::uint64_t* a,
                                const std::uint64_t* b, std::uint64_t* out,
                                std::size_t n);

  /// Intersect two sorted u16 arrays into out (capacity >= min(na, nb) + 8
  /// — the vector kernels store 16 bytes at a time). Returns the result
  /// size. `visited` accumulates elements actually inspected.
  std::size_t (*intersect_u16)(const std::uint16_t* a, std::size_t na,
                               const std::uint16_t* b, std::size_t nb,
                               std::uint16_t* out, std::size_t* visited);

  /// Count-only variant of intersect_u16.
  std::size_t (*intersect_u16_count)(const std::uint16_t* a, std::size_t na,
                                     const std::uint16_t* b, std::size_t nb,
                                     std::size_t* visited);

  /// Galloping membership intersection for heavily skewed sorted u32
  /// pairs: every element of `small` is searched in `large` (exponential
  /// probe, then a vectorized window scan). Returns the result size; out
  /// capacity >= ns. `visited` counts small elements plus search probes.
  std::size_t (*gallop_u32)(const std::uint32_t* small, std::size_t ns,
                            const std::uint32_t* large, std::size_t nl,
                            std::uint32_t* out, std::size_t* visited);

  /// Count-only variant of gallop_u32.
  std::size_t (*gallop_u32_count)(const std::uint32_t* small, std::size_t ns,
                                  const std::uint32_t* large, std::size_t nl,
                                  std::size_t* visited);

  /// Decode the set-bit positions of words[0..n) in ascending order into
  /// out (capacity >= popcount of the range), each offset by `base`.
  /// Returns the number decoded. This is the densify→sparsify conversion
  /// workhorse: a representation demotion costs one pass of this kernel,
  /// so it must not be slower than the AND that produced the words.
  std::size_t (*decode_words)(const std::uint64_t* words, std::size_t n,
                              std::uint32_t base, std::uint32_t* out);
};

/// Raw CPUID feature bits (independent of what this build compiled or
/// what dispatch selected) — stamped into BENCH_*.json headers so perf
/// trajectories are comparable across machines.
bool cpu_has_avx2();
bool cpu_has_avx512bw();

/// The ISA level CPUID + build flags + ECLAT_FORCE_SCALAR resolve to.
/// Computed once; subsequent calls are a load.
IsaLevel detected_isa_level();

/// The level kernels() currently serves: the override when set, else the
/// detected level.
IsaLevel active_level();

/// The active kernel table (function pointers for active_level()).
const KernelTable& kernels();

/// The table for a specific level, clamped to what this build + host can
/// actually run (asking for kAvx512 on an AVX2-only host returns the
/// AVX2 table; on a non-x86 build, the scalar table).
const KernelTable& kernels_for(IsaLevel level);

/// Test/bench hook: pin dispatch to `level` (clamped to the supported
/// maximum), or nullopt to return to the detected level. Not thread-safe
/// — call only while no mining workers are running; workers re-read the
/// table at their next kernel call.
void override_isa_level(std::optional<IsaLevel> level);

/// Run every kernel of the active table against the scalar reference on
/// a small fixed input; aborts via contract check on divergence. Each
/// execution-backend worker calls this once before mining.
void self_check();

}  // namespace eclat::simd
