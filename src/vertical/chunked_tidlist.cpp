#include "vertical/chunked_tidlist.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"
#include "vertical/simd/dispatch.hpp"

namespace eclat {

namespace {

/// In-chunk 16-bit value of a tid.
std::uint16_t low16(Tid t) { return static_cast<std::uint16_t>(t & 0xffff); }

std::uint64_t mask_from(unsigned bit) { return ~std::uint64_t{0} << bit; }
std::uint64_t mask_upto(unsigned bit) {
  return bit == 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (bit + 1)) - 1);
}

bool word_bit(std::span<const std::uint64_t> words, std::uint16_t v) {
  const std::size_t w = v >> 6;
  return w < words.size() &&
         (words[w] >> (v & 63) & std::uint64_t{1}) != 0;
}

/// popcount of words restricted to bit positions [start, last].
std::size_t popcount_range(std::span<const std::uint64_t> words,
                           std::uint16_t start, std::uint16_t last) {
  const std::size_t w0 = start >> 6;
  const std::size_t w1 = last >> 6;
  if (w0 >= words.size()) return 0;
  if (w0 == w1) {
    return static_cast<std::size_t>(
        std::popcount(words[w0] & mask_from(start & 63) & mask_upto(last & 63)));
  }
  std::size_t count =
      static_cast<std::size_t>(std::popcount(words[w0] & mask_from(start & 63)));
  for (std::size_t w = w0 + 1; w < w1 && w < words.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(words[w]));
  }
  if (w1 < words.size()) {
    count += static_cast<std::size_t>(
        std::popcount(words[w1] & mask_upto(last & 63)));
  }
  return count;
}

/// dst |= src restricted to [start, last]; returns bits copied.
std::size_t or_range_from(std::span<const std::uint64_t> src,
                          std::uint64_t* dst, std::uint16_t start,
                          std::uint16_t last) {
  const std::size_t w0 = start >> 6;
  const std::size_t w1 = last >> 6;
  if (w0 >= src.size()) return 0;
  std::size_t count = 0;
  for (std::size_t w = w0; w <= w1 && w < src.size(); ++w) {
    std::uint64_t m = src[w];
    if (w == w0) m &= mask_from(start & 63);
    if (w == w1) m &= mask_upto(last & 63);
    dst[w] |= m;
    count += static_cast<std::size_t>(std::popcount(m));
  }
  return count;
}

/// Set all bits of [start, last] in dst.
void fill_range(std::uint64_t* dst, std::uint16_t start, std::uint16_t last) {
  const std::size_t w0 = start >> 6;
  const std::size_t w1 = last >> 6;
  if (w0 == w1) {
    dst[w0] |= mask_from(start & 63) & mask_upto(last & 63);
    return;
  }
  dst[w0] |= mask_from(start & 63);
  for (std::size_t w = w0 + 1; w < w1; ++w) dst[w] = ~std::uint64_t{0};
  dst[w1] |= mask_upto(last & 63);
}

/// Clear all bits of [start, last] in dst; returns bits cleared.
std::size_t clear_range(std::uint64_t* dst, std::uint16_t start,
                        std::uint16_t last) {
  const std::size_t w0 = start >> 6;
  const std::size_t w1 = last >> 6;
  std::size_t cleared = 0;
  for (std::size_t w = w0; w <= w1; ++w) {
    std::uint64_t m = ~std::uint64_t{0};
    if (w == w0) m &= mask_from(start & 63);
    if (w == w1) m &= mask_upto(last & 63);
    cleared += static_cast<std::size_t>(std::popcount(dst[w] & m));
    dst[w] &= ~m;
  }
  return cleared;
}

/// Decode set bits of `words` into `out` as u16 positions. Only reached
/// when the payload stays an array container, so the result is bounded
/// by the array/bitset threshold; it rides the dispatched u32 decode and
/// narrows (chunk-local positions always fit 16 bits).
std::size_t decode_words_u16(std::span<const std::uint64_t> words,
                             std::uint16_t* out) {
  std::uint32_t buf[1024];
  const std::size_t k =
      simd::kernels().decode_words(words.data(), words.size(), 0, buf);
  ECLAT_DCHECK(k <= 1024);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = static_cast<std::uint16_t>(buf[i]);
  }
  return k;
}

/// Chunk-pair op classification for IntersectStats: bitset beats run
/// beats array when the two sides disagree.
void count_pair_op(IntersectStats* stats, ChunkedTidList::ContainerType a,
                   ChunkedTidList::ContainerType b) {
  if (stats == nullptr) return;
  using CT = ChunkedTidList::ContainerType;
  if (a == CT::kBitset || b == CT::kBitset) {
    ++stats->chunk_bitset_ops;
  } else if (a == CT::kRun || b == CT::kRun) {
    ++stats->chunk_run_ops;
  } else {
    ++stats->chunk_array_ops;
  }
}

void count_simd_words(IntersectStats* stats, const simd::KernelTable& kt) {
  if (stats != nullptr && kt.level != simd::IsaLevel::kScalar) {
    ++stats->simd_word_calls;
  }
}

void count_simd_sparse(IntersectStats* stats, const simd::KernelTable& kt) {
  if (stats != nullptr && kt.level != simd::IsaLevel::kScalar) {
    ++stats->simd_sparse_calls;
  }
}

}  // namespace

std::span<const std::uint16_t> ChunkedTidList::array_of(const Chunk& c) const {
  ECLAT_DCHECK(c.type == ContainerType::kArray);
  return {u16_pool_.data() + c.offset, c.cardinality};
}

std::span<const std::uint16_t> ChunkedTidList::runs_of(const Chunk& c) const {
  ECLAT_DCHECK(c.type == ContainerType::kRun);
  return {u16_pool_.data() + c.offset, 2 * std::size_t{c.run_count}};
}

std::span<const std::uint64_t> ChunkedTidList::words_of(const Chunk& c) const {
  ECLAT_DCHECK(c.type == ContainerType::kBitset);
  return {word_pool_.data() + c.offset, kChunkWords};
}

void ChunkedTidList::reset(Tid universe) {
  chunks_.clear();
  u16_pool_.clear();
  word_pool_.clear();
  universe_ = universe;
  count_ = 0;
}

void ChunkedTidList::assign(std::span<const Tid> tids, Tid universe) {
  ECLAT_DCHECK(is_valid_tidlist(tids));
  ECLAT_DCHECK(tids.empty() || tids.back() < universe);
  reset(universe);
  const std::size_t n = tids.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint16_t key = static_cast<std::uint16_t>(tids[i] >> 16);
    std::size_t j = i + 1;
    std::uint32_t runs = 1;
    while (j < n && (tids[j] >> 16) == key) {
      if (tids[j] != tids[j - 1] + 1) ++runs;
      ++j;
    }
    const std::size_t card = j - i;
    if (std::size_t{runs} * kRunCompression <= card) {
      const auto offset = static_cast<std::uint32_t>(u16_pool_.size());
      u16_pool_.resize(offset + 2 * std::size_t{runs});
      std::size_t w = offset;
      std::uint16_t start = low16(tids[i]);
      for (std::size_t k = i + 1; k <= j; ++k) {
        if (k == j || tids[k] != tids[k - 1] + 1) {
          u16_pool_[w++] = start;
          u16_pool_[w++] = low16(tids[k - 1]);
          if (k < j) start = low16(tids[k]);
        }
      }
      chunks_.push_back({key, ContainerType::kRun, offset,
                         static_cast<std::uint32_t>(card), runs});
    } else if (card >= kBitsetChunkMin) {
      const auto offset = static_cast<std::uint32_t>(word_pool_.size());
      word_pool_.resize(offset + kChunkWords);  // value-init: zeroed
      for (std::size_t k = i; k < j; ++k) {
        const std::uint16_t v = low16(tids[k]);
        word_pool_[offset + (v >> 6)] |= std::uint64_t{1} << (v & 63);
      }
      chunks_.push_back({key, ContainerType::kBitset, offset,
                         static_cast<std::uint32_t>(card), 0});
    } else {
      const auto offset = static_cast<std::uint32_t>(u16_pool_.size());
      u16_pool_.resize(offset + card);
      for (std::size_t k = i; k < j; ++k) {
        u16_pool_[offset + (k - i)] = low16(tids[k]);
      }
      chunks_.push_back({key, ContainerType::kArray, offset,
                         static_cast<std::uint32_t>(card), 0});
    }
    count_ += card;
    i = j;
  }
}

void ChunkedTidList::assign_from_words(std::span<const std::uint64_t> words,
                                       Tid universe, std::size_t count) {
  reset(universe);
  // Conversion path: chunks come out array or bitset by cardinality (run
  // structure is only detected on the sorted-list assign). The per-slice
  // popcount rides the dispatched word kernel (self-AND with no output
  // is a pure popcount), so this conversion — which normalize() runs on
  // every dense result that leaves the dense stay band — costs a SIMD
  // scan, not a scalar one.
  const simd::KernelTable& kt = simd::kernels();
  if (count < kBitsetChunkMin) {
    // No chunk can reach the bitset threshold when the whole list is
    // below it, so the popcount pre-pass would only re-derive what the
    // decode returns anyway: decode every slice straight into the array
    // pool in one pass. This is the hot demotion shape — a dense
    // intersection result that fell out of the dense stay band is almost
    // always this sparse.
    u16_pool_.resize(count);
    for (std::size_t w0 = 0; w0 < words.size(); w0 += kChunkWords) {
      const std::size_t wn = std::min(kChunkWords, words.size() - w0);
      const auto card =
          decode_words_u16(words.subspan(w0, wn), u16_pool_.data() + count_);
      if (card == 0) continue;
      chunks_.push_back({static_cast<std::uint16_t>(w0 / kChunkWords),
                         ContainerType::kArray,
                         static_cast<std::uint32_t>(count_),
                         static_cast<std::uint32_t>(card), 0});
      count_ += card;
    }
    ECLAT_DCHECK(count_ == count);
    count_ = count;
    return;
  }
  for (std::size_t w0 = 0; w0 < words.size(); w0 += kChunkWords) {
    const std::size_t wn = std::min(kChunkWords, words.size() - w0);
    const auto slice = words.subspan(w0, wn);
    const auto card = static_cast<std::size_t>(
        kt.and_words(slice.data(), slice.data(), nullptr, wn));
    if (card == 0) continue;
    const auto key = static_cast<std::uint16_t>(w0 / kChunkWords);
    if (card >= kBitsetChunkMin) {
      const auto offset = static_cast<std::uint32_t>(word_pool_.size());
      word_pool_.resize(offset + kChunkWords);
      std::copy(slice.begin(), slice.end(), word_pool_.begin() + offset);
      chunks_.push_back({key, ContainerType::kBitset, offset,
                         static_cast<std::uint32_t>(card), 0});
    } else {
      const auto offset = static_cast<std::uint32_t>(u16_pool_.size());
      u16_pool_.resize(offset + card);
      decode_words_u16(slice, u16_pool_.data() + offset);
      chunks_.push_back({key, ContainerType::kArray, offset,
                         static_cast<std::uint32_t>(card), 0});
    }
    count_ += card;
  }
  ECLAT_DCHECK(count_ == count);
  count_ = count;
}

ChunkedTidList::ContainerHistogram ChunkedTidList::histogram() const {
  ContainerHistogram h;
  for (const Chunk& c : chunks_) {
    switch (c.type) {
      case ContainerType::kArray:
        ++h.array;
        break;
      case ContainerType::kBitset:
        ++h.bitset;
        break;
      case ContainerType::kRun:
        ++h.run;
        break;
    }
  }
  return h;
}

bool ChunkedTidList::test(Tid t) const {
  if (t >= universe_) return false;
  const auto key = static_cast<std::uint16_t>(t >> 16);
  const auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, std::uint16_t k) { return c.key < k; });
  if (it == chunks_.end() || it->key != key) return false;
  const std::uint16_t v = low16(t);
  switch (it->type) {
    case ContainerType::kArray: {
      const auto av = array_of(*it);
      return std::binary_search(av.begin(), av.end(), v);
    }
    case ContainerType::kBitset:
      return word_bit(words_of(*it), v);
    case ContainerType::kRun: {
      const auto rv = runs_of(*it);
      // Last run with start <= v, if any; v is inside iff v <= its last.
      std::size_t lo = 0;
      std::size_t n = rv.size() / 2;
      while (n > 0) {
        const std::size_t half = n / 2;
        if (rv[2 * (lo + half)] <= v) {
          lo += half + 1;
          n -= half + 1;
        } else {
          n = half;
        }
      }
      return lo > 0 && v <= rv[2 * (lo - 1) + 1];
    }
  }
  ECLAT_UNREACHABLE("invalid ContainerType");
}

void ChunkedTidList::append_to(TidList& out) const {
  for (const Chunk& c : chunks_) {
    const Tid base = static_cast<Tid>(c.key) << 16;
    switch (c.type) {
      case ContainerType::kArray:
        for (const std::uint16_t v : array_of(c)) out.push_back(base | v);
        break;
      case ContainerType::kBitset: {
        const auto ws = words_of(c);
        const std::size_t old = out.size();
        out.resize(old + c.cardinality);
        const std::size_t decoded = simd::kernels().decode_words(
            ws.data(), ws.size(), base, out.data() + old);
        ECLAT_DCHECK(decoded == c.cardinality);
        (void)decoded;
        break;
      }
      case ContainerType::kRun: {
        const auto rv = runs_of(c);
        for (std::size_t r = 0; r < rv.size(); r += 2) {
          for (std::uint32_t v = rv[r]; v <= rv[r + 1]; ++v) {
            out.push_back(base | v);
          }
        }
        break;
      }
    }
  }
}

TidList ChunkedTidList::to_tidlist() const {
  TidList out;
  out.reserve(count_);
  append_to(out);
  return out;
}

void ChunkedTidList::write_words(std::span<std::uint64_t> words) const {
  for (const Chunk& c : chunks_) {
    const std::size_t w0 = std::size_t{c.key} * kChunkWords;
    switch (c.type) {
      case ContainerType::kArray:
        for (const std::uint16_t v : array_of(c)) {
          words[w0 + (v >> 6)] |= std::uint64_t{1} << (v & 63);
        }
        break;
      case ContainerType::kBitset: {
        const auto ws = words_of(c);
        const std::size_t wn = std::min(ws.size(), words.size() - w0);
        for (std::size_t w = 0; w < wn; ++w) words[w0 + w] |= ws[w];
        break;
      }
      case ContainerType::kRun: {
        const auto rv = runs_of(c);
        for (std::size_t r = 0; r < rv.size(); r += 2) {
          fill_range(words.data() + w0, rv[r], rv[r + 1]);
        }
        break;
      }
    }
  }
}

std::size_t ChunkedTidList::clear_words(std::span<std::uint64_t> words) const {
  std::size_t cleared = 0;
  for (const Chunk& c : chunks_) {
    const std::size_t w0 = std::size_t{c.key} * kChunkWords;
    std::uint64_t* dst = words.data() + w0;
    switch (c.type) {
      case ContainerType::kArray:
        for (const std::uint16_t v : array_of(c)) {
          const std::uint64_t bit = std::uint64_t{1} << (v & 63);
          cleared += static_cast<std::size_t>((dst[v >> 6] & bit) != 0);
          dst[v >> 6] &= ~bit;
        }
        break;
      case ContainerType::kBitset: {
        const auto ws = words_of(c);
        const std::size_t wn = std::min(ws.size(), words.size() - w0);
        for (std::size_t w = 0; w < wn; ++w) {
          cleared += static_cast<std::size_t>(std::popcount(dst[w] & ws[w]));
          dst[w] &= ~ws[w];
        }
        break;
      }
      case ContainerType::kRun: {
        const auto rv = runs_of(c);
        for (std::size_t r = 0; r < rv.size(); r += 2) {
          cleared += clear_range(dst, rv[r], rv[r + 1]);
        }
        break;
      }
    }
  }
  return cleared;
}

std::uint32_t ChunkedTidList::stage_u16(std::size_t capacity) {
  const auto offset = static_cast<std::uint32_t>(u16_pool_.size());
  u16_pool_.resize(offset + capacity);
  return offset;
}

void ChunkedTidList::emit_array(std::uint16_t key, std::uint32_t offset,
                                std::size_t card) {
  if (card == 0) {
    u16_pool_.resize(offset);
    return;
  }
  if (card >= kBitsetChunkMin) {
    const auto woff = static_cast<std::uint32_t>(word_pool_.size());
    word_pool_.resize(woff + kChunkWords);
    for (std::size_t k = 0; k < card; ++k) {
      const std::uint16_t v = u16_pool_[offset + k];
      word_pool_[woff + (v >> 6)] |= std::uint64_t{1} << (v & 63);
    }
    u16_pool_.resize(offset);
    chunks_.push_back({key, ContainerType::kBitset, woff,
                       static_cast<std::uint32_t>(card), 0});
  } else {
    u16_pool_.resize(offset + card);
    chunks_.push_back({key, ContainerType::kArray, offset,
                       static_cast<std::uint32_t>(card), 0});
  }
  count_ += card;
}

std::uint32_t ChunkedTidList::stage_words() {
  const auto offset = static_cast<std::uint32_t>(word_pool_.size());
  word_pool_.resize(offset + kChunkWords);  // value-init: zeroed
  return offset;
}

void ChunkedTidList::emit_words(std::uint16_t key, std::uint32_t offset,
                                std::size_t card) {
  if (card == 0) {
    word_pool_.resize(offset);
    return;
  }
  if (card < kBitsetChunkMin) {
    const std::uint32_t aoff = stage_u16(card);
    decode_words_u16({word_pool_.data() + offset, kChunkWords},
                     u16_pool_.data() + aoff);
    word_pool_.resize(offset);
    chunks_.push_back({key, ContainerType::kArray, aoff,
                       static_cast<std::uint32_t>(card), 0});
  } else {
    chunks_.push_back({key, ContainerType::kBitset, offset,
                       static_cast<std::uint32_t>(card), 0});
  }
  count_ += card;
}

void ChunkedTidList::copy_chunk(const ChunkedTidList& src, const Chunk& c) {
  switch (c.type) {
    case ContainerType::kArray:
    case ContainerType::kRun: {
      const std::size_t len = c.type == ContainerType::kArray
                                  ? c.cardinality
                                  : 2 * std::size_t{c.run_count};
      const auto offset = static_cast<std::uint32_t>(u16_pool_.size());
      u16_pool_.resize(offset + len);
      std::copy_n(src.u16_pool_.data() + c.offset, len,
                  u16_pool_.data() + offset);
      chunks_.push_back({c.key, c.type, offset, c.cardinality, c.run_count});
      break;
    }
    case ContainerType::kBitset: {
      const auto offset = static_cast<std::uint32_t>(word_pool_.size());
      word_pool_.resize(offset + kChunkWords);
      std::copy_n(src.word_pool_.data() + c.offset, kChunkWords,
                  word_pool_.data() + offset);
      chunks_.push_back({c.key, c.type, offset, c.cardinality, 0});
      break;
    }
  }
  count_ += c.cardinality;
}

void ChunkedTidList::and_pair(const Chunk& ca, const ChunkedTidList& a,
                              const Chunk& cb, const ChunkedTidList& b,
                              IntersectStats* stats) {
  ECLAT_DCHECK(ca.key == cb.key);
  // Normalize so ca.type <= cb.type in the order array < bitset < run
  // (every kernel below is symmetric); classify only after the swap so
  // the pair is counted once.
  if (static_cast<int>(ca.type) > static_cast<int>(cb.type)) {
    and_pair(cb, b, ca, a, stats);
    return;
  }
  count_pair_op(stats, ca.type, cb.type);
  const simd::KernelTable& kt = simd::kernels();
  const std::uint16_t key = ca.key;
  if (ca.type == ContainerType::kArray) {
    const auto av = a.array_of(ca);
    switch (cb.type) {
      case ContainerType::kArray: {
        const auto bv = b.array_of(cb);
        const std::uint32_t off =
            stage_u16(std::min(av.size(), bv.size()) + kU16Slack);
        std::size_t visited = 0;
        const std::size_t k = kt.intersect_u16(
            av.data(), av.size(), bv.data(), bv.size(), u16_pool_.data() + off,
            stats != nullptr ? &visited : nullptr);
        if (stats != nullptr) stats->tids_scanned += visited;
        count_simd_sparse(stats, kt);
        emit_array(key, off, k);
        return;
      }
      case ContainerType::kBitset: {
        const auto bw = b.words_of(cb);
        const std::uint32_t off = stage_u16(av.size());
        std::size_t k = 0;
        for (const std::uint16_t v : av) {
          if (word_bit(bw, v)) u16_pool_[off + k++] = v;
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        emit_array(key, off, k);
        return;
      }
      case ContainerType::kRun: {
        const auto rv = b.runs_of(cb);
        const std::uint32_t off = stage_u16(av.size());
        std::size_t k = 0;
        std::size_t r = 0;
        for (std::size_t i = 0; i < av.size() && r < rv.size(); /* in body */) {
          if (av[i] < rv[r]) {
            ++i;
          } else if (av[i] > rv[r + 1]) {
            r += 2;
          } else {
            u16_pool_[off + k++] = av[i];
            ++i;
          }
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        emit_array(key, off, k);
        return;
      }
    }
  }
  if (ca.type == ContainerType::kBitset) {
    const auto aw = a.words_of(ca);
    if (cb.type == ContainerType::kBitset) {
      const auto bw = b.words_of(cb);
      const std::uint32_t off = stage_words();
      const std::uint64_t k = kt.and_words(aw.data(), bw.data(),
                                           word_pool_.data() + off,
                                           kChunkWords);
      if (stats != nullptr) stats->words_scanned += kChunkWords;
      count_simd_words(stats, kt);
      emit_words(key, off, static_cast<std::size_t>(k));
      return;
    }
    // bitset ∩ run: copy the bitset's words masked to the runs.
    const auto rv = b.runs_of(cb);
    const std::uint32_t off = stage_words();
    std::size_t k = 0;
    for (std::size_t r = 0; r < rv.size(); r += 2) {
      k += or_range_from(aw, word_pool_.data() + off, rv[r], rv[r + 1]);
    }
    if (stats != nullptr) {
      stats->words_scanned += kChunkWords;
      stats->tids_scanned += rv.size();
    }
    emit_words(key, off, k);
    return;
  }
  // run ∩ run: interval intersection, rendered into a staged bitset
  // (emit_words decodes it back to an array when the result is small).
  const auto av = a.runs_of(ca);
  const auto bv = b.runs_of(cb);
  const std::uint32_t off = stage_words();
  std::size_t k = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < av.size() && j < bv.size()) {
    const std::uint16_t s = std::max(av[i], bv[j]);
    const std::uint16_t e = std::min(av[i + 1], bv[j + 1]);
    if (s <= e) {
      fill_range(word_pool_.data() + off, s, e);
      k += std::size_t{e} - s + 1;
    }
    if (av[i + 1] <= bv[j + 1]) {
      i += 2;
    } else {
      j += 2;
    }
  }
  if (stats != nullptr) stats->tids_scanned += av.size() + bv.size();
  emit_words(key, off, k);
}

std::size_t ChunkedTidList::and_pair_count(const Chunk& ca,
                                           const ChunkedTidList& a,
                                           const Chunk& cb,
                                           const ChunkedTidList& b,
                                           IntersectStats* stats) {
  ECLAT_DCHECK(ca.key == cb.key);
  if (static_cast<int>(ca.type) > static_cast<int>(cb.type)) {
    return and_pair_count(cb, b, ca, a, stats);
  }
  count_pair_op(stats, ca.type, cb.type);
  const simd::KernelTable& kt = simd::kernels();
  if (ca.type == ContainerType::kArray) {
    const auto av = a.array_of(ca);
    switch (cb.type) {
      case ContainerType::kArray: {
        const auto bv = b.array_of(cb);
        std::size_t visited = 0;
        const std::size_t k = kt.intersect_u16_count(
            av.data(), av.size(), bv.data(), bv.size(),
            stats != nullptr ? &visited : nullptr);
        if (stats != nullptr) stats->tids_scanned += visited;
        count_simd_sparse(stats, kt);
        return k;
      }
      case ContainerType::kBitset: {
        const auto bw = b.words_of(cb);
        std::size_t k = 0;
        for (const std::uint16_t v : av) {
          k += static_cast<std::size_t>(word_bit(bw, v));
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        return k;
      }
      case ContainerType::kRun: {
        const auto rv = b.runs_of(cb);
        std::size_t k = 0;
        std::size_t r = 0;
        for (std::size_t i = 0; i < av.size() && r < rv.size(); /* in body */) {
          if (av[i] < rv[r]) {
            ++i;
          } else if (av[i] > rv[r + 1]) {
            r += 2;
          } else {
            ++k;
            ++i;
          }
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        return k;
      }
    }
  }
  if (ca.type == ContainerType::kBitset) {
    const auto aw = a.words_of(ca);
    if (cb.type == ContainerType::kBitset) {
      const auto bw = b.words_of(cb);
      const std::uint64_t k =
          kt.and_words(aw.data(), bw.data(), nullptr, kChunkWords);
      if (stats != nullptr) stats->words_scanned += kChunkWords;
      count_simd_words(stats, kt);
      return static_cast<std::size_t>(k);
    }
    const auto rv = b.runs_of(cb);
    std::size_t k = 0;
    for (std::size_t r = 0; r < rv.size(); r += 2) {
      k += popcount_range(aw, rv[r], rv[r + 1]);
    }
    if (stats != nullptr) {
      stats->words_scanned += kChunkWords;
      stats->tids_scanned += rv.size();
    }
    return k;
  }
  const auto av = a.runs_of(ca);
  const auto bv = b.runs_of(cb);
  std::size_t k = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < av.size() && j < bv.size()) {
    const std::uint16_t s = std::max(av[i], bv[j]);
    const std::uint16_t e = std::min(av[i + 1], bv[j + 1]);
    if (s <= e) k += std::size_t{e} - s + 1;
    if (av[i + 1] <= bv[j + 1]) {
      i += 2;
    } else {
      j += 2;
    }
  }
  if (stats != nullptr) stats->tids_scanned += av.size() + bv.size();
  return k;
}

bool ChunkedTidList::assign_and_bounded(const ChunkedTidList& a,
                                        const ChunkedTidList& b, Count minsup,
                                        IntersectStats* stats) {
  ECLAT_DCHECK(this != &a && this != &b);
  ECLAT_DCHECK(a.universe_ == b.universe_);
  reset(a.universe_);
  // Upper bound on the result: Σ min(|a_k|, |b_k|) over common chunks.
  std::size_t bound = 0;
  {
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
      if (a.chunks_[ia].key < b.chunks_[ib].key) {
        ++ia;
      } else if (b.chunks_[ib].key < a.chunks_[ia].key) {
        ++ib;
      } else {
        bound += std::min(a.chunks_[ia].cardinality,
                          b.chunks_[ib].cardinality);
        ++ia;
        ++ib;
      }
    }
  }
  if (bound < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return false;
  }
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
    const Chunk& ca = a.chunks_[ia];
    const Chunk& cb = b.chunks_[ib];
    if (ca.key < cb.key) {
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      ++ib;
      continue;
    }
    bound -= std::min(ca.cardinality, cb.cardinality);
    and_pair(ca, a, cb, b, stats);
    ++ia;
    ++ib;
    // Chunk-granular short-circuit: the bound is a proof, so checking it
    // only between chunks never changes the boolean outcome, just how
    // early an abort fires.
    if (count_ + bound < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return false;
    }
  }
  return count_ >= minsup;
}

std::optional<std::size_t> ChunkedTidList::and_count(const ChunkedTidList& a,
                                                     const ChunkedTidList& b,
                                                     Count minsup,
                                                     IntersectStats* stats) {
  ECLAT_DCHECK(a.universe_ == b.universe_);
  std::size_t bound = 0;
  {
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
      if (a.chunks_[ia].key < b.chunks_[ib].key) {
        ++ia;
      } else if (b.chunks_[ib].key < a.chunks_[ia].key) {
        ++ib;
      } else {
        bound += std::min(a.chunks_[ia].cardinality,
                          b.chunks_[ib].cardinality);
        ++ia;
        ++ib;
      }
    }
  }
  if (bound < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return std::nullopt;
  }
  std::size_t count = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
    const Chunk& ca = a.chunks_[ia];
    const Chunk& cb = b.chunks_[ib];
    if (ca.key < cb.key) {
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      ++ib;
      continue;
    }
    bound -= std::min(ca.cardinality, cb.cardinality);
    count += and_pair_count(ca, a, cb, b, stats);
    ++ia;
    ++ib;
    if (count + bound < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return std::nullopt;
    }
  }
  if (count < minsup) return std::nullopt;
  return count;
}

void ChunkedTidList::andnot_pair(const Chunk& ca, const ChunkedTidList& a,
                                 const Chunk& cb, const ChunkedTidList& b,
                                 IntersectStats* stats) {
  ECLAT_DCHECK(ca.key == cb.key);
  count_pair_op(stats, ca.type, cb.type);
  const simd::KernelTable& kt = simd::kernels();
  const std::uint16_t key = ca.key;
  if (ca.type == ContainerType::kArray) {
    const auto av = a.array_of(ca);
    switch (cb.type) {
      case ContainerType::kArray: {
        const auto bv = b.array_of(cb);
        andnot_chunk_sparse(
            ca, a, bv.size(),
            [bv](std::size_t i) { return bv[i]; }, stats);
        return;
      }
      case ContainerType::kBitset: {
        const auto bw = b.words_of(cb);
        const std::uint32_t off = stage_u16(av.size());
        std::size_t k = 0;
        for (const std::uint16_t v : av) {
          if (!word_bit(bw, v)) u16_pool_[off + k++] = v;
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        emit_array(key, off, k);
        return;
      }
      case ContainerType::kRun: {
        const auto rv = b.runs_of(cb);
        const std::uint32_t off = stage_u16(av.size());
        std::size_t k = 0;
        std::size_t r = 0;
        for (const std::uint16_t v : av) {
          while (r < rv.size() && v > rv[r + 1]) r += 2;
          if (r == rv.size() || v < rv[r]) u16_pool_[off + k++] = v;
        }
        if (stats != nullptr) stats->tids_scanned += av.size();
        emit_array(key, off, k);
        return;
      }
    }
  }
  // Minuend bitset or run: materialize the minuend's words into the
  // staged output and subtract the subtrahend in place.
  const std::uint32_t off = stage_words();
  std::uint64_t* dst = word_pool_.data() + off;
  std::size_t k;
  if (ca.type == ContainerType::kBitset) {
    const auto aw = a.words_of(ca);
    if (cb.type == ContainerType::kBitset) {
      const auto bw = b.words_of(cb);
      k = static_cast<std::size_t>(
          kt.andnot_words(aw.data(), bw.data(), dst, kChunkWords));
      if (stats != nullptr) stats->words_scanned += kChunkWords;
      count_simd_words(stats, kt);
      emit_words(key, off, k);
      return;
    }
    std::copy(aw.begin(), aw.end(), dst);
    k = ca.cardinality;
  } else {
    const auto rv = a.runs_of(ca);
    for (std::size_t r = 0; r < rv.size(); r += 2) {
      fill_range(dst, rv[r], rv[r + 1]);
    }
    k = ca.cardinality;
  }
  switch (cb.type) {
    case ContainerType::kArray:
      for (const std::uint16_t v : b.array_of(cb)) {
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        k -= static_cast<std::size_t>((dst[v >> 6] & bit) != 0);
        dst[v >> 6] &= ~bit;
      }
      if (stats != nullptr) stats->tids_scanned += cb.cardinality;
      break;
    case ContainerType::kBitset: {
      // In-place a &= ~b: out aliases the first operand exactly, which
      // every kernel of the table supports (loads precede the store at
      // each position).
      const auto bw = b.words_of(cb);
      k = static_cast<std::size_t>(
          kt.andnot_words(dst, bw.data(), dst, kChunkWords));
      count_simd_words(stats, kt);
      break;
    }
    case ContainerType::kRun: {
      const auto rv = b.runs_of(cb);
      for (std::size_t r = 0; r < rv.size(); r += 2) {
        k -= clear_range(dst, rv[r], rv[r + 1]);
      }
      break;
    }
  }
  if (stats != nullptr) stats->words_scanned += kChunkWords;
  emit_words(key, off, k);
}

bool ChunkedTidList::assign_andnot_bounded(const ChunkedTidList& a,
                                           const ChunkedTidList& b,
                                           std::size_t budget,
                                           IntersectStats* stats) {
  ECLAT_DCHECK(this != &a && this != &b);
  ECLAT_DCHECK(a.universe_ == b.universe_);
  reset(a.universe_);
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.chunks_.size()) {
    const Chunk& ca = a.chunks_[ia];
    while (ib < b.chunks_.size() && b.chunks_[ib].key < ca.key) ++ib;
    if (ib < b.chunks_.size() && b.chunks_[ib].key == ca.key) {
      andnot_pair(ca, a, b.chunks_[ib], b, stats);
      ++ib;
    } else {
      copy_chunk(a, ca);
    }
    ++ia;
    // Chunk-granular budget check (the diffset pruning bound).
    if (count_ > budget) return false;
  }
  return true;
}

void ChunkedTidList::and_chunk_words(const Chunk& ca, const ChunkedTidList& a,
                                     std::span<const std::uint64_t> bw,
                                     IntersectStats* stats) {
  count_pair_op(stats, ca.type, ContainerType::kBitset);
  const simd::KernelTable& kt = simd::kernels();
  switch (ca.type) {
    case ContainerType::kArray: {
      const auto av = a.array_of(ca);
      const std::uint32_t off = stage_u16(av.size());
      std::size_t k = 0;
      for (const std::uint16_t v : av) {
        if (word_bit(bw, v)) u16_pool_[off + k++] = v;
      }
      if (stats != nullptr) stats->tids_scanned += av.size();
      emit_array(ca.key, off, k);
      return;
    }
    case ContainerType::kBitset: {
      const auto aw = a.words_of(ca);
      const std::uint32_t off = stage_words();
      const std::size_t wn = std::min(aw.size(), bw.size());
      // Chunk bits past the universe are never set, so ANDing only the
      // slice's words is exact; the staged words beyond wn stay zero.
      const std::uint64_t k = kt.and_words(aw.data(), bw.data(),
                                           word_pool_.data() + off, wn);
      if (stats != nullptr) stats->words_scanned += wn;
      count_simd_words(stats, kt);
      emit_words(ca.key, off, static_cast<std::size_t>(k));
      return;
    }
    case ContainerType::kRun: {
      const auto rv = a.runs_of(ca);
      const std::uint32_t off = stage_words();
      std::size_t k = 0;
      for (std::size_t r = 0; r < rv.size(); r += 2) {
        k += or_range_from(bw, word_pool_.data() + off, rv[r], rv[r + 1]);
      }
      if (stats != nullptr) {
        stats->words_scanned += bw.size();
        stats->tids_scanned += rv.size();
      }
      emit_words(ca.key, off, k);
      return;
    }
  }
  ECLAT_UNREACHABLE("invalid ContainerType");
}

std::size_t ChunkedTidList::and_chunk_words_count(
    const Chunk& ca, const ChunkedTidList& a,
    std::span<const std::uint64_t> bw, IntersectStats* stats) {
  count_pair_op(stats, ca.type, ContainerType::kBitset);
  const simd::KernelTable& kt = simd::kernels();
  switch (ca.type) {
    case ContainerType::kArray: {
      const auto av = a.array_of(ca);
      std::size_t k = 0;
      for (const std::uint16_t v : av) {
        k += static_cast<std::size_t>(word_bit(bw, v));
      }
      if (stats != nullptr) stats->tids_scanned += av.size();
      return k;
    }
    case ContainerType::kBitset: {
      const auto aw = a.words_of(ca);
      const std::size_t wn = std::min(aw.size(), bw.size());
      const std::uint64_t k = kt.and_words(aw.data(), bw.data(), nullptr, wn);
      if (stats != nullptr) stats->words_scanned += wn;
      count_simd_words(stats, kt);
      return static_cast<std::size_t>(k);
    }
    case ContainerType::kRun: {
      const auto rv = a.runs_of(ca);
      std::size_t k = 0;
      for (std::size_t r = 0; r < rv.size(); r += 2) {
        k += popcount_range(bw, rv[r], rv[r + 1]);
      }
      if (stats != nullptr) {
        stats->words_scanned += bw.size();
        stats->tids_scanned += rv.size();
      }
      return k;
    }
  }
  ECLAT_UNREACHABLE("invalid ContainerType");
}

void ChunkedTidList::andnot_chunk_words(const Chunk& ca,
                                        const ChunkedTidList& a,
                                        std::span<const std::uint64_t> bw,
                                        IntersectStats* stats) {
  count_pair_op(stats, ca.type, ContainerType::kBitset);
  const simd::KernelTable& kt = simd::kernels();
  switch (ca.type) {
    case ContainerType::kArray: {
      const auto av = a.array_of(ca);
      const std::uint32_t off = stage_u16(av.size());
      std::size_t k = 0;
      for (const std::uint16_t v : av) {
        if (!word_bit(bw, v)) u16_pool_[off + k++] = v;
      }
      if (stats != nullptr) stats->tids_scanned += av.size();
      emit_array(ca.key, off, k);
      return;
    }
    case ContainerType::kBitset: {
      const auto aw = a.words_of(ca);
      const std::uint32_t off = stage_words();
      const std::size_t wn = std::min(aw.size(), bw.size());
      std::uint64_t k = kt.andnot_words(aw.data(), bw.data(),
                                        word_pool_.data() + off, wn);
      // Chunk words past the slice carry bits b cannot contain.
      for (std::size_t w = wn; w < aw.size(); ++w) {
        word_pool_[off + w] = aw[w];
        k += static_cast<std::uint64_t>(std::popcount(aw[w]));
      }
      if (stats != nullptr) stats->words_scanned += wn;
      count_simd_words(stats, kt);
      emit_words(ca.key, off, static_cast<std::size_t>(k));
      return;
    }
    case ContainerType::kRun: {
      const auto rv = a.runs_of(ca);
      const std::uint32_t off = stage_words();
      std::uint64_t* dst = word_pool_.data() + off;
      for (std::size_t r = 0; r < rv.size(); r += 2) {
        fill_range(dst, rv[r], rv[r + 1]);
      }
      const std::size_t wn = std::min(kChunkWords, bw.size());
      const std::uint64_t k = kt.andnot_words(dst, bw.data(), dst, wn);
      std::uint64_t extra = 0;
      for (std::size_t w = wn; w < kChunkWords; ++w) {
        extra += static_cast<std::uint64_t>(std::popcount(dst[w]));
      }
      if (stats != nullptr) {
        stats->words_scanned += kChunkWords;
        stats->tids_scanned += rv.size();
      }
      count_simd_words(stats, kt);
      emit_words(ca.key, off, static_cast<std::size_t>(k + extra));
      return;
    }
  }
  ECLAT_UNREACHABLE("invalid ContainerType");
}

template <typename Get>
void ChunkedTidList::andnot_chunk_sparse(const Chunk& ca,
                                         const ChunkedTidList& a,
                                         std::size_t bn, const Get& get,
                                         IntersectStats* stats) {
  const std::uint16_t key = ca.key;
  switch (ca.type) {
    case ContainerType::kArray: {
      const auto av = a.array_of(ca);
      const std::uint32_t off = stage_u16(av.size());
      std::size_t k = 0;
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < av.size()) {
        if (j == bn || av[i] < get(j)) {
          u16_pool_[off + k++] = av[i];
          ++i;
        } else if (get(j) < av[i]) {
          ++j;
        } else {
          ++i;
          ++j;
        }
      }
      if (stats != nullptr) stats->tids_scanned += i + j;
      emit_array(key, off, k);
      return;
    }
    case ContainerType::kBitset:
    case ContainerType::kRun: {
      const std::uint32_t off = stage_words();
      std::uint64_t* dst = word_pool_.data() + off;
      if (ca.type == ContainerType::kBitset) {
        const auto aw = a.words_of(ca);
        std::copy(aw.begin(), aw.end(), dst);
      } else {
        const auto rv = a.runs_of(ca);
        for (std::size_t r = 0; r < rv.size(); r += 2) {
          fill_range(dst, rv[r], rv[r + 1]);
        }
      }
      std::size_t k = ca.cardinality;
      for (std::size_t j = 0; j < bn; ++j) {
        const std::uint16_t v = get(j);
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        k -= static_cast<std::size_t>((dst[v >> 6] & bit) != 0);
        dst[v >> 6] &= ~bit;
      }
      if (stats != nullptr) {
        stats->words_scanned += kChunkWords;
        stats->tids_scanned += bn;
      }
      emit_words(key, off, k);
      return;
    }
  }
  ECLAT_UNREACHABLE("invalid ContainerType");
}

bool ChunkedTidList::assign_and_bits_bounded(const ChunkedTidList& a,
                                             const BitsetTidList& b,
                                             Count minsup,
                                             IntersectStats* stats) {
  ECLAT_DCHECK(this != &a);
  ECLAT_DCHECK(a.universe_ == b.universe());
  reset(a.universe_);
  if (std::min(a.count_, b.count()) < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return false;
  }
  const auto bw = b.words();
  std::size_t bound = a.count_;
  for (const Chunk& ca : a.chunks_) {
    bound -= ca.cardinality;
    const std::size_t w0 = std::size_t{ca.key} * kChunkWords;
    const std::size_t wn = std::min(kChunkWords, bw.size() - w0);
    and_chunk_words(ca, a, bw.subspan(w0, wn), stats);
    if (count_ + bound < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return false;
    }
  }
  return count_ >= minsup;
}

std::optional<std::size_t> ChunkedTidList::and_count_bits(
    const ChunkedTidList& a, const BitsetTidList& b, Count minsup,
    IntersectStats* stats) {
  ECLAT_DCHECK(a.universe_ == b.universe());
  if (std::min(a.count_, b.count()) < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return std::nullopt;
  }
  const auto bw = b.words();
  std::size_t bound = a.count_;
  std::size_t count = 0;
  for (const Chunk& ca : a.chunks_) {
    bound -= ca.cardinality;
    const std::size_t w0 = std::size_t{ca.key} * kChunkWords;
    const std::size_t wn = std::min(kChunkWords, bw.size() - w0);
    count += and_chunk_words_count(ca, a, bw.subspan(w0, wn), stats);
    if (count + bound < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return std::nullopt;
    }
  }
  if (count < minsup) return std::nullopt;
  return count;
}

bool ChunkedTidList::assign_andnot_bits_bounded(const ChunkedTidList& a,
                                                const BitsetTidList& b,
                                                std::size_t budget,
                                                IntersectStats* stats) {
  ECLAT_DCHECK(this != &a);
  ECLAT_DCHECK(a.universe_ == b.universe());
  reset(a.universe_);
  const auto bw = b.words();
  for (const Chunk& ca : a.chunks_) {
    const std::size_t w0 = std::size_t{ca.key} * kChunkWords;
    const std::size_t wn = std::min(kChunkWords, bw.size() - w0);
    andnot_chunk_words(ca, a, bw.subspan(w0, wn), stats);
    if (count_ > budget) return false;
  }
  return true;
}

bool ChunkedTidList::assign_minus_sparse(const ChunkedTidList& a,
                                         std::span<const Tid> b,
                                         std::size_t budget,
                                         IntersectStats* stats) {
  ECLAT_DCHECK(this != &a);
  ECLAT_DCHECK(is_valid_tidlist(b));
  reset(a.universe_);
  std::size_t jb = 0;
  for (const Chunk& ca : a.chunks_) {
    const Tid lo = static_cast<Tid>(ca.key) << 16;
    while (jb < b.size() && b[jb] < lo) ++jb;
    std::size_t je = jb;
    while (je < b.size() && (b[je] >> 16) == ca.key) ++je;
    if (je == jb) {
      copy_chunk(a, ca);
    } else {
      count_pair_op(stats, ca.type, ContainerType::kArray);
      const auto sub = b.subspan(jb, je - jb);
      andnot_chunk_sparse(
          ca, a, sub.size(),
          [sub](std::size_t i) { return low16(sub[i]); }, stats);
      jb = je;
    }
    if (count_ > budget) return false;
  }
  return true;
}

bool ChunkedTidList::and_sparse(const ChunkedTidList& a,
                                std::span<const Tid> b, Count minsup,
                                TidList& out, IntersectStats* stats) {
  ECLAT_DCHECK(is_valid_tidlist(b));
  out.clear();
  if (std::min<std::size_t>(a.count_, b.size()) < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return false;
  }
  std::size_t jb = 0;
  for (const Chunk& ca : a.chunks_) {
    const Tid lo = static_cast<Tid>(ca.key) << 16;
    while (jb < b.size() && b[jb] < lo) ++jb;  // b tids in chunks a lacks
    std::size_t je = jb;
    while (je < b.size() && (b[je] >> 16) == ca.key) ++je;
    if (je != jb) {
      const auto sub = b.subspan(jb, je - jb);
      count_pair_op(stats, ca.type, ContainerType::kArray);
      switch (ca.type) {
        case ContainerType::kArray: {
          const auto av = a.array_of(ca);
          std::size_t i = 0;
          std::size_t k = 0;
          while (i < av.size() && k < sub.size()) {
            const std::uint16_t v = low16(sub[k]);
            if (av[i] < v) {
              ++i;
            } else if (av[i] > v) {
              ++k;
            } else {
              out.push_back(sub[k]);
              ++i;
              ++k;
            }
          }
          if (stats != nullptr) stats->tids_scanned += i;
          break;
        }
        case ContainerType::kBitset: {
          const auto bw = a.words_of(ca);
          for (const Tid t : sub) {
            if (word_bit(bw, low16(t))) out.push_back(t);
          }
          break;
        }
        case ContainerType::kRun: {
          const auto rv = a.runs_of(ca);
          std::size_t r = 0;
          for (const Tid t : sub) {
            const std::uint16_t v = low16(t);
            while (r < rv.size() && rv[r + 1] < v) r += 2;
            if (r >= rv.size()) break;
            if (rv[r] <= v) out.push_back(t);
          }
          break;
        }
      }
      if (stats != nullptr) stats->tids_scanned += sub.size();
      jb = je;
    }
    // Every unmatched b tid so far is settled; only the tail can still
    // contribute.
    if (out.size() + (b.size() - jb) < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return false;
    }
    if (jb == b.size()) break;
  }
  return out.size() >= minsup;
}

std::optional<std::size_t> ChunkedTidList::and_sparse_count(
    const ChunkedTidList& a, std::span<const Tid> b, Count minsup,
    IntersectStats* stats) {
  ECLAT_DCHECK(is_valid_tidlist(b));
  if (std::min<std::size_t>(a.count_, b.size()) < minsup) {
    if (stats != nullptr) ++stats->short_circuited;
    return std::nullopt;
  }
  std::size_t count = 0;
  std::size_t jb = 0;
  for (const Chunk& ca : a.chunks_) {
    const Tid lo = static_cast<Tid>(ca.key) << 16;
    while (jb < b.size() && b[jb] < lo) ++jb;
    std::size_t je = jb;
    while (je < b.size() && (b[je] >> 16) == ca.key) ++je;
    if (je != jb) {
      const auto sub = b.subspan(jb, je - jb);
      count_pair_op(stats, ca.type, ContainerType::kArray);
      switch (ca.type) {
        case ContainerType::kArray: {
          const auto av = a.array_of(ca);
          std::size_t i = 0;
          std::size_t k = 0;
          while (i < av.size() && k < sub.size()) {
            const std::uint16_t v = low16(sub[k]);
            if (av[i] < v) {
              ++i;
            } else if (av[i] > v) {
              ++k;
            } else {
              ++count;
              ++i;
              ++k;
            }
          }
          if (stats != nullptr) stats->tids_scanned += i;
          break;
        }
        case ContainerType::kBitset: {
          const auto bw = a.words_of(ca);
          for (const Tid t : sub) {
            count += static_cast<std::size_t>(word_bit(bw, low16(t)));
          }
          break;
        }
        case ContainerType::kRun: {
          const auto rv = a.runs_of(ca);
          std::size_t r = 0;
          for (const Tid t : sub) {
            const std::uint16_t v = low16(t);
            while (r < rv.size() && rv[r + 1] < v) r += 2;
            if (r >= rv.size()) break;
            count += static_cast<std::size_t>(rv[r] <= v);
          }
          break;
        }
      }
      if (stats != nullptr) stats->tids_scanned += sub.size();
      jb = je;
    }
    if (count + (b.size() - jb) < minsup) {
      if (stats != nullptr) ++stats->short_circuited;
      return std::nullopt;
    }
    if (jb == b.size()) break;
  }
  if (count < minsup) return std::nullopt;
  return count;
}

bool ChunkedTidList::sparse_minus(std::span<const Tid> b,
                                  const ChunkedTidList& a, std::size_t budget,
                                  TidList& out, IntersectStats* stats) {
  ECLAT_DCHECK(is_valid_tidlist(b));
  out.clear();
  // Quick reject: even if every tid of a hits, |b| − a.count survive.
  if (b.size() > budget + a.count_) return false;
  std::size_t jb = 0;
  for (const Chunk& ca : a.chunks_) {
    const Tid lo = static_cast<Tid>(ca.key) << 16;
    while (jb < b.size() && b[jb] < lo) {
      out.push_back(b[jb]);  // b tids in chunks a lacks pass through
      ++jb;
    }
    std::size_t je = jb;
    while (je < b.size() && (b[je] >> 16) == ca.key) ++je;
    if (je != jb) {
      const auto sub = b.subspan(jb, je - jb);
      count_pair_op(stats, ca.type, ContainerType::kArray);
      switch (ca.type) {
        case ContainerType::kArray: {
          const auto av = a.array_of(ca);
          std::size_t i = 0;
          for (const Tid t : sub) {
            const std::uint16_t v = low16(t);
            while (i < av.size() && av[i] < v) ++i;
            if (i >= av.size() || av[i] != v) out.push_back(t);
          }
          if (stats != nullptr) stats->tids_scanned += i;
          break;
        }
        case ContainerType::kBitset: {
          const auto bw = a.words_of(ca);
          for (const Tid t : sub) {
            if (!word_bit(bw, low16(t))) out.push_back(t);
          }
          break;
        }
        case ContainerType::kRun: {
          const auto rv = a.runs_of(ca);
          std::size_t r = 0;
          for (const Tid t : sub) {
            const std::uint16_t v = low16(t);
            while (r < rv.size() && rv[r + 1] < v) r += 2;
            if (r >= rv.size() || rv[r] > v) out.push_back(t);
          }
          break;
        }
      }
      if (stats != nullptr) stats->tids_scanned += sub.size();
      jb = je;
    }
    if (out.size() > budget) return false;
    if (jb == b.size()) break;
  }
  for (; jb < b.size(); ++jb) out.push_back(b[jb]);
  return out.size() <= budget;
}

}  // namespace eclat
