#include "vertical/vertical_db.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace eclat {

std::vector<TidList> invert_items(std::span<const Transaction> transactions,
                                  Item num_items) {
  std::vector<TidList> lists(num_items);
  for (const Transaction& t : transactions) {
    for (Item item : t.items) {
      ECLAT_DCHECK(item < num_items);
      lists[item].push_back(t.tid);
    }
  }
  return lists;
}

std::unordered_map<PairKey, TidList> invert_pairs(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs) {
  std::unordered_map<PairKey, TidList> lists;
  lists.reserve(pairs.size());
  for (PairKey key : pairs) lists.emplace(key, TidList{});
  for (const Transaction& t : transactions) {
    const Itemset& items = t.items;
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        const auto it = lists.find(make_pair_key(items[i], items[j]));
        if (it != lists.end()) it->second.push_back(t.tid);
      }
    }
  }
  return lists;
}

TriangleCounter::TriangleCounter(Item num_items) : num_items_(num_items) {
  if (num_items < 2) {
    throw std::invalid_argument("TriangleCounter needs >= 2 items");
  }
  const std::size_t n = num_items;
  counts_.assign(n * (n - 1) / 2, 0);
}

std::size_t TriangleCounter::index(Item a, Item b) const {
  if (a > b) std::swap(a, b);
  if (a == b || b >= num_items_) {
    throw std::out_of_range("invalid pair for TriangleCounter");
  }
  // Row-major upper triangle: rows 0..a-1 hold (n-1) + (n-2) + ... +
  // (n-a) = a*n - a*(a+1)/2 cells, then offset by b within row a.
  // All math in std::size_t: a*(a+1) wraps 32-bit Item arithmetic once
  // the item universe passes ~92k.
  const std::size_t n = num_items_;
  const std::size_t row = a;
  const std::size_t row_start = row * n - row * (row + 1) / 2;
  return row_start + (b - a - 1);
}

void TriangleCounter::count(std::span<const Transaction> transactions) {
  for (const Transaction& t : transactions) {
    const Itemset& items = t.items;
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        ++counts_[index(items[i], items[j])];
      }
    }
  }
}

Count TriangleCounter::get(Item a, Item b) const {
  return counts_[index(a, b)];
}

void TriangleCounter::merge(const TriangleCounter& other) {
  if (other.num_items_ != num_items_) {
    throw std::invalid_argument("TriangleCounter size mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::vector<PairKey> TriangleCounter::frequent_pairs(Count minsup) const {
  std::vector<PairKey> pairs;
  for (Item a = 0; a + 1 < num_items_; ++a) {
    for (Item b = a + 1; b < num_items_; ++b) {
      if (counts_[index(a, b)] >= minsup) {
        pairs.push_back(make_pair_key(a, b));
      }
    }
  }
  return pairs;
}

}  // namespace eclat
