// Vertical ("inverted" / decomposed storage) layout: each itemset maps to
// its tid-list, the sorted list of identifiers of the transactions that
// contain it (paper §4.2). The support of a k-itemset is the cardinality of
// the intersection of the tid-lists of any two of its (k-1)-subsets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace eclat {

/// Sorted, duplicate-free list of transaction ids.
using TidList = std::vector<Tid>;

/// True iff `tids` is strictly increasing (tid-list class invariant).
bool is_valid_tidlist(std::span<const Tid> tids);

/// Plain sorted-merge intersection: out = a ∩ b.
TidList intersect(std::span<const Tid> a, std::span<const Tid> b);

/// Intersection size only (no output list materialized).
std::size_t intersection_size(std::span<const Tid> a, std::span<const Tid> b);

/// Short-circuited intersection (paper §5.3): the support of the result is
/// bounded above by min(|a|,|b|); once enough mismatches accumulate that the
/// bound drops below `minsup`, abort. Returns nullopt iff the intersection
/// provably has fewer than `minsup` elements (the partial list is
/// discarded); otherwise the exact intersection.
std::optional<TidList> intersect_short_circuit(std::span<const Tid> a,
                                               std::span<const Tid> b,
                                               Count minsup);

/// Galloping (exponential-search) intersection; wins when one list is much
/// shorter than the other. Used by the kernel-ablation benchmark.
TidList intersect_gallop(std::span<const Tid> a, std::span<const Tid> b);

/// Difference a \ b (used by the failure-injection tests and diffsets
/// extension).
TidList difference(std::span<const Tid> a, std::span<const Tid> b);

/// Union a ∪ b.
TidList unite(std::span<const Tid> a, std::span<const Tid> b);

}  // namespace eclat
