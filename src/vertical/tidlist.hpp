// Vertical ("inverted" / decomposed storage) layout: each itemset maps to
// its tid-list, the sorted list of identifiers of the transactions that
// contain it (paper §4.2). The support of a k-itemset is the cardinality of
// the intersection of the tid-lists of any two of its (k-1)-subsets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace eclat {

/// Sorted, duplicate-free list of transaction ids.
using TidList = std::vector<Tid>;

/// True iff `tids` is strictly increasing (tid-list class invariant).
bool is_valid_tidlist(std::span<const Tid> tids);

/// Plain sorted-merge intersection: out = a ∩ b.
TidList intersect(std::span<const Tid> a, std::span<const Tid> b);

/// Intersection size only (no output list materialized).
std::size_t intersection_size(std::span<const Tid> a, std::span<const Tid> b);

/// Short-circuited intersection (paper §5.3): the support of the result is
/// bounded above by min(|a|,|b|); once enough mismatches accumulate that the
/// bound drops below `minsup`, abort. Returns nullopt iff the intersection
/// provably has fewer than `minsup` elements (the partial list is
/// discarded); otherwise the exact intersection.
std::optional<TidList> intersect_short_circuit(std::span<const Tid> a,
                                               std::span<const Tid> b,
                                               Count minsup);

/// Galloping (exponential-search) intersection; wins when one list is much
/// shorter than the other. Used by the kernel-ablation benchmark.
TidList intersect_gallop(std::span<const Tid> a, std::span<const Tid> b);

// ---- In-place, instrumented variants (the arena-backed mining recursion
// uses these: `out` is cleared and refilled, reusing its capacity). Every
// variant reports through `visited`, when non-null, the number of input
// elements it actually inspected — which is what IntersectStats records,
// so a short-circuited abort no longer counts as a full scan. ----

/// out = a ∩ b by sorted merge.
void intersect_into(std::span<const Tid> a, std::span<const Tid> b,
                    TidList& out, std::size_t* visited = nullptr);

/// Short-circuited merge into `out`; false iff provably below `minsup`
/// (then `out`'s contents are unspecified).
bool intersect_short_circuit_into(std::span<const Tid> a,
                                  std::span<const Tid> b, Count minsup,
                                  TidList& out,
                                  std::size_t* visited = nullptr);

/// Galloping intersection into `out`. `visited` counts elements of the
/// short list plus search probes into the long one.
void intersect_gallop_into(std::span<const Tid> a, std::span<const Tid> b,
                           TidList& out, std::size_t* visited = nullptr);

/// Support-only short-circuited intersection: the exact |a ∩ b| when it
/// reaches `minsup`, nullopt otherwise. No output list is materialized —
/// the mining recursion uses this for children that can never recurse.
std::optional<Count> intersect_count_bounded(std::span<const Tid> a,
                                             std::span<const Tid> b,
                                             Count minsup,
                                             std::size_t* visited = nullptr);

/// Bounded difference a \ b into `out`: false as soon as the result would
/// exceed `max_size` elements (the diffset pruning bound).
bool difference_bounded_into(std::span<const Tid> a, std::span<const Tid> b,
                             std::size_t max_size, TidList& out,
                             std::size_t* visited = nullptr);

/// Difference a \ b (used by the failure-injection tests and diffsets
/// extension).
TidList difference(std::span<const Tid> a, std::span<const Tid> b);

/// Union a ∪ b.
TidList unite(std::span<const Tid> a, std::span<const Tid> b);

}  // namespace eclat
