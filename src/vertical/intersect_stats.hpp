// Counters the kernel layer reports and the ablation benchmarks read
// back. Split out of tidset.hpp so the chunked container (and any future
// representation) can record into the same struct without an include
// cycle. Scan counters record work actually performed: a short-circuited
// abort adds only the elements (or words) inspected before the bound
// fired, never the full input sizes.
#pragma once

#include <cstdint>

namespace eclat {

struct IntersectStats {
  std::uint64_t intersections = 0;    ///< kernel invocations
  std::uint64_t short_circuited = 0;  ///< aborted early by the bound
  std::uint64_t tids_scanned = 0;     ///< sparse elements actually visited
  std::uint64_t words_scanned = 0;    ///< bitset words actually ANDed
  std::uint64_t merge_calls = 0;      ///< sparse∩sparse merges
  std::uint64_t gallop_calls = 0;     ///< sparse∩sparse gallops
  std::uint64_t bitset_calls = 0;     ///< dense∩dense word kernels
  std::uint64_t probe_calls = 0;      ///< sparse∩dense bit probes
  std::uint64_t chunked_calls = 0;    ///< chunked container kernels
  std::uint64_t count_only = 0;       ///< support-only evaluations

  // Representation conversions. "Denser" is ordered sparse < chunked <
  // dense: any conversion toward dense counts as densified, toward
  // sparse as sparsified, whichever pair of representations is involved.
  std::uint64_t densified = 0;         ///< conversions toward denser reps
  std::uint64_t sparsified = 0;        ///< conversions toward sparser reps
  std::uint64_t rep_flipflops = 0;     ///< conversions reversing the slot's
                                       ///< previous conversion direction
  std::uint64_t hysteresis_holds = 0;  ///< conversions skipped because the
                                       ///< size sat inside the stay band

  // Per-container-type chunk kernel operations (one per chunk pair the
  // chunked kernels actually touched). A pair involving a bitset chunk
  // counts as bitset, else a pair involving a run chunk counts as run,
  // else array.
  std::uint64_t chunk_array_ops = 0;
  std::uint64_t chunk_bitset_ops = 0;
  std::uint64_t chunk_run_ops = 0;

  // SIMD dispatch hits: calls that ran through a vector kernel from the
  // runtime-dispatched table (scalar fallback calls are not counted).
  std::uint64_t simd_word_calls = 0;    ///< word AND/ANDNOT block kernels
  std::uint64_t simd_sparse_calls = 0;  ///< u16 intersect / gallop kernels
};

}  // namespace eclat
