// Horizontal → vertical database transformation (paper §5.2.2 / §6.3).
//
// A PairKey packs a 2-itemset {i, j} (i < j) into one 64-bit word so pair
// tid-lists can live in flat hash maps without heap-allocated keys.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/horizontal.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

/// Packed 2-itemset key: high word = smaller item, low word = larger item.
using PairKey = std::uint64_t;

constexpr PairKey make_pair_key(Item a, Item b) {
  return a < b ? (static_cast<PairKey>(a) << 32) | b
               : (static_cast<PairKey>(b) << 32) | a;
}

constexpr Item pair_first(PairKey key) {
  return static_cast<Item>(key >> 32);
}

constexpr Item pair_second(PairKey key) {
  return static_cast<Item>(key & 0xffffffffULL);
}

/// Tid-lists of single items over a span of transactions. Lists come out
/// sorted because transactions are visited in tid order.
std::vector<TidList> invert_items(std::span<const Transaction> transactions,
                                  Item num_items);

/// Tid-lists of the given 2-itemsets over a span of transactions
/// (the per-partition partial tid-lists of Eclat's transformation phase).
/// Only pairs present in `pairs` are materialized.
std::unordered_map<PairKey, TidList> invert_pairs(
    std::span<const Transaction> transactions,
    const std::vector<PairKey>& pairs);

/// Upper-triangular 2-itemset support counter (paper §5.1): local counts of
/// all C(N,2) pairs in one pass over a horizontal partition, O(1) space per
/// pair, no hash structures.
class TriangleCounter {
 public:
  explicit TriangleCounter(Item num_items);

  /// Count every 2-subset of every transaction in the span.
  void count(std::span<const Transaction> transactions);

  /// Support of pair {a, b}; a != b.
  Count get(Item a, Item b) const;

  /// Element-wise accumulate another counter (the sum-reduction step).
  void merge(const TriangleCounter& other);

  Item num_items() const { return num_items_; }

  /// All pairs whose count is >= minsup, in lexicographic order.
  std::vector<PairKey> frequent_pairs(Count minsup) const;

  /// Direct access for the Memory Channel reduction (row-major triangle).
  std::span<const Count> raw() const { return counts_; }
  std::span<Count> raw() { return counts_; }

 private:
  std::size_t index(Item a, Item b) const;

  Item num_items_;
  std::vector<Count> counts_;
};

}  // namespace eclat
