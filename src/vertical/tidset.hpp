// Adaptive tid-set layer: every tid-list in the mining recursion is held
// either sparse (sorted vector of tids) or dense (BitsetTidList), picked
// per list by a density threshold over the class's tid universe.
//
// Selection rule: a list of n tids over universe U goes dense when
// n · 64 >= U — i.e. when the bitset's words (U/64 of them) are no more
// numerous than the list's elements. A word-AND-popcount intersection
// costs ~U/64 branch-free word ops against ~c·(n_a + n_b) branchy
// compares for the sorted merge, so the raw crossover sits near density
// 1/128; one power of two of headroom pays for the sparse→dense
// conversions at class boundaries and the dense→sparse decode of results
// that fall back under the threshold (full derivation in DESIGN.md §5).
//
// Representations convert only at class boundaries: atoms are seeded into
// their preferred representation when a class enters the recursion, each
// child is normalized right after its intersection materializes, and
// mixed sparse∩dense intersections run directly (probe the bitset per
// sparse element) rather than converting an operand.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/types.hpp"
#include "vertical/bitset_tidlist.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

/// Intersection kernel selection. kMerge/kMergeShortCircuit/kGallop force
/// the sparse representation everywhere (the paper's kernels); kBitset
/// forces dense; kAuto dispatches at runtime — gallop when one sparse
/// list is 32× shorter than the other, word-AND when both operands are
/// dense, short-circuited merge otherwise — with the representation of
/// every list chosen by the density threshold.
enum class IntersectKernel : std::uint8_t {
  kMerge,
  kMergeShortCircuit,  // the paper's default
  kGallop,
  kBitset,  // dense word-AND + popcount for every list
  kAuto,    // runtime dispatch over adaptive representations
};

/// Canonical lowercase name ("merge", "short-circuit", "gallop",
/// "bitset", "auto") — the spelling the bench/example --kernel flags use.
const char* kernel_name(IntersectKernel kernel);

/// Inverse of kernel_name; nullopt on an unknown name.
std::optional<IntersectKernel> kernel_from_name(std::string_view name);

/// Counters the ablation benchmarks read back. Scan counters record work
/// actually performed: a short-circuited abort adds only the elements (or
/// words) inspected before the bound fired, never the full input sizes.
struct IntersectStats {
  std::uint64_t intersections = 0;    ///< kernel invocations
  std::uint64_t short_circuited = 0;  ///< aborted early by the bound
  std::uint64_t tids_scanned = 0;     ///< sparse elements actually visited
  std::uint64_t words_scanned = 0;    ///< bitset words actually ANDed
  std::uint64_t merge_calls = 0;      ///< sparse∩sparse merges
  std::uint64_t gallop_calls = 0;     ///< sparse∩sparse gallops
  std::uint64_t bitset_calls = 0;     ///< dense∩dense word kernels
  std::uint64_t probe_calls = 0;      ///< sparse∩dense bit probes
  std::uint64_t count_only = 0;       ///< support-only evaluations
  std::uint64_t densified = 0;        ///< sparse→dense conversions
  std::uint64_t sparsified = 0;       ///< dense→sparse conversions
};

/// One tid-list in either representation. Assign/intersect operations
/// reuse the internal buffers, so a TidSet slot held in a TidArena level
/// stops allocating once warmed up.
class TidSet {
 public:
  TidSet() = default;

  bool dense() const { return dense_; }
  Count support() const {
    return dense_ ? bits_.count() : tids_.size();
  }
  bool empty() const { return support() == 0; }

  /// Sorted tids; only valid while sparse.
  std::span<const Tid> tids() const;
  /// Bitset; only valid while dense.
  const BitsetTidList& bits() const;

  void assign_sparse(std::span<const Tid> tids);
  void assign_dense(std::span<const Tid> tids, Tid universe);

  /// True iff the density threshold prefers the dense representation for
  /// a list of `size` tids over `universe` transactions (size·64 >= U).
  static bool prefers_dense(std::size_t size, Tid universe);

  /// Convert to whichever representation prefers_dense picks; no-op when
  /// already there. Counts conversions into `stats` when given.
  void normalize(Tid universe, IntersectStats* stats);

  /// Decode to a sorted tid-list regardless of representation.
  void append_to(TidList& out) const;
  TidList to_tidlist() const;

 private:
  friend void seed_tidset(std::span<const Tid>, Tid, IntersectKernel,
                          TidSet&, IntersectStats*);
  friend bool intersect_into(const TidSet&, const TidSet&, Count,
                             IntersectKernel, Tid, TidSet&,
                             IntersectStats*);
  friend std::optional<Count> intersect_support(const TidSet&, const TidSet&,
                                                Count, IntersectKernel,
                                                IntersectStats*);
  friend bool difference_into(const TidSet&, const TidSet&, std::size_t,
                              IntersectKernel, Tid, TidSet&,
                              IntersectStats*);

  TidList tids_;         // sparse storage (and decode scratch)
  BitsetTidList bits_;   // dense storage
  bool dense_ = false;
};

/// Load `tids` into `out` in the representation `kernel` mandates for a
/// class over `universe`: sparse for the paper's kernels, dense for
/// kBitset, threshold-chosen for kAuto.
void seed_tidset(std::span<const Tid> tids, Tid universe,
                 IntersectKernel kernel, TidSet& out,
                 IntersectStats* stats);

/// out = a ∩ b through the dispatched kernel, short-circuiting below
/// `minsup`. Returns false iff the result provably misses minsup (then
/// out is unspecified). `out` must not alias `a` or `b`. Under kAuto the
/// result representation is normalized by the density threshold.
bool intersect_into(const TidSet& a, const TidSet& b, Count minsup,
                    IntersectKernel kernel, Tid universe, TidSet& out,
                    IntersectStats* stats);

/// Support-only variant: |a ∩ b| when it reaches minsup, nullopt
/// otherwise. Nothing is materialized — the recursion uses this for
/// children that can never recurse (singleton child classes).
std::optional<Count> intersect_support(const TidSet& a, const TidSet& b,
                                       Count minsup,
                                       IntersectKernel kernel,
                                       IntersectStats* stats);

/// out = a \ b, aborting as soon as the result would exceed `budget`
/// elements (the diffset pruning bound). Same dispatch/normalization
/// rules as intersect_into; kGallop falls back to the sparse merge
/// (galloping has no difference analogue).
bool difference_into(const TidSet& a, const TidSet& b, std::size_t budget,
                     IntersectKernel kernel, Tid universe, TidSet& out,
                     IntersectStats* stats);

}  // namespace eclat
