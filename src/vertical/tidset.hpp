// Adaptive tid-set layer: every tid-list in the mining recursion is held
// sparse (sorted vector of tids), chunked (roaring-style hybrid
// container), or dense (flat BitsetTidList), picked per list by density
// thresholds over the class's tid universe.
//
// Selection rule (kAuto): a list of n tids over universe U goes dense
// when n · 128 >= U (measured crossover: the SIMD word AND's U/64-word
// scan beats the chunked containers from density 1/128 up), chunked
// when n · 1024 >= U (too sparse for the flat bitmap, but dense enough
// that per-chunk containers put the hot 2^16-tid chunks on the word
// kernels while the cold ones run the STTNI u16 merge), and sparse
// below that (measurement and derivation in DESIGN.md §5).
//
// Representations convert only at class boundaries: atoms are seeded
// into their preferred representation when a class enters the recursion
// and each child is normalized right after its intersection
// materializes. Normalization is hysteretic — converting toward denser
// happens eagerly at the thresholds above, while converting toward
// sparser waits until the size falls a further 8x below the boundary
// (the stay band), so a class oscillating around a threshold stops
// converting at every level; holds and direction reversals are counted
// in IntersectStats (hysteresis_holds / rep_flipflops). Mixed-
// representation intersections run directly (probe the denser operand
// per sparse element, address the flat bitmap chunk-by-chunk) rather
// than converting an operand.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/types.hpp"
#include "vertical/bitset_tidlist.hpp"
#include "vertical/chunked_tidlist.hpp"
#include "vertical/intersect_stats.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

/// Intersection kernel selection. kMerge/kMergeShortCircuit/kGallop force
/// the sparse representation everywhere (the paper's kernels); kBitset
/// forces the flat dense bitmap; kChunked forces the roaring-style
/// hybrid container; kAuto dispatches at runtime — word-AND when both
/// operands are dense, the chunked kernels when a chunked operand is
/// involved, gallop when one sparse list is 32× shorter than the other,
/// short-circuited merge otherwise — with the representation of every
/// list chosen by the density thresholds.
enum class IntersectKernel : std::uint8_t {
  kMerge,
  kMergeShortCircuit,  // the paper's default
  kGallop,
  kBitset,   // dense word-AND + popcount for every list
  kChunked,  // roaring-style hybrid container for every list
  kAuto,     // runtime dispatch over adaptive representations
};

/// Canonical lowercase name ("merge", "short-circuit", "gallop",
/// "bitset", "chunked", "auto") — the spelling the bench/example
/// --kernel flags use.
const char* kernel_name(IntersectKernel kernel);

/// Inverse of kernel_name; nullopt on an unknown name.
std::optional<IntersectKernel> kernel_from_name(std::string_view name);

/// The three representations, ordered sparse < chunked < dense so
/// conversion direction ("toward denser") is just an enum comparison.
enum class TidRep : std::uint8_t { kSparse, kChunked, kDense };

/// One tid-list in any representation. Assign/intersect operations reuse
/// the internal buffers, so a TidSet slot held in a TidArena level stops
/// allocating once warmed up.
class TidSet {
 public:
  TidSet() = default;

  TidRep rep() const { return rep_; }
  bool dense() const { return rep_ == TidRep::kDense; }
  bool chunked() const { return rep_ == TidRep::kChunked; }
  Count support() const {
    switch (rep_) {
      case TidRep::kSparse:
        return tids_.size();
      case TidRep::kChunked:
        return chunks_.count();
      case TidRep::kDense:
        return bits_.count();
    }
    return 0;  // unreachable
  }
  bool empty() const { return support() == 0; }

  /// Sorted tids; only valid while sparse.
  std::span<const Tid> tids() const;
  /// Bitset; only valid while dense.
  const BitsetTidList& bits() const;
  /// Hybrid container; only valid while chunked.
  const ChunkedTidList& chunks() const;

  void assign_sparse(std::span<const Tid> tids);
  void assign_chunked(std::span<const Tid> tids, Tid universe);
  void assign_dense(std::span<const Tid> tids, Tid universe);

  /// True iff the density threshold prefers the flat dense representation
  /// for a list of `size` tids over `universe` transactions (size·128 >= U).
  static bool prefers_dense(std::size_t size, Tid universe);

  /// The representation kAuto targets for a fresh list of `size` tids:
  /// dense at size·128 >= U, chunked at size·1024 >= U, else sparse.
  static TidRep preferred_rep(std::size_t size, Tid universe);

  /// Convert toward preferred_rep, hysteretically: densifying happens
  /// eagerly, sparsifying only once the size falls 8x below the entry
  /// threshold (dense holds while size·1024 >= U, chunked while
  /// size·8192 >= U). Counts conversions, holds, and direction
  /// reversals into `stats` when given.
  void normalize(Tid universe, IntersectStats* stats);

  /// Decode to a sorted tid-list regardless of representation.
  void append_to(TidList& out) const;
  TidList to_tidlist() const;

  /// Bytes retained across all three internal buffers (capacities). The
  /// exec memory budget sums this over a worker's arena.
  std::size_t memory_bytes() const {
    return tids_.capacity() * sizeof(Tid) + bits_.memory_bytes() +
           chunks_.memory_bytes();
  }

  /// Memory-pressure demotion: re-encode as chunked (u16 containers,
  /// ~half the bytes of a sparse u32 list; empty chunks dropped from a
  /// dense bitmap) and release the vacated sparse/dense buffers. Only
  /// valid when the active kernel dispatches mixed representations
  /// (kAuto/kChunked) — the forced sparse/dense kernels assume their
  /// representation everywhere. Returns false when already chunked.
  bool demote_to_chunked();

  /// Drop every buffer (capacity included) and reset to an empty sparse
  /// set. Memory-pressure relief for slots whose contents are dead.
  void release();

 private:
  friend void seed_tidset(std::span<const Tid>, Tid, IntersectKernel,
                          TidSet&, IntersectStats*);
  friend bool intersect_into(const TidSet&, const TidSet&, Count,
                             IntersectKernel, Tid, TidSet&,
                             IntersectStats*);
  friend std::optional<Count> intersect_support(const TidSet&, const TidSet&,
                                                Count, IntersectKernel,
                                                IntersectStats*);
  friend bool difference_into(const TidSet&, const TidSet&, std::size_t,
                              IntersectKernel, Tid, TidSet&,
                              IntersectStats*);

  void set_rep(TidRep rep, IntersectStats* stats);

  TidList tids_;           // sparse storage (and decode scratch)
  BitsetTidList bits_;     // dense storage
  ChunkedTidList chunks_;  // hybrid storage
  TidRep rep_ = TidRep::kSparse;
  std::int8_t last_conv_ = 0;  // +1 densified last, -1 sparsified, 0 never
};

/// Load `tids` into `out` in the representation `kernel` mandates for a
/// class over `universe`: sparse for the paper's kernels, dense for
/// kBitset, chunked for kChunked, threshold-chosen for kAuto.
void seed_tidset(std::span<const Tid> tids, Tid universe,
                 IntersectKernel kernel, TidSet& out,
                 IntersectStats* stats);

/// out = a ∩ b through the dispatched kernel, short-circuiting below
/// `minsup`. Returns false iff the result provably misses minsup (then
/// out is unspecified). `out` must not alias `a` or `b`. Under kAuto the
/// result representation is normalized by the density thresholds.
bool intersect_into(const TidSet& a, const TidSet& b, Count minsup,
                    IntersectKernel kernel, Tid universe, TidSet& out,
                    IntersectStats* stats);

/// Support-only variant: |a ∩ b| when it reaches minsup, nullopt
/// otherwise. Nothing is materialized — the recursion uses this for
/// children that can never recurse (singleton child classes).
std::optional<Count> intersect_support(const TidSet& a, const TidSet& b,
                                       Count minsup,
                                       IntersectKernel kernel,
                                       IntersectStats* stats);

/// out = a \ b, aborting as soon as the result would exceed `budget`
/// elements (the diffset pruning bound). Same dispatch/normalization
/// rules as intersect_into; kGallop falls back to the sparse merge
/// (galloping has no difference analogue).
bool difference_into(const TidSet& a, const TidSet& b, std::size_t budget,
                     IntersectKernel kernel, Tid universe, TidSet& out,
                     IntersectStats* stats);

}  // namespace eclat
