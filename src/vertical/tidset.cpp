#include "vertical/tidset.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eclat {

namespace {

/// kAuto hands a sparse∩sparse pair to the galloping kernel when one side
/// is this many times shorter than the other.
constexpr std::size_t kGallopSkew = 32;

/// sparse ∩ dense by probing the bitset per sparse element, with the
/// support bound |result| <= matched + sparse elements remaining.
/// Returns false iff provably below minsup.
bool probe_into(std::span<const Tid> sparse, const BitsetTidList& dense,
                Count minsup, TidList& out, IntersectStats* stats) {
  if (std::min<std::size_t>(sparse.size(), dense.count()) < minsup) {
    if (stats != nullptr) {
      ++stats->probe_calls;
      ++stats->short_circuited;
    }
    return false;
  }
  out.clear();
  out.reserve(sparse.size());
  const std::size_t n = sparse.size();
  std::size_t i = 0;
  bool aborted = false;
  for (; i < n; ++i) {
    if (out.size() + (n - i) < minsup) {
      aborted = true;
      break;
    }
    if (dense.test(sparse[i])) out.push_back(sparse[i]);
  }
  if (stats != nullptr) {
    ++stats->probe_calls;
    stats->tids_scanned += i;
    if (aborted) ++stats->short_circuited;
  }
  return !aborted && out.size() >= minsup;
}

/// Support-only probe.
std::optional<Count> probe_count(std::span<const Tid> sparse,
                                 const BitsetTidList& dense, Count minsup,
                                 IntersectStats* stats) {
  if (std::min<std::size_t>(sparse.size(), dense.count()) < minsup) {
    if (stats != nullptr) {
      ++stats->probe_calls;
      ++stats->short_circuited;
    }
    return std::nullopt;
  }
  const std::size_t n = sparse.size();
  std::size_t count = 0;
  std::size_t i = 0;
  bool aborted = false;
  for (; i < n; ++i) {
    if (count + (n - i) < minsup) {
      aborted = true;
      break;
    }
    count += static_cast<std::size_t>(dense.test(sparse[i]));
  }
  if (stats != nullptr) {
    ++stats->probe_calls;
    stats->tids_scanned += i;
    if (aborted) ++stats->short_circuited;
  }
  if (aborted || count < minsup) return std::nullopt;
  return count;
}

/// Support-only gallop: |a ∩ b| counting search probes like
/// intersect_gallop_into does.
Count gallop_count(std::span<const Tid> a, std::span<const Tid> b,
                   std::size_t* visited) {
  if (a.size() > b.size()) return gallop_count(b, a, visited);
  Count count = 0;
  std::size_t j = 0;
  std::size_t scanned = 0;
  for (const Tid target : a) {
    ++scanned;
    // Doubling probes then binary search, mirroring tidlist.cpp.
    std::size_t lo = j;
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < b.size() && b[hi] < target) {
      ++scanned;
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, b.size());
    std::size_t width = hi - lo;
    while (width > 0) {
      ++scanned;
      const std::size_t half = width / 2;
      if (b[lo + half] < target) {
        lo += half + 1;
        width -= half + 1;
      } else {
        width = half;
      }
    }
    j = lo;
    if (j == b.size()) break;
    if (b[j] == target) {
      ++count;
      ++j;
    }
  }
  if (visited != nullptr) *visited += scanned;
  return count;
}

bool sparse_pair_skewed(std::size_t a, std::size_t b) {
  return std::min(a, b) * kGallopSkew < std::max(a, b);
}

}  // namespace

const char* kernel_name(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kMerge:
      return "merge";
    case IntersectKernel::kMergeShortCircuit:
      return "short-circuit";
    case IntersectKernel::kGallop:
      return "gallop";
    case IntersectKernel::kBitset:
      return "bitset";
    case IntersectKernel::kAuto:
      return "auto";
  }
  ECLAT_UNREACHABLE("unknown IntersectKernel");
}

std::optional<IntersectKernel> kernel_from_name(std::string_view name) {
  if (name == "merge") return IntersectKernel::kMerge;
  if (name == "short-circuit") return IntersectKernel::kMergeShortCircuit;
  if (name == "gallop") return IntersectKernel::kGallop;
  if (name == "bitset") return IntersectKernel::kBitset;
  if (name == "auto") return IntersectKernel::kAuto;
  return std::nullopt;
}

std::span<const Tid> TidSet::tids() const {
  ECLAT_DCHECK(!dense_);
  return tids_;
}

const BitsetTidList& TidSet::bits() const {
  ECLAT_DCHECK(dense_);
  return bits_;
}

void TidSet::assign_sparse(std::span<const Tid> tids) {
  ECLAT_DCHECK(is_valid_tidlist(tids));
  tids_.assign(tids.begin(), tids.end());
  dense_ = false;
}

void TidSet::assign_dense(std::span<const Tid> tids, Tid universe) {
  bits_.assign(tids, universe);
  dense_ = true;
}

bool TidSet::prefers_dense(std::size_t size, Tid universe) {
  return size > 0 && (static_cast<std::uint64_t>(size) << 6) >= universe;
}

void TidSet::normalize(Tid universe, IntersectStats* stats) {
  const bool want_dense = prefers_dense(support(), universe);
  if (want_dense == dense_) return;
  if (want_dense) {
    bits_.assign(tids_, universe);
    dense_ = true;
    if (stats != nullptr) ++stats->densified;
  } else {
    tids_.clear();
    tids_.reserve(bits_.count());
    bits_.append_to(tids_);
    dense_ = false;
    if (stats != nullptr) ++stats->sparsified;
  }
}

void TidSet::append_to(TidList& out) const {
  if (dense_) {
    bits_.append_to(out);
  } else {
    out.insert(out.end(), tids_.begin(), tids_.end());
  }
}

TidList TidSet::to_tidlist() const {
  TidList out;
  out.reserve(support());
  append_to(out);
  return out;
}

void seed_tidset(std::span<const Tid> tids, Tid universe,
                 IntersectKernel kernel, TidSet& out,
                 IntersectStats* stats) {
  const bool dense =
      kernel == IntersectKernel::kBitset ||
      (kernel == IntersectKernel::kAuto &&
       TidSet::prefers_dense(tids.size(), universe));
  if (dense) {
    out.bits_.assign(tids, universe);
    out.dense_ = true;
    if (stats != nullptr) ++stats->densified;
  } else {
    out.tids_.assign(tids.begin(), tids.end());
    out.dense_ = false;
  }
}

bool intersect_into(const TidSet& a, const TidSet& b, Count minsup,
                    IntersectKernel kernel, Tid universe, TidSet& out,
                    IntersectStats* stats) {
  ECLAT_DCHECK(&out != &a && &out != &b);
  if (stats != nullptr) ++stats->intersections;
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  bool ok = false;
  switch (kernel) {
    case IntersectKernel::kMerge: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      intersect_into(a.tids_, b.tids_, out.tids_, vp);
      out.dense_ = false;
      ok = out.tids_.size() >= minsup;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kMergeShortCircuit: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      ok = intersect_short_circuit_into(a.tids_, b.tids_, minsup, out.tids_,
                                        vp);
      out.dense_ = false;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
        if (!ok) ++stats->short_circuited;
      }
      return ok;
    }
    case IntersectKernel::kGallop: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      intersect_gallop_into(a.tids_, b.tids_, out.tids_, vp);
      out.dense_ = false;
      ok = out.tids_.size() >= minsup;
      if (stats != nullptr) {
        ++stats->gallop_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.dense_ && b.dense_);
      std::uint64_t words = 0;
      ok = out.bits_.assign_and_bounded(
          a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
      out.dense_ = true;
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
        if (!ok) ++stats->short_circuited;
      }
      return ok;
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  // kAuto: dispatch on the operands' representations, then normalize the
  // result's representation by the density threshold.
  if (a.dense_ && b.dense_) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_and_bounded(a.bits_, b.bits_, minsup,
                                      stats != nullptr ? &words : nullptr);
    out.dense_ = true;
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
      if (!ok) ++stats->short_circuited;
    }
  } else if (a.dense_ != b.dense_) {
    const TidSet& sparse = a.dense_ ? b : a;
    const TidSet& dense = a.dense_ ? a : b;
    ok = probe_into(sparse.tids_, dense.bits_, minsup, out.tids_, stats);
    out.dense_ = false;
  } else if (sparse_pair_skewed(a.tids_.size(), b.tids_.size())) {
    if (std::min(a.tids_.size(), b.tids_.size()) < minsup) {
      if (stats != nullptr) {
        ++stats->gallop_calls;
        ++stats->short_circuited;
      }
      return false;
    }
    intersect_gallop_into(a.tids_, b.tids_, out.tids_, vp);
    out.dense_ = false;
    ok = out.tids_.size() >= minsup;
    if (stats != nullptr) {
      ++stats->gallop_calls;
      stats->tids_scanned += visited;
    }
  } else if (minsup > 1) {
    ok = intersect_short_circuit_into(a.tids_, b.tids_, minsup, out.tids_,
                                      vp);
    out.dense_ = false;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
      if (!ok) ++stats->short_circuited;
    }
  } else {
    // Bound bookkeeping cannot pay off at minsup <= 1: plain merge.
    intersect_into(a.tids_, b.tids_, out.tids_, vp);
    out.dense_ = false;
    ok = out.tids_.size() >= minsup;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
    }
  }
  if (ok) out.normalize(universe, stats);
  return ok;
}

std::optional<Count> intersect_support(const TidSet& a, const TidSet& b,
                                       Count minsup, IntersectKernel kernel,
                                       IntersectStats* stats) {
  if (stats != nullptr) {
    ++stats->intersections;
    ++stats->count_only;
  }
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  std::optional<Count> result;
  switch (kernel) {
    case IntersectKernel::kMerge: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      // minsup 0 disarms the bound: a full scan, checked afterwards.
      const std::optional<Count> count =
          intersect_count_bounded(a.tids_, b.tids_, 0, vp);
      result = (count && *count >= minsup) ? count : std::nullopt;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return result;
    }
    case IntersectKernel::kMergeShortCircuit: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      result = intersect_count_bounded(a.tids_, b.tids_, minsup, vp);
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
        if (!result) ++stats->short_circuited;
      }
      return result;
    }
    case IntersectKernel::kGallop: {
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      const Count count = gallop_count(a.tids_, b.tids_, vp);
      result = count >= minsup ? std::optional<Count>(count) : std::nullopt;
      if (stats != nullptr) {
        ++stats->gallop_calls;
        stats->tids_scanned += visited;
      }
      return result;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.dense_ && b.dense_);
      std::uint64_t words = 0;
      const std::optional<std::size_t> count = BitsetTidList::and_count(
          a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
        if (!count) ++stats->short_circuited;
      }
      if (!count) return std::nullopt;
      return static_cast<Count>(*count);
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  if (a.dense_ && b.dense_) {
    std::uint64_t words = 0;
    const std::optional<std::size_t> count = BitsetTidList::and_count(
        a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
      if (!count) ++stats->short_circuited;
    }
    if (!count) return std::nullopt;
    return static_cast<Count>(*count);
  }
  if (a.dense_ != b.dense_) {
    const TidSet& sparse = a.dense_ ? b : a;
    const TidSet& dense = a.dense_ ? a : b;
    return probe_count(sparse.tids_, dense.bits_, minsup, stats);
  }
  if (sparse_pair_skewed(a.tids_.size(), b.tids_.size())) {
    if (std::min(a.tids_.size(), b.tids_.size()) < minsup) {
      if (stats != nullptr) {
        ++stats->gallop_calls;
        ++stats->short_circuited;
      }
      return std::nullopt;
    }
    const Count count = gallop_count(a.tids_, b.tids_, vp);
    result = count >= minsup ? std::optional<Count>(count) : std::nullopt;
    if (stats != nullptr) {
      ++stats->gallop_calls;
      stats->tids_scanned += visited;
    }
    return result;
  }
  result = intersect_count_bounded(a.tids_, b.tids_, minsup, vp);
  if (stats != nullptr) {
    ++stats->merge_calls;
    stats->tids_scanned += visited;
    if (!result) ++stats->short_circuited;
  }
  return result;
}

bool difference_into(const TidSet& a, const TidSet& b, std::size_t budget,
                     IntersectKernel kernel, Tid universe, TidSet& out,
                     IntersectStats* stats) {
  ECLAT_DCHECK(&out != &a && &out != &b);
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  bool ok = false;
  switch (kernel) {
    case IntersectKernel::kMerge:
    case IntersectKernel::kMergeShortCircuit:
    case IntersectKernel::kGallop: {
      // The budget bound is dEclat's algorithmic pruning rule, not an
      // optional optimization, so every sparse kernel keeps it (galloping
      // has no difference analogue and falls back to the merge).
      ECLAT_DCHECK(!a.dense_ && !b.dense_);
      ok = difference_bounded_into(a.tids_, b.tids_, budget, out.tids_, vp);
      out.dense_ = false;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.dense_ && b.dense_);
      std::uint64_t words = 0;
      ok = out.bits_.assign_andnot_bounded(
          a.bits_, b.bits_, budget, stats != nullptr ? &words : nullptr);
      out.dense_ = true;
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
      }
      return ok;
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  if (a.dense_ && b.dense_) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_andnot_bounded(a.bits_, b.bits_, budget,
                                         stats != nullptr ? &words : nullptr);
    out.dense_ = true;
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
    }
  } else if (!a.dense_ && b.dense_) {
    out.tids_.clear();
    out.tids_.reserve(std::min(a.tids_.size(), budget + 1));
    std::size_t i = 0;
    ok = true;
    for (; i < a.tids_.size(); ++i) {
      if (!b.bits_.test(a.tids_[i])) {
        if (out.tids_.size() == budget) {
          ok = false;
          break;
        }
        out.tids_.push_back(a.tids_[i]);
      }
    }
    out.dense_ = false;
    if (stats != nullptr) {
      ++stats->probe_calls;
      stats->tids_scanned += i;
    }
  } else if (a.dense_ && !b.dense_) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_minus_sparse(a.bits_, b.tids_, budget,
                                       stats != nullptr ? &words : nullptr);
    out.dense_ = true;
    if (stats != nullptr) {
      ++stats->probe_calls;
      stats->words_scanned += words;
      stats->tids_scanned += b.tids_.size();
    }
  } else {
    ok = difference_bounded_into(a.tids_, b.tids_, budget, out.tids_, vp);
    out.dense_ = false;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
    }
  }
  if (ok) out.normalize(universe, stats);
  return ok;
}

}  // namespace eclat
