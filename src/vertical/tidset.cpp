#include "vertical/tidset.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "vertical/simd/dispatch.hpp"

namespace eclat {

namespace {

/// kAuto hands a sparse∩sparse pair to the galloping kernel when one side
/// is this many times shorter than the other.
constexpr std::size_t kGallopSkew = 32;

bool sparse_pair_skewed(std::size_t a, std::size_t b) {
  return std::min(a, b) * kGallopSkew < std::max(a, b);
}

void count_simd_words(IntersectStats* stats) {
  if (stats != nullptr &&
      simd::kernels().level != simd::IsaLevel::kScalar) {
    ++stats->simd_word_calls;
  }
}

void count_simd_sparse(IntersectStats* stats) {
  if (stats != nullptr &&
      simd::kernels().level != simd::IsaLevel::kScalar) {
    ++stats->simd_sparse_calls;
  }
}

/// Galloping sparse∩sparse through the dispatched kernel table.
void gallop_into_dispatch(std::span<const Tid> a, std::span<const Tid> b,
                          TidList& out, std::size_t* visited,
                          IntersectStats* stats) {
  const std::span<const Tid> small = a.size() <= b.size() ? a : b;
  const std::span<const Tid> large = a.size() <= b.size() ? b : a;
  out.clear();
  out.resize(small.size());
  const std::size_t k =
      simd::kernels().gallop_u32(small.data(), small.size(), large.data(),
                                 large.size(), out.data(), visited);
  out.resize(k);
  count_simd_sparse(stats);
}

/// Support-only gallop through the dispatched kernel table.
Count gallop_count_dispatch(std::span<const Tid> a, std::span<const Tid> b,
                            std::size_t* visited, IntersectStats* stats) {
  const std::span<const Tid> small = a.size() <= b.size() ? a : b;
  const std::span<const Tid> large = a.size() <= b.size() ? b : a;
  count_simd_sparse(stats);
  return simd::kernels().gallop_u32_count(small.data(), small.size(),
                                          large.data(), large.size(),
                                          visited);
}

/// sparse ∩ denser-side by probing per sparse element (works against the
/// flat bitmap and the chunked container alike), with the support bound
/// |result| <= matched + sparse elements remaining. Returns false iff
/// provably below minsup.
template <typename DenseLike>
bool probe_into(std::span<const Tid> sparse, const DenseLike& dense,
                Count minsup, TidList& out, IntersectStats* stats) {
  if (std::min<std::size_t>(sparse.size(), dense.count()) < minsup) {
    if (stats != nullptr) {
      ++stats->probe_calls;
      ++stats->short_circuited;
    }
    return false;
  }
  out.clear();
  out.reserve(sparse.size());
  const std::size_t n = sparse.size();
  std::size_t i = 0;
  bool aborted = false;
  for (; i < n; ++i) {
    if (out.size() + (n - i) < minsup) {
      aborted = true;
      break;
    }
    if (dense.test(sparse[i])) out.push_back(sparse[i]);
  }
  if (stats != nullptr) {
    ++stats->probe_calls;
    stats->tids_scanned += i;
    if (aborted) ++stats->short_circuited;
  }
  return !aborted && out.size() >= minsup;
}

/// Support-only probe.
template <typename DenseLike>
std::optional<Count> probe_count(std::span<const Tid> sparse,
                                 const DenseLike& dense, Count minsup,
                                 IntersectStats* stats) {
  if (std::min<std::size_t>(sparse.size(), dense.count()) < minsup) {
    if (stats != nullptr) {
      ++stats->probe_calls;
      ++stats->short_circuited;
    }
    return std::nullopt;
  }
  const std::size_t n = sparse.size();
  std::size_t count = 0;
  std::size_t i = 0;
  bool aborted = false;
  for (; i < n; ++i) {
    if (count + (n - i) < minsup) {
      aborted = true;
      break;
    }
    count += static_cast<std::size_t>(dense.test(sparse[i]));
  }
  if (stats != nullptr) {
    ++stats->probe_calls;
    stats->tids_scanned += i;
    if (aborted) ++stats->short_circuited;
  }
  if (aborted || count < minsup) return std::nullopt;
  return count;
}

/// sparse \ denser-side with the diffset budget bound.
template <typename DenseLike>
bool probe_minus_into(std::span<const Tid> sparse, const DenseLike& dense,
                      std::size_t budget, TidList& out,
                      IntersectStats* stats) {
  out.clear();
  out.reserve(std::min(sparse.size(), budget + 1));
  std::size_t i = 0;
  bool ok = true;
  for (; i < sparse.size(); ++i) {
    if (!dense.test(sparse[i])) {
      if (out.size() == budget) {
        ok = false;
        break;
      }
      out.push_back(sparse[i]);
    }
  }
  if (stats != nullptr) {
    ++stats->probe_calls;
    stats->tids_scanned += i;
  }
  return ok;
}

}  // namespace

const char* kernel_name(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kMerge:
      return "merge";
    case IntersectKernel::kMergeShortCircuit:
      return "short-circuit";
    case IntersectKernel::kGallop:
      return "gallop";
    case IntersectKernel::kBitset:
      return "bitset";
    case IntersectKernel::kChunked:
      return "chunked";
    case IntersectKernel::kAuto:
      return "auto";
  }
  ECLAT_UNREACHABLE("unknown IntersectKernel");
}

std::optional<IntersectKernel> kernel_from_name(std::string_view name) {
  if (name == "merge") return IntersectKernel::kMerge;
  if (name == "short-circuit") return IntersectKernel::kMergeShortCircuit;
  if (name == "gallop") return IntersectKernel::kGallop;
  if (name == "bitset") return IntersectKernel::kBitset;
  if (name == "chunked") return IntersectKernel::kChunked;
  if (name == "auto") return IntersectKernel::kAuto;
  return std::nullopt;
}

std::span<const Tid> TidSet::tids() const {
  ECLAT_DCHECK(rep_ == TidRep::kSparse);
  return tids_;
}

const BitsetTidList& TidSet::bits() const {
  ECLAT_DCHECK(rep_ == TidRep::kDense);
  return bits_;
}

const ChunkedTidList& TidSet::chunks() const {
  ECLAT_DCHECK(rep_ == TidRep::kChunked);
  return chunks_;
}

void TidSet::assign_sparse(std::span<const Tid> tids) {
  ECLAT_DCHECK(is_valid_tidlist(tids));
  tids_.assign(tids.begin(), tids.end());
  rep_ = TidRep::kSparse;
}

void TidSet::assign_chunked(std::span<const Tid> tids, Tid universe) {
  chunks_.assign(tids, universe);
  rep_ = TidRep::kChunked;
}

void TidSet::assign_dense(std::span<const Tid> tids, Tid universe) {
  bits_.assign(tids, universe);
  rep_ = TidRep::kDense;
}

bool TidSet::demote_to_chunked() {
  if (rep_ == TidRep::kChunked) return false;
  // Decode, re-encode chunked over the set's own span (max tid + 1), then
  // drop the vacated buffer so the budget accounting actually improves.
  TidList decoded = to_tidlist();
  const Tid universe = decoded.empty() ? 0 : decoded.back() + 1;
  chunks_.assign(decoded, universe);
  if (rep_ == TidRep::kSparse) {
    tids_ = TidList();
  } else {
    bits_ = BitsetTidList();
  }
  rep_ = TidRep::kChunked;
  last_conv_ = -1;
  return true;
}

void TidSet::release() {
  tids_ = TidList();
  bits_ = BitsetTidList();
  chunks_ = ChunkedTidList();
  rep_ = TidRep::kSparse;
  last_conv_ = 0;
}

bool TidSet::prefers_dense(std::size_t size, Tid universe) {
  return size > 0 && (static_cast<std::uint64_t>(size) << 7) >= universe;
}

TidRep TidSet::preferred_rep(std::size_t size, Tid universe) {
  if (size == 0) return TidRep::kSparse;
  const auto n = static_cast<std::uint64_t>(size);
  if ((n << 7) >= universe) return TidRep::kDense;
  if ((n << 10) >= universe) return TidRep::kChunked;
  return TidRep::kSparse;
}

void TidSet::set_rep(TidRep rep, IntersectStats* stats) {
  if (rep == rep_) return;
  const std::int8_t dir = rep > rep_ ? 1 : -1;
  if (stats != nullptr) {
    if (dir > 0) {
      ++stats->densified;
    } else {
      ++stats->sparsified;
    }
    if (last_conv_ != 0 && dir != last_conv_) ++stats->rep_flipflops;
  }
  last_conv_ = dir;
  rep_ = rep;
}

void TidSet::normalize(Tid universe, IntersectStats* stats) {
  const auto n = static_cast<std::size_t>(support());
  TidRep target = preferred_rep(n, universe);
  if (target == rep_) return;
  if (target < rep_) {
    // Sparsify only past the stay band: 8x below the entry threshold.
    // Demotion costs a full decode pass of the source representation,
    // so it has to be rare relative to the intersections it speeds up.
    const auto size = static_cast<std::uint64_t>(n);
    TidRep stay = TidRep::kSparse;
    if (n > 0 && (size << 10) >= universe) {
      stay = TidRep::kDense;
    } else if (n > 0 && (size << 13) >= universe) {
      stay = TidRep::kChunked;
    }
    if (stay > target) target = stay;
    if (target >= rep_) {
      if (stats != nullptr) ++stats->hysteresis_holds;
      return;
    }
  }
  // Move the data, from the current representation to the target.
  switch (target) {
    case TidRep::kSparse:
      tids_.clear();
      tids_.reserve(n);
      if (rep_ == TidRep::kDense) {
        bits_.append_to(tids_);
      } else {
        chunks_.append_to(tids_);
      }
      break;
    case TidRep::kChunked:
      if (rep_ == TidRep::kSparse) {
        chunks_.assign(tids_, universe);
      } else {
        chunks_.assign_from_words(bits_.words(), universe, bits_.count());
      }
      break;
    case TidRep::kDense:
      if (rep_ == TidRep::kSparse) {
        bits_.assign(tids_, universe);
      } else {
        bits_.reset(universe);
        chunks_.write_words(bits_.mutable_words());
        bits_.set_count(chunks_.count());
      }
      break;
  }
  set_rep(target, stats);
}

void TidSet::append_to(TidList& out) const {
  switch (rep_) {
    case TidRep::kSparse:
      out.insert(out.end(), tids_.begin(), tids_.end());
      break;
    case TidRep::kChunked:
      chunks_.append_to(out);
      break;
    case TidRep::kDense:
      bits_.append_to(out);
      break;
  }
}

TidList TidSet::to_tidlist() const {
  TidList out;
  out.reserve(support());
  append_to(out);
  return out;
}

void seed_tidset(std::span<const Tid> tids, Tid universe,
                 IntersectKernel kernel, TidSet& out,
                 IntersectStats* stats) {
  TidRep rep = TidRep::kSparse;
  if (kernel == IntersectKernel::kBitset) {
    rep = TidRep::kDense;
  } else if (kernel == IntersectKernel::kChunked) {
    rep = TidRep::kChunked;
  } else if (kernel == IntersectKernel::kAuto) {
    rep = TidSet::preferred_rep(tids.size(), universe);
  }
  switch (rep) {
    case TidRep::kSparse:
      out.tids_.assign(tids.begin(), tids.end());
      break;
    case TidRep::kChunked:
      out.chunks_.assign(tids, universe);
      break;
    case TidRep::kDense:
      out.bits_.assign(tids, universe);
      break;
  }
  out.rep_ = rep;
  out.last_conv_ = 0;
  if (stats != nullptr && rep != TidRep::kSparse) ++stats->densified;
}

bool intersect_into(const TidSet& a, const TidSet& b, Count minsup,
                    IntersectKernel kernel, Tid universe, TidSet& out,
                    IntersectStats* stats) {
  ECLAT_DCHECK(&out != &a && &out != &b);
  if (stats != nullptr) ++stats->intersections;
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  bool ok = false;
  switch (kernel) {
    case IntersectKernel::kMerge: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      intersect_into(a.tids_, b.tids_, out.tids_, vp);
      out.rep_ = TidRep::kSparse;
      ok = out.tids_.size() >= minsup;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kMergeShortCircuit: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      ok = intersect_short_circuit_into(a.tids_, b.tids_, minsup, out.tids_,
                                        vp);
      out.rep_ = TidRep::kSparse;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
        if (!ok) ++stats->short_circuited;
      }
      return ok;
    }
    case IntersectKernel::kGallop: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      gallop_into_dispatch(a.tids_, b.tids_, out.tids_, vp, stats);
      out.rep_ = TidRep::kSparse;
      ok = out.tids_.size() >= minsup;
      if (stats != nullptr) {
        ++stats->gallop_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.rep_ == TidRep::kDense && b.rep_ == TidRep::kDense);
      std::uint64_t words = 0;
      ok = out.bits_.assign_and_bounded(
          a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
      out.rep_ = TidRep::kDense;
      count_simd_words(stats);
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
        if (!ok) ++stats->short_circuited;
      }
      return ok;
    }
    case IntersectKernel::kChunked: {
      ECLAT_DCHECK(a.rep_ == TidRep::kChunked && b.rep_ == TidRep::kChunked);
      ok = out.chunks_.assign_and_bounded(a.chunks_, b.chunks_, minsup,
                                          stats);
      out.rep_ = TidRep::kChunked;
      if (stats != nullptr) ++stats->chunked_calls;
      return ok;
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  // kAuto: dispatch on the operands' representations, then normalize the
  // result's representation by the density thresholds (hysteretically).
  const bool a_dense = a.rep_ == TidRep::kDense;
  const bool b_dense = b.rep_ == TidRep::kDense;
  const bool a_chunked = a.rep_ == TidRep::kChunked;
  const bool b_chunked = b.rep_ == TidRep::kChunked;
  if (a_dense && b_dense) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_and_bounded(a.bits_, b.bits_, minsup,
                                      stats != nullptr ? &words : nullptr);
    out.rep_ = TidRep::kDense;
    count_simd_words(stats);
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
      if (!ok) ++stats->short_circuited;
    }
  } else if (a_chunked && b_chunked) {
    ok = out.chunks_.assign_and_bounded(a.chunks_, b.chunks_, minsup, stats);
    out.rep_ = TidRep::kChunked;
    if (stats != nullptr) ++stats->chunked_calls;
  } else if ((a_chunked && b_dense) || (a_dense && b_chunked)) {
    const TidSet& chunked = a_chunked ? a : b;
    const TidSet& dense = a_chunked ? b : a;
    ok = out.chunks_.assign_and_bits_bounded(chunked.chunks_, dense.bits_,
                                             minsup, stats);
    out.rep_ = TidRep::kChunked;
    if (stats != nullptr) ++stats->chunked_calls;
  } else if (a.rep_ != b.rep_) {
    // Exactly one sparse operand: probe the denser side per element.
    const TidSet& sparse = a.rep_ == TidRep::kSparse ? a : b;
    const TidSet& other = a.rep_ == TidRep::kSparse ? b : a;
    if (other.rep_ == TidRep::kDense) {
      // Flat-bitmap lookups are O(1), so per-element probing is optimal.
      ok = probe_into(sparse.tids_, other.bits_, minsup, out.tids_, stats);
    } else {
      // Chunked lookups cost a container search per element; walk the
      // list chunk-slice by chunk-slice instead (linear merge per chunk).
      ok = ChunkedTidList::and_sparse(other.chunks_, sparse.tids_, minsup,
                                      out.tids_, stats);
      if (stats != nullptr) ++stats->chunked_calls;
    }
    out.rep_ = TidRep::kSparse;
  } else if (sparse_pair_skewed(a.tids_.size(), b.tids_.size())) {
    if (std::min(a.tids_.size(), b.tids_.size()) < minsup) {
      if (stats != nullptr) {
        ++stats->gallop_calls;
        ++stats->short_circuited;
      }
      return false;
    }
    gallop_into_dispatch(a.tids_, b.tids_, out.tids_, vp, stats);
    out.rep_ = TidRep::kSparse;
    ok = out.tids_.size() >= minsup;
    if (stats != nullptr) {
      ++stats->gallop_calls;
      stats->tids_scanned += visited;
    }
  } else if (minsup > 1) {
    ok = intersect_short_circuit_into(a.tids_, b.tids_, minsup, out.tids_,
                                      vp);
    out.rep_ = TidRep::kSparse;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
      if (!ok) ++stats->short_circuited;
    }
  } else {
    // Bound bookkeeping cannot pay off at minsup <= 1: plain merge.
    intersect_into(a.tids_, b.tids_, out.tids_, vp);
    out.rep_ = TidRep::kSparse;
    ok = out.tids_.size() >= minsup;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
    }
  }
  if (ok) out.normalize(universe, stats);
  return ok;
}

std::optional<Count> intersect_support(const TidSet& a, const TidSet& b,
                                       Count minsup, IntersectKernel kernel,
                                       IntersectStats* stats) {
  if (stats != nullptr) {
    ++stats->intersections;
    ++stats->count_only;
  }
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  std::optional<Count> result;
  switch (kernel) {
    case IntersectKernel::kMerge: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      // minsup 0 disarms the bound: a full scan, checked afterwards.
      const std::optional<Count> count =
          intersect_count_bounded(a.tids_, b.tids_, 0, vp);
      result = (count && *count >= minsup) ? count : std::nullopt;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return result;
    }
    case IntersectKernel::kMergeShortCircuit: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      result = intersect_count_bounded(a.tids_, b.tids_, minsup, vp);
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
        if (!result) ++stats->short_circuited;
      }
      return result;
    }
    case IntersectKernel::kGallop: {
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      const Count count = gallop_count_dispatch(a.tids_, b.tids_, vp, stats);
      result = count >= minsup ? std::optional<Count>(count) : std::nullopt;
      if (stats != nullptr) {
        ++stats->gallop_calls;
        stats->tids_scanned += visited;
      }
      return result;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.rep_ == TidRep::kDense && b.rep_ == TidRep::kDense);
      std::uint64_t words = 0;
      const std::optional<std::size_t> count = BitsetTidList::and_count(
          a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
      count_simd_words(stats);
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
        if (!count) ++stats->short_circuited;
      }
      if (!count) return std::nullopt;
      return static_cast<Count>(*count);
    }
    case IntersectKernel::kChunked: {
      ECLAT_DCHECK(a.rep_ == TidRep::kChunked && b.rep_ == TidRep::kChunked);
      const std::optional<std::size_t> count =
          ChunkedTidList::and_count(a.chunks_, b.chunks_, minsup, stats);
      if (stats != nullptr) ++stats->chunked_calls;
      if (!count) return std::nullopt;
      return static_cast<Count>(*count);
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  const bool a_dense = a.rep_ == TidRep::kDense;
  const bool b_dense = b.rep_ == TidRep::kDense;
  const bool a_chunked = a.rep_ == TidRep::kChunked;
  const bool b_chunked = b.rep_ == TidRep::kChunked;
  if (a_dense && b_dense) {
    std::uint64_t words = 0;
    const std::optional<std::size_t> count = BitsetTidList::and_count(
        a.bits_, b.bits_, minsup, stats != nullptr ? &words : nullptr);
    count_simd_words(stats);
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
      if (!count) ++stats->short_circuited;
    }
    if (!count) return std::nullopt;
    return static_cast<Count>(*count);
  }
  if (a_chunked && b_chunked) {
    const std::optional<std::size_t> count =
        ChunkedTidList::and_count(a.chunks_, b.chunks_, minsup, stats);
    if (stats != nullptr) ++stats->chunked_calls;
    if (!count) return std::nullopt;
    return static_cast<Count>(*count);
  }
  if ((a_chunked && b_dense) || (a_dense && b_chunked)) {
    const TidSet& chunked = a_chunked ? a : b;
    const TidSet& dense = a_chunked ? b : a;
    const std::optional<std::size_t> count = ChunkedTidList::and_count_bits(
        chunked.chunks_, dense.bits_, minsup, stats);
    if (stats != nullptr) ++stats->chunked_calls;
    if (!count) return std::nullopt;
    return static_cast<Count>(*count);
  }
  if (a.rep_ != b.rep_) {
    const TidSet& sparse = a.rep_ == TidRep::kSparse ? a : b;
    const TidSet& other = a.rep_ == TidRep::kSparse ? b : a;
    if (other.rep_ == TidRep::kDense) {
      return probe_count(sparse.tids_, other.bits_, minsup, stats);
    }
    if (stats != nullptr) ++stats->chunked_calls;
    const std::optional<std::size_t> count = ChunkedTidList::and_sparse_count(
        other.chunks_, sparse.tids_, minsup, stats);
    if (!count) return std::nullopt;
    return static_cast<Count>(*count);
  }
  if (sparse_pair_skewed(a.tids_.size(), b.tids_.size())) {
    if (std::min(a.tids_.size(), b.tids_.size()) < minsup) {
      if (stats != nullptr) {
        ++stats->gallop_calls;
        ++stats->short_circuited;
      }
      return std::nullopt;
    }
    const Count count = gallop_count_dispatch(a.tids_, b.tids_, vp, stats);
    result = count >= minsup ? std::optional<Count>(count) : std::nullopt;
    if (stats != nullptr) {
      ++stats->gallop_calls;
      stats->tids_scanned += visited;
    }
    return result;
  }
  result = intersect_count_bounded(a.tids_, b.tids_, minsup, vp);
  if (stats != nullptr) {
    ++stats->merge_calls;
    stats->tids_scanned += visited;
    if (!result) ++stats->short_circuited;
  }
  return result;
}

bool difference_into(const TidSet& a, const TidSet& b, std::size_t budget,
                     IntersectKernel kernel, Tid universe, TidSet& out,
                     IntersectStats* stats) {
  ECLAT_DCHECK(&out != &a && &out != &b);
  std::size_t visited = 0;
  std::size_t* const vp = stats != nullptr ? &visited : nullptr;
  bool ok = false;
  switch (kernel) {
    case IntersectKernel::kMerge:
    case IntersectKernel::kMergeShortCircuit:
    case IntersectKernel::kGallop: {
      // The budget bound is dEclat's algorithmic pruning rule, not an
      // optional optimization, so every sparse kernel keeps it (galloping
      // has no difference analogue and falls back to the merge).
      ECLAT_DCHECK(a.rep_ == TidRep::kSparse && b.rep_ == TidRep::kSparse);
      ok = difference_bounded_into(a.tids_, b.tids_, budget, out.tids_, vp);
      out.rep_ = TidRep::kSparse;
      if (stats != nullptr) {
        ++stats->merge_calls;
        stats->tids_scanned += visited;
      }
      return ok;
    }
    case IntersectKernel::kBitset: {
      ECLAT_DCHECK(a.rep_ == TidRep::kDense && b.rep_ == TidRep::kDense);
      std::uint64_t words = 0;
      ok = out.bits_.assign_andnot_bounded(
          a.bits_, b.bits_, budget, stats != nullptr ? &words : nullptr);
      out.rep_ = TidRep::kDense;
      count_simd_words(stats);
      if (stats != nullptr) {
        ++stats->bitset_calls;
        stats->words_scanned += words;
      }
      return ok;
    }
    case IntersectKernel::kChunked: {
      ECLAT_DCHECK(a.rep_ == TidRep::kChunked && b.rep_ == TidRep::kChunked);
      ok = out.chunks_.assign_andnot_bounded(a.chunks_, b.chunks_, budget,
                                             stats);
      out.rep_ = TidRep::kChunked;
      if (stats != nullptr) ++stats->chunked_calls;
      return ok;
    }
    case IntersectKernel::kAuto:
      break;  // dispatched below
  }

  const TidRep ar = a.rep_;
  const TidRep br = b.rep_;
  if (ar == TidRep::kDense && br == TidRep::kDense) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_andnot_bounded(a.bits_, b.bits_, budget,
                                         stats != nullptr ? &words : nullptr);
    out.rep_ = TidRep::kDense;
    count_simd_words(stats);
    if (stats != nullptr) {
      ++stats->bitset_calls;
      stats->words_scanned += words;
    }
  } else if (ar == TidRep::kChunked && br == TidRep::kChunked) {
    ok = out.chunks_.assign_andnot_bounded(a.chunks_, b.chunks_, budget,
                                           stats);
    out.rep_ = TidRep::kChunked;
    if (stats != nullptr) ++stats->chunked_calls;
  } else if (ar == TidRep::kChunked && br == TidRep::kDense) {
    ok = out.chunks_.assign_andnot_bits_bounded(a.chunks_, b.bits_, budget,
                                                stats);
    out.rep_ = TidRep::kChunked;
    if (stats != nullptr) ++stats->chunked_calls;
  } else if (ar == TidRep::kChunked && br == TidRep::kSparse) {
    ok = out.chunks_.assign_minus_sparse(a.chunks_, b.tids_, budget, stats);
    out.rep_ = TidRep::kChunked;
    if (stats != nullptr) ++stats->chunked_calls;
  } else if (ar == TidRep::kDense && br == TidRep::kChunked) {
    // Copy the flat bitmap, then clear the chunked container's bits.
    out.bits_.assign_copy(a.bits_);
    const std::size_t cleared =
        b.chunks_.clear_words(out.bits_.mutable_words());
    out.bits_.set_count(a.bits_.count() - cleared);
    out.rep_ = TidRep::kDense;
    ok = out.bits_.count() <= budget;
    if (stats != nullptr) {
      ++stats->chunked_calls;
      stats->words_scanned += a.bits_.word_count();
    }
  } else if (ar == TidRep::kSparse && br != TidRep::kSparse) {
    if (br == TidRep::kDense) {
      ok = probe_minus_into(a.tids_, b.bits_, budget, out.tids_, stats);
    } else {
      ok = ChunkedTidList::sparse_minus(a.tids_, b.chunks_, budget,
                                        out.tids_, stats);
      if (stats != nullptr) ++stats->chunked_calls;
    }
    out.rep_ = TidRep::kSparse;
  } else if (ar == TidRep::kDense && br == TidRep::kSparse) {
    std::uint64_t words = 0;
    ok = out.bits_.assign_minus_sparse(a.bits_, b.tids_, budget,
                                       stats != nullptr ? &words : nullptr);
    out.rep_ = TidRep::kDense;
    if (stats != nullptr) {
      ++stats->probe_calls;
      stats->words_scanned += words;
      stats->tids_scanned += b.tids_.size();
    }
  } else {
    ok = difference_bounded_into(a.tids_, b.tids_, budget, out.tids_, vp);
    out.rep_ = TidRep::kSparse;
    if (stats != nullptr) {
      ++stats->merge_calls;
      stats->tids_scanned += visited;
    }
  }
  if (ok) out.normalize(universe, stats);
  return ok;
}

}  // namespace eclat
