// Roaring-style hybrid tid container: the tid universe is split into
// 2^16-tid chunks and each populated chunk independently picks the
// container that intersects fastest at its own local density —
//
//   array   sorted u16 list            (sparse chunks, STTNI intersect)
//   bitset  1024 words, one bit/tid    (dense chunks, SIMD word-AND)
//   run     sorted (start,last) pairs  (clustered chunks)
//
// so a mid-density tid-list no longer pays the all-or-nothing 1/64
// cliff of the flat sparse/dense split: its hot chunks go bitset, its
// cold ones stay array, and each chunk pair dispatches to the cheapest
// pairwise kernel (thresholds and derivation in DESIGN.md §5).
//
// Chunk-local thresholds (speed-oriented, not Roaring's space-oriented
// 4096): a chunk holding c of its 65536 tids becomes a bitset at
// c >= 1024 (local density 1/64 — where 8-words-per-iteration SIMD AND
// beats the 8-lane STTNI block merge), and a run container when
// 8 · runs <= c at assign time (intersection outputs rematerialize as
// array or bitset by cardinality; run structure is not recomputed on
// kernel outputs).
//
// Storage is pooled (one u16 pool, one word pool, one chunk-meta
// vector), and every assign/intersect reuses pool capacity, so a
// ChunkedTidList held in a TidArena slot stops allocating once warmed
// up — the same lifetime rule as TidList and BitsetTidList.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "vertical/bitset_tidlist.hpp"
#include "vertical/intersect_stats.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

class ChunkedTidList {
 public:
  enum class ContainerType : std::uint8_t { kArray, kBitset, kRun };

  /// Chunk counts by container type (bench reporting).
  struct ContainerHistogram {
    std::size_t array = 0;
    std::size_t bitset = 0;
    std::size_t run = 0;
  };

  ChunkedTidList() = default;

  /// Rebuild in place from a sorted tid-list over [0, universe),
  /// choosing each chunk's container by the local thresholds above.
  void assign(std::span<const Tid> tids, Tid universe);

  /// Rebuild from a flat word bitmap (count = its popcount) — the
  /// dense→chunked conversion path.
  void assign_from_words(std::span<const std::uint64_t> words, Tid universe,
                         std::size_t count);

  /// Empty container over `universe` (kernel output staging).
  void reset(Tid universe);

  Tid universe() const { return universe_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t chunk_count() const { return chunks_.size(); }
  ContainerHistogram histogram() const;
  /// Bytes held by the chunk directory and payload pools (capacities, for
  /// the exec memory budget).
  std::size_t memory_bytes() const {
    return chunks_.capacity() * sizeof(Chunk) +
           u16_pool_.capacity() * sizeof(std::uint16_t) +
           word_pool_.capacity() * sizeof(std::uint64_t);
  }

  bool test(Tid t) const;

  /// Decode to a sorted tid-list, appending to `out`.
  void append_to(TidList& out) const;
  TidList to_tidlist() const;

  /// OR this container's bits into a flat word bitmap (caller zeroes it
  /// first) — the chunked→dense conversion path.
  void write_words(std::span<std::uint64_t> words) const;

  /// Clear this container's bits from a flat word bitmap; returns how
  /// many set bits were cleared — the dense \ chunked kernel.
  std::size_t clear_words(std::span<std::uint64_t> words) const;

  /// this = a & b, short-circuiting (at chunk granularity) once the
  /// running count plus Σ min(|a_k|,|b_k|) over the remaining common
  /// chunks provably stays below `minsup`. Returns false iff aborted or
  /// below minsup (contents then unspecified). Requires matching
  /// universes; `this` must not alias a or b.
  bool assign_and_bounded(const ChunkedTidList& a, const ChunkedTidList& b,
                          Count minsup, IntersectStats* stats);

  /// Support-only AND with the same chunk-granular bound.
  static std::optional<std::size_t> and_count(const ChunkedTidList& a,
                                              const ChunkedTidList& b,
                                              Count minsup,
                                              IntersectStats* stats);

  /// this = a & ~b, aborting (at chunk granularity) once the running
  /// count exceeds `budget` (the diffset pruning bound). Returns false
  /// iff aborted.
  bool assign_andnot_bounded(const ChunkedTidList& a,
                             const ChunkedTidList& b, std::size_t budget,
                             IntersectStats* stats);

  // ---- Mixed-representation kernels (kAuto pairs a chunked operand
  // with the flat dense bitmap without converting either side; the
  // BitsetTidList's words are addressed per chunk key as a virtual
  // bitset chunk). ----

  /// this = a & b where b is a flat dense bitmap over the same universe.
  bool assign_and_bits_bounded(const ChunkedTidList& a,
                               const BitsetTidList& b, Count minsup,
                               IntersectStats* stats);

  /// Support-only variant of assign_and_bits_bounded.
  static std::optional<std::size_t> and_count_bits(const ChunkedTidList& a,
                                                   const BitsetTidList& b,
                                                   Count minsup,
                                                   IntersectStats* stats);

  /// this = a & ~b where b is a flat dense bitmap.
  bool assign_andnot_bits_bounded(const ChunkedTidList& a,
                                  const BitsetTidList& b, std::size_t budget,
                                  IntersectStats* stats);

  /// this = a \ b where b is a sorted tid-list.
  bool assign_minus_sparse(const ChunkedTidList& a, std::span<const Tid> b,
                           std::size_t budget, IntersectStats* stats);

  // ---- Sparse-list kernels (kAuto pairs a sorted tid-list with a
  // chunked operand without converting either side; the list is walked
  // chunk-slice by chunk-slice, so comparable-size pairs run a linear
  // merge per chunk instead of paying a per-element container search).
  // The result is at most as large as the sparse side, so it lands in a
  // TidList, not a chunked container. ----

  /// out = b ∩ a where b is a sorted tid-list. Short-circuits (at chunk
  /// granularity) once the running count plus the unscanned tail of b
  /// provably stays below `minsup`; returns false iff aborted or below
  /// minsup (out then unspecified).
  static bool and_sparse(const ChunkedTidList& a, std::span<const Tid> b,
                         Count minsup, TidList& out, IntersectStats* stats);

  /// Support-only variant of and_sparse.
  static std::optional<std::size_t> and_sparse_count(const ChunkedTidList& a,
                                                     std::span<const Tid> b,
                                                     Count minsup,
                                                     IntersectStats* stats);

  /// out = b \ a where b is a sorted tid-list (sparse minuend over a
  /// chunked subtrahend). Aborts (at chunk granularity) once out grows
  /// past `budget`; returns false iff aborted.
  static bool sparse_minus(std::span<const Tid> b, const ChunkedTidList& a,
                           std::size_t budget, TidList& out,
                           IntersectStats* stats);

  friend bool operator==(const ChunkedTidList& a, const ChunkedTidList& b) {
    return a.universe_ == b.universe_ && a.count_ == b.count_ &&
           a.to_tidlist() == b.to_tidlist();
  }

 private:
  struct Chunk {
    std::uint16_t key = 0;  ///< tid >> 16
    ContainerType type = ContainerType::kArray;
    std::uint32_t offset = 0;       ///< u16 pool (array: elements; run:
                                    ///< (start,last) pairs) or word pool
                                    ///< (bitset: kChunkWords words)
    std::uint32_t cardinality = 0;  ///< tids in this chunk
    std::uint32_t run_count = 0;    ///< runs (kRun only)
  };

  static constexpr std::size_t kChunkSpan = 1U << 16;
  static constexpr std::size_t kChunkWords = kChunkSpan / 64;
  /// Local-density 1/64 crossover: array→bitset at this cardinality.
  static constexpr std::size_t kBitsetChunkMin = 1024;
  /// Run container at assign time when 8·runs <= cardinality.
  static constexpr std::size_t kRunCompression = 8;
  /// STTNI compress stores 8 u16 lanes past the true result.
  static constexpr std::size_t kU16Slack = 8;

  std::span<const std::uint16_t> array_of(const Chunk& c) const;
  std::span<const std::uint16_t> runs_of(const Chunk& c) const;
  std::span<const std::uint64_t> words_of(const Chunk& c) const;

  // Output staging: stage_* grows the pool and returns the offset;
  // emit_* trims the pool to the true cardinality, converts the staged
  // payload to the cheaper container when it crossed a threshold
  // (kernel outputs choose array or bitset only — run structure is not
  // recomputed), appends the chunk, and accumulates count_. A staged
  // region must be emitted before the next stage_* call (the pools may
  // reallocate).
  std::uint32_t stage_u16(std::size_t capacity);
  void emit_array(std::uint16_t key, std::uint32_t offset, std::size_t card);
  std::uint32_t stage_words();
  void emit_words(std::uint16_t key, std::uint32_t offset, std::size_t card);

  /// Copy one chunk of another container verbatim into this one.
  void copy_chunk(const ChunkedTidList& src, const Chunk& c);

  // Pairwise chunk kernels (ca from a, cb from b, same key): intersect /
  // subtract into a freshly staged+emitted chunk of *this.
  void and_pair(const Chunk& ca, const ChunkedTidList& a, const Chunk& cb,
                const ChunkedTidList& b, IntersectStats* stats);
  static std::size_t and_pair_count(const Chunk& ca, const ChunkedTidList& a,
                                    const Chunk& cb, const ChunkedTidList& b,
                                    IntersectStats* stats);
  void andnot_pair(const Chunk& ca, const ChunkedTidList& a, const Chunk& cb,
                   const ChunkedTidList& b, IntersectStats* stats);

  // Chunk ∩/\ a raw word slice (a bitset chunk's payload or the
  // matching kChunkWords-slice of a flat dense bitmap).
  void and_chunk_words(const Chunk& ca, const ChunkedTidList& a,
                       std::span<const std::uint64_t> bw,
                       IntersectStats* stats);
  static std::size_t and_chunk_words_count(const Chunk& ca,
                                           const ChunkedTidList& a,
                                           std::span<const std::uint64_t> bw,
                                           IntersectStats* stats);
  void andnot_chunk_words(const Chunk& ca, const ChunkedTidList& a,
                          std::span<const std::uint64_t> bw,
                          IntersectStats* stats);

  /// ca \ {bn sorted in-chunk u16 values, get(i) yielding the i-th} into
  /// a staged+emitted chunk. Templated on the accessor so the subtrahend
  /// can be an array chunk (u16) or a slice of a flat tid-list (u32)
  /// without a conversion buffer. Defined in the .cpp (only used there).
  template <typename Get>
  void andnot_chunk_sparse(const Chunk& ca, const ChunkedTidList& a,
                           std::size_t bn, const Get& get,
                           IntersectStats* stats);

  std::vector<Chunk> chunks_;            // sorted by key
  std::vector<std::uint16_t> u16_pool_;  // array elements + run pairs
  std::vector<std::uint64_t> word_pool_;  // bitset chunk payloads
  Tid universe_ = 0;
  std::size_t count_ = 0;
};

}  // namespace eclat
