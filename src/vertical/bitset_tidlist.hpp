// Dense bitset representation of a tid-list: one bit per transaction over
// a fixed tid universe, packed into 64-bit words. The intersection of two
// bitsets is a word-wise AND with a running popcount — branch-free, eight
// tids per byte, and the compiler vectorizes the loop (see ECLAT_NATIVE).
// This is the "vertical bitmap" kernel of the many-core FIM literature
// (PAPERS.md: Zymbler), profitable once a list's density over the universe
// exceeds ~1/128 (see TidSet for the adaptive selection rule).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "vertical/tidlist.hpp"

namespace eclat {

class BitsetTidList {
 public:
  BitsetTidList() = default;

  /// Rebuild in place from a sorted tid-list over [0, universe). The word
  /// buffer's capacity is reused, so repeated assigns into the same object
  /// (the arena pattern) do not allocate once warmed up.
  void assign(std::span<const Tid> tids, Tid universe);

  /// Resize to `universe` bits, all clear (kernel output staging).
  void reset(Tid universe);

  Tid universe() const { return universe_; }
  std::size_t count() const { return count_; }  ///< cached popcount
  bool empty() const { return count_ == 0; }
  /// Bytes held by the word buffer (capacity, not size: this feeds the
  /// exec memory budget, which accounts for retained allocations).
  std::size_t memory_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }
  std::span<const std::uint64_t> words() const { return words_; }
  std::size_t word_count() const { return words_.size(); }

  bool test(Tid t) const {
    return t < universe_ &&
           (words_[t >> 6] >> (t & 63) & std::uint64_t{1}) != 0;
  }

  /// Decode to a sorted tid-list, appending to `out`.
  void append_to(TidList& out) const;
  TidList to_tidlist() const;

  /// this = a & b (exact). Requires a and b over the same universe.
  /// Returns the popcount of the result.
  std::size_t assign_and(const BitsetTidList& a, const BitsetTidList& b);

  /// Short-circuited AND (the bitset analogue of the paper's §5.3 bound):
  /// aborts as soon as the running popcount plus 64·(words remaining)
  /// provably stays below `minsup`. Returns false iff aborted (contents
  /// are then unspecified); `words_scanned`, when given, accumulates the
  /// number of words actually ANDed either way.
  bool assign_and_bounded(const BitsetTidList& a, const BitsetTidList& b,
                          Count minsup, std::uint64_t* words_scanned);

  /// Support-only AND: the popcount of a & b without materializing it,
  /// with the same short-circuit bound (nullopt iff provably < minsup).
  static std::optional<std::size_t> and_count(const BitsetTidList& a,
                                              const BitsetTidList& b,
                                              Count minsup,
                                              std::uint64_t* words_scanned);

  /// this = a & ~b, aborting once the running popcount exceeds `budget`
  /// (the diffset pruning bound: a difference larger than
  /// sup(parent) − minsup cannot yield a frequent child). Returns false
  /// iff aborted. Requires a and b over the same universe.
  bool assign_andnot_bounded(const BitsetTidList& a, const BitsetTidList& b,
                             std::size_t budget,
                             std::uint64_t* words_scanned);

  /// this = a with the bits of the sorted list `tids` cleared, i.e.
  /// a \ tids. Returns false iff the result exceeds `budget` bits.
  bool assign_minus_sparse(const BitsetTidList& a, std::span<const Tid> tids,
                           std::size_t budget,
                           std::uint64_t* words_scanned);

  // ---- Kernel staging access (the chunked container's conversion and
  // mixed-representation kernels write this bitmap directly): callers
  // that mutate the word buffer must restore the count/word invariant
  // with set_count before the object is used as a tid-list again. ----

  /// The flat word buffer, mutable.
  std::span<std::uint64_t> mutable_words() { return words_; }

  /// Overwrite the cached popcount after direct word mutation.
  void set_count(std::size_t count) { count_ = count; }

  /// this = src (words, universe, count), reusing this object's buffer.
  void assign_copy(const BitsetTidList& src) {
    universe_ = src.universe_;
    words_ = src.words_;
    count_ = src.count_;
  }

  friend bool operator==(const BitsetTidList&,
                         const BitsetTidList&) = default;

 private:
  std::vector<std::uint64_t> words_;
  Tid universe_ = 0;
  std::size_t count_ = 0;
};

}  // namespace eclat
