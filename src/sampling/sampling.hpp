// Sample-based association mining — the papers' companion line of work
// (reference [17] is the authors' own "Evaluation of Sampling for Data
// Mining of Association Rules"; [15] is Toivonen's exact sampling
// algorithm, VLDB 1996). The paper's §1.2 positions both as the other way
// to beat Apriori's I/O bill: mine a random sample in memory instead of
// scanning the full database repeatedly.
//
// Two modes are implemented:
//   * plain sampling [17]: mine the sample at a (slightly lowered)
//     support and report the result as an approximation; the module also
//     measures its precision/recall against full-database mining;
//   * Toivonen's algorithm [15]: mine the sample at a lowered support,
//     then make ONE full-database pass counting the sample-frequent
//     itemsets AND their negative border. If no border itemset turns out
//     globally frequent, the (exactly counted) result is provably
//     complete; otherwise a miss is reported (the caller re-runs with a
//     bigger sample or lower sampling support).
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "data/horizontal.hpp"

namespace eclat::sampling {

struct SampleConfig {
  double sample_fraction = 0.1;  ///< fraction of transactions drawn
  /// Mining support applied to the *sample*, as a fraction of the
  /// original relative support (< 1 lowers the bar to reduce false
  /// negatives, as [15] prescribes).
  double support_scale = 0.8;
  std::uint64_t seed = 7;
};

/// Draw a uniform random sample of transactions (without replacement,
/// original tids preserved).
HorizontalDatabase draw_sample(const HorizontalDatabase& db,
                               double fraction, Rng& rng);

/// Accuracy of an approximate result against the exact one.
struct Accuracy {
  std::size_t exact_itemsets = 0;
  std::size_t approx_itemsets = 0;
  std::size_t true_positives = 0;
  double precision = 0.0;  ///< TP / approx
  double recall = 0.0;     ///< TP / exact
};

Accuracy compare(const MiningResult& exact, const MiningResult& approx);

/// Plain sample mining [17]: mine the sample, rescale supports to the
/// full-database scale (rounded), one database scan total (the sample
/// draw).
MiningResult sample_mine(const HorizontalDatabase& db, double min_support,
                         const SampleConfig& config);

/// Toivonen's exact algorithm [15].
struct ToivonenOutcome {
  MiningResult result;        ///< exact when `certified`
  bool certified = false;     ///< no negative-border miss detected
  std::size_t border_size = 0;       ///< negative-border candidates checked
  std::size_t border_failures = 0;   ///< border itemsets found frequent
  std::size_t database_scans = 0;    ///< 1 (sample) + 1 (verification)
};

ToivonenOutcome toivonen_mine(const HorizontalDatabase& db,
                              double min_support,
                              const SampleConfig& config);

/// The negative border of an itemset collection: minimal itemsets NOT in
/// the collection whose every proper subset is (computed level-wise via
/// the candidate join). Exposed for tests.
std::vector<Itemset> negative_border(const std::vector<Itemset>& frequent,
                                     Item num_items);

}  // namespace eclat::sampling
