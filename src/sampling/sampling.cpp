#include "sampling/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "apriori/candidate_gen.hpp"
#include "eclat/eclat_seq.hpp"
#include "hashtree/hash_tree.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::sampling {

HorizontalDatabase draw_sample(const HorizontalDatabase& db, double fraction,
                               Rng& rng) {
  const std::size_t want = std::min(
      db.size(),
      static_cast<std::size_t>(std::llround(
          fraction * static_cast<double>(db.size()))));
  // Partial Fisher-Yates over the index space, then restore tid order.
  std::vector<std::size_t> indexes(db.size());
  std::iota(indexes.begin(), indexes.end(), 0);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng.below(indexes.size() - i);
    std::swap(indexes[i], indexes[j]);
  }
  indexes.resize(want);
  std::sort(indexes.begin(), indexes.end());

  std::vector<Transaction> transactions;
  transactions.reserve(want);
  for (std::size_t index : indexes) transactions.push_back(db[index]);
  return HorizontalDatabase(std::move(transactions), db.num_items());
}

Accuracy compare(const MiningResult& exact, const MiningResult& approx) {
  ItemsetSet exact_set;
  for (const FrequentItemset& f : exact.itemsets) exact_set.insert(f.items);
  Accuracy accuracy;
  accuracy.exact_itemsets = exact.itemsets.size();
  accuracy.approx_itemsets = approx.itemsets.size();
  for (const FrequentItemset& f : approx.itemsets) {
    if (exact_set.count(f.items) != 0) ++accuracy.true_positives;
  }
  accuracy.precision =
      approx.itemsets.empty()
          ? 1.0
          : static_cast<double>(accuracy.true_positives) /
                static_cast<double>(approx.itemsets.size());
  accuracy.recall = exact.itemsets.empty()
                        ? 1.0
                        : static_cast<double>(accuracy.true_positives) /
                              static_cast<double>(exact.itemsets.size());
  return accuracy;
}

MiningResult sample_mine(const HorizontalDatabase& db, double min_support,
                         const SampleConfig& config) {
  Rng rng(config.seed);
  const HorizontalDatabase sample =
      draw_sample(db, config.sample_fraction, rng);
  MiningResult result;
  result.database_scans = 1;  // the sampling pass
  if (sample.empty()) return result;

  EclatConfig mine_config;
  // Floor at 2: a support-1 threshold makes *every* itemset of some
  // transaction "frequent" and the sample lattice explodes.
  mine_config.minsup = std::max<Count>(
      2, absolute_support(min_support * config.support_scale,
                          sample.size()));
  const MiningResult sampled = eclat_sequential(sample, mine_config);

  // Keep itemsets whose estimated relative support clears the original
  // threshold; report supports scaled up to the full database.
  const double scale = static_cast<double>(db.size()) /
                       static_cast<double>(sample.size());
  for (const FrequentItemset& f : sampled.itemsets) {
    const double estimate = static_cast<double>(f.support) /
                            static_cast<double>(sample.size());
    if (estimate >= min_support) {
      result.itemsets.push_back(FrequentItemset{
          f.items,
          static_cast<Count>(
              std::llround(static_cast<double>(f.support) * scale))});
    }
  }
  normalize(result);
  return result;
}

std::vector<Itemset> negative_border(const std::vector<Itemset>& frequent,
                                     Item num_items) {
  // Split by size.
  std::size_t max_size = 0;
  for (const Itemset& itemset : frequent) {
    max_size = std::max(max_size, itemset.size());
  }
  std::vector<std::vector<Itemset>> by_level(max_size + 1);
  ItemsetSet members(frequent.begin(), frequent.end());
  for (const Itemset& itemset : frequent) {
    by_level[itemset.size()].push_back(itemset);
  }
  for (auto& level : by_level) std::sort(level.begin(), level.end(),
                                         lex_less);

  std::vector<Itemset> border;
  // Level 1: every absent singleton (its only proper subset, the empty
  // set, is trivially frequent).
  for (Item item = 0; item < num_items; ++item) {
    if (members.find({item}) == members.end()) border.push_back({item});
  }
  // Level k: candidates from the frequent (k-1)-level whose every
  // (k-1)-subset is frequent but that are not frequent themselves.
  for (std::size_t k = 2; k <= max_size + 1; ++k) {
    if (k - 1 >= by_level.size() || by_level[k - 1].empty()) break;
    std::vector<Itemset> candidates =
        generate_candidates(by_level[k - 1], k >= 3);
    for (Itemset& candidate : candidates) {
      if (members.find(candidate) == members.end()) {
        border.push_back(std::move(candidate));
      }
    }
  }
  return border;
}

ToivonenOutcome toivonen_mine(const HorizontalDatabase& db,
                              double min_support,
                              const SampleConfig& config) {
  ToivonenOutcome outcome;
  Rng rng(config.seed);
  const HorizontalDatabase sample =
      draw_sample(db, config.sample_fraction, rng);
  outcome.database_scans = 1;
  if (sample.empty() || db.empty()) {
    outcome.certified = db.empty();
    return outcome;
  }

  EclatConfig mine_config;
  mine_config.minsup = std::max<Count>(
      2, absolute_support(min_support * config.support_scale,
                          sample.size()));
  const MiningResult sampled = eclat_sequential(sample, mine_config);

  std::vector<Itemset> candidates;
  candidates.reserve(sampled.itemsets.size());
  for (const FrequentItemset& f : sampled.itemsets) {
    candidates.push_back(f.items);
  }
  std::vector<Itemset> border = negative_border(candidates, db.num_items());
  outcome.border_size = border.size();

  // One exact full-database pass over candidates + border. Sizes 1 and 2
  // (which dominate the negative border) are counted with flat arrays —
  // items and the triangular pair counter — and only sizes >= 3 need hash
  // trees. All of it is one physical scan.
  std::size_t max_size = 0;
  for (const Itemset& itemset : candidates) {
    max_size = std::max(max_size, itemset.size());
  }
  for (const Itemset& itemset : border) {
    max_size = std::max(max_size, itemset.size());
  }
  std::vector<HashTree> trees;  // tree t counts (t + 3)-itemsets
  for (std::size_t k = 3; k <= max_size; ++k) trees.emplace_back(k);
  ItemsetSet border_set(border.begin(), border.end());
  for (const std::vector<Itemset>* group : {&candidates, &border}) {
    for (const Itemset& itemset : *group) {
      if (itemset.size() >= 3) trees[itemset.size() - 3].insert(itemset);
    }
  }
  std::vector<Count> item_counts(db.num_items(), 0);
  TriangleCounter pair_counts(std::max<Item>(db.num_items(), 2));
  for (const Transaction& t : db.transactions()) {
    for (Item item : t.items) ++item_counts[item];
    // Counting all pairs (not only the candidate ones) costs O(|T|^2)
    // per transaction but avoids a hash probe per candidate pair.
    pair_counts.count(std::span<const Transaction>(&t, 1));
    for (HashTree& tree : trees) tree.count_transaction(t);
  }
  ++outcome.database_scans;

  const Count minsup = absolute_support(min_support, db.size());
  const auto deliver = [&](const Itemset& items, Count support) {
    if (support < minsup) return;
    if (border_set.count(items) != 0) {
      ++outcome.border_failures;  // a frequent itemset escaped the sample
    }
    outcome.result.itemsets.push_back(FrequentItemset{items, support});
  };
  for (const std::vector<Itemset>* group : {&candidates, &border}) {
    for (const Itemset& itemset : *group) {
      if (itemset.size() == 1) {
        deliver(itemset, item_counts[itemset[0]]);
      } else if (itemset.size() == 2) {
        deliver(itemset, pair_counts.get(itemset[0], itemset[1]));
      }
    }
  }
  for (HashTree& tree : trees) {
    tree.for_each([&](const Candidate& candidate) {
      deliver(candidate.items, candidate.count);
    });
  }
  outcome.certified = outcome.border_failures == 0;
  outcome.result.database_scans = outcome.database_scans;
  normalize(outcome.result);
  return outcome;
}

}  // namespace eclat::sampling
