#include "gen/quest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eclat::gen {

QuestGenerator::QuestGenerator(const QuestConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.num_items == 0) {
    throw std::invalid_argument("num_items must be positive");
  }
  if (config_.num_patterns == 0) {
    throw std::invalid_argument("num_patterns must be positive");
  }
  if (config_.avg_pattern_length < 1.0 ||
      config_.avg_transaction_length < 1.0) {
    throw std::invalid_argument("average lengths must be >= 1");
  }

  // Build the pattern pool L.
  patterns_.reserve(config_.num_patterns);
  Itemset previous;
  double weight_sum = 0.0;
  for (std::size_t p = 0; p < config_.num_patterns; ++p) {
    Pattern pattern;
    pattern.items = draw_pattern_items(previous);
    pattern.weight = rng_.exponential(1.0);
    pattern.corruption = std::clamp(
        config_.corruption_mean + config_.corruption_sd * rng_.normal(), 0.0,
        1.0);
    weight_sum += pattern.weight;
    previous = pattern.items;
    patterns_.push_back(std::move(pattern));
  }

  // Normalize weights and precompute the cumulative distribution used for
  // weighted pattern selection.
  cumulative_weights_.reserve(patterns_.size());
  double cumulative = 0.0;
  for (Pattern& pattern : patterns_) {
    pattern.weight /= weight_sum;
    cumulative += pattern.weight;
    cumulative_weights_.push_back(cumulative);
  }
  cumulative_weights_.back() = 1.0;  // guard against rounding
}

Itemset QuestGenerator::draw_pattern_items(const Itemset& previous) {
  // Pattern length: Poisson with mean |I|, at least 1, at most N.
  std::size_t length = static_cast<std::size_t>(
      rng_.poisson(config_.avg_pattern_length));
  length = std::clamp<std::size_t>(length, 1, config_.num_items);

  Itemset items;
  items.reserve(length);

  // A fraction of items (exponential with mean `correlation`, capped at 1)
  // is inherited from the previously generated pattern.
  if (!previous.empty()) {
    const double fraction =
        std::min(1.0, rng_.exponential(config_.correlation));
    std::size_t inherit = std::min(
        previous.size(),
        static_cast<std::size_t>(std::lround(fraction * length)));
    // Reservoir-style pick of `inherit` distinct items from `previous`.
    Itemset pool = previous;
    for (std::size_t i = 0; i < inherit; ++i) {
      const std::size_t j = i + rng_.below(pool.size() - i);
      std::swap(pool[i], pool[j]);
      items.push_back(pool[i]);
    }
  }

  // The rest are uniform random items, avoiding duplicates.
  while (items.size() < length) {
    const Item candidate = static_cast<Item>(rng_.below(config_.num_items));
    if (std::find(items.begin(), items.end(), candidate) == items.end()) {
      items.push_back(candidate);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

std::size_t QuestGenerator::pick_pattern_index() {
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), u);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_weights_.begin()),
      patterns_.size() - 1);
}

Itemset QuestGenerator::corrupt(const Pattern& pattern) {
  // Keep dropping a uniformly chosen item while a uniform draw stays below
  // the pattern's corruption level (VLDB'94 §4.1). At least one item is
  // always retained so corrupted inserts still make progress.
  Itemset items = pattern.items;
  while (items.size() > 1 && rng_.uniform() < pattern.corruption) {
    const std::size_t victim = rng_.below(items.size());
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return items;
}

HorizontalDatabase QuestGenerator::generate() {
  std::vector<Transaction> transactions;
  transactions.reserve(config_.num_transactions);

  // A pattern that overflowed the previous transaction's budget and was
  // deferred (the "assigned to the next transaction" half of the rule).
  Itemset carried;

  for (std::size_t t = 0; t < config_.num_transactions; ++t) {
    std::size_t budget = static_cast<std::size_t>(
        rng_.poisson(config_.avg_transaction_length));
    budget = std::clamp<std::size_t>(budget, 1, config_.num_items);

    Itemset basket;
    basket.reserve(budget + 8);

    auto insert_all = [&basket](const Itemset& items) {
      for (Item item : items) {
        if (std::find(basket.begin(), basket.end(), item) == basket.end()) {
          basket.push_back(item);
        }
      }
    };

    if (!carried.empty()) {
      insert_all(carried);
      carried.clear();
    }

    // With tiny configurations (few patterns over few items) the basket
    // can saturate below its budget — every further draw only repeats
    // items already present. Give up after a run of non-productive draws.
    std::size_t stagnant_draws = 0;
    while (basket.size() < budget && stagnant_draws < 16) {
      const Pattern& pattern = patterns_[pick_pattern_index()];
      Itemset instance = corrupt(pattern);
      if (basket.size() + instance.size() > budget && !basket.empty()) {
        // Overflow: add anyway half the time, defer otherwise.
        if (rng_.uniform() < 0.5) {
          insert_all(instance);
        } else {
          carried = std::move(instance);
        }
        break;
      }
      const std::size_t before = basket.size();
      insert_all(instance);
      stagnant_draws = basket.size() == before ? stagnant_draws + 1 : 0;
    }

    std::sort(basket.begin(), basket.end());
    transactions.push_back(
        Transaction{static_cast<Tid>(t), std::move(basket)});
  }

  return HorizontalDatabase(std::move(transactions), config_.num_items);
}

HorizontalDatabase t10_i6(std::size_t num_transactions, std::uint64_t seed) {
  QuestConfig config;
  config.num_transactions = num_transactions;
  config.seed = seed;
  return QuestGenerator(config).generate();
}

std::string database_name(const QuestConfig& config) {
  auto round_int = [](double v) {
    return std::to_string(static_cast<long long>(std::lround(v)));
  };
  // Built with += rather than chained operator+ — GCC 12's -Wrestrict
  // false-positives on the inlined char_traits copies of the chain.
  std::string name = "T";
  name += round_int(config.avg_transaction_length);
  name += ".I";
  name += round_int(config.avg_pattern_length);
  name += ".D";
  const std::size_t d = config.num_transactions;
  if (d % 1'000'000 == 0 && d > 0) {
    name += std::to_string(d / 1'000'000) + "M";
  } else if (d % 1'000 == 0 && d > 0) {
    name += std::to_string(d / 1'000) + "K";
  } else {
    name += std::to_string(d);
  }
  return name;
}

}  // namespace eclat::gen
