// From-scratch reimplementation of the IBM Quest synthetic basket-data
// generator described in Agrawal & Srikant, "Fast Algorithms for Mining
// Association Rules" (VLDB 1994), §4.1 — the generator behind the
// T10.I6.DxK databases used in the paper's evaluation (Table 1).
//
// Model recap:
//   - A pool of |L| "maximal potentially frequent itemsets" (patterns) is
//     drawn first. Pattern sizes are Poisson with mean |I|; consecutive
//     patterns share a fraction of items (exponential with mean equal to
//     the correlation level) to model cross-pattern correlation; each
//     pattern carries a weight (exponential, normalized to a probability)
//     and a corruption level (normal, mean 0.5, variance 0.1).
//   - Each transaction draws its size from Poisson with mean |T| and is
//     filled by repeatedly picking a pattern by weight, corrupting it
//     (items are dropped while a uniform draw stays below the corruption
//     level), and inserting the surviving items. If a pattern does not fit
//     in the remaining budget it is added anyway half the time and deferred
//     to the next transaction otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "data/horizontal.hpp"

namespace eclat::gen {

/// Generator parameters. Defaults are the paper's published settings
/// (N = 1000 items, |L| = 2000 patterns, T10.I6).
struct QuestConfig {
  std::size_t num_transactions = 100'000;  ///< |D|
  double avg_transaction_length = 10.0;    ///< |T|
  double avg_pattern_length = 6.0;         ///< |I|
  Item num_items = 1000;                   ///< N
  std::size_t num_patterns = 2000;         ///< |L|
  double correlation = 0.5;     ///< mean shared fraction between patterns
  double corruption_mean = 0.5; ///< mean of per-pattern corruption level
  double corruption_sd = 0.1;   ///< std-dev of per-pattern corruption level
  std::uint64_t seed = 1997;    ///< RNG seed (databases are reproducible)
};

/// One potentially frequent pattern from the pool L.
struct Pattern {
  Itemset items;
  double weight = 0.0;      ///< selection probability (weights sum to 1)
  double corruption = 0.0;  ///< per-use item-drop probability
};

/// Streams transactions of a synthetic basket database.
class QuestGenerator {
 public:
  explicit QuestGenerator(const QuestConfig& config);

  /// Generate the full database described by the config.
  HorizontalDatabase generate();

  /// Pattern pool (exposed for tests and diagnostics).
  const std::vector<Pattern>& patterns() const { return patterns_; }

  const QuestConfig& config() const { return config_; }

 private:
  Itemset draw_pattern_items(const Itemset& previous);
  std::size_t pick_pattern_index();
  Itemset corrupt(const Pattern& pattern);

  QuestConfig config_;
  Rng rng_;
  std::vector<Pattern> patterns_;
  std::vector<double> cumulative_weights_;
};

/// Convenience: generate a database with the paper's T10.I6 parameters and
/// the given number of transactions (e.g. 800'000 for T10.I6.D800K).
HorizontalDatabase t10_i6(std::size_t num_transactions,
                          std::uint64_t seed = 1997);

/// Canonical database name used in the paper ("T10.I6.D800K" style).
std::string database_name(const QuestConfig& config);

}  // namespace eclat::gen
