// The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995) —
// the two-scan sequential baseline the paper's related-work section
// contrasts Eclat against (§1.2: "minimizes I/O by scanning the database
// only twice").
//
// Pass 1: split the database into memory-sized chunks and mine *each chunk
// completely* (here with in-memory Eclat at a proportionally scaled local
// support). Any globally frequent itemset is locally frequent in at least
// one chunk (pigeonhole on supports), so the union of local results is a
// superset of the answer.
// Pass 2: one more scan counts the global support of every candidate and
// filters by the true minimum support.
#pragma once

#include "common/result.hpp"
#include "data/horizontal.hpp"

namespace eclat {

struct PartitionConfig {
  Count minsup = 1;          ///< absolute global minimum support
  std::size_t chunks = 4;    ///< number of in-memory partitions
};

struct PartitionStats {
  std::size_t candidates = 0;       ///< union of locally frequent itemsets
  std::size_t false_positives = 0;  ///< candidates that failed pass 2
  std::size_t database_scans = 0;   ///< always 2
};

/// Mine all frequent itemsets with the Partition algorithm.
MiningResult partition_mine(const HorizontalDatabase& db,
                            const PartitionConfig& config,
                            PartitionStats* stats = nullptr);

/// The local minimum support for a chunk of `chunk_size` transactions so
/// that local frequency is implied by global frequency:
/// ceil(minsup * chunk_size / total), at least 1.
Count local_minsup(Count global_minsup, std::size_t chunk_size,
                   std::size_t total_size);

}  // namespace eclat
