#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>

#include "apriori/candidate_gen.hpp"
#include "eclat/eclat_seq.hpp"
#include "hashtree/hash_tree.hpp"

namespace eclat {

Count local_minsup(Count global_minsup, std::size_t chunk_size,
                   std::size_t total_size) {
  if (total_size == 0) return 1;
  const double scaled = static_cast<double>(global_minsup) *
                        static_cast<double>(chunk_size) /
                        static_cast<double>(total_size);
  const Count local = static_cast<Count>(std::ceil(scaled));
  return local == 0 ? 1 : local;
}

MiningResult partition_mine(const HorizontalDatabase& db,
                            const PartitionConfig& config,
                            PartitionStats* stats) {
  MiningResult result;
  if (db.empty()) return result;
  const std::size_t chunks = std::max<std::size_t>(1, config.chunks);

  // --- Pass 1: mine every chunk completely; union the local results. ---
  ItemsetSet candidates;
  const std::vector<Block> blocks = db.block_partition(chunks);
  for (const Block& block : blocks) {
    if (block.size() == 0) continue;
    const auto span = db.view(block);
    HorizontalDatabase chunk(
        std::vector<Transaction>(span.begin(), span.end()), db.num_items());
    EclatConfig local_config;
    local_config.minsup = local_minsup(config.minsup, block.size(),
                                       db.size());
    const MiningResult local = eclat_sequential(chunk, local_config);
    for (const FrequentItemset& f : local.itemsets) {
      candidates.insert(f.items);
    }
  }

  // --- Pass 2: one scan of the whole database counts every candidate.
  // Candidates are grouped by size into hash trees; the transaction loop
  // is on the outside, so this is a single physical pass. ---
  std::size_t max_size = 0;
  for (const Itemset& candidate : candidates) {
    max_size = std::max(max_size, candidate.size());
  }
  std::vector<HashTree> trees;
  trees.reserve(max_size);
  for (std::size_t k = 1; k <= max_size; ++k) {
    trees.emplace_back(k);
  }
  for (const Itemset& candidate : candidates) {
    trees[candidate.size() - 1].insert(candidate);
  }
  for (const Transaction& t : db.transactions()) {
    for (HashTree& tree : trees) tree.count_transaction(t);
  }

  std::size_t false_positives = 0;
  for (HashTree& tree : trees) {
    tree.for_each([&](const Candidate& candidate) {
      if (candidate.count >= config.minsup) {
        result.itemsets.push_back(
            FrequentItemset{candidate.items, candidate.count});
      } else {
        ++false_positives;
      }
    });
  }

  result.database_scans = 2;
  normalize(result);
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    result.levels.push_back(LevelStats{k, 0, result.count_of_size(k)});
  }
  if (stats) {
    stats->candidates = candidates.size();
    stats->false_positives = false_positives;
    stats->database_scans = 2;
  }
  return result;
}

}  // namespace eclat
