#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace eclat {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differ;
  }
  EXPECT_GT(differ, 30);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> buckets(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++buckets[rng.below(kBound)];
  for (int count : buckets) {
    EXPECT_NEAR(count, kSamples / static_cast<int>(kBound),
                kSamples / static_cast<int>(kBound) / 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.1);
}

TEST(Rng, PoissonSmallMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(6.0));
  }
  EXPECT_NEAR(sum / kSamples, 6.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(sum / kSamples, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(23);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double variance = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int differ = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next() != child.next()) ++differ;
  }
  EXPECT_GT(differ, 30);
}

}  // namespace
}  // namespace eclat
