// Deterministic fuzz harness for the ECLATHDB binary reader: mutated,
// truncated, and adversarial streams fed through read_binary must either
// parse or raise std::runtime_error — never crash (ASan/UBSan-verified in
// the asan-ubsan preset) and never allocate unbounded memory from a
// forged header count. Mirrors tests/test_wire_fuzz.cpp for the on-disk
// format instead of the wire format.
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/horizontal.hpp"
#include "data/io.hpp"

namespace eclat {
namespace {

std::string serialize(const HorizontalDatabase& db) {
  std::ostringstream out(std::ios::binary);
  write_binary(db, out);
  return out.str();
}

HorizontalDatabase parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return read_binary(in);
}

/// Small random database with the invariants write_binary expects:
/// strictly increasing duplicate-free items in [0, num_items).
HorizontalDatabase valid_db(Rng& rng) {
  const Item num_items = static_cast<Item>(4 + rng.below(60));
  std::vector<Transaction> transactions;
  const std::size_t rows = rng.below(12);
  for (std::size_t i = 0; i < rows; ++i) {
    Itemset items;
    for (Item item = 0; item < num_items; ++item) {
      if (rng.below(4) == 0) items.push_back(item);
    }
    transactions.push_back(Transaction{static_cast<Tid>(i), std::move(items)});
  }
  return HorizontalDatabase(std::move(transactions), num_items);
}

/// Apply one of: truncation, byte flips, or a splice of random bytes —
/// the same mutation model as the wire fuzzer.
std::string mutate(std::string bytes, Rng& rng) {
  switch (rng.below(3)) {
    case 0:  // truncate
      if (!bytes.empty()) bytes.resize(rng.below(bytes.size()));
      break;
    case 1: {  // flip up to 8 bytes
      if (bytes.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<char>(1 + rng.below(255));
      }
      break;
    }
    default: {  // splice random garbage at a random offset
      const std::size_t at = bytes.empty() ? 0 : rng.below(bytes.size());
      std::string garbage(rng.below(24), '\0');
      for (char& byte : garbage) {
        byte = static_cast<char>(rng.below(256));
      }
      bytes.insert(at, garbage);
      break;
    }
  }
  return bytes;
}

TEST(IoFuzz, MutatedStreamsNeverCrash) {
  Rng rng(0xECDB);
  for (int i = 0; i < 4000; ++i) {
    const std::string bytes = mutate(serialize(valid_db(rng)), rng);
    try {
      const HorizontalDatabase db = parse(bytes);
      // A mutation that survives parsing must still satisfy the reader's
      // own invariants — spot-check the strongest one.
      for (const Transaction& t : db.transactions()) {
        for (const Item item : t.items) ASSERT_LT(item, db.num_items());
      }
    } catch (const std::runtime_error&) {
      // Malformed input detected and rejected: exactly the contract.
    }
  }
}

TEST(IoFuzz, TruncationAtEveryByteBoundary) {
  Rng rng(42);
  const std::string bytes = serialize(valid_db(rng));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      (void)parse(bytes.substr(0, cut));
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(IoFuzz, ValidStreamsRoundTripUnmutated) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const HorizontalDatabase original = valid_db(rng);
    const HorizontalDatabase readback = parse(serialize(original));
    ASSERT_EQ(readback.num_items(), original.num_items());
    ASSERT_EQ(readback.size(), original.size());
    for (std::size_t t = 0; t < original.size(); ++t) {
      EXPECT_EQ(readback.transactions()[t].tid,
                original.transactions()[t].tid);
      EXPECT_EQ(readback.transactions()[t].items,
                original.transactions()[t].items);
    }
  }
}

// --- Forged headers: hostile counts must throw, never drive a large
// allocation up front. ---

/// Valid magic + version header followed by caller-chosen counts.
std::string forged_header(std::uint32_t num_items,
                          std::uint64_t num_transactions) {
  std::ostringstream out(std::ios::binary);
  out.write("ECLATHDB", 8);
  const std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&num_items), sizeof(num_items));
  out.write(reinterpret_cast<const char*>(&num_transactions),
            sizeof(num_transactions));
  return out.str();
}

TEST(IoFuzz, ForgedHugeTransactionCountIsRejectedNotAllocated) {
  // 2^64-1 claimed transactions with an empty body: the reserve must be
  // capped (no 100-exabyte allocation) and the first read must throw.
  const std::string bytes =
      forged_header(8, std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW((void)parse(bytes), std::runtime_error);
}

TEST(IoFuzz, ForgedHugeItemCountIsRejectedNotAllocated) {
  // One transaction claiming 2^32-1 items backed by nothing.
  std::string bytes = forged_header(8, 1);
  const Tid tid = 0;
  const std::uint32_t count = std::numeric_limits<std::uint32_t>::max();
  bytes.append(reinterpret_cast<const char*>(&tid), sizeof(tid));
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_THROW((void)parse(bytes), std::runtime_error);
}

TEST(IoFuzz, ItemOutOfDeclaredRangeIsRejected) {
  std::string bytes = forged_header(4, 1);
  const Tid tid = 0;
  const std::uint32_t count = 1;
  const Item item = 4;  // == num_items: first out-of-range value
  bytes.append(reinterpret_cast<const char*>(&tid), sizeof(tid));
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  bytes.append(reinterpret_cast<const char*>(&item), sizeof(item));
  EXPECT_THROW((void)parse(bytes), std::runtime_error);
}

TEST(IoFuzz, NonIncreasingItemsAreRejected) {
  std::string bytes = forged_header(8, 1);
  const Tid tid = 0;
  const std::uint32_t count = 2;
  const Item items[2] = {3, 3};  // duplicate: not strictly increasing
  bytes.append(reinterpret_cast<const char*>(&tid), sizeof(tid));
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  bytes.append(reinterpret_cast<const char*>(items), sizeof(items));
  EXPECT_THROW((void)parse(bytes), std::runtime_error);
}

TEST(IoFuzz, WrongMagicAndWrongVersionAreRejected) {
  Rng rng(3);
  std::string bytes = serialize(valid_db(rng));
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW((void)parse(wrong_magic), std::runtime_error);
  std::string wrong_version = bytes;
  wrong_version[8] = 99;
  EXPECT_THROW((void)parse(wrong_version), std::runtime_error);
  EXPECT_THROW((void)parse(std::string()), std::runtime_error);
}

}  // namespace
}  // namespace eclat
