#include "mc/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mc/memory_channel.hpp"
#include "mc/phase_barrier.hpp"
#include "mc/topology.hpp"

namespace eclat::mc {
namespace {

TEST(Topology, MapsProcessorsToHosts) {
  const Topology topology{4, 3};
  EXPECT_EQ(topology.total(), 12u);
  EXPECT_EQ(topology.host_of(0), 0u);
  EXPECT_EQ(topology.host_of(2), 0u);
  EXPECT_EQ(topology.host_of(3), 1u);
  EXPECT_EQ(topology.host_of(11), 3u);
  EXPECT_EQ(topology.slot_of(4), 1u);
  EXPECT_TRUE(topology.same_host(3, 5));
  EXPECT_FALSE(topology.same_host(2, 3));
  EXPECT_EQ(topology.label(), "P=3,H=4,T=12");
}

TEST(Topology, ValidateRejectsZeroDimensions) {
  EXPECT_THROW((Topology{0, 1}.validate()), std::invalid_argument);
  EXPECT_THROW((Topology{1, 0}.validate()), std::invalid_argument);
}

TEST(CostModel, MessageTimeScalesWithBytesAndDoubling) {
  CostModel cost;
  cost.write_doubling = false;
  const double small = cost.message_time(100);
  const double large = cost.message_time(1'000'000);
  EXPECT_GT(large, small);
  EXPECT_NEAR(small, cost.mc_latency + 100 / cost.link_bandwidth, 1e-12);

  CostModel doubled = cost;
  doubled.write_doubling = true;
  EXPECT_NEAR(doubled.message_time(1'000'000) - cost.mc_latency,
              2 * (cost.message_time(1'000'000) - cost.mc_latency), 1e-9);
}

TEST(CostModel, BarrierTimeGrowsLogarithmically) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.barrier_time(1), 0.0);
  EXPECT_DOUBLE_EQ(cost.barrier_time(2), cost.mc_latency);
  EXPECT_DOUBLE_EQ(cost.barrier_time(8), 3 * cost.mc_latency);
  EXPECT_DOUBLE_EQ(cost.barrier_time(32), 5 * cost.mc_latency);
}

TEST(CostModel, DiskContentionSlowsConcurrentScanners) {
  CostModel cost;
  const double alone = cost.disk_time(1'000'000, 1);
  const double crowded = cost.disk_time(1'000'000, 4);
  EXPECT_GT(crowded, alone);
  // With contention factor c, 4 scanners pay 1 + 3c times the transfer.
  const double transfer = 1'000'000 / cost.disk_bandwidth;
  EXPECT_NEAR(crowded - cost.disk_seek,
              transfer * (1 + 3 * cost.disk_contention), 1e-9);
}

TEST(PhaseBarrier, ReleasesAllAndRunsHookOnce) {
  PhaseBarrier barrier(4);
  std::atomic<int> hook_runs{0};
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        ++arrived;
        barrier.arrive_and_wait([&] { ++hook_runs; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hook_runs.load(), 10);
  EXPECT_EQ(arrived.load(), 40);
}

TEST(PhaseBarrier, RejectsZeroParticipants) {
  EXPECT_THROW(PhaseBarrier{0}, std::invalid_argument);
}

TEST(MemoryChannel, RegionRoundTrip) {
  MemoryChannel channel{CostModel{}};
  const auto region = channel.create_region(64);
  EXPECT_EQ(channel.region_size(region), 64u);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const double write_cost = channel.write(region, 8, data);
  EXPECT_GT(write_cost, 0.0);
  std::vector<std::uint8_t> out(4);
  channel.read(region, 8, out);
  EXPECT_EQ(out, data);
}

TEST(MemoryChannel, BoundsChecked) {
  MemoryChannel channel{CostModel{}};
  const auto region = channel.create_region(16);
  std::vector<std::uint8_t> data(17);
  EXPECT_THROW(channel.write(region, 0, data), std::out_of_range);
  std::vector<std::uint8_t> out(8);
  EXPECT_THROW(channel.read(region, 9, out), std::out_of_range);
}

TEST(MemoryChannel, TracksTraffic) {
  MemoryChannel channel{CostModel{}};
  const auto region = channel.create_region(1024);
  const std::vector<std::uint8_t> data(100);
  channel.write(region, 0, data);
  channel.write(region, 100, data);
  EXPECT_EQ(channel.total_bytes(), 200u);
  EXPECT_EQ(channel.total_messages(), 2u);
  EXPECT_EQ(channel.phase_hub_bytes(), 200u);
  channel.reset_phase();
  EXPECT_EQ(channel.phase_hub_bytes(), 0u);
  EXPECT_EQ(channel.total_bytes(), 200u);  // lifetime counter survives
}

TEST(Cluster, RunsBodyOncePerProcessor) {
  Cluster cluster(Topology{2, 2});
  std::vector<int> visits(4, 0);
  cluster.run([&](Processor& self) { ++visits[self.id()]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Cluster, ClocksStartAtZeroEachRun) {
  Cluster cluster(Topology{1, 2});
  cluster.run([](Processor& self) { self.advance(1.0); });
  EXPECT_NEAR(cluster.makespan(), 1.0, 1e-12);
  cluster.run([](Processor& self) { self.advance(0.25); });
  EXPECT_NEAR(cluster.makespan(), 0.25, 1e-12);
}

TEST(Cluster, BarrierSynchronizesClocksToMax) {
  Cluster cluster(Topology{1, 3});
  cluster.run([](Processor& self) {
    self.advance(static_cast<double>(self.id()));  // clocks 0, 1, 2
    self.barrier();
    // After the barrier everyone is at max + barrier cost.
    EXPECT_NEAR(self.now(), 2.0 + self.cost().barrier_time(3), 1e-9);
  });
}

TEST(Cluster, SumReduceProducesGlobalTotals) {
  Cluster cluster(Topology{2, 2});
  cluster.run([](Processor& self) {
    std::vector<Count> values = {self.id(), 10, 0};
    values[2] = self.id() * self.id();
    self.sum_reduce(values);
    EXPECT_EQ(values[0], 0u + 1 + 2 + 3);
    EXPECT_EQ(values[1], 40u);
    EXPECT_EQ(values[2], 0u + 1 + 4 + 9);
  });
}

TEST(Cluster, SumReduceAdvancesClocksIdentically) {
  Cluster cluster(Topology{1, 4});
  std::vector<double> after(4);
  cluster.run([&](Processor& self) {
    self.advance(0.5 * static_cast<double>(self.id()));
    std::vector<Count> values(100, 1);
    self.sum_reduce(values);
    after[self.id()] = self.now();
  });
  for (int p = 1; p < 4; ++p) EXPECT_DOUBLE_EQ(after[p], after[0]);
  EXPECT_GT(after[0], 1.5);  // at least the max input clock
}

TEST(Cluster, BroadcastDeliversRootPayload) {
  Cluster cluster(Topology{2, 2});
  cluster.run([](Processor& self) {
    Blob payload;
    if (self.id() == 1) payload = {9, 8, 7};
    const Blob received = self.broadcast(1, std::move(payload));
    EXPECT_EQ(received, (Blob{9, 8, 7}));
  });
}

TEST(Cluster, AllToAllRoutesPersonalizedPayloads) {
  Cluster cluster(Topology{2, 2});
  cluster.run([](Processor& self) {
    const std::size_t total = self.topology().total();
    std::vector<Blob> outgoing(total);
    for (std::size_t dst = 0; dst < total; ++dst) {
      outgoing[dst] = {static_cast<std::uint8_t>(self.id()),
                       static_cast<std::uint8_t>(dst)};
    }
    const std::vector<Blob> incoming = self.all_to_all(std::move(outgoing));
    ASSERT_EQ(incoming.size(), total);
    for (std::size_t src = 0; src < total; ++src) {
      EXPECT_EQ(incoming[src],
                (Blob{static_cast<std::uint8_t>(src),
                      static_cast<std::uint8_t>(self.id())}));
    }
  });
}

TEST(Cluster, AllToAllChargesMoreForMoreBytes) {
  const Topology topology{1, 4};
  double small_time = 0.0;
  double large_time = 0.0;
  for (const std::size_t payload : {std::size_t{100}, std::size_t{400000}}) {
    Cluster cluster(topology);
    cluster.run([&](Processor& self) {
      std::vector<Blob> outgoing(4, Blob(payload, 1));
      self.all_to_all(std::move(outgoing));
    });
    (payload == 100 ? small_time : large_time) = cluster.makespan();
  }
  EXPECT_GT(large_time, small_time * 10);
}

TEST(Cluster, AllGatherCollectsEveryPayload) {
  Cluster cluster(Topology{2, 2});
  cluster.run([](Processor& self) {
    const auto gathered =
        self.all_gather(Blob{static_cast<std::uint8_t>(self.id() + 100)});
    ASSERT_EQ(gathered.size(), 4u);
    for (std::size_t p = 0; p < 4; ++p) {
      EXPECT_EQ(gathered[p], Blob{static_cast<std::uint8_t>(p + 100)});
    }
  });
}

TEST(Cluster, CollectivesComposeOverManyRounds) {
  // Stress the publish/fold/consume discipline across repeated mixed
  // collectives: values must never bleed between rounds.
  Cluster cluster(Topology{2, 3});
  cluster.run([](Processor& self) {
    for (std::uint64_t round = 0; round < 25; ++round) {
      std::vector<Count> values = {self.id() + round};
      self.sum_reduce(values);
      EXPECT_EQ(values[0], 0u + 1 + 2 + 3 + 4 + 5 + 6 * round);

      const Blob received = self.broadcast(
          round % 6, Blob{static_cast<std::uint8_t>(round % 251)});
      EXPECT_EQ(received, Blob{static_cast<std::uint8_t>(round % 251)});

      std::vector<Blob> outgoing(6,
                                 Blob{static_cast<std::uint8_t>(self.id())});
      const auto incoming = self.all_to_all(std::move(outgoing));
      for (std::size_t src = 0; src < 6; ++src) {
        EXPECT_EQ(incoming[src], Blob{static_cast<std::uint8_t>(src)});
      }
    }
  });
}

TEST(Cluster, DiskReadChargesContention) {
  const std::size_t bytes = 10'000'000;
  double alone = 0.0;
  double crowded = 0.0;
  {
    Cluster cluster(Topology{4, 1});
    cluster.run([&](Processor& self) { self.disk_read(bytes); });
    alone = cluster.makespan();
  }
  {
    Cluster cluster(Topology{1, 4});
    cluster.run([&](Processor& self) { self.disk_read(bytes); });
    crowded = cluster.makespan();
  }
  EXPECT_GT(crowded, alone * 2);  // four scanners share one disk
}

TEST(Cluster, ComputeChargesScaledCpuTime) {
  Cluster cluster(Topology{1, 1});
  cluster.run([](Processor& self) {
    volatile double sink = 0.0;
    self.compute([&] {
      for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
    });
    EXPECT_GT(self.now(), 0.0);
  });
  EXPECT_GT(cluster.makespan(), 0.0);
}

TEST(Cluster, ComputeReturnsBodyResult) {
  Cluster cluster(Topology{1, 1});
  cluster.run([](Processor& self) {
    const int answer = self.compute([] { return 41 + 1; });
    EXPECT_EQ(answer, 42);
  });
}

TEST(Cluster, RegionWritesFeedHubAccounting) {
  Cluster cluster(Topology{1, 2});
  cluster.run([](Processor& self) {
    if (self.id() == 0) {
      auto region = self.channel().create_region(1024);
      std::vector<std::uint8_t> data(512, 7);
      self.region_write(region, 0, data);
      std::vector<std::uint8_t> out(512);
      self.region_read(region, 0, out);
      EXPECT_EQ(out, data);
    }
    self.barrier();
  });
  EXPECT_EQ(cluster.channel().total_bytes(), 512u);
}

TEST(Cluster, MakespanIsMaxClock) {
  Cluster cluster(Topology{1, 3});
  cluster.run([](Processor& self) {
    self.advance(self.id() == 2 ? 9.0 : 1.0);
  });
  EXPECT_DOUBLE_EQ(cluster.makespan(), 9.0);
}

}  // namespace
}  // namespace eclat::mc
