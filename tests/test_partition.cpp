#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(LocalMinsup, ScalesProportionally) {
  EXPECT_EQ(local_minsup(100, 250, 1000), 25u);
  EXPECT_EQ(local_minsup(100, 333, 1000), 34u);  // ceil(33.3)
  EXPECT_EQ(local_minsup(1, 10, 1000), 1u);      // floor at 1
  EXPECT_EQ(local_minsup(100, 1000, 1000), 100u);
  EXPECT_EQ(local_minsup(5, 0, 100), 1u);
}

TEST(Partition, MatchesAprioriOnHandmade) {
  PartitionConfig config;
  config.minsup = 4;
  config.chunks = 3;
  AprioriConfig reference_config;
  reference_config.minsup = 4;
  EXPECT_TRUE(same_itemsets(partition_mine(handmade_db(), config),
                            apriori(handmade_db(), reference_config)));
}

class PartitionChunksSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionChunksSweep, AnyChunkCountGivesSameAnswer) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig reference_config;
  reference_config.minsup = 6;
  const MiningResult reference = apriori(db, reference_config);

  PartitionConfig config;
  config.minsup = 6;
  config.chunks = GetParam();
  PartitionStats stats;
  const MiningResult result = partition_mine(db, config, &stats);
  EXPECT_TRUE(same_itemsets(result, reference)) << "chunks=" << GetParam();
  EXPECT_EQ(stats.database_scans, 2u);
  EXPECT_EQ(stats.candidates,
            result.itemsets.size() + stats.false_positives);
}

INSTANTIATE_TEST_SUITE_P(Chunks, PartitionChunksSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

TEST(Partition, SingleChunkHasNoFalsePositives) {
  const HorizontalDatabase db = small_quest_db();
  PartitionConfig config;
  config.minsup = 5;
  config.chunks = 1;
  PartitionStats stats;
  partition_mine(db, config, &stats);
  // One chunk: the local threshold equals the global one.
  EXPECT_EQ(stats.false_positives, 0u);
}

TEST(Partition, MoreChunksMeansMoreCandidates) {
  // Smaller chunks lower the local thresholds (relatively), admitting more
  // locally-frequent-only itemsets — the algorithm's known weakness on
  // skewed data.
  const HorizontalDatabase db = small_quest_db(600, 30, 5);
  std::size_t few = 0;
  std::size_t many = 0;
  for (const std::size_t chunks : {1u, 12u}) {
    PartitionConfig config;
    config.minsup = 8;
    config.chunks = chunks;
    PartitionStats stats;
    partition_mine(db, config, &stats);
    (chunks == 1 ? few : many) = stats.candidates;
  }
  EXPECT_GE(many, few);
}

TEST(Partition, TwoScansOnly) {
  PartitionConfig config;
  config.minsup = 4;
  const MiningResult result = partition_mine(handmade_db(), config);
  EXPECT_EQ(result.database_scans, 2u);
}

TEST(Partition, EmptyDatabase) {
  PartitionConfig config;
  config.minsup = 1;
  EXPECT_TRUE(partition_mine(HorizontalDatabase{}, config).itemsets.empty());
}

TEST(Partition, LocalFrequencyTheorem) {
  // Property behind pass 1: every globally frequent itemset is locally
  // frequent (at the scaled threshold) in at least one chunk.
  const HorizontalDatabase db = small_quest_db(500, 25, 11);
  const Count minsup = 10;
  AprioriConfig reference_config;
  reference_config.minsup = minsup;
  const MiningResult reference = apriori(db, reference_config);

  const std::size_t chunks = 5;
  const std::vector<Block> blocks = db.block_partition(chunks);
  for (const FrequentItemset& f : reference.itemsets) {
    bool locally_frequent_somewhere = false;
    for (const Block& block : blocks) {
      Count local = 0;
      for (const Transaction& t : db.view(block)) {
        if (is_subset(f.items, t.items)) ++local;
      }
      if (local >= local_minsup(minsup, block.size(), db.size())) {
        locally_frequent_somewhere = true;
        break;
      }
    }
    EXPECT_TRUE(locally_frequent_somewhere) << to_string(f.items);
  }
}

}  // namespace
}  // namespace eclat
