// Corpus: layering violation — the sequential core reaching up into the
// parallel layer.
#include "parallel/par_eclat.hpp"
