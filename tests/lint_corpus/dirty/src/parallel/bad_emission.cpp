// Corpus: hash-order iteration escaping on an emission path.
#include <unordered_map>

#include "parallel/wire.hpp"

void emit_all() {
  std::unordered_map<int, int> counts;
  for (auto& kv : counts) {
    (void)kv;
  }
  auto it = counts.begin();
  (void)it;
}
