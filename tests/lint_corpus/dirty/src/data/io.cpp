// Corpus: unguarded byte reinterpretation on the serialization path.
#include <cstring>

void copy_bytes(char* dst, const void* src) {
  std::memcpy(dst, src, 16);
}

int reinterpret(const char* p) {
  return *reinterpret_cast<const int*>(p);
}
