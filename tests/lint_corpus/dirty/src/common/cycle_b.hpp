// Corpus: include cycle, half B.
#pragma once
#include "common/cycle_a.hpp"
