// Corpus: raw contract violations.
#include <cassert>
#include <cstdlib>

void checked(int x) {
  assert(x > 0);
  if (x > 40) abort();
}
