// Corpus: include cycle, half A.
#pragma once
#include "common/cycle_b.hpp"
