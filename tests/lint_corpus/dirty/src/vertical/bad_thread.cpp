// Corpus: raw threading outside the deterministic layers AND outside
// src/exec — det-thread is banned tree-wide except in the execution
// backends, with a hint pointing at the Backend seam.
#include <thread>

void sneak_parallelism() {
  std::thread worker([] {});
  worker.join();
}
