// Corpus: ISA intrinsics outside src/vertical/simd/ — both the header
// include and a direct intrinsic use must be flagged. Code like this
// compiles against the build machine's baseline and bypasses the CPUID
// dispatch, so it crashes on older hardware instead of falling back.
#include <immintrin.h>

int sneak_simd() {
  __m256i v = _mm256_setzero_si256();
  return _mm256_extract_epi32(v, 0);
}
