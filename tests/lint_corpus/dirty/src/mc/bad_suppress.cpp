// Corpus: suppressions that must NOT count.
#include <mutex>

// eclat-lint: allow(det-thread)
std::mutex unjustified;

// eclat-lint: allow(det-thred) the rule id is misspelled
std::mutex typod;
