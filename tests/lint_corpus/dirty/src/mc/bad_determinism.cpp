// Corpus: determinism violations inside the simulator layer (src/mc).
#include <chrono>
#include <map>
#include <mutex>

void wall_clock_read() {
  auto t = std::chrono::system_clock::now();
  (void)t;
}

int unseeded() {
  return rand();
}

void raw_threading() {
  std::mutex m;
  (void)m;
}

struct Obj {};
std::map<Obj*, int> address_ordered;
