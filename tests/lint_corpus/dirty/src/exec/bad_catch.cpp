// Corpus: a bare catch (...) that swallows the exception entirely. The
// typed handler below is out of the rule's scope and must NOT fire.
void risky();

int swallow() {
  try {
    risky();
  } catch (...) {
    return -1;
  }
  return 0;
}

int typed_ok() {
  try {
    risky();
  } catch (const int& e) {
    return e;
  }
  return 0;
}
