// Corpus: the one place ISA intrinsics are legal — a per-ISA kernel TU
// under src/vertical/simd/, compiled with per-file -m flags and installed
// behind the CPUID dispatch. isa-intrinsics must stay silent here.
#include <immintrin.h>

int approved_simd() {
  __m256i v = _mm256_setzero_si256();
  return _mm256_extract_epi32(v, 0);
}
