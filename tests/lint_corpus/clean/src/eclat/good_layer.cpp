// Corpus: legal layering — eclat may see common, data, vertical, apriori.
#include "common/check.hpp"
#include "data/db.hpp"
#include "vertical/tidlist.hpp"
