// Corpus: guarded byte reinterpretation — ECLAT_CHECK adjacent to the cast.
#include <cstring>

#define ECLAT_CHECK(cond, msg) ((cond) ? (void)0 : (void)(msg))

int read_checked(const char* p, unsigned long n) {
  ECLAT_CHECK(n >= sizeof(int), "short buffer");
  return *reinterpret_cast<const int*>(p);
}

void copy_checked(char* dst, const void* src, unsigned long n) {
  ECLAT_CHECK(n <= 64, "oversized copy");
  std::memcpy(dst, src, n);
}
