// Corpus: the execution-backend module is the one src/ layer where real
// threading primitives are legal without suppression — spawning workers
// and atomics for the work-stealing deque are its whole job.
#include <atomic>
#include <thread>

std::atomic<int> tasks_left{0};

void spawn_join() {
  std::thread worker([] { tasks_left.fetch_sub(1); });
  worker.join();
}
