// Corpus: the approved catch (...) idioms — rethrow, capture for a
// post-join rethrow, routing through the fault-capture helper — plus a
// justified suppression for the one legitimate swallow.
#include <exception>

void risky();
int capture_class_failure(int token);

void rethrows() {
  try {
    risky();
  } catch (...) {
    throw;
  }
}

std::exception_ptr captures() {
  try {
    risky();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

int routed() {
  try {
    risky();
  } catch (...) {
    return capture_class_failure(0);
  }
  return 0;
}

int justified() {
  try {
    risky();
  }
  // eclat-lint: allow(robust-catch) best-effort probe: a failure here only skips the fast path
  catch (...) {
    return 0;
  }
  return 1;
}
