// Corpus: emission in deterministic key order — gather, sort, then walk.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "parallel/wire.hpp"

void emit_sorted() {
  std::unordered_map<int, int> counts;
  std::vector<int> keys;
  keys.reserve(counts.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    (void)counts[keys[i]];
  }
  std::sort(keys.begin(), keys.end());
}

void folded() {
  std::unordered_map<int, int> counts;
  long long total = 0;
  // eclat-lint: allow(det-unordered-iter) order-insensitive fold: sums values only
  for (const auto& kv : counts) total += kv.second;
  (void)total;
}
