// Corpus: the approved simulator idioms — real threads suppressed with a
// justification, virtual time instead of wall clocks.
#pragma once

// eclat-lint: allow-file(det-thread) corpus stand-in for the simulator's real-thread substrate; virtual time is layered above it
#include <mutex>

struct VirtualClock {
  long long now_ns = 0;
  void advance(long long ns) { now_ns += ns; }
};

std::mutex substrate_lock;
