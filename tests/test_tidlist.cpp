#include "vertical/tidlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.hpp"

namespace eclat {
namespace {

TEST(TidList, IsValidTidlist) {
  EXPECT_TRUE(is_valid_tidlist(TidList{}));
  EXPECT_TRUE(is_valid_tidlist(TidList{5}));
  EXPECT_TRUE(is_valid_tidlist(TidList{1, 2, 9}));
  EXPECT_FALSE(is_valid_tidlist(TidList{1, 1}));
  EXPECT_FALSE(is_valid_tidlist(TidList{2, 1}));
}

TEST(TidList, IntersectMatchesPaperExample) {
  // Paper §4.2: T(AB) = {1,5,7,10,50}, T(AC) = {1,4,7,10,11}
  // => T(ABC) = {1,7,10}.
  const TidList ab = {1, 5, 7, 10, 50};
  const TidList ac = {1, 4, 7, 10, 11};
  EXPECT_EQ(intersect(ab, ac), (TidList{1, 7, 10}));
}

TEST(TidList, IntersectEdgeCases) {
  EXPECT_TRUE(intersect(TidList{}, TidList{}).empty());
  EXPECT_TRUE(intersect(TidList{1, 2}, TidList{}).empty());
  EXPECT_TRUE(intersect(TidList{1, 3}, TidList{2, 4}).empty());
  EXPECT_EQ(intersect(TidList{1, 2, 3}, TidList{1, 2, 3}),
            (TidList{1, 2, 3}));
}

TEST(TidList, IntersectionSizeAgreesWithIntersect) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 300; ++t) {
      if (rng.uniform() < 0.3) a.push_back(t);
      if (rng.uniform() < 0.3) b.push_back(t);
    }
    EXPECT_EQ(intersection_size(a, b), intersect(a, b).size());
  }
}

TEST(TidList, ShortCircuitReturnsExactResultWhenFrequent) {
  const TidList a = {1, 2, 3, 4, 5, 6};
  const TidList b = {2, 4, 6, 8};
  const auto result = intersect_short_circuit(a, b, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, (TidList{2, 4, 6}));
}

TEST(TidList, ShortCircuitRejectsWhenBoundTooSmall) {
  const TidList a = {1, 2, 3};
  const TidList b = {4, 5, 6, 7};
  // |a| = 3 < minsup = 4: rejected before scanning.
  EXPECT_FALSE(intersect_short_circuit(a, b, 4).has_value());
}

TEST(TidList, ShortCircuitRejectsAfterEnoughMismatches) {
  // Intersection is {100}; with minsup 2 the scan must abort and report
  // infrequent.
  const TidList a = {1, 3, 5, 100};
  const TidList b = {2, 4, 6, 100};
  EXPECT_FALSE(intersect_short_circuit(a, b, 2).has_value());
}

TEST(TidList, ShortCircuitBoundaryExactlyMinsup) {
  const TidList a = {1, 2, 3};
  const TidList b = {1, 2, 3};
  const auto result = intersect_short_circuit(a, b, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 3u);
}

TEST(TidList, ShortCircuitAgreesWithPlainIntersect) {
  Rng rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 200; ++t) {
      if (rng.uniform() < 0.4) a.push_back(t);
      if (rng.uniform() < 0.4) b.push_back(t);
    }
    const TidList exact = intersect(a, b);
    for (Count minsup : {1u, 5u, 20u, 100u}) {
      const auto fast = intersect_short_circuit(a, b, minsup);
      if (exact.size() >= minsup) {
        ASSERT_TRUE(fast.has_value());
        EXPECT_EQ(*fast, exact);
      } else {
        EXPECT_FALSE(fast.has_value());
      }
    }
  }
}

TEST(TidList, GallopAgreesWithMergeOnSkewedInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    TidList small;
    TidList large;
    for (Tid t = 0; t < 2000; ++t) {
      if (rng.uniform() < 0.005) small.push_back(t);
      if (rng.uniform() < 0.5) large.push_back(t);
    }
    EXPECT_EQ(intersect_gallop(small, large), intersect(small, large));
    EXPECT_EQ(intersect_gallop(large, small), intersect(large, small));
  }
}

TEST(TidList, GallopEdgeCases) {
  EXPECT_TRUE(intersect_gallop(TidList{}, TidList{1, 2}).empty());
  EXPECT_EQ(intersect_gallop(TidList{5}, TidList{1, 5, 9}), (TidList{5}));
  EXPECT_TRUE(intersect_gallop(TidList{10}, TidList{1, 2, 3}).empty());
}

TEST(TidList, DifferenceAndUnion) {
  const TidList a = {1, 2, 3, 5};
  const TidList b = {2, 4, 5};
  EXPECT_EQ(difference(a, b), (TidList{1, 3}));
  EXPECT_EQ(difference(b, a), (TidList{4}));
  EXPECT_EQ(unite(a, b), (TidList{1, 2, 3, 4, 5}));
}

TEST(TidList, IntersectionAlgebraProperties) {
  // Property sweep: |a ∩ b| + |a \ b| = |a|, and a ∩ b == b ∩ a.
  Rng rng(4321);
  for (int trial = 0; trial < 50; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 500; ++t) {
      if (rng.uniform() < 0.2) a.push_back(t);
      if (rng.uniform() < 0.6) b.push_back(t);
    }
    const TidList ab = intersect(a, b);
    EXPECT_EQ(ab, intersect(b, a));
    EXPECT_EQ(ab.size() + difference(a, b).size(), a.size());
    EXPECT_EQ(unite(a, b).size(), a.size() + b.size() - ab.size());
    EXPECT_TRUE(is_valid_tidlist(ab));
  }
}

}  // namespace
}  // namespace eclat
