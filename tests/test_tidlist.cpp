#include "vertical/tidlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.hpp"
#include "eclat/compute_frequent.hpp"
#include "vertical/bitset_tidlist.hpp"
#include "vertical/chunked_tidlist.hpp"
#include "vertical/simd/dispatch.hpp"
#include "vertical/tidset.hpp"

namespace eclat {
namespace {

TEST(TidList, IsValidTidlist) {
  EXPECT_TRUE(is_valid_tidlist(TidList{}));
  EXPECT_TRUE(is_valid_tidlist(TidList{5}));
  EXPECT_TRUE(is_valid_tidlist(TidList{1, 2, 9}));
  EXPECT_FALSE(is_valid_tidlist(TidList{1, 1}));
  EXPECT_FALSE(is_valid_tidlist(TidList{2, 1}));
}

TEST(TidList, IntersectMatchesPaperExample) {
  // Paper §4.2: T(AB) = {1,5,7,10,50}, T(AC) = {1,4,7,10,11}
  // => T(ABC) = {1,7,10}.
  const TidList ab = {1, 5, 7, 10, 50};
  const TidList ac = {1, 4, 7, 10, 11};
  EXPECT_EQ(intersect(ab, ac), (TidList{1, 7, 10}));
}

TEST(TidList, IntersectEdgeCases) {
  EXPECT_TRUE(intersect(TidList{}, TidList{}).empty());
  EXPECT_TRUE(intersect(TidList{1, 2}, TidList{}).empty());
  EXPECT_TRUE(intersect(TidList{1, 3}, TidList{2, 4}).empty());
  EXPECT_EQ(intersect(TidList{1, 2, 3}, TidList{1, 2, 3}),
            (TidList{1, 2, 3}));
}

TEST(TidList, IntersectionSizeAgreesWithIntersect) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 300; ++t) {
      if (rng.uniform() < 0.3) a.push_back(t);
      if (rng.uniform() < 0.3) b.push_back(t);
    }
    EXPECT_EQ(intersection_size(a, b), intersect(a, b).size());
  }
}

TEST(TidList, ShortCircuitReturnsExactResultWhenFrequent) {
  const TidList a = {1, 2, 3, 4, 5, 6};
  const TidList b = {2, 4, 6, 8};
  const auto result = intersect_short_circuit(a, b, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, (TidList{2, 4, 6}));
}

TEST(TidList, ShortCircuitRejectsWhenBoundTooSmall) {
  const TidList a = {1, 2, 3};
  const TidList b = {4, 5, 6, 7};
  // |a| = 3 < minsup = 4: rejected before scanning.
  EXPECT_FALSE(intersect_short_circuit(a, b, 4).has_value());
}

TEST(TidList, ShortCircuitRejectsAfterEnoughMismatches) {
  // Intersection is {100}; with minsup 2 the scan must abort and report
  // infrequent.
  const TidList a = {1, 3, 5, 100};
  const TidList b = {2, 4, 6, 100};
  EXPECT_FALSE(intersect_short_circuit(a, b, 2).has_value());
}

TEST(TidList, ShortCircuitBoundaryExactlyMinsup) {
  const TidList a = {1, 2, 3};
  const TidList b = {1, 2, 3};
  const auto result = intersect_short_circuit(a, b, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 3u);
}

TEST(TidList, ShortCircuitAgreesWithPlainIntersect) {
  Rng rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 200; ++t) {
      if (rng.uniform() < 0.4) a.push_back(t);
      if (rng.uniform() < 0.4) b.push_back(t);
    }
    const TidList exact = intersect(a, b);
    for (Count minsup : {1u, 5u, 20u, 100u}) {
      const auto fast = intersect_short_circuit(a, b, minsup);
      if (exact.size() >= minsup) {
        ASSERT_TRUE(fast.has_value());
        EXPECT_EQ(*fast, exact);
      } else {
        EXPECT_FALSE(fast.has_value());
      }
    }
  }
}

TEST(TidList, GallopAgreesWithMergeOnSkewedInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    TidList small;
    TidList large;
    for (Tid t = 0; t < 2000; ++t) {
      if (rng.uniform() < 0.005) small.push_back(t);
      if (rng.uniform() < 0.5) large.push_back(t);
    }
    EXPECT_EQ(intersect_gallop(small, large), intersect(small, large));
    EXPECT_EQ(intersect_gallop(large, small), intersect(large, small));
  }
}

TEST(TidList, GallopEdgeCases) {
  EXPECT_TRUE(intersect_gallop(TidList{}, TidList{1, 2}).empty());
  EXPECT_EQ(intersect_gallop(TidList{5}, TidList{1, 5, 9}), (TidList{5}));
  EXPECT_TRUE(intersect_gallop(TidList{10}, TidList{1, 2, 3}).empty());
}

TEST(TidList, DifferenceAndUnion) {
  const TidList a = {1, 2, 3, 5};
  const TidList b = {2, 4, 5};
  EXPECT_EQ(difference(a, b), (TidList{1, 3}));
  EXPECT_EQ(difference(b, a), (TidList{4}));
  EXPECT_EQ(unite(a, b), (TidList{1, 2, 3, 4, 5}));
}

TEST(TidList, IntersectionAlgebraProperties) {
  // Property sweep: |a ∩ b| + |a \ b| = |a|, and a ∩ b == b ∩ a.
  Rng rng(4321);
  for (int trial = 0; trial < 50; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 500; ++t) {
      if (rng.uniform() < 0.2) a.push_back(t);
      if (rng.uniform() < 0.6) b.push_back(t);
    }
    const TidList ab = intersect(a, b);
    EXPECT_EQ(ab, intersect(b, a));
    EXPECT_EQ(ab.size() + difference(a, b).size(), a.size());
    EXPECT_EQ(unite(a, b).size(), a.size() + b.size() - ab.size());
    EXPECT_TRUE(is_valid_tidlist(ab));
  }
}

TidList random_list(Rng& rng, Tid universe, double density) {
  TidList out;
  for (Tid t = 0; t < universe; ++t) {
    if (rng.uniform() < density) out.push_back(t);
  }
  return out;
}

// Adversarial operand pairs every kernel must agree on: disjoint ranges,
// nested lists, single elements, and empties.
std::vector<std::pair<TidList, TidList>> adversarial_pairs() {
  return {
      {{}, {}},
      {{5}, {}},
      {{}, {0, 1, 2}},
      {{0, 1, 2, 3}, {4, 5, 6, 7}},            // disjoint ranges
      {{0, 2, 4, 6}, {1, 3, 5, 7}},            // disjoint interleaved
      {{10, 20, 30, 40}, {20, 30}},            // nested
      {{63}, {63}},                            // word-boundary single
      {{64}, {63, 64, 65}},                    // straddles a word edge
      {{0, 63, 64, 127, 128}, {63, 128}},      // word-boundary pattern
      {{7}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},   // single vs run
  };
}

TEST(BitsetTidList, RoundTripAcrossWordBoundaries) {
  Rng rng(11);
  for (Tid universe : {1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    for (double density : {0.0, 0.05, 0.5, 1.0}) {
      const TidList tids = random_list(rng, universe, density);
      BitsetTidList bits;
      bits.assign(tids, universe);
      EXPECT_EQ(bits.count(), tids.size());
      EXPECT_EQ(bits.to_tidlist(), tids);
      for (Tid t = 0; t < universe; ++t) {
        EXPECT_EQ(bits.test(t),
                  std::binary_search(tids.begin(), tids.end(), t));
      }
      EXPECT_FALSE(bits.test(universe));      // out of range: never set
      EXPECT_FALSE(bits.test(universe + 1));
    }
  }
}

TEST(BitsetTidList, AndMatchesSparseIntersect) {
  Rng rng(22);
  constexpr Tid kUniverse = 400;
  for (int trial = 0; trial < 60; ++trial) {
    const TidList a = random_list(rng, kUniverse, 0.3);
    const TidList b = random_list(rng, kUniverse, 0.3);
    BitsetTidList ba, bb, result;
    ba.assign(a, kUniverse);
    bb.assign(b, kUniverse);
    result.assign_and(ba, bb);
    EXPECT_EQ(result.to_tidlist(), intersect(a, b));
  }
}

TEST(BitsetTidList, BoundedAndAbortsExactlyWhenInfrequent) {
  Rng rng(33);
  constexpr Tid kUniverse = 512;
  for (int trial = 0; trial < 60; ++trial) {
    const TidList a = random_list(rng, kUniverse, 0.2);
    const TidList b = random_list(rng, kUniverse, 0.2);
    const TidList exact = intersect(a, b);
    BitsetTidList ba, bb;
    ba.assign(a, kUniverse);
    bb.assign(b, kUniverse);
    for (Count minsup : {1u, 4u, 16u, 64u, 512u}) {
      BitsetTidList result;
      const bool ok = result.assign_and_bounded(ba, bb, minsup, nullptr);
      EXPECT_EQ(ok, exact.size() >= minsup);
      if (ok) {
        EXPECT_EQ(result.to_tidlist(), exact);
      }
      const auto count = BitsetTidList::and_count(ba, bb, minsup, nullptr);
      EXPECT_EQ(count.has_value(), exact.size() >= minsup);
      if (count) {
        EXPECT_EQ(*count, exact.size());
      }
    }
  }
}

TEST(BitsetTidList, AndNotAndMinusSparseMatchDifference) {
  Rng rng(44);
  constexpr Tid kUniverse = 320;
  for (int trial = 0; trial < 60; ++trial) {
    const TidList a = random_list(rng, kUniverse, 0.4);
    const TidList b = random_list(rng, kUniverse, 0.4);
    const TidList exact = difference(a, b);
    BitsetTidList ba, bb;
    ba.assign(a, kUniverse);
    bb.assign(b, kUniverse);
    for (std::size_t budget : {std::size_t{0}, std::size_t{10},
                               std::size_t{kUniverse}}) {
      BitsetTidList andnot;
      const bool ok = andnot.assign_andnot_bounded(ba, bb, budget, nullptr);
      EXPECT_EQ(ok, exact.size() <= budget);
      if (ok) {
        EXPECT_EQ(andnot.to_tidlist(), exact);
      }
      BitsetTidList minus;
      const bool ok2 = minus.assign_minus_sparse(ba, b, budget, nullptr);
      EXPECT_EQ(ok2, exact.size() <= budget);
      if (ok2) {
        EXPECT_EQ(minus.to_tidlist(), exact);
      }
    }
  }
}

TEST(TidSet, PrefersDenseAtTheDocumentedThreshold) {
  // Dense iff size * 128 >= universe; the boundary itself goes dense.
  EXPECT_FALSE(TidSet::prefers_dense(0, 128));  // empty stays sparse
  EXPECT_TRUE(TidSet::prefers_dense(1, 128));
  EXPECT_TRUE(TidSet::prefers_dense(10, 1280));
  EXPECT_FALSE(TidSet::prefers_dense(9, 1280));
  EXPECT_TRUE(TidSet::prefers_dense(10, 1279));
}

TEST(TidSet, SeedRepresentationFollowsKernel) {
  const TidList tids = {0, 10, 20, 30};  // density 4/640 — under threshold
  constexpr Tid kUniverse = 640;
  for (IntersectKernel kernel :
       {IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
        IntersectKernel::kGallop}) {
    TidSet set;
    seed_tidset(tids, kUniverse, kernel, set, nullptr);
    EXPECT_FALSE(set.dense()) << kernel_name(kernel);
  }
  TidSet forced;
  seed_tidset(tids, kUniverse, IntersectKernel::kBitset, forced, nullptr);
  EXPECT_TRUE(forced.dense());
  TidSet adaptive;
  seed_tidset(tids, kUniverse, IntersectKernel::kAuto, adaptive, nullptr);
  EXPECT_FALSE(adaptive.dense());  // 4·128 < 640
  TidSet adaptive_dense;
  seed_tidset(tids, 256, IntersectKernel::kAuto, adaptive_dense, nullptr);
  EXPECT_TRUE(adaptive_dense.dense());  // 4·128 >= 256
  EXPECT_EQ(adaptive_dense.to_tidlist(), tids);
}

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
    IntersectKernel::kGallop, IntersectKernel::kBitset,
    IntersectKernel::kChunked, IntersectKernel::kAuto};

TEST(TidSet, IntersectionAgreesWithReferenceAcrossKernels) {
  Rng rng(55);
  constexpr Tid kUniverse = 1024;
  std::vector<std::pair<TidList, TidList>> cases = adversarial_pairs();
  // Density sweep including both sides of the 1/128 threshold and a skewed
  // pair that triggers the gallop arm of kAuto.
  for (double da : {0.004, 0.0625, 0.3}) {
    for (double db : {0.004, 0.0625, 0.3}) {
      cases.emplace_back(random_list(rng, kUniverse, da),
                         random_list(rng, kUniverse, db));
    }
  }
  cases.emplace_back(random_list(rng, kUniverse, 0.002),
                     random_list(rng, kUniverse, 0.9));

  for (const auto& [a, b] : cases) {
    const TidList exact = intersect(a, b);
    const Tid universe = kUniverse;
    for (IntersectKernel kernel : kAllKernels) {
      for (Count minsup : {1u, 3u, 40u}) {
        TidSet sa, sb, out;
        seed_tidset(a, universe, kernel, sa, nullptr);
        seed_tidset(b, universe, kernel, sb, nullptr);
        const bool ok =
            intersect_into(sa, sb, minsup, kernel, universe, out, nullptr);
        EXPECT_EQ(ok, exact.size() >= minsup) << kernel_name(kernel);
        if (ok) {
          EXPECT_EQ(out.to_tidlist(), exact) << kernel_name(kernel);
        }

        const std::optional<Count> support =
            intersect_support(sa, sb, minsup, kernel, nullptr);
        EXPECT_EQ(support.has_value(), exact.size() >= minsup)
            << kernel_name(kernel);
        if (support) {
          EXPECT_EQ(*support, exact.size());
        }
      }
    }
  }
}

TEST(TidSet, DifferenceAgreesWithReferenceAcrossKernels) {
  Rng rng(66);
  constexpr Tid kUniverse = 1024;
  std::vector<std::pair<TidList, TidList>> cases = adversarial_pairs();
  for (double da : {0.004, 0.3}) {
    for (double db : {0.004, 0.3}) {
      cases.emplace_back(random_list(rng, kUniverse, da),
                         random_list(rng, kUniverse, db));
    }
  }
  for (const auto& [a, b] : cases) {
    const TidList exact = difference(a, b);
    for (IntersectKernel kernel : kAllKernels) {
      for (std::size_t budget : {std::size_t{0}, std::size_t{5},
                                 std::size_t{kUniverse}}) {
        TidSet sa, sb, out;
        seed_tidset(a, kUniverse, kernel, sa, nullptr);
        seed_tidset(b, kUniverse, kernel, sb, nullptr);
        const bool ok = difference_into(sa, sb, budget, kernel, kUniverse,
                                        out, nullptr);
        EXPECT_EQ(ok, exact.size() <= budget) << kernel_name(kernel);
        if (ok) {
          EXPECT_EQ(out.to_tidlist(), exact) << kernel_name(kernel);
        }
      }
    }
  }
}

TEST(TidSet, IntersectWithKernelAgreesAcrossAllKernels) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const TidList a = random_list(rng, 500, 0.25);
    const TidList b = random_list(rng, 500, 0.25);
    const TidList exact = intersect(a, b);
    for (IntersectKernel kernel : kAllKernels) {
      for (Count minsup : {1u, 10u, 200u}) {
        const std::optional<TidList> result =
            intersect_with_kernel(a, b, minsup, kernel, nullptr);
        EXPECT_EQ(result.has_value(), exact.size() >= minsup)
            << kernel_name(kernel);
        if (result) {
          EXPECT_EQ(*result, exact) << kernel_name(kernel);
        }
      }
    }
  }
}

TEST(TidSet, StatsCountElementsActuallyVisited) {
  // a exhausts before b is ever advanced: the merge visits |a| elements
  // plus none of b, so tids_scanned must be 100 — not |a| + |b| = 300
  // as the pre-counting bug reported.
  TidList a, b;
  for (Tid t = 0; t < 100; ++t) a.push_back(t);
  for (Tid t = 100; t < 300; ++t) b.push_back(t);
  IntersectStats stats;
  const auto result =
      intersect_with_kernel(a, b, 1, IntersectKernel::kMerge, &stats);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(stats.intersections, 1u);
  EXPECT_EQ(stats.tids_scanned, 100u);
  EXPECT_EQ(stats.merge_calls, 1u);
}

TEST(TidSet, StatsCountWordsActuallyScanned) {
  // Dense kernel over universe 256 = 4 words; a full AND scans exactly 4.
  TidList a, b;
  for (Tid t = 0; t < 256; t += 2) a.push_back(t);
  for (Tid t = 0; t < 256; t += 4) b.push_back(t);
  IntersectStats stats;
  TidSet sa, sb, out;
  seed_tidset(a, 256, IntersectKernel::kBitset, sa, &stats);
  seed_tidset(b, 256, IntersectKernel::kBitset, sb, &stats);
  EXPECT_EQ(stats.densified, 2u);
  ASSERT_TRUE(intersect_into(sa, sb, 1, IntersectKernel::kBitset, 256, out,
                             &stats));
  EXPECT_EQ(stats.words_scanned, 4u);
  EXPECT_EQ(stats.bitset_calls, 1u);
  EXPECT_EQ(out.support(), 64u);
}

TEST(TidSet, KernelNamesRoundTrip) {
  for (IntersectKernel kernel : kAllKernels) {
    const auto parsed = kernel_from_name(kernel_name(kernel));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kernel);
  }
  EXPECT_FALSE(kernel_from_name("simd").has_value());
  EXPECT_FALSE(kernel_from_name("").has_value());
}

// ---- Chunked container and SIMD-dispatch properties ----

/// Universe spanning four 2^16-tid chunks.
constexpr Tid kChunkUniverse = 1u << 18;

/// Adversarial single lists for the chunked container: chunk-boundary
/// values, run-heavy spans, single-tid chunks, and a bitset-dense chunk.
std::vector<TidList> chunked_adversarial_lists() {
  std::vector<TidList> lists;
  lists.push_back({});
  lists.push_back({0});
  lists.push_back({65535});                       // last tid of chunk 0
  lists.push_back({65536});                       // first tid of chunk 1
  lists.push_back({65535, 65536, 131071, 131072});  // both boundary sides
  TidList runs;  // run-compressed: long consecutive spans
  for (Tid t = 100; t < 5100; ++t) runs.push_back(t);
  for (Tid t = 70000; t < 70100; ++t) runs.push_back(t);
  lists.push_back(std::move(runs));
  TidList singles;  // one tid per chunk
  for (Tid c = 0; c < 4; ++c) singles.push_back(c * 65536 + 17);
  lists.push_back(std::move(singles));
  TidList dense_chunk;  // chunk 2 dense enough for its bitset container
  for (Tid t = 131072; t < 131072 + 30000; t += 2) dense_chunk.push_back(t);
  lists.push_back(std::move(dense_chunk));
  return lists;
}

TEST(ChunkedTidList, RoundTripOnAdversarialLists) {
  for (const TidList& tids : chunked_adversarial_lists()) {
    ChunkedTidList chunks;
    chunks.assign(tids, kChunkUniverse);
    EXPECT_EQ(chunks.count(), tids.size());
    EXPECT_EQ(chunks.to_tidlist(), tids);
    for (const Tid probe :
         {Tid{0}, Tid{17}, Tid{65535}, Tid{65536}, Tid{131072},
          Tid{131073}, Tid{5099}, Tid{5100}, kChunkUniverse - 1}) {
      EXPECT_EQ(chunks.test(probe),
                std::binary_search(tids.begin(), tids.end(), probe))
          << probe;
    }
    EXPECT_FALSE(chunks.test(kChunkUniverse));  // out of range: never set
  }
}

TEST(ChunkedTidList, HistogramReflectsContainerTypes) {
  // Chunk 0: 2000 scattered tids — too sparse for a bitset (card < 1024
  // needs... 2000 >= 1024, so bitset), chunk 1: a pure run, chunk 2: a
  // small array. Build each regime explicitly.
  TidList tids;
  for (Tid t = 0; t < 60000; t += 30) tids.push_back(t);  // 2000 ≥ 1024 → bitset
  for (Tid t = 65536; t < 65536 + 512; ++t) tids.push_back(t);  // 1 run, 512 card
  tids.push_back(131072 + 5);  // 1-element array
  tids.push_back(131072 + 99);
  ChunkedTidList chunks;
  chunks.assign(tids, kChunkUniverse);
  const ChunkedTidList::ContainerHistogram hist = chunks.histogram();
  EXPECT_EQ(hist.bitset, 1u);
  EXPECT_EQ(hist.run, 1u);
  EXPECT_EQ(hist.array, 1u);
  EXPECT_EQ(chunks.to_tidlist(), tids);
}

TEST(TidSet, ChunkedIntersectionAgreesOnMultiChunkInputs) {
  Rng rng(88);
  std::vector<std::pair<TidList, TidList>> cases;
  const std::vector<TidList> adversarial = chunked_adversarial_lists();
  for (std::size_t i = 0; i < adversarial.size(); ++i) {
    for (std::size_t j = i; j < adversarial.size(); ++j) {
      cases.emplace_back(adversarial[i], adversarial[j]);
    }
  }
  // Density grid across the array/bitset/run container regimes.
  for (double da : {0.001, 0.01, 0.05}) {
    for (double db : {0.001, 0.05}) {
      cases.emplace_back(random_list(rng, kChunkUniverse, da),
                         random_list(rng, kChunkUniverse, db));
    }
  }
  for (const auto& [a, b] : cases) {
    const TidList exact = intersect(a, b);
    for (IntersectKernel kernel :
         {IntersectKernel::kChunked, IntersectKernel::kAuto}) {
      // Bounded-abort exactness: the short-circuit decision must match
      // the exact result size for minsup below, at, and above it.
      for (const Count minsup :
           {Count{1}, std::max<Count>(1, exact.size()),
            static_cast<Count>(exact.size() + 1), Count{100000}}) {
        TidSet sa, sb, out;
        seed_tidset(a, kChunkUniverse, kernel, sa, nullptr);
        seed_tidset(b, kChunkUniverse, kernel, sb, nullptr);
        const bool ok = intersect_into(sa, sb, minsup, kernel,
                                       kChunkUniverse, out, nullptr);
        EXPECT_EQ(ok, exact.size() >= minsup)
            << kernel_name(kernel) << " minsup=" << minsup;
        if (ok) {
          EXPECT_EQ(out.to_tidlist(), exact) << kernel_name(kernel);
        }
        const std::optional<Count> support =
            intersect_support(sa, sb, minsup, kernel, nullptr);
        EXPECT_EQ(support.has_value(), exact.size() >= minsup)
            << kernel_name(kernel) << " minsup=" << minsup;
        if (support) {
          EXPECT_EQ(*support, exact.size()) << kernel_name(kernel);
        }
      }
    }
  }
}

TEST(TidSet, ChunkedDifferenceAgreesOnMultiChunkInputs) {
  Rng rng(99);
  std::vector<std::pair<TidList, TidList>> cases;
  const std::vector<TidList> adversarial = chunked_adversarial_lists();
  for (std::size_t i = 0; i < adversarial.size(); ++i) {
    for (std::size_t j = 0; j < adversarial.size(); ++j) {
      cases.emplace_back(adversarial[i], adversarial[j]);
    }
  }
  for (double da : {0.001, 0.05}) {
    for (double db : {0.001, 0.05}) {
      cases.emplace_back(random_list(rng, kChunkUniverse, da),
                         random_list(rng, kChunkUniverse, db));
    }
  }
  for (const auto& [a, b] : cases) {
    const TidList exact = difference(a, b);
    for (IntersectKernel kernel :
         {IntersectKernel::kChunked, IntersectKernel::kAuto}) {
      // Budgets straddling the exact size check the abort decision.
      for (const std::size_t budget :
           {std::size_t{0}, exact.size() > 0 ? exact.size() - 1 : 0,
            exact.size(), exact.size() + 100}) {
        TidSet sa, sb, out;
        seed_tidset(a, kChunkUniverse, kernel, sa, nullptr);
        seed_tidset(b, kChunkUniverse, kernel, sb, nullptr);
        const bool ok = difference_into(sa, sb, budget, kernel,
                                        kChunkUniverse, out, nullptr);
        EXPECT_EQ(ok, exact.size() <= budget)
            << kernel_name(kernel) << " budget=" << budget;
        if (ok) {
          EXPECT_EQ(out.to_tidlist(), exact) << kernel_name(kernel);
        }
      }
    }
  }
}

TEST(TidSet, OutputsByteIdenticalAcrossIsaLevels) {
  // The dispatched kernels may do different amounts of work per ISA
  // (stats are work-measures), but the mined sets must decode
  // byte-identically. Unsupported levels clamp to the best available,
  // so this runs (and passes trivially) on scalar-only hosts too.
  Rng rng(111);
  const simd::IsaLevel levels[] = {simd::IsaLevel::kScalar,
                                   simd::IsaLevel::kAvx2,
                                   simd::IsaLevel::kAvx512};
  for (int trial = 0; trial < 6; ++trial) {
    const TidList a = random_list(rng, kChunkUniverse, 0.004 * (trial + 1));
    const TidList b = random_list(rng, kChunkUniverse, 0.02);
    for (IntersectKernel kernel : kAllKernels) {
      std::optional<TidList> reference;
      for (const simd::IsaLevel level : levels) {
        simd::override_isa_level(level);
        TidSet sa, sb, out;
        seed_tidset(a, kChunkUniverse, kernel, sa, nullptr);
        seed_tidset(b, kChunkUniverse, kernel, sb, nullptr);
        ASSERT_TRUE(intersect_into(sa, sb, 1, kernel, kChunkUniverse, out,
                                   nullptr));
        const TidList decoded = out.to_tidlist();
        if (!reference) {
          reference = decoded;
        } else {
          EXPECT_EQ(decoded, *reference)
              << kernel_name(kernel) << " at " << simd::isa_name(level);
        }
      }
    }
  }
  simd::override_isa_level(std::nullopt);
}

TEST(TidSet, ScalarKernelsHonorForceOverride) {
  simd::override_isa_level(simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::kernels().level, simd::IsaLevel::kScalar);
  // Under forced scalar the stats-visited counts are exact (the SIMD
  // paths may consume operands in blocks; scalar is the reference).
  TidList a, b;
  for (Tid t = 0; t < 100; ++t) a.push_back(t);
  for (Tid t = 100; t < 300; ++t) b.push_back(t);
  IntersectStats stats;
  const auto result =
      intersect_with_kernel(a, b, 1, IntersectKernel::kMerge, &stats);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(stats.tids_scanned, 100u);
  simd::override_isa_level(std::nullopt);
  EXPECT_EQ(simd::kernels().level, simd::detected_isa_level());
}

TEST(TidSet, PreferredRepFollowsThresholds) {
  // Dense at n·128 >= U, chunked at n·1024 >= U, sparse below, empty
  // sparse.
  EXPECT_EQ(TidSet::preferred_rep(0, 1024), TidRep::kSparse);
  EXPECT_EQ(TidSet::preferred_rep(8, 1024), TidRep::kDense);
  EXPECT_EQ(TidSet::preferred_rep(7, 1024), TidRep::kChunked);
  EXPECT_EQ(TidSet::preferred_rep(1, 1024), TidRep::kChunked);
  EXPECT_EQ(TidSet::preferred_rep(1, 1025), TidRep::kSparse);
  EXPECT_EQ(TidSet::preferred_rep(1, 128), TidRep::kDense);
}

TEST(TidSet, NormalizeHoldsInsideTheStayBand) {
  // 1000 tids over universe 64000: 1000·128 >= 64000 → dense.
  constexpr Tid kUniverse = 64000;
  TidList big;
  for (Tid t = 0; t < 1000; ++t) big.push_back(t * 64);
  TidSet set;
  seed_tidset(big, kUniverse, IntersectKernel::kAuto, set, nullptr);
  ASSERT_EQ(set.rep(), TidRep::kDense);

  // 250 tids: below the dense entry threshold (250·128 < 64000) but
  // inside the stay band (250·1024 >= 64000) — normalize must hold dense.
  IntersectStats stats;
  TidList mid(big.begin(), big.begin() + 250);
  set.assign_dense(mid, kUniverse);
  set.normalize(kUniverse, &stats);
  EXPECT_EQ(set.rep(), TidRep::kDense);
  EXPECT_EQ(stats.hysteresis_holds, 1u);
  EXPECT_EQ(stats.sparsified, 0u);

  // 50 tids: 50·1024 < 64000 — past the stay band, so it converts
  // (50·8192 >= 64000 keeps it chunked rather than fully sparse).
  TidList small(big.begin(), big.begin() + 50);
  set.assign_dense(small, kUniverse);
  set.normalize(kUniverse, &stats);
  EXPECT_EQ(set.rep(), TidRep::kChunked);
  EXPECT_EQ(stats.sparsified, 1u);
  EXPECT_EQ(set.to_tidlist(), small);
}

}  // namespace
}  // namespace eclat
