// Executable spec of the thread backend's fault-tolerance contract
// (DESIGN.md §11): for every seeded exec fault plan, a run either
// completes with output byte-identical to the fault-free mc reference,
// or ends in the clean typed abort ExecClassQuarantined — and which of
// the two happens, the diagnostic, and the retry/reclaim accounting are
// pure functions of the plan, independent of thread interleaving.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/mining.hpp"
#include "data/result_io.hpp"
#include "eclat/tid_arena.hpp"
#include "exec/backend.hpp"
#include "exec/exec_fault.hpp"
#include "exec/mc_backend.hpp"
#include "exec/thread_backend.hpp"
#include "test_util.hpp"
#include "vertical/tidset.hpp"

namespace {

using namespace eclat;
using exec::ExecFaultKind;
using exec::ExecFaultPlan;
using testutil::small_quest_db;

par::ParallelOutput run_threads(const HorizontalDatabase& db,
                                const par::ParEclatConfig& config,
                                const exec::ThreadBackendOptions& options) {
  exec::ThreadBackend backend(options);
  return backend.mine(db, config);
}

std::vector<std::uint8_t> mc_reference(const HorizontalDatabase& db,
                                       const par::ParEclatConfig& config) {
  exec::McBackend backend(mc::Topology{1, 4}, mc::CostModel{});
  return result_to_bytes(backend.mine(db, config).result);
}

// ---------------------------------------------------------------------------
// Plan validation + text form
// ---------------------------------------------------------------------------

TEST(ExecFault, ValidateRejectsMalformedEvents) {
  ExecFaultPlan plan;
  plan.events.push_back(ExecFaultPlan::throw_on(3));
  EXPECT_NO_THROW(exec::validate_exec_plan(plan));

  ExecFaultPlan none = plan;
  none.events[0].kind = ExecFaultKind::kNone;
  EXPECT_THROW(exec::validate_exec_plan(none), std::invalid_argument);

  ExecFaultPlan zero_times = plan;
  zero_times.events[0].times = 0;
  EXPECT_THROW(exec::validate_exec_plan(zero_times), std::invalid_argument);

  ExecFaultPlan zero_mod = plan;
  zero_mod.events[0].class_id = exec::kAnyClass;
  zero_mod.events[0].mod = 0;
  EXPECT_THROW(exec::validate_exec_plan(zero_mod), std::invalid_argument);

  ExecFaultPlan bad_sel = plan;
  bad_sel.events[0].class_id = exec::kAnyClass;
  bad_sel.events[0].mod = 4;
  bad_sel.events[0].sel = 4;
  EXPECT_THROW(exec::validate_exec_plan(bad_sel), std::invalid_argument);
}

TEST(ExecFault, PlanTextRoundTripsExactly) {
  ExecFaultPlan plan;
  plan.seed = 0xFEEDBEEF;
  plan.events.push_back(ExecFaultPlan::throw_on(3, 2));
  plan.events.push_back(ExecFaultPlan::corrupt_on(0));
  plan.events.push_back(ExecFaultPlan::stall_on(17, 4));
  plan.events.push_back(
      ExecFaultPlan::hashed(ExecFaultKind::kStall, 5, 2, 3));

  const std::string text = exec::exec_plan_to_text(plan);
  const ExecFaultPlan parsed = exec::exec_plan_from_text(text);
  EXPECT_EQ(exec::exec_plan_to_text(parsed), text);  // fixpoint
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.seed, plan.seed);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(parsed.events[i].class_id, plan.events[i].class_id) << i;
    EXPECT_EQ(parsed.events[i].mod, plan.events[i].mod) << i;
    EXPECT_EQ(parsed.events[i].sel, plan.events[i].sel) << i;
    EXPECT_EQ(parsed.events[i].times, plan.events[i].times) << i;
  }
}

TEST(ExecFault, PlanFromTextRejectsGarbageWithLineNumbers) {
  EXPECT_THROW(exec::exec_plan_from_text("exec-event kind=throw class=1\n"),
               std::invalid_argument);  // missing exec-seed
  const char* bad_kind =
      "exec-seed 7\nexec-event kind=explode class=1 mod=0 sel=0 times=1\n";
  try {
    exec::exec_plan_from_text(bad_kind);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ExecFault, InjectorIsPureAndHonoursTimes) {
  ExecFaultPlan plan;
  plan.events.push_back(ExecFaultPlan::throw_on(5, 2));
  plan.events.push_back(ExecFaultPlan::hashed(ExecFaultKind::kStall, 3, 1));
  const exec::ExecFaultInjector injector(plan);

  // Explicit event: the two leading attempts fault, the third runs clean.
  EXPECT_EQ(injector.fault_for(5, 0), ExecFaultKind::kThrow);
  EXPECT_EQ(injector.fault_for(5, 1), ExecFaultKind::kThrow);
  EXPECT_EQ(injector.fault_for(5, 2), ExecFaultKind::kNone);

  // Purity: probing in any order, any number of times, changes nothing.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t c = 0; c < 24; ++c) {
      EXPECT_EQ(injector.fault_for(c, 0), injector.fault_for(c, 0)) << c;
    }
  }
  // The hash selector matches a strict, non-empty subset of classes.
  std::size_t stalled = 0;
  for (std::size_t c = 100; c < 200; ++c) {
    if (injector.fault_for(c, 0) == ExecFaultKind::kStall) ++stalled;
  }
  EXPECT_GT(stalled, 0u);
  EXPECT_LT(stalled, 100u);
}

// ---------------------------------------------------------------------------
// Result-contract validation
// ---------------------------------------------------------------------------

TEST(ExecFault, ValidateClassResultCatchesEveryCorruptionShape) {
  EquivalenceClass eq_class;
  eq_class.prefix = 4;
  eq_class.members = {5, 7, 9};
  const Count minsup = 3;

  std::vector<FrequentItemset> honest;
  honest.push_back({{4, 5, 7}, 6});
  honest.push_back({{4, 5, 7, 9}, 3});
  EXPECT_NO_THROW(exec::validate_class_result(eq_class, minsup, honest));
  EXPECT_NO_THROW(exec::validate_class_result(eq_class, minsup, {}));

  const auto rejects = [&](std::vector<FrequentItemset> result) {
    EXPECT_THROW(exec::validate_class_result(eq_class, minsup, result),
                 exec::ClassResultCorrupt);
  };
  rejects({{{4, 5}, 6}});           // pair-sized: too small for a slot
  rejects({{{3, 5, 7}, 6}});        // wrong prefix
  rejects({{{4, 7, 5}, 6}});        // not ascending
  rejects({{{4, 5, 8}, 6}});        // 8 is not a class member
  rejects({{{4, 5, 7}, 2}});        // below minsup
}

TEST(ExecFault, CorruptResultAlwaysTripsTheValidator) {
  EquivalenceClass eq_class;
  eq_class.prefix = 2;
  eq_class.members = {3, 6, 8, 11};
  const Count minsup = 4;

  ExecFaultPlan plan;
  plan.seed = 99;
  plan.events.push_back(ExecFaultPlan::corrupt_on(0, 1000));
  const exec::ExecFaultInjector injector(plan);

  for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
    std::vector<FrequentItemset> result;
    result.push_back({{2, 3, 6}, 9});
    result.push_back({{2, 6, 8}, 5});
    result.push_back({{2, 3, 6, 8}, 4});
    injector.corrupt_result(0, attempt, minsup, result);
    EXPECT_THROW(exec::validate_class_result(eq_class, minsup, result),
                 exec::ClassResultCorrupt)
        << "attempt " << attempt << " corruption went undetected";
    // Determinism: the same (class, attempt) corrupts the same byte.
    std::vector<FrequentItemset> replay;
    replay.push_back({{2, 3, 6}, 9});
    replay.push_back({{2, 6, 8}, 5});
    replay.push_back({{2, 3, 6, 8}, 4});
    injector.corrupt_result(0, attempt, minsup, replay);
    ASSERT_EQ(replay.size(), result.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(replay[i].items, result[i].items);
      EXPECT_EQ(replay[i].support, result[i].support);
    }
  }
}

// ---------------------------------------------------------------------------
// The contract matrix: kind x times x scheduler x threads
// ---------------------------------------------------------------------------

// times <= max_retries faults recover; times == max_retries + 1 pushes the
// first matching class over its budget and the run quarantines. Either
// way the outcome is asserted to be byte-identical-or-clean-abort, twice
// (the second run is the replay check).
TEST(ExecFault, ContractMatrixByteIdenticalOrCleanTypedAbort) {
  const HorizontalDatabase db = small_quest_db(260, 24, 7);
  par::ParEclatConfig config;
  config.minsup = 4;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  for (ExecFaultKind kind : {ExecFaultKind::kThrow, ExecFaultKind::kCorrupt,
                             ExecFaultKind::kStall}) {
    for (std::uint32_t times : {1u, 2u, 3u}) {
      for (exec::ClassScheduler scheduler :
           {exec::ClassScheduler::kStatic,
            exec::ClassScheduler::kWorkStealing}) {
        for (std::size_t threads : {1u, 2u, 3u, 4u, 5u}) {
          exec::ThreadBackendOptions options;
          options.threads = threads;
          options.scheduler = scheduler;
          options.max_retries = 2;
          options.faults.seed = 0xC0FFEE ^ times;
          options.faults.events.push_back(
              ExecFaultPlan::hashed(kind, 3, 1, times));
          const std::string label =
              std::string("kind=") + exec::to_string(kind) +
              " times=" + std::to_string(times) +
              " scheduler=" + exec::to_string(scheduler) +
              " threads=" + std::to_string(threads);

          bool first_completed = false;
          std::size_t first_quarantined = 0;
          for (int replay = 0; replay < 2; ++replay) {
            try {
              const par::ParallelOutput run = run_threads(db, config, options);
              EXPECT_EQ(result_to_bytes(run.result), reference)
                  << label << " replay=" << replay
                  << ": completed run diverged from the mc reference";
              if (replay == 0) {
                first_completed = true;
              } else {
                EXPECT_TRUE(first_completed)
                    << label << ": replay completed but the first run aborted";
              }
              if (kind != ExecFaultKind::kStall) {
                EXPECT_GT(run.exec_task_failures, 0u) << label;
                EXPECT_GT(run.exec_task_retries, 0u) << label;
              } else {
                EXPECT_GT(run.exec_stall_reclaims, 0u) << label;
              }
            } catch (const exec::ExecClassQuarantined& e) {
              EXPECT_EQ(times, 3u)
                  << label << ": quarantined although the fault budget ("
                  << times << ") fits max_retries";
              EXPECT_EQ(e.attempts(), 3u) << label;
              if (replay == 0) {
                first_quarantined = e.class_id();
              } else {
                EXPECT_FALSE(first_completed)
                    << label << ": replay aborted but the first run completed";
                EXPECT_EQ(e.class_id(), first_quarantined)
                    << label << ": replay quarantined a different class";
              }
            }
          }
          // A recoverable plan must actually have completed.
          if (times <= 2) {
            EXPECT_TRUE(first_completed) << label;
          }
        }
      }
    }
  }
}

TEST(ExecFault, SingleWorkerStallSelfRescues) {
  const HorizontalDatabase db = small_quest_db(200, 20, 3);
  par::ParEclatConfig config;
  config.minsup = 4;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  exec::ThreadBackendOptions options;
  options.threads = 1;  // nobody else can scan: the parked owner must
  options.faults.events.push_back(ExecFaultPlan::stall_on(0));
  const par::ParallelOutput run = run_threads(db, config, options);
  EXPECT_EQ(result_to_bytes(run.result), reference);
  EXPECT_GE(run.exec_stall_reclaims, 1u);
  EXPECT_EQ(run.exec_task_retries, 0u);  // reclaims re-enqueue directly
}

TEST(ExecFault, EveryClassStallingOnceStillCompletes) {
  const HorizontalDatabase db = small_quest_db(200, 20, 5);
  par::ParEclatConfig config;
  config.minsup = 4;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  exec::ThreadBackendOptions options;
  options.threads = 3;
  options.faults.events.push_back(
      ExecFaultPlan::hashed(ExecFaultKind::kStall, 1, 0));  // every class
  const par::ParallelOutput run = run_threads(db, config, options);
  EXPECT_EQ(result_to_bytes(run.result), reference);
  EXPECT_GE(run.exec_stall_reclaims, 1u);
  EXPECT_EQ(run.exec_task_failures, run.exec_stall_reclaims);
}

TEST(ExecFault, RetryCountersAreExactForAnExplicitTarget) {
  const HorizontalDatabase db = small_quest_db(200, 20, 9);
  par::ParEclatConfig config;
  config.minsup = 4;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  exec::ThreadBackendOptions options;
  options.threads = 2;
  options.max_retries = 3;
  options.faults.events.push_back(ExecFaultPlan::throw_on(1, 2));
  const par::ParallelOutput run = run_threads(db, config, options);
  EXPECT_EQ(result_to_bytes(run.result), reference);
  EXPECT_EQ(run.exec_task_failures, 2u);
  EXPECT_EQ(run.exec_task_retries, 2u);
  EXPECT_EQ(run.exec_stall_reclaims, 0u);
}

TEST(ExecFault, QuarantineNamesTheLowestDoomedClass) {
  const HorizontalDatabase db = small_quest_db(200, 20, 11);
  par::ParEclatConfig config;
  config.minsup = 4;

  exec::ThreadBackendOptions options;
  options.threads = 3;
  options.max_retries = 1;
  // Every class throws forever: with classes running to their own
  // conclusion, the abort must name class 0 deterministically.
  options.faults.events.push_back(
      ExecFaultPlan::hashed(ExecFaultKind::kThrow, 1, 0, 1000));
  try {
    run_threads(db, config, options);
    FAIL() << "expected ExecClassQuarantined";
  } catch (const exec::ExecClassQuarantined& e) {
    EXPECT_EQ(e.class_id(), 0u);
    EXPECT_EQ(e.attempts(), 2u);  // max_retries + 1 failures
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injected throw"), std::string::npos)
        << "diagnostic should carry the last attempt's error: " << e.what();
  }
}

TEST(ExecFault, FaultFreeRunReportsZeroFaultCounters) {
  const HorizontalDatabase db = small_quest_db(200, 20, 13);
  par::ParEclatConfig config;
  config.minsup = 4;
  exec::ThreadBackendOptions options;
  options.threads = 3;
  const par::ParallelOutput run = run_threads(db, config, options);
  EXPECT_EQ(run.exec_task_failures, 0u);
  EXPECT_EQ(run.exec_task_retries, 0u);
  EXPECT_EQ(run.exec_stall_reclaims, 0u);
  EXPECT_EQ(run.exec_arena_demotions, 0u);
  EXPECT_EQ(run.exec_arena_peak_bytes, 0u);  // budget off: metering off
}

// ---------------------------------------------------------------------------
// Memory budget and graceful degradation
// ---------------------------------------------------------------------------

TEST(ExecFault, HugeBudgetMetersPeakWithoutTripping) {
  const HorizontalDatabase db = small_quest_db(260, 24, 7);
  par::ParEclatConfig config;
  config.minsup = 4;
  config.kernel = IntersectKernel::kAuto;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  exec::ThreadBackendOptions options;
  options.threads = 2;
  options.mem_budget = std::size_t{1} << 40;  // 1 TiB: never trips
  const par::ParallelOutput run = run_threads(db, config, options);
  EXPECT_EQ(result_to_bytes(run.result), reference);
  EXPECT_GT(run.exec_arena_peak_bytes, 0u);
  EXPECT_EQ(run.exec_arena_demotions, 0u);
  EXPECT_EQ(run.exec_task_failures, 0u);
}

TEST(ExecFault, TightBudgetDegradesGracefullyOrAbortsCleanly) {
  const HorizontalDatabase db = small_quest_db(260, 24, 7);
  par::ParEclatConfig config;
  config.minsup = 4;
  config.kernel = IntersectKernel::kAuto;  // demotion allowed
  const std::vector<std::uint8_t> reference = mc_reference(db, config);

  // Measure the untripped peak first, then budget half of it.
  exec::ThreadBackendOptions metering;
  metering.threads = 1;
  metering.mem_budget = std::size_t{1} << 40;
  const std::size_t peak =
      run_threads(db, config, metering).exec_arena_peak_bytes;
  ASSERT_GT(peak, 0u);

  exec::ThreadBackendOptions options;
  options.threads = 1;
  options.mem_budget = peak / 2;
  try {
    const par::ParallelOutput run = run_threads(db, config, options);
    EXPECT_EQ(result_to_bytes(run.result), reference)
        << "a degraded-but-completed run must stay byte-identical";
    EXPECT_GT(run.exec_arena_demotions + run.exec_task_failures, 0u)
        << "half the peak cannot fit without any degradation";
  } catch (const exec::ExecClassQuarantined& e) {
    EXPECT_NE(std::string(e.what()).find("memory budget"), std::string::npos)
        << e.what();
  }
}

TEST(ExecFault, StarvationBudgetQuarantinesWithAMemoryDiagnostic) {
  const HorizontalDatabase db = small_quest_db(260, 24, 7);
  par::ParEclatConfig config;
  config.minsup = 4;
  exec::ThreadBackendOptions options;
  options.threads = 2;
  options.mem_budget = 64;  // no class fits
  try {
    run_threads(db, config, options);
    FAIL() << "expected ExecClassQuarantined";
  } catch (const exec::ExecClassQuarantined& e) {
    EXPECT_NE(std::string(e.what()).find("memory budget"), std::string::npos)
        << e.what();
  }
}

TEST(ExecFault, IsolationOffRejectsFaultPlansAndBudgets) {
  const HorizontalDatabase db = testutil::handmade_db();
  par::ParEclatConfig config;
  config.minsup = 3;

  exec::ThreadBackendOptions with_faults;
  with_faults.isolation = false;
  with_faults.faults.events.push_back(ExecFaultPlan::throw_on(0));
  EXPECT_THROW(run_threads(db, config, with_faults), std::invalid_argument);

  exec::ThreadBackendOptions with_budget;
  with_budget.isolation = false;
  with_budget.mem_budget = 1 << 20;
  EXPECT_THROW(run_threads(db, config, with_budget), std::invalid_argument);
}

TEST(ExecFault, IsolationOffFaultFreeStaysByteIdentical) {
  const HorizontalDatabase db = small_quest_db(260, 24, 7);
  par::ParEclatConfig config;
  config.minsup = 4;
  const std::vector<std::uint8_t> reference = mc_reference(db, config);
  for (exec::ClassScheduler scheduler :
       {exec::ClassScheduler::kStatic, exec::ClassScheduler::kWorkStealing}) {
    exec::ThreadBackendOptions options;
    options.threads = 3;
    options.scheduler = scheduler;
    options.isolation = false;
    const par::ParallelOutput run = run_threads(db, config, options);
    EXPECT_EQ(result_to_bytes(run.result), reference)
        << exec::to_string(scheduler);
  }
}

TEST(ExecFault, ApiThreadsFaultKnobsReachTheBackend) {
  const HorizontalDatabase db = small_quest_db(200, 20, 17);
  api::MineOptions options;
  options.algorithm = api::Algorithm::kParEclat;
  options.backend = exec::BackendKind::kThreads;
  options.exec_threads = 2;
  options.min_support = 0.02;
  options.exec_max_retries = 0;
  options.exec_faults.events.push_back(ExecFaultPlan::throw_on(0));
  EXPECT_THROW(api::mine_with_stats(db, options),
               exec::ExecClassQuarantined);

  options.exec_max_retries = 2;
  const par::ParallelOutput run = api::mine_with_stats(db, options);
  EXPECT_EQ(run.exec_task_failures, 1u);
  EXPECT_EQ(run.exec_task_retries, 1u);
}

// ---------------------------------------------------------------------------
// Arena memory accounting primitives the budget builds on
// ---------------------------------------------------------------------------

TEST(ExecFault, TidSetDemoteAndReleaseKeepDecodedTidsExact) {
  TidSet set;
  TidList tids;
  for (Tid t = 0; t < 500; t += 3) tids.push_back(t);
  set.assign_sparse(tids);
  EXPECT_GT(set.memory_bytes(), 0u);

  EXPECT_TRUE(set.demote_to_chunked());
  EXPECT_EQ(set.rep(), TidRep::kChunked);
  EXPECT_EQ(set.to_tidlist(), tids);     // lossless
  EXPECT_FALSE(set.demote_to_chunked());  // already chunked: no-op

  set.release();
  EXPECT_EQ(set.memory_bytes(), 0u);
  EXPECT_TRUE(set.to_tidlist().empty());
}

TEST(ExecFault, ArenaRelieveMemoryReleasesDeadAndDemotesLive) {
  TidArena arena;
  TidList tids;
  for (Tid t = 0; t < 256; ++t) tids.push_back(t * 2);
  TidArena::Level& level = arena.level(0);
  level.scratch().assign_sparse(tids);
  level.commit(3, static_cast<Count>(tids.size()));  // slot 0: live
  level.scratch().assign_sparse(tids);               // slot 1: dead scratch
  const std::size_t before = arena.memory_bytes();
  EXPECT_GT(before, 0u);

  // The live slot survives a demoting relief losslessly; the dead slot's
  // buffers are released outright.
  const std::size_t demoted = arena.relieve_memory(true);
  EXPECT_GE(demoted, 1u);
  EXPECT_EQ(level.sets[0].rep(), TidRep::kChunked);
  EXPECT_EQ(level.sets[0].to_tidlist(), tids);
  EXPECT_EQ(level.sets[1].memory_bytes(), 0u);
  EXPECT_LT(arena.memory_bytes(), before);
}

}  // namespace
