#include "eclat/external_transform.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::small_quest_db;

struct Prepared {
  HorizontalDatabase db;
  std::vector<PairKey> pairs;
  std::vector<Count> counts;
};

Prepared prepare(Count minsup = 5) {
  Prepared p{small_quest_db(), {}, {}};
  TriangleCounter counter(p.db.num_items());
  counter.count(p.db.transactions());
  p.pairs = counter.frequent_pairs(minsup);
  for (PairKey key : p.pairs) {
    p.counts.push_back(counter.get(pair_first(key), pair_second(key)));
  }
  return p;
}

TEST(ExternalTransform, RoundTripMatchesInMemoryInversion) {
  const Prepared p = prepare();
  std::stringstream stream;
  external_transform(p.db.transactions(), p.pairs, p.counts, stream);
  const auto lists = read_vertical(stream);

  const auto reference = invert_pairs(p.db.transactions(), p.pairs);
  ASSERT_EQ(lists.size(), p.pairs.size());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(lists[i].first, p.pairs[i]);  // written in pair order
    EXPECT_EQ(lists[i].second, reference.at(p.pairs[i]));
  }
}

class BudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BudgetSweep, AnyBudgetGivesIdenticalOutput) {
  const Prepared p = prepare();
  std::stringstream reference_stream;
  external_transform(p.db.transactions(), p.pairs, p.counts,
                     reference_stream);
  const std::string reference = reference_stream.str();

  ExternalTransformConfig config;
  config.memory_budget = GetParam();
  std::stringstream stream;
  ExternalTransformStats stats = external_transform(
      p.db.transactions(), p.pairs, p.counts, stream, config);
  EXPECT_EQ(stream.str(), reference) << "budget=" << GetParam();
  EXPECT_GE(stats.passes, 1u);
  EXPECT_EQ(stats.pairs_written, p.pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{64},
                                           std::size_t{1} << 10,
                                           std::size_t{16} << 10,
                                           std::size_t{64} << 20));

TEST(ExternalTransform, SmallBudgetMeansMorePassesLessMemory) {
  const Prepared p = prepare();

  ExternalTransformConfig tight;
  tight.memory_budget = 256;
  std::stringstream s1;
  const ExternalTransformStats small_stats = external_transform(
      p.db.transactions(), p.pairs, p.counts, s1, tight);

  ExternalTransformConfig roomy;
  roomy.memory_budget = 64 << 20;
  std::stringstream s2;
  const ExternalTransformStats big_stats = external_transform(
      p.db.transactions(), p.pairs, p.counts, s2, roomy);

  EXPECT_GT(small_stats.passes, big_stats.passes);
  EXPECT_LT(small_stats.peak_memory_bytes, big_stats.peak_memory_bytes);
  EXPECT_EQ(big_stats.passes, 1u);
}

TEST(ExternalTransform, BudgetRespectedUnlessSingleListExceedsIt) {
  const Prepared p = prepare();
  std::size_t largest_list_bytes = 0;
  for (Count c : p.counts) {
    largest_list_bytes =
        std::max(largest_list_bytes, static_cast<std::size_t>(c) *
                                         sizeof(Tid));
  }
  ExternalTransformConfig config;
  config.memory_budget = 512;
  std::stringstream stream;
  const ExternalTransformStats stats = external_transform(
      p.db.transactions(), p.pairs, p.counts, stream, config);
  EXPECT_LE(stats.peak_memory_bytes,
            std::max(config.memory_budget, largest_list_bytes));
}

TEST(ExternalTransform, TidsWrittenEqualsTotalSupport) {
  const Prepared p = prepare();
  Count total = 0;
  for (Count c : p.counts) total += c;
  std::stringstream stream;
  const ExternalTransformStats stats =
      external_transform(p.db.transactions(), p.pairs, p.counts, stream);
  EXPECT_EQ(stats.tids_written, total);
}

TEST(ExternalTransform, RejectsMismatchedInputs) {
  const Prepared p = prepare();
  std::vector<Count> wrong(p.counts.begin(), p.counts.end() - 1);
  std::stringstream stream;
  EXPECT_THROW(
      external_transform(p.db.transactions(), p.pairs, wrong, stream),
      std::invalid_argument);
}

TEST(ExternalTransform, ReaderRejectsGarbageAndTruncation) {
  std::stringstream garbage("definitely not a vertical database");
  EXPECT_THROW(read_vertical(garbage), std::runtime_error);

  const Prepared p = prepare();
  std::stringstream stream;
  external_transform(p.db.transactions(), p.pairs, p.counts, stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() * 2 / 3);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_vertical(truncated), std::runtime_error);
}

TEST(ExternalTransform, EmptyPairSetWritesEmptyFile) {
  const Prepared p = prepare();
  std::stringstream stream;
  const ExternalTransformStats stats = external_transform(
      p.db.transactions(), {}, {}, stream);
  EXPECT_EQ(stats.pairs_written, 0u);
  EXPECT_TRUE(read_vertical(stream).empty());
}

}  // namespace
}  // namespace eclat
