#include "apriori/apriori.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::brute_force_mine;
using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(CountItems, CountsSingleItems) {
  const HorizontalDatabase db = handmade_db();
  const std::vector<Count> counts =
      count_items(db.transactions(), db.num_items());
  EXPECT_EQ(counts[0], 7u);
  EXPECT_EQ(counts[1], 7u);
  EXPECT_EQ(counts[2], 7u);
  EXPECT_EQ(counts[3], 6u);
}

TEST(Apriori, HandmadeDatabaseKnownSupports) {
  AprioriConfig config;
  config.minsup = 4;
  const MiningResult result = apriori(handmade_db(), config);

  const auto find = [&](const Itemset& items) -> Count {
    for (const FrequentItemset& f : result.itemsets) {
      if (f.items == items) return f.support;
    }
    return 0;
  };
  EXPECT_EQ(find({0}), 7u);
  EXPECT_EQ(find({0, 1}), 6u);
  EXPECT_EQ(find({0, 2}), 5u);
  EXPECT_EQ(find({1, 2}), 5u);
  EXPECT_EQ(find({0, 1, 2}), 4u);
  EXPECT_EQ(find({0, 3}), 4u);
  EXPECT_EQ(find({2, 3}), 4u);
  EXPECT_EQ(find({0, 1, 3}), 0u);  // support 3 < 4
}

TEST(Apriori, MatchesBruteForceOnGeneratedData) {
  const HorizontalDatabase db = small_quest_db();
  for (Count minsup : {3u, 5u, 10u, 30u}) {
    AprioriConfig config;
    config.minsup = minsup;
    const MiningResult mined = apriori(db, config);
    const MiningResult reference = brute_force_mine(db, minsup);
    EXPECT_TRUE(same_itemsets(mined, reference)) << "minsup=" << minsup;
  }
}

TEST(Apriori, TriangleAndHashTreeL2Agree) {
  const HorizontalDatabase db = small_quest_db();
  AprioriConfig triangle;
  triangle.minsup = 5;
  triangle.triangle_l2 = true;
  AprioriConfig tree;
  tree.minsup = 5;
  tree.triangle_l2 = false;
  EXPECT_TRUE(same_itemsets(apriori(db, triangle), apriori(db, tree)));
}

TEST(Apriori, PruningDoesNotChangeTheAnswer) {
  const HorizontalDatabase db = small_quest_db();
  AprioriConfig pruned;
  pruned.minsup = 4;
  pruned.prune = true;
  AprioriConfig unpruned;
  unpruned.minsup = 4;
  unpruned.prune = false;
  EXPECT_TRUE(same_itemsets(apriori(db, pruned), apriori(db, unpruned)));
}

TEST(Apriori, BalancedTreeDoesNotChangeTheAnswer) {
  const HorizontalDatabase db = small_quest_db();
  AprioriConfig balanced;
  balanced.minsup = 4;
  balanced.balanced_tree = true;
  AprioriConfig plain;
  plain.minsup = 4;
  plain.balanced_tree = false;
  EXPECT_TRUE(same_itemsets(apriori(db, balanced), apriori(db, plain)));
}

TEST(Apriori, OneScanPerLevel) {
  AprioriConfig config;
  config.minsup = 4;
  const MiningResult result = apriori(handmade_db(), config);
  // One counting pass per reported level: L1, L2 (triangle), L3.
  EXPECT_GE(result.database_scans, 3u);
  EXPECT_EQ(result.database_scans, result.levels.size());
}

TEST(Apriori, HighSupportLeavesOnlySingletonsOrNothing) {
  AprioriConfig config;
  config.minsup = 100;  // nothing reaches this in 10 transactions
  const MiningResult result = apriori(handmade_db(), config);
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(Apriori, MinsupOneFindsEverything) {
  AprioriConfig config;
  config.minsup = 1;
  const MiningResult result = apriori(handmade_db(), config);
  const MiningResult reference = brute_force_mine(handmade_db(), 1);
  EXPECT_TRUE(same_itemsets(result, reference));
}

TEST(Apriori, EmptyDatabase) {
  HorizontalDatabase db;
  AprioriConfig config;
  config.minsup = 1;
  const MiningResult result = apriori(db, config);
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(Apriori, LevelStatsAreConsistent) {
  AprioriConfig config;
  config.minsup = 4;
  const MiningResult result = apriori(handmade_db(), config);
  for (const LevelStats& level : result.levels) {
    EXPECT_EQ(level.frequent, result.count_of_size(level.k)) << level.k;
  }
}

}  // namespace
}  // namespace eclat
