#include "rules/rules.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::handmade_db;
using testutil::small_quest_db;

MiningResult mined_handmade(Count minsup = 4) {
  AprioriConfig config;
  config.minsup = minsup;
  return apriori(handmade_db(), config);
}

TEST(SupportIndex, LooksUpFrequentItemsets) {
  const MiningResult result = mined_handmade();
  const SupportIndex index(result);
  EXPECT_EQ(index.support({0}), 7u);
  EXPECT_EQ(index.support({0, 1}), 6u);
  EXPECT_EQ(index.support({0, 1, 2}), 4u);
  EXPECT_EQ(index.support({3, 9}), 0u);  // not frequent
}

TEST(GenerateRules, ConfidenceIsSupportRatio) {
  const MiningResult result = mined_handmade();
  const auto rules =
      generate_rules(result, handmade_db().size(), RuleConfig{0.0});
  // Find {0} => {1}: support({0,1}) / support({0}) = 6/7.
  bool found = false;
  for (const AssociationRule& rule : rules) {
    if (rule.antecedent == Itemset{0} && rule.consequent == Itemset{1}) {
      EXPECT_NEAR(rule.confidence, 6.0 / 7.0, 1e-12);
      EXPECT_EQ(rule.support, 6u);
      // lift = conf / (support({1}) / |D|) = (6/7) / (7/10)
      EXPECT_NEAR(rule.lift, (6.0 / 7.0) / 0.7, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GenerateRules, RespectsMinConfidence) {
  const MiningResult result = mined_handmade();
  const auto all = generate_rules(result, 10, RuleConfig{0.0});
  const auto strict = generate_rules(result, 10, RuleConfig{0.9});
  EXPECT_LT(strict.size(), all.size());
  for (const AssociationRule& rule : strict) {
    EXPECT_GE(rule.confidence, 0.9);
  }
}

TEST(GenerateRules, SortedByConfidenceThenSupport) {
  const MiningResult result = mined_handmade();
  const auto rules = generate_rules(result, 10, RuleConfig{0.1});
  for (std::size_t i = 1; i < rules.size(); ++i) {
    const bool ordered =
        rules[i - 1].confidence > rules[i].confidence ||
        (rules[i - 1].confidence == rules[i].confidence &&
         rules[i - 1].support >= rules[i].support);
    EXPECT_TRUE(ordered) << i;
  }
}

TEST(GenerateRules, AntecedentAndConsequentPartitionTheItemset) {
  const MiningResult result = mined_handmade();
  const SupportIndex index(result);
  const auto rules = generate_rules(result, 10, RuleConfig{0.0});
  EXPECT_FALSE(rules.empty());
  for (const AssociationRule& rule : rules) {
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    Itemset whole;
    std::merge(rule.antecedent.begin(), rule.antecedent.end(),
               rule.consequent.begin(), rule.consequent.end(),
               std::back_inserter(whole));
    EXPECT_TRUE(is_sorted_itemset(whole));  // disjoint and sorted
    EXPECT_EQ(index.support(whole), rule.support);
  }
}

TEST(GenerateRules, MatchesBruteForceEnumeration) {
  // Independent reference: enumerate every (antecedent, consequent) split
  // of every frequent itemset directly.
  const HorizontalDatabase db = small_quest_db(300, 20, 5);
  AprioriConfig config;
  config.minsup = 5;
  const MiningResult result = apriori(db, config);
  const SupportIndex index(result);
  const double min_confidence = 0.6;

  std::size_t expected = 0;
  for (const FrequentItemset& f : result.itemsets) {
    const std::size_t n = f.items.size();
    if (n < 2) continue;
    for (std::uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
      Itemset antecedent;
      Itemset consequent;
      for (std::size_t i = 0; i < n; ++i) {
        ((mask >> i) & 1 ? antecedent : consequent).push_back(f.items[i]);
      }
      const double confidence =
          static_cast<double>(f.support) /
          static_cast<double>(index.support(antecedent));
      if (confidence >= min_confidence) ++expected;
    }
  }

  const auto rules = generate_rules(result, db.size(),
                                    RuleConfig{min_confidence});
  EXPECT_EQ(rules.size(), expected);
}

TEST(GenerateRules, NoRulesFromSingletonsOnly) {
  MiningResult result;
  result.itemsets = {{{0}, 5}, {{1}, 4}};
  EXPECT_TRUE(generate_rules(result, 10, RuleConfig{0.0}).empty());
}

TEST(RuleToString, ContainsBothSides) {
  AssociationRule rule{{1, 2}, {3}, 10, 0.75, 1.5};
  const std::string text = to_string(rule);
  EXPECT_NE(text.find("{1 2}"), std::string::npos);
  EXPECT_NE(text.find("{3}"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
}

}  // namespace
}  // namespace eclat
