#include "eclat/max_eclat.hpp"

#include <gtest/gtest.h>

#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::handmade_db;
using testutil::small_quest_db;

std::vector<FrequentItemset> reference_maximal(const HorizontalDatabase& db,
                                               Count minsup) {
  EclatConfig config;
  config.minsup = minsup;
  return maximal_of(eclat_sequential(db, config));
}

TEST(MaximalOf, KeepsOnlyUnsubsumedItemsets) {
  MiningResult result;
  result.itemsets = {{{0}, 9},     {{1}, 8},     {{0, 1}, 7},
                     {{0, 1, 2}, 4}, {{3}, 5},   {{2}, 6}};
  const auto maximal = maximal_of(result);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].items, (Itemset{3}));
  EXPECT_EQ(maximal[1].items, (Itemset{0, 1, 2}));
}

TEST(MaxEclat, HandmadeMaximalSets) {
  MaxEclatConfig config;
  config.minsup = 4;
  const MiningResult result = max_eclat(handmade_db(), config);
  const auto expected = reference_maximal(handmade_db(), 4);
  ASSERT_EQ(result.itemsets.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.itemsets[i], expected[i]);
  }
}

class MaxEclatSweep : public ::testing::TestWithParam<Count> {};

TEST_P(MaxEclatSweep, MatchesMaximalOfFullEclat) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  MaxEclatConfig config;
  config.minsup = GetParam();
  const MiningResult result = max_eclat(db, config);
  const auto expected = reference_maximal(db, GetParam());
  ASSERT_EQ(result.itemsets.size(), expected.size())
      << "minsup=" << GetParam();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.itemsets[i], expected[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Supports, MaxEclatSweep,
                         ::testing::Values(3u, 5u, 8u, 15u, 40u));

TEST(MaxEclat, TopElementShortcutFires) {
  // Four identical tid-lists: every class collapses via its top element.
  std::vector<Transaction> transactions;
  for (Tid t = 0; t < 6; ++t) transactions.push_back({t, {0, 1, 2, 3}});
  const HorizontalDatabase db(std::move(transactions), 4);
  MaxEclatConfig config;
  config.minsup = 3;
  MaxEclatStats stats;
  const MiningResult result = max_eclat(db, config, &stats);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0, 1, 2, 3}));
  EXPECT_EQ(result.itemsets[0].support, 6u);
  EXPECT_GT(stats.top_hits, 0u);
}

TEST(MaxEclat, EveryFrequentItemsetHasAMaximalSuperset) {
  const HorizontalDatabase db = small_quest_db();
  const Count minsup = 5;
  EclatConfig full_config;
  full_config.minsup = minsup;
  const MiningResult full = eclat_sequential(db, full_config);
  MaxEclatConfig config;
  config.minsup = minsup;
  const MiningResult maximal = max_eclat(db, config);

  for (const FrequentItemset& f : full.itemsets) {
    const bool covered = std::any_of(
        maximal.itemsets.begin(), maximal.itemsets.end(),
        [&](const FrequentItemset& m) { return is_subset(f.items, m.items); });
    EXPECT_TRUE(covered) << to_string(f.items);
  }
}

TEST(MaxEclat, MaximalFamilyIsAntichain) {
  const HorizontalDatabase db = small_quest_db(500, 25, 11);
  MaxEclatConfig config;
  config.minsup = 8;
  const MiningResult result = max_eclat(db, config);
  for (std::size_t i = 0; i < result.itemsets.size(); ++i) {
    for (std::size_t j = 0; j < result.itemsets.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(is_subset(result.itemsets[i].items,
                             result.itemsets[j].items))
          << i << " " << j;
    }
  }
}

TEST(MaxEclat, IsolatedSingletonIsMaximal) {
  // Item 4 is frequent but never co-occurs frequently with anything.
  std::vector<Transaction> transactions = {
      {0, {0, 1}}, {1, {0, 1}}, {2, {0, 1, 4}}, {3, {4}}, {4, {4}},
  };
  const HorizontalDatabase db(std::move(transactions), 5);
  MaxEclatConfig config;
  config.minsup = 2;
  const MiningResult result = max_eclat(db, config);
  bool found_singleton_four = false;
  for (const FrequentItemset& f : result.itemsets) {
    if (f.items == Itemset{4}) found_singleton_four = true;
  }
  EXPECT_TRUE(found_singleton_four);
}

TEST(MaxEclat, EmptyDatabase) {
  MaxEclatConfig config;
  config.minsup = 1;
  EXPECT_TRUE(max_eclat(HorizontalDatabase{}, config).itemsets.empty());
}

}  // namespace
}  // namespace eclat
