#include "apriori/candidate_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace eclat {
namespace {

TEST(JoinLevel, ReproducesPaperExample) {
  // Paper §2: L2 = {AB, AC, AD, AE, BC, BD, BE, DE} with A=0..E=4
  // => C3 = {ABC, ABD, ABE, ACD, ACE, ADE, BCD, BCE, BDE}.
  const std::vector<Itemset> l2 = {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                   {1, 2}, {1, 3}, {1, 4}, {3, 4}};
  const std::vector<Itemset> c3 = join_level(l2);
  const std::vector<Itemset> expected = {{0, 1, 2}, {0, 1, 3}, {0, 1, 4},
                                         {0, 2, 3}, {0, 2, 4}, {0, 3, 4},
                                         {1, 2, 3}, {1, 2, 4}, {1, 3, 4}};
  EXPECT_EQ(c3, expected);
}

TEST(JoinLevel, EmptyAndSingletonLevels) {
  EXPECT_TRUE(join_level(std::vector<Itemset>{}).empty());
  EXPECT_TRUE(join_level(std::vector<Itemset>{{1, 2}}).empty());
}

TEST(JoinLevel, JoinsOneItemsets) {
  const std::vector<Itemset> l1 = {{1}, {3}, {7}};
  const std::vector<Itemset> c2 = join_level(l1);
  const std::vector<Itemset> expected = {{1, 3}, {1, 7}, {3, 7}};
  EXPECT_EQ(c2, expected);
}

TEST(JoinLevel, OnlyJoinsSharedPrefixRuns) {
  const std::vector<Itemset> level = {{1, 2, 3}, {1, 2, 5}, {1, 4, 5}};
  const std::vector<Itemset> result = join_level(level);
  // {1,2,3} and {1,2,5} share prefix {1,2}; {1,4,5} is alone.
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (Itemset{1, 2, 3, 5}));
}

TEST(PruneCandidates, DropsCandidatesWithInfrequentSubsets) {
  // Paper §2 continued: with DE missing from L2, BDE (and ADE) would be
  // pruned from C3.
  const std::vector<Itemset> l2 = {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                   {1, 2}, {1, 3}, {1, 4}};  // no {3,4}
  ItemsetSet frequent(l2.begin(), l2.end());
  std::vector<Itemset> candidates = {{0, 1, 2}, {0, 3, 4}, {1, 3, 4}};
  const std::vector<Itemset> kept =
      prune_candidates(std::move(candidates), frequent);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], (Itemset{0, 1, 2}));
}

TEST(PruneCandidates, KeepsAllWhenAllSubsetsFrequent) {
  const std::vector<Itemset> l2 = {{0, 1}, {0, 2}, {1, 2}};
  ItemsetSet frequent(l2.begin(), l2.end());
  std::vector<Itemset> candidates = {{0, 1, 2}};
  EXPECT_EQ(prune_candidates(std::move(candidates), frequent).size(), 1u);
}

TEST(GenerateCandidates, PruneToggle) {
  const std::vector<Itemset> l2 = {{0, 1}, {0, 2}, {0, 3},
                                   {1, 2}};  // {1,3} and {2,3} missing
  const std::vector<Itemset> unpruned = generate_candidates(l2, false);
  const std::vector<Itemset> pruned = generate_candidates(l2, true);
  // Join gives {0,1,2}, {0,1,3}, {0,2,3}; pruning kills the last two
  // (missing subsets {1,3} / {2,3}).
  EXPECT_EQ(unpruned.size(), 3u);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0], (Itemset{0, 1, 2}));
}

TEST(GenerateCandidates, PruneSkippedForL1Join) {
  // Joining 1-itemsets yields 2-candidates whose 1-subsets are trivially
  // the inputs; prune must not be attempted on a sub-2 level.
  const std::vector<Itemset> l1 = {{1}, {2}};
  EXPECT_EQ(generate_candidates(l1, true).size(), 1u);
}

TEST(ItemsetHash, DistinctSetsUsuallyDiffer) {
  ItemsetHash hash;
  EXPECT_NE(hash({1, 2, 3}), hash({1, 2, 4}));
  EXPECT_NE(hash({1}), hash({2}));
  EXPECT_EQ(hash({5, 9}), hash({5, 9}));
}

TEST(CandidateGen, EveryCandidateSortedAndUnique) {
  std::vector<Itemset> level;
  for (Item a = 0; a < 8; ++a) {
    for (Item b = a + 1; b < 8; ++b) level.push_back({a, b});
  }
  const std::vector<Itemset> candidates = generate_candidates(level, true);
  for (const Itemset& candidate : candidates) {
    EXPECT_TRUE(is_sorted_itemset(candidate));
    EXPECT_EQ(candidate.size(), 3u);
  }
  std::vector<Itemset> copy = candidates;
  std::sort(copy.begin(), copy.end(), lex_less);
  EXPECT_EQ(std::unique(copy.begin(), copy.end()), copy.end());
  // Complete graph on 8 items: all C(8,3) = 56 triples survive pruning.
  EXPECT_EQ(candidates.size(), 56u);
}

}  // namespace
}  // namespace eclat
