#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/clock.hpp"

namespace eclat {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (std::string& arg : args) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags flags = parse({"--name=value", "--count=42"});
  EXPECT_EQ(flags.get("name", ""), "value");
  EXPECT_EQ(flags.get_int("count", 0), 42);
}

TEST(Flags, SpaceSyntax) {
  const Flags flags = parse({"--name", "value"});
  EXPECT_EQ(flags.get("name", ""), "value");
}

TEST(Flags, BareFlagIsTrue) {
  const Flags flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_FALSE(flags.has("quiet"));
}

TEST(Flags, BoolFalseSpellings) {
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
}

TEST(Flags, Doubles) {
  const Flags flags = parse({"--support=0.001"});
  EXPECT_DOUBLE_EQ(flags.get_double("support", 1.0), 0.001);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"input.txt", "--out=x", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get("a", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("b", -7), -7);
  EXPECT_FALSE(flags.get_bool("c", false));
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  const Flags flags = parse({"--verbose", "--out=x"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get("out", ""), "x");
}

TEST(Flags, ChoiceAcceptsListedValues) {
  constexpr std::string_view kKernels[] = {"merge", "gallop", "auto"};
  EXPECT_EQ(parse({"--kernel=gallop"}).get_choice("kernel", kKernels, "merge"),
            "gallop");
  EXPECT_EQ(parse({}).get_choice("kernel", kKernels, "merge"), "merge");
}

TEST(Flags, ChoiceRejectsUnknownValue) {
  constexpr std::string_view kKernels[] = {"merge", "gallop"};
  EXPECT_THROW(parse({"--kernel=simd"}).get_choice("kernel", kKernels,
                                                   "merge"),
               std::invalid_argument);
}

TEST(Clock, MonotonicWallClock) {
  const std::int64_t a = wall_ns();
  const std::int64_t b = wall_ns();
  EXPECT_GE(b, a);
}

TEST(Clock, ThreadCpuAdvancesUnderWork) {
  CpuStopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.elapsed_ns(), 0);
}

TEST(Clock, WallStopwatchSeconds) {
  WallStopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
  EXPECT_LT(watch.elapsed_seconds(), 10.0);
}

}  // namespace
}  // namespace eclat
