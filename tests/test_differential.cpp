// Randomized differential testing: every sequential algorithm in the
// library must produce the identical frequent-itemset family on randomly
// parameterized databases. Any divergence pinpoints a bug in exactly one
// implementation (they share almost no code paths: hash trees vs tid-list
// intersections vs diffsets vs chunked local mining vs hash filtering vs
// clique clustering).
#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "apriori/dhp.hpp"
#include "clique/clique_eclat.hpp"
#include "common/rng.hpp"
#include "eclat/eclat_seq.hpp"
#include "eclat/max_eclat.hpp"
#include "partition/partition.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

struct DifferentialCase {
  std::uint64_t seed;
  std::size_t transactions;
  Item items;
  std::size_t patterns;
  double pattern_length;
  double transaction_length;
  Count minsup;
};

/// Derive a pseudo-random but reproducible case from an index.
DifferentialCase make_case(std::uint64_t index) {
  Rng rng(0xD1FFu * (index + 1));
  DifferentialCase c;
  c.seed = rng.next();
  c.transactions = 150 + rng.below(400);
  c.items = static_cast<Item>(12 + rng.below(40));
  c.patterns = 4 + rng.below(12);
  c.pattern_length = 2.0 + rng.uniform() * 3.0;
  c.transaction_length = 4.0 + rng.uniform() * 5.0;
  c.minsup = static_cast<Count>(3 + rng.below(12));
  return c;
}

HorizontalDatabase make_db(const DifferentialCase& c) {
  gen::QuestConfig config;
  config.num_transactions = c.transactions;
  config.num_items = c.items;
  config.num_patterns = c.patterns;
  config.avg_pattern_length = c.pattern_length;
  config.avg_transaction_length = c.transaction_length;
  config.seed = c.seed;
  return gen::QuestGenerator(config).generate();
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, AllSequentialAlgorithmsAgree) {
  const DifferentialCase c = make_case(GetParam());
  const HorizontalDatabase db = make_db(c);

  AprioriConfig apriori_config;
  apriori_config.minsup = c.minsup;
  const MiningResult reference = apriori(db, apriori_config);

  {
    EclatConfig config;
    config.minsup = c.minsup;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat tidsets";
  }
  {
    EclatConfig config;
    config.minsup = c.minsup;
    config.use_diffsets = true;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat diffsets";
  }
  {
    EclatConfig config;
    config.minsup = c.minsup;
    config.kernel = IntersectKernel::kGallop;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat gallop";
  }
  {
    EclatConfig config;
    config.minsup = c.minsup;
    config.kernel = IntersectKernel::kBitset;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat bitset";
  }
  {
    EclatConfig config;
    config.minsup = c.minsup;
    config.kernel = IntersectKernel::kAuto;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat auto";
  }
  {
    EclatConfig config;
    config.minsup = c.minsup;
    config.kernel = IntersectKernel::kAuto;
    config.use_diffsets = true;
    EXPECT_TRUE(
        testutil::same_itemsets(eclat_sequential(db, config), reference))
        << "eclat auto diffsets";
  }
  {
    DhpConfig config;
    config.minsup = c.minsup;
    config.hash_buckets = 512;  // heavy collisions on purpose
    EXPECT_TRUE(testutil::same_itemsets(dhp(db, config), reference))
        << "dhp";
  }
  {
    PartitionConfig config;
    config.minsup = c.minsup;
    config.chunks = 1 + GetParam() % 7;
    EXPECT_TRUE(
        testutil::same_itemsets(partition_mine(db, config), reference))
        << "partition";
  }
  {
    CliqueEclatConfig config;
    config.minsup = c.minsup;
    EXPECT_TRUE(testutil::same_itemsets(clique_eclat(db, config), reference))
        << "clique";
  }
  {
    // MaxEclat must equal the maximal elements of the reference.
    MaxEclatConfig config;
    config.minsup = c.minsup;
    const MiningResult maximal = max_eclat(db, config);
    const auto expected = maximal_of(reference);
    ASSERT_EQ(maximal.itemsets.size(), expected.size()) << "max-eclat";
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(maximal.itemsets[i], expected[i]) << "max-eclat " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace eclat
