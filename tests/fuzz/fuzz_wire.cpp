// libFuzzer harness for wire::Reader: arbitrary bytes are drained through
// both record shapes par_eclat ships over the wire. Any outcome other than
// "parsed" or "wire::Error thrown" — an out-of-bounds read, a forged-length
// allocation, a non-Error exception — is a finding.
//
// Under ECLAT_SANITIZE=fuzzer (Clang) this links the libFuzzer driver and
// runs open-ended:   ./fuzz_wire -max_total_time=60 corpus/
// Everywhere else the seeded main() below replays the deterministic
// mutation model from tests/test_wire_fuzz.cpp through the very same entry
// point, so the harness stays built and exercised on every toolchain.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "parallel/wire.hpp"
#include "vertical/vertical_db.hpp"

namespace {

using eclat::Count;
using eclat::Item;
using eclat::PairKey;
using eclat::Tid;

// Mirror of the par_eclat transformation-phase payload: a sequence of
// (PairKey, tid-vector) records, drained until the blob is exhausted.
void drain_pair_records(const eclat::mc::Blob& blob) {
  eclat::wire::Reader reader(blob);
  while (!reader.done()) {
    (void)reader.get<PairKey>();
    (void)reader.get_vector<Tid>();
  }
}

// Mirror of the reduction-phase payload: a count-prefixed sequence of
// (itemset-vector, support) records.
void drain_itemset_records(const eclat::mc::Blob& blob) {
  eclat::wire::Reader reader(blob);
  const auto count = reader.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    (void)reader.get_vector<Item>();
    (void)reader.get<Count>();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const eclat::mc::Blob blob(data, data + size);
  try {
    drain_pair_records(blob);
  } catch (const eclat::wire::Error&) {
    // Malformed input detected and rejected: exactly the contract.
  }
  try {
    drain_itemset_records(blob);
  } catch (const eclat::wire::Error&) {
  }
  return 0;
}

#ifndef ECLAT_FUZZ_LIBFUZZER
// Seeded standalone driver: generate valid blobs, mutate them, and feed the
// libFuzzer entry point. Deterministic in (seed, iterations).
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"

namespace {

eclat::mc::Blob valid_pair_blob(eclat::Rng& rng) {
  eclat::wire::Writer writer;
  const std::size_t records = rng.below(8);
  for (std::size_t r = 0; r < records; ++r) {
    writer.put(eclat::make_pair_key(static_cast<Item>(rng.below(100)),
                                    static_cast<Item>(rng.below(100))));
    std::vector<Tid> tids(rng.below(32));
    for (Tid& tid : tids) tid = static_cast<Tid>(rng.below(1 << 20));
    writer.put_vector(tids);
  }
  return writer.take();
}

eclat::mc::Blob valid_itemset_blob(eclat::Rng& rng) {
  eclat::wire::Writer writer;
  const std::uint64_t records = rng.below(8);
  writer.put(records);
  for (std::uint64_t r = 0; r < records; ++r) {
    std::vector<Item> items(1 + rng.below(6));
    for (Item& item : items) item = static_cast<Item>(rng.below(1000));
    writer.put_vector(items);
    writer.put<Count>(rng.below(10000));
  }
  return writer.take();
}

/// Apply one of: truncation, byte flips, or a splice of random bytes.
eclat::mc::Blob mutate(eclat::mc::Blob blob, eclat::Rng& rng) {
  switch (rng.below(3)) {
    case 0:  // truncate
      if (!blob.empty()) blob.resize(rng.below(blob.size()));
      break;
    case 1: {  // flip up to 8 bytes
      if (blob.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        blob[rng.below(blob.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      break;
    }
    default: {  // splice random garbage at a random offset
      const std::size_t at = blob.empty() ? 0 : rng.below(blob.size());
      std::vector<std::uint8_t> garbage(rng.below(24));
      for (std::uint8_t& byte : garbage) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
      blob.insert(blob.begin() + static_cast<std::ptrdiff_t>(at),
                  garbage.begin(), garbage.end());
      break;
    }
  }
  return blob;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 2000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0xA11CE;
  eclat::Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    const eclat::mc::Blob blob = mutate(
        (i % 2 == 0) ? valid_pair_blob(rng) : valid_itemset_blob(rng), rng);
    LLVMFuzzerTestOneInput(blob.data(), blob.size());
  }
  std::printf("fuzz_wire: %d seeded inputs, seed=0x%llx, no crashes\n",
              iterations, static_cast<unsigned long long>(seed));
  return 0;
}
#endif  // ECLAT_FUZZ_LIBFUZZER
