// libFuzzer harness for the ECLATHDB binary reader: arbitrary bytes fed
// through read_binary must either parse into a database that satisfies the
// reader's own invariants or raise std::runtime_error — never crash, never
// allocate unbounded memory from a forged header count.
//
// Under ECLAT_SANITIZE=fuzzer (Clang) this links the libFuzzer driver and
// runs open-ended:   ./fuzz_io -max_total_time=60 corpus/
// Everywhere else the seeded main() below replays the deterministic
// mutation model from tests/test_io_fuzz.cpp through the same entry point.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "data/horizontal.hpp"
#include "data/io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes, std::ios::binary);
  try {
    const eclat::HorizontalDatabase db = eclat::read_binary(in);
    // Input that survives parsing must still satisfy the reader's own
    // invariants — check the strongest one.
    for (const eclat::Transaction& t : db.transactions()) {
      for (const eclat::Item item : t.items) {
        ECLAT_CHECK(item < db.num_items());
      }
    }
  } catch (const std::runtime_error&) {
    // Malformed input detected and rejected: exactly the contract.
  }
  return 0;
}

#ifndef ECLAT_FUZZ_LIBFUZZER
// Seeded standalone driver: serialize valid databases, mutate the bytes,
// and feed the libFuzzer entry point. Deterministic in (seed, iterations).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"

namespace {

/// Small random database with the invariants write_binary expects:
/// strictly increasing duplicate-free items in [0, num_items).
eclat::HorizontalDatabase valid_db(eclat::Rng& rng) {
  const eclat::Item num_items = static_cast<eclat::Item>(4 + rng.below(60));
  std::vector<eclat::Transaction> transactions;
  const std::size_t rows = rng.below(12);
  for (std::size_t i = 0; i < rows; ++i) {
    eclat::Itemset items;
    for (eclat::Item item = 0; item < num_items; ++item) {
      if (rng.below(4) == 0) items.push_back(item);
    }
    transactions.push_back(
        eclat::Transaction{static_cast<eclat::Tid>(i), std::move(items)});
  }
  return eclat::HorizontalDatabase(std::move(transactions), num_items);
}

std::string serialize(const eclat::HorizontalDatabase& db) {
  std::ostringstream out(std::ios::binary);
  eclat::write_binary(db, out);
  return out.str();
}

/// Apply one of: truncation, byte flips, or a splice of random bytes —
/// the same mutation model as the wire fuzzer.
std::string mutate(std::string bytes, eclat::Rng& rng) {
  switch (rng.below(3)) {
    case 0:  // truncate
      if (!bytes.empty()) bytes.resize(rng.below(bytes.size()));
      break;
    case 1: {  // flip up to 8 bytes
      if (bytes.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<char>(1 + rng.below(255));
      }
      break;
    }
    default: {  // splice random garbage at a random offset
      const std::size_t at = bytes.empty() ? 0 : rng.below(bytes.size());
      std::string garbage(rng.below(24), '\0');
      for (char& byte : garbage) {
        byte = static_cast<char>(rng.below(256));
      }
      bytes.insert(at, garbage);
      break;
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 2000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0xECDB;
  eclat::Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    const std::string bytes = mutate(serialize(valid_db(rng)), rng);
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("fuzz_io: %d seeded inputs, seed=0x%llx, no crashes\n",
              iterations, static_cast<unsigned long long>(seed));
  return 0;
}
#endif  // ECLAT_FUZZ_LIBFUZZER
