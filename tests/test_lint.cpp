// Golden tests for the eclat-lint binary: run it over the corpus trees
// under tests/lint_corpus/ and over the repo itself, asserting exit codes
// and (for the dirty tree) byte-exact JSON against expected.json.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(ECLAT_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  RunResult r;
  if (!pipe) return r;
  std::array<char, 4096> buf{};
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && (status & 0x7f) == 0) ? ((status >> 8) & 0xff)
                                                      : -1;
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const std::string kCorpus = ECLAT_LINT_CORPUS;
const std::string kRepoRoot = ECLAT_LINT_REPO_ROOT;

}  // namespace

TEST(Lint, DirtyCorpusJsonMatchesGolden) {
  const RunResult r = run_lint("--root " + kCorpus + "/dirty --json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string expected = read_file(kCorpus + "/expected.json");
  EXPECT_EQ(r.output, expected)
      << "eclat-lint JSON drifted from tests/lint_corpus/expected.json; "
         "if the analyzer change is intentional, regenerate the golden and "
         "review the diff";
}

TEST(Lint, DirtyCorpusCoversEveryAnalyzer) {
  const RunResult r = run_lint("--root " + kCorpus + "/dirty --json");
  EXPECT_EQ(r.exit_code, 1);
  for (const char* id :
       {"det-wallclock", "det-random", "det-thread", "det-ptr-key",
        "det-unordered-iter", "layer-violation", "layer-cycle",
        "contract-assert", "contract-abort", "contract-cast",
        "contract-memcpy", "robust-catch", "isa-intrinsics",
        "lint-suppression"}) {
    EXPECT_NE(r.output.find(std::string("\"id\": \"") + id + "\""),
              std::string::npos)
        << "dirty corpus no longer triggers rule " << id;
  }
}

TEST(Lint, CleanCorpusPassesWithJustifiedSuppressions) {
  const RunResult r = run_lint("--root " + kCorpus + "/clean");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("3 suppressed"), std::string::npos) << r.output;
}

TEST(Lint, UnjustifiedSuppressionDoesNotSilence) {
  const RunResult r = run_lint("--root " + kCorpus + "/dirty --json");
  // bad_suppress.cpp: the bare allow() and the typo'd id must each yield a
  // lint-suppression finding AND leave the underlying det-thread finding live.
  EXPECT_NE(r.output.find("suppression without a justification"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unknown rule id 'det-thred'"), std::string::npos)
      << r.output;
}

TEST(Lint, RepoTreeIsClean) {
  // The acceptance criterion as a test: zero unsuppressed findings on the
  // actual source tree. New violations must be fixed or justified, not merged.
  const RunResult r = run_lint("--root " + kRepoRoot + " --quiet");
  EXPECT_EQ(r.exit_code, 0)
      << "eclat-lint found unsuppressed violations in the repo:\n"
      << r.output;
}

TEST(Lint, BadRootExitsTwo) {
  const RunResult r = run_lint("--root " + kCorpus + "/no-such-dir");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}
