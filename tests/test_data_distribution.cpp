#include "parallel/data_distribution.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "parallel/count_distribution.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(DataDistribution, SingleProcessorMatchesApriori) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{1, 1});
  DataDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = data_distribution(cluster, db, config);

  AprioriConfig sequential;
  sequential.minsup = 5;
  EXPECT_TRUE(same_itemsets(output.result, apriori(db, sequential)));
}

class DataDistributionTopology
    : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(DataDistributionTopology, ResultIndependentOfTopology) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig sequential;
  sequential.minsup = 5;
  const MiningResult reference = apriori(db, sequential);

  mc::Cluster cluster(GetParam());
  DataDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = data_distribution(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference)) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DataDistributionTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{2, 1},
                      mc::Topology{2, 2}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

TEST(DataDistribution, PaysMoreCommunicationThanCountDistribution) {
  // The paper's §3.1 point: DD ships the whole database around every
  // iteration, CD only ships counts.
  const HorizontalDatabase db = small_quest_db(600, 30, 5);

  mc::Cluster dd_cluster(mc::Topology{4, 1});
  DataDistributionConfig dd_config;
  dd_config.minsup = 5;
  const ParallelOutput dd = data_distribution(dd_cluster, db, dd_config);

  mc::Cluster cd_cluster(mc::Topology{4, 1});
  CountDistributionConfig cd_config;
  cd_config.minsup = 5;
  const ParallelOutput cd = count_distribution(cd_cluster, db, cd_config);

  EXPECT_TRUE(same_itemsets(dd.result, cd.result));
  EXPECT_GT(dd.mc_bytes, cd.mc_bytes);
}

}  // namespace
}  // namespace eclat::par
