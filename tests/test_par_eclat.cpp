#include "parallel/par_eclat.hpp"

#include <gtest/gtest.h>

#include <string>

#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(ParEclat, SingleProcessorMatchesSequentialEclat) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{1, 1});
  ParEclatConfig config;
  config.minsup = 5;
  const ParallelOutput output = par_eclat(cluster, db, config);

  EclatConfig sequential;
  sequential.minsup = 5;
  EXPECT_TRUE(same_itemsets(output.result, eclat_sequential(db, sequential)));
}

class ParEclatTopology : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(ParEclatTopology, ResultIndependentOfTopology) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  EclatConfig sequential;
  sequential.minsup = 6;
  const MiningResult reference = eclat_sequential(db, sequential);

  mc::Cluster cluster(GetParam());
  ParEclatConfig config;
  config.minsup = 6;
  const ParallelOutput output = par_eclat(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference)) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ParEclatTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{1, 2},
                      mc::Topology{2, 1}, mc::Topology{2, 2},
                      mc::Topology{4, 2}, mc::Topology{2, 4},
                      mc::Topology{8, 1}, mc::Topology{8, 4}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

TEST(ParEclat, AllScheduleHeuristicsSameAnswer) {
  const HorizontalDatabase db = small_quest_db();
  ParEclatConfig greedy;
  greedy.minsup = 5;
  greedy.schedule = ScheduleHeuristic::kGreedyWeight;
  mc::Cluster a(mc::Topology{2, 2});
  const MiningResult reference = par_eclat(a, db, greedy).result;

  for (const ScheduleHeuristic heuristic :
       {ScheduleHeuristic::kRoundRobin, ScheduleHeuristic::kGreedySupport}) {
    ParEclatConfig config;
    config.minsup = 5;
    config.schedule = heuristic;
    mc::Cluster b(mc::Topology{2, 2});
    EXPECT_TRUE(same_itemsets(par_eclat(b, db, config).result, reference))
        << static_cast<int>(heuristic);
  }
}

TEST(ParEclat, PaperModeSkipsSingletons) {
  const HorizontalDatabase db = handmade_db();
  mc::Cluster cluster(mc::Topology{2, 1});
  ParEclatConfig config;
  config.minsup = 4;
  config.include_singletons = false;
  const ParallelOutput output = par_eclat(cluster, db, config);
  EXPECT_EQ(output.result.count_of_size(1), 0u);
  EXPECT_GT(output.result.count_of_size(2), 0u);
}

TEST(ParEclat, ReportsAllFourPhases) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 5;
  const ParallelOutput output = par_eclat(cluster, db, config);
  ASSERT_EQ(output.phase_seconds.size(), 4u);
  for (const char* phase : {"initialization", "transformation",
                            "asynchronous", "reduction"}) {
    ASSERT_TRUE(output.phase_seconds.count(phase)) << phase;
    EXPECT_GE(output.phase_seconds.at(phase), 0.0) << phase;
  }
  const double sum = output.phase_seconds.at("initialization") +
                     output.phase_seconds.at("transformation") +
                     output.phase_seconds.at("asynchronous") +
                     output.phase_seconds.at("reduction");
  EXPECT_NEAR(sum, output.total_seconds, 1e-9);
  EXPECT_NEAR(output.setup_seconds(),
              output.phase_seconds.at("initialization") +
                  output.phase_seconds.at("transformation"),
              1e-12);
}

TEST(ParEclat, ThreeScansClaim) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 5;
  const ParallelOutput output = par_eclat(cluster, db, config);
  EXPECT_EQ(output.result.database_scans, 3u);
}

TEST(ParEclat, DeterministicMakespan) {
  const HorizontalDatabase db = small_quest_db();
  ParEclatConfig config;
  config.minsup = 5;
  // Virtual time is dominated by modeled costs; repeated runs must agree
  // on the communication/disk part. Compute time is measured, so allow a
  // modest tolerance.
  mc::Cluster a(mc::Topology{2, 2});
  mc::Cluster b(mc::Topology{2, 2});
  const double first = par_eclat(a, db, config).total_seconds;
  const double second = par_eclat(b, db, config).total_seconds;
  EXPECT_NEAR(first, second, 0.5 * std::max(first, second));
}

TEST(ParEclat, NoFrequentPairsStillTerminates) {
  // Every item appears once: no frequent 2-itemsets at minsup 2.
  std::vector<Transaction> transactions;
  for (Tid t = 0; t < 8; ++t) {
    transactions.push_back(
        {t, {static_cast<Item>(2 * t), static_cast<Item>(2 * t + 1)}});
  }
  const HorizontalDatabase db(std::move(transactions), 16);
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 2;
  const ParallelOutput output = par_eclat(cluster, db, config);
  EXPECT_EQ(output.result.count_of_size(2), 0u);
  EXPECT_EQ(output.result.count_of_size(3), 0u);
}

TEST(ParEclat, McTrafficIsAccounted) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 5;
  const ParallelOutput output = par_eclat(cluster, db, config);
  EXPECT_GT(output.mc_bytes, 0u);
  EXPECT_GT(output.mc_messages, 0u);
}

}  // namespace
}  // namespace eclat::par
