// Shared helpers for the test suite: a brute-force reference miner and
// canned small databases.
#pragma once

#include <algorithm>
#include <map>
#include <string>

#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "gen/quest.hpp"
#include "mc/topology.hpp"

namespace eclat::testutil {

/// gtest name generator for topology-parameterised suites ("H2P4").
/// Built with += rather than chained operator+, which trips a GCC 12
/// -Wrestrict false positive in the inlined char_traits copy.
inline std::string topology_test_name(const mc::Topology& topology) {
  std::string name = "H";
  name += std::to_string(topology.hosts);
  name += "P";
  name += std::to_string(topology.procs_per_host);
  return name;
}

/// Exhaustive reference miner: enumerates every itemset that appears in at
/// least one transaction (via subset growth) and keeps the frequent ones.
/// Exponential — use only on small databases.
inline MiningResult brute_force_mine(const HorizontalDatabase& db,
                                     Count minsup) {
  std::map<Itemset, Count> counts;
  // Level-wise growth restricted to itemsets present in the data keeps the
  // enumeration tractable.
  std::vector<Itemset> level;
  for (Item item = 0; item < db.num_items(); ++item) {
    Count count = 0;
    for (const Transaction& t : db.transactions()) {
      if (std::binary_search(t.items.begin(), t.items.end(), item)) ++count;
    }
    if (count >= minsup) {
      counts[{item}] = count;
      level.push_back({item});
    }
  }
  while (!level.empty()) {
    std::map<Itemset, Count> next_counts;
    for (const Itemset& base : level) {
      for (Item item = base.back() + 1; item < db.num_items(); ++item) {
        Itemset candidate = base;
        candidate.push_back(item);
        Count count = 0;
        for (const Transaction& t : db.transactions()) {
          if (is_subset(candidate, t.items)) ++count;
        }
        if (count >= minsup) next_counts[candidate] = count;
      }
    }
    level.clear();
    for (const auto& [itemset, count] : next_counts) {
      counts[itemset] = count;
      level.push_back(itemset);
    }
  }

  MiningResult result;
  for (const auto& [itemset, count] : counts) {
    result.itemsets.push_back(FrequentItemset{itemset, count});
  }
  normalize(result);
  return result;
}

/// Small correlated database for cross-validation tests.
inline HorizontalDatabase small_quest_db(std::size_t transactions = 300,
                                         Item items = 25,
                                         std::uint64_t seed = 42) {
  gen::QuestConfig config;
  config.num_transactions = transactions;
  config.num_items = items;
  config.num_patterns = 8;
  config.avg_pattern_length = 3;
  config.avg_transaction_length = 6;
  config.seed = seed;
  return gen::QuestGenerator(config).generate();
}

/// Hand-built database with known frequent itemsets.
inline HorizontalDatabase handmade_db() {
  std::vector<Transaction> transactions = {
      {0, {0, 1, 2, 3}}, {1, {0, 1, 2}}, {2, {0, 1}},    {3, {0, 2, 3}},
      {4, {1, 2}},       {5, {0, 1, 2}}, {6, {3}},       {7, {0, 1, 3}},
      {8, {0, 1, 2, 3}}, {9, {2, 3}},
  };
  return HorizontalDatabase(std::move(transactions), 4);
}

inline bool same_itemsets(const MiningResult& a, const MiningResult& b) {
  if (a.itemsets.size() != b.itemsets.size()) return false;
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    if (a.itemsets[i] != b.itemsets[i]) return false;
  }
  return true;
}

}  // namespace eclat::testutil
