#include "eclat/equivalence.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace eclat {
namespace {

std::vector<PairKey> paper_l2() {
  // Paper §4.1: L2 = {AB, AC, AD, AE, BC, BD, BE, DE}, A=0..E=4.
  return {make_pair_key(0, 1), make_pair_key(0, 2), make_pair_key(0, 3),
          make_pair_key(0, 4), make_pair_key(1, 2), make_pair_key(1, 3),
          make_pair_key(1, 4), make_pair_key(3, 4)};
}

TEST(EquivalenceClass, PartitionMatchesPaperExample) {
  // Expected: S_A = {AB, AC, AD, AE}, S_B = {BC, BD, BE}, S_D = {DE}.
  const auto classes = partition_into_classes(paper_l2());
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].prefix, 0u);
  EXPECT_EQ(classes[0].members, (std::vector<Item>{1, 2, 3, 4}));
  EXPECT_EQ(classes[1].prefix, 1u);
  EXPECT_EQ(classes[1].members, (std::vector<Item>{2, 3, 4}));
  EXPECT_EQ(classes[2].prefix, 3u);
  EXPECT_EQ(classes[2].members, (std::vector<Item>{4}));
}

TEST(EquivalenceClass, WeightsAreChoose2) {
  const auto classes = partition_into_classes(paper_l2());
  EXPECT_EQ(classes[0].weight(), 6u);  // C(4,2)
  EXPECT_EQ(classes[1].weight(), 3u);  // C(3,2)
  EXPECT_EQ(classes[2].weight(), 0u);  // singleton: no candidates
}

TEST(EquivalenceClass, PairKeysRebuildOriginalPairs) {
  const auto classes = partition_into_classes(paper_l2());
  std::vector<PairKey> rebuilt;
  for (const auto& eq_class : classes) {
    const auto keys = eq_class.pair_keys();
    rebuilt.insert(rebuilt.end(), keys.begin(), keys.end());
  }
  EXPECT_EQ(rebuilt, paper_l2());
}

TEST(EquivalenceClass, PartitionRejectsUnsortedInput) {
  std::vector<PairKey> unsorted = {make_pair_key(2, 3), make_pair_key(0, 1)};
  EXPECT_THROW(partition_into_classes(unsorted), std::invalid_argument);
}

TEST(EquivalenceClass, EmptyInputGivesNoClasses) {
  EXPECT_TRUE(partition_into_classes(std::vector<PairKey>{}).empty());
}

TEST(ScheduleGreedy, AssignsHeaviestFirstToLeastLoaded) {
  std::vector<EquivalenceClass> classes = {
      {0, {1, 2, 3, 4}},  // weight 6
      {1, {2, 3, 4}},     // weight 3
      {2, {3, 4}},        // weight 1
      {3, {4}},           // weight 0
  };
  const auto assignment = schedule_greedy(classes, 2);
  // Heaviest (6) -> proc 0; next (3) -> proc 1; next (1) -> proc 1 (load 3
  // < 6); weight-0 -> proc 1 (load 4 < 6).
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 1u);
  EXPECT_EQ(assignment[2], 1u);
  EXPECT_EQ(assignment[3], 1u);
}

TEST(ScheduleGreedy, TiesGoToSmallerProcessorId) {
  std::vector<EquivalenceClass> classes = {
      {0, {1, 2}},  // weight 1
      {1, {2, 3}},  // weight 1
  };
  const auto assignment = schedule_greedy(classes, 3);
  EXPECT_EQ(assignment[0], 0u);  // all empty: smallest id wins
  EXPECT_EQ(assignment[1], 1u);  // proc 0 now loaded; tie between 1 and 2
}

TEST(ScheduleGreedy, SingleProcessorTakesEverything) {
  std::vector<EquivalenceClass> classes = {{0, {1, 2}}, {1, {2, 3}}};
  const auto assignment = schedule_greedy(classes, 1);
  for (std::size_t owner : assignment) EXPECT_EQ(owner, 0u);
}

TEST(ScheduleGreedy, RejectsZeroProcessors) {
  std::vector<EquivalenceClass> classes = {{0, {1}}};
  EXPECT_THROW(schedule_greedy(classes, 0), std::invalid_argument);
}

TEST(ScheduleGreedy, BalancesBetterThanRoundRobinOnSkewedClasses) {
  // Many small classes and a few huge ones, adversarially ordered so
  // round-robin piles the big ones onto the same processor.
  std::vector<EquivalenceClass> classes;
  for (int rep = 0; rep < 8; ++rep) {
    EquivalenceClass big{0, {}};
    for (Item m = 1; m <= 20; ++m) big.members.push_back(m);
    classes.push_back(big);  // weight 190
    for (int s = 0; s < 3; ++s) {
      classes.push_back(EquivalenceClass{1, {2, 3}});  // weight 1
    }
  }
  const std::size_t procs = 4;
  const auto greedy = schedule_greedy(classes, procs);
  const auto rr = schedule_round_robin(classes, procs);
  const auto load_imbalance = [&](const std::vector<std::size_t>& assign) {
    const auto loads = processor_loads(classes, assign, procs);
    const std::size_t max =
        *std::max_element(loads.begin(), loads.end());
    const std::size_t total =
        std::accumulate(loads.begin(), loads.end(), std::size_t{0});
    return static_cast<double>(max) * procs / static_cast<double>(total);
  };
  EXPECT_LT(load_imbalance(greedy), load_imbalance(rr));
  EXPECT_NEAR(load_imbalance(greedy), 1.0, 0.05);
}

TEST(ScheduleRoundRobin, CyclesThroughProcessors) {
  std::vector<EquivalenceClass> classes(7, EquivalenceClass{0, {1, 2}});
  const auto assignment = schedule_round_robin(classes, 3);
  const std::vector<std::size_t> expected = {0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(assignment, expected);
}

TEST(ScheduleGreedyByWeight, HonorsExplicitWeights) {
  const std::vector<std::size_t> weights = {10, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto assignment = schedule_greedy_by_weight(weights, 2);
  // Heavy class alone on processor 0, all the light ones on processor 1.
  EXPECT_EQ(assignment[0], 0u);
  std::size_t on_one = 0;
  for (std::size_t i = 1; i < weights.size(); ++i) {
    if (assignment[i] == 1) ++on_one;
  }
  EXPECT_GE(on_one, 8u);
}

TEST(SupportWeight, SumsPairwiseMinSupports) {
  // Build a counter with known pair supports: sup(0,1)=10, sup(0,2)=4,
  // sup(0,3)=7.
  TriangleCounter counter(4);
  std::vector<Transaction> transactions;
  Tid tid = 0;
  auto add_pairs = [&](Item a, Item b, int times) {
    for (int i = 0; i < times; ++i) transactions.push_back({tid++, {a, b}});
  };
  add_pairs(0, 1, 10);
  add_pairs(0, 2, 4);
  add_pairs(0, 3, 7);
  counter.count(transactions);

  EquivalenceClass eq_class{0, {1, 2, 3}};
  // Pairs (1,2): min(10,4)=4; (1,3): min(10,7)=7; (2,3): min(4,7)=4.
  EXPECT_EQ(support_weight(eq_class, counter), 4u + 7 + 4);
}

TEST(SupportWeight, SingletonClassIsZero) {
  TriangleCounter counter(3);
  EquivalenceClass eq_class{0, {1}};
  EXPECT_EQ(support_weight(eq_class, counter), 0u);
}

TEST(ProcessorLoads, SumsWeightsPerOwner) {
  std::vector<EquivalenceClass> classes = {
      {0, {1, 2, 3}},  // weight 3
      {1, {2, 3}},     // weight 1
      {2, {3, 4}},     // weight 1
  };
  const std::vector<std::size_t> assignment = {0, 1, 0};
  const auto loads = processor_loads(classes, assignment, 2);
  EXPECT_EQ(loads[0], 4u);
  EXPECT_EQ(loads[1], 1u);
}

}  // namespace
}  // namespace eclat
