#include "parallel/hybrid.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

class HybridEclatTopology : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(HybridEclatTopology, MatchesSequentialEclat) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  EclatConfig sequential;
  sequential.minsup = 6;
  const MiningResult reference = eclat_sequential(db, sequential);

  mc::Cluster cluster(GetParam());
  ParEclatConfig config;
  config.minsup = 6;
  const ParallelOutput output = hybrid_eclat(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference)) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, HybridEclatTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{1, 4},
                      mc::Topology{2, 2}, mc::Topology{4, 2},
                      mc::Topology{2, 4}, mc::Topology{8, 4}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

class HybridCdTopology : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(HybridCdTopology, MatchesSequentialApriori) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig sequential;
  sequential.minsup = 6;
  const MiningResult reference = apriori(db, sequential);

  mc::Cluster cluster(GetParam());
  CountDistributionConfig config;
  config.minsup = 6;
  const ParallelOutput output = hybrid_count_distribution(cluster, db,
                                                          config);
  EXPECT_TRUE(same_itemsets(output.result, reference)) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, HybridCdTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{1, 4},
                      mc::Topology{2, 2}, mc::Topology{4, 2},
                      mc::Topology{2, 4}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

TEST(HybridEclat, BeatsPureEclatWithManyProcsPerHost) {
  // The point of §8.1: at P = 4 processors per host, leader-only scans
  // avoid the disk contention that the pure T-way split suffers.
  const HorizontalDatabase db = small_quest_db(2000, 60, 23);
  const mc::Topology topology{2, 4};

  mc::Cluster pure_cluster(topology);
  ParEclatConfig config;
  config.minsup = 10;
  const double pure = par_eclat(pure_cluster, db, config).total_seconds;

  mc::Cluster hybrid_cluster(topology);
  const double hybrid =
      hybrid_eclat(hybrid_cluster, db, config).total_seconds;

  EXPECT_LT(hybrid, pure * 1.2);  // at worst comparable; normally faster
}

TEST(HybridEclat, ReportsAllFourPhases) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 5;
  const ParallelOutput output = hybrid_eclat(cluster, db, config);
  for (const char* phase : {"initialization", "transformation",
                            "asynchronous", "reduction"}) {
    ASSERT_TRUE(output.phase_seconds.count(phase)) << phase;
    EXPECT_GE(output.phase_seconds.at(phase), -1e-9) << phase;
  }
}

TEST(HybridEclat, PaperModeSkipsSingletons) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  ParEclatConfig config;
  config.minsup = 5;
  config.include_singletons = false;
  const ParallelOutput output = hybrid_eclat(cluster, db, config);
  EXPECT_EQ(output.result.count_of_size(1), 0u);
}

TEST(HybridCd, ReducesAcrossHostsNotProcessors) {
  // With 1 host x 4 procs, the inter-host reduction degenerates to a
  // single update; the result must still be exact.
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{1, 4});
  CountDistributionConfig config;
  config.minsup = 5;
  AprioriConfig sequential;
  sequential.minsup = 5;
  EXPECT_TRUE(
      same_itemsets(hybrid_count_distribution(cluster, db, config).result,
                    apriori(db, sequential)));
}

}  // namespace
}  // namespace eclat::par
