// Deterministic fault injection end to end: crashes at every pipeline
// stage, stragglers, message corruption and hub degradation — Parallel
// Eclat must terminate (no deadlock), survivors must recover, and the
// mined output must equal the fault-free sequential reference exactly.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eclat/eclat_seq.hpp"
#include "mc/fault.hpp"
#include "mc/trace.hpp"
#include "parallel/par_eclat.hpp"
#include "parallel/wire.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

constexpr Count kMinsup = 6;

HorizontalDatabase test_db() { return small_quest_db(400, 30, 17); }

MiningResult reference_result(const HorizontalDatabase& db) {
  EclatConfig sequential;
  sequential.minsup = kMinsup;
  return eclat_sequential(db, sequential);
}

/// Virtual-time-only cost model: measured thread CPU is excluded, so two
/// runs of the same (plan, seed) produce bit-identical makespans.
mc::CostModel modeled_time_only() {
  mc::CostModel cost;
  cost.cpu_scale = 0.0;
  return cost;
}

ParallelOutput run_with_plan(
    const HorizontalDatabase& db, const mc::FaultPlan& plan,
    const mc::Topology& topology = {2, 2}, mc::Trace* trace = nullptr,
    IntersectKernel kernel = IntersectKernel::kMergeShortCircuit,
    bool speculate = true) {
  mc::Cluster cluster(topology, modeled_time_only());
  cluster.set_fault_plan(plan);
  if (trace != nullptr) cluster.set_trace(trace);
  ParEclatConfig config;
  config.minsup = kMinsup;
  config.kernel = kernel;
  config.lease.speculate = speculate;
  return par_eclat(cluster, db, config);
}

std::size_t count_fault_events(const mc::Trace& trace,
                               const std::string& label) {
  std::size_t n = 0;
  for (const mc::TraceEvent& event : trace.sorted()) {
    if (event.kind == mc::TraceKind::kFault &&
        event.label.rfind(label, 0) == 0) {
      ++n;
    }
  }
  return n;
}

// --- Crash-recovery: every processor, several sites across all phases. ---

struct CrashSite {
  const char* name;
  mc::FaultOp op;
  const char* phase;
};

TEST(FaultInjection, CrashAnyProcessorAnySiteOutputUnchanged) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  const CrashSite sites[] = {
      {"init-scan", mc::FaultOp::kDiskRead, "initialization"},
      {"init-reduce", mc::FaultOp::kSumReduce, "initialization"},
      {"transform-plan", mc::FaultOp::kCompute, "transformation"},
      {"transform-exchange", mc::FaultOp::kAllToAll, "transformation"},
      {"transform-commit", mc::FaultOp::kBarrier, "transformation"},
      {"final-gather", mc::FaultOp::kAllGather, "reduction"},
  };

  for (const CrashSite& site : sites) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash(victim, site.op, site.phase));
      const ParallelOutput output = run_with_plan(db, plan, topology);
      const std::string where =
          std::string(site.name) + " victim=" + std::to_string(victim);

      ASSERT_EQ(output.run_report.outcomes.size(), topology.total());
      EXPECT_EQ(output.run_report.outcomes[victim],
                mc::ProcessorOutcome::kCrashed)
          << where;
      EXPECT_EQ(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    }
  }
}

TEST(FaultInjection, CrashAfterClassCheckpointRecoversFromCheckpoints) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  for (const bool speculate : {false, true}) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash_at_point(victim, "class-checkpointed"));
      const ParallelOutput output =
          run_with_plan(db, plan, topology, nullptr,
                        IntersectKernel::kMergeShortCircuit, speculate);
      const std::string where = "victim=" + std::to_string(victim) +
                                " speculate=" + std::to_string(speculate);
      // The point only fires if the victim owns at least one class; either
      // way the output must match.
      EXPECT_LE(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
      if (output.run_report.crashed() == 1) {
        if (speculate) {
          // The dead owner's leases expire during the asynchronous phase
          // and survivors re-mine its classes speculatively, so nothing is
          // left for the post-gather recovery round.
          EXPECT_EQ(output.phase_seconds.count("recovery"), 0u) << where;
        } else {
          EXPECT_GT(output.phase_seconds.count("recovery"), 0u) << where;
        }
      }
    }
  }
}

TEST(FaultInjection, CrashRecoveryIdenticalAcrossIntersectKernels) {
  // The recovery re-mine path must yield the same output no matter which
  // intersection kernel (including the dense bitset and the adaptive auto
  // dispatch) par_eclat is configured with.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};
  const IntersectKernel kernels[] = {
      IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
      IntersectKernel::kGallop, IntersectKernel::kBitset,
      IntersectKernel::kAuto};

  for (IntersectKernel kernel : kernels) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash(victim, mc::FaultOp::kAllGather, "reduction"));
      const ParallelOutput output =
          run_with_plan(db, plan, topology, nullptr, kernel);
      const std::string where = std::string(kernel_name(kernel)) +
                                " victim=" + std::to_string(victim);
      EXPECT_EQ(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    }
  }
}

TEST(FaultInjection, CrashOfProcessorZeroMovesTheRoot) {
  // Processor 0 assembles the result in fault-free runs; its death at the
  // final gather must hand assembly to the lowest-id survivor.
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::crash(0, mc::FaultOp::kAllGather, "reduction"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.outcomes[0], mc::ProcessorOutcome::kCrashed);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, CrashAtVirtualTimeFires) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::crash_at_time(3, 1e-9));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.outcomes[3], mc::ProcessorOutcome::kCrashed);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, TwoCrashesInDifferentPhasesStillRecover) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::crash(0, mc::FaultOp::kSumReduce, "initialization"));
  plan.events.push_back(
      mc::FaultPlan::crash(2, mc::FaultOp::kAllGather, "reduction"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.crashed(), 2u);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

// --- Determinism: one seed, one schedule, one makespan. ---

TEST(FaultInjection, SamePlanSameSeedSameMakespanAndSchedule) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.seed = 0xFEED;
  plan.events.push_back(
      mc::FaultPlan::crash(1, mc::FaultOp::kAllToAll, "transformation"));
  plan.events.push_back(mc::FaultPlan::corrupt_message(
      2, mc::kAnyProcessor));

  mc::Trace trace_a, trace_b;
  const ParallelOutput a = run_with_plan(db, plan, {2, 2}, &trace_a);
  const ParallelOutput b = run_with_plan(db, plan, {2, 2}, &trace_b);

  EXPECT_EQ(a.total_seconds, b.total_seconds);  // bit-identical, cpu_scale=0
  EXPECT_TRUE(same_itemsets(a.result, b.result));
  EXPECT_EQ(a.run_report.outcomes, b.run_report.outcomes);
  // The injected-fault timeline replays exactly.
  EXPECT_EQ(count_fault_events(trace_a, "crash"),
            count_fault_events(trace_b, "crash"));
  EXPECT_EQ(count_fault_events(trace_a, "corrupt-message"),
            count_fault_events(trace_b, "corrupt-message"));
  EXPECT_EQ(count_fault_events(trace_a, "retransmit"),
            count_fault_events(trace_b, "retransmit"));
}

// --- Stragglers and hub degradation: makespan moves, output never. ---

TEST(FaultInjection, DiskStragglerGrowsMakespanNotOutput) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput clean = run_with_plan(db, {});

  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::disk_stall(2, 25.0));
  const ParallelOutput stalled = run_with_plan(db, plan);

  EXPECT_TRUE(stalled.run_report.all_finished());
  EXPECT_GT(stalled.total_seconds, clean.total_seconds);
  EXPECT_TRUE(same_itemsets(stalled.result, clean.result));
}

TEST(FaultInjection, HubDegradationStretchesTheExchange) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput clean = run_with_plan(db, {});

  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::hub_degrade(1000.0, 0.0));
  const ParallelOutput degraded = run_with_plan(db, plan);

  EXPECT_TRUE(degraded.run_report.all_finished());
  EXPECT_GT(degraded.total_seconds, clean.total_seconds);
  EXPECT_TRUE(same_itemsets(degraded.result, clean.result));
}

// --- Message corruption: detected by the CRC frame, repaired by
// retransmission, never decoded into wrong counts. ---

TEST(FaultInjection, CorruptedExchangePayloadIsRetransmitted) {
  const HorizontalDatabase db = test_db();
  mc::Trace trace;
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::corrupt_message(1, mc::kAnyProcessor));
  const ParallelOutput output = run_with_plan(db, plan, {2, 2}, &trace);

  EXPECT_TRUE(output.run_report.all_finished());
  EXPECT_EQ(count_fault_events(trace, "corrupt-message"), 1u);
  EXPECT_EQ(count_fault_events(trace, "retransmit"), 1u);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, CorruptionPlusCrashTogether) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::corrupt_message(0, mc::kAnyProcessor));
  plan.events.push_back(
      mc::FaultPlan::crash_at_point(3, "class-checkpointed"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

// --- Substrate-level behaviour. ---

TEST(FaultInjection, AbortedBodyReleasesPeersAndRethrows) {
  // A non-fault exception in one processor must not deadlock the others at
  // their barriers, and must surface from Cluster::run after the join.
  mc::Cluster cluster(mc::Topology{2, 2}, modeled_time_only());
  EXPECT_THROW(cluster.run([](mc::Processor& self) {
    if (self.id() == 2) throw std::runtime_error("boom");
    self.barrier();
    self.barrier();
  }),
               std::runtime_error);
  const mc::RunReport& report = cluster.last_run_report();
  EXPECT_EQ(report.outcomes[2], mc::ProcessorOutcome::kAborted);
  for (const std::size_t p : {0u, 1u, 3u}) {
    EXPECT_EQ(report.outcomes[p], mc::ProcessorOutcome::kFinished) << p;
  }
}

TEST(FaultInjection, RegionCorruptionIsCaughtBySealedFrame) {
  mc::Cluster cluster(mc::Topology{1, 2}, modeled_time_only());
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::corrupt_region(0));
  cluster.set_fault_plan(plan);

  const auto region = cluster.channel().create_region(1 << 12);
  std::atomic<bool> detected{false};
  cluster.run([&](mc::Processor& self) {
    const mc::Blob sealed = wire::seal_frame({1, 2, 3, 4, 5, 6, 7, 8});
    if (self.id() == 0) {
      self.region_write(region, 0, {sealed.data(), sealed.size()});
    }
    self.barrier();
    if (self.id() == 1) {
      mc::Blob readback(sealed.size());
      self.region_read(region, 0, {readback.data(), readback.size()});
      detected = !wire::open_frame(readback).ok;
    }
  });
  EXPECT_TRUE(detected.load());
}

TEST(FaultInjection, CrashEventWithoutTargetProcessorIsRejected) {
  mc::FaultPlan plan;
  mc::FaultEvent event;
  event.kind = mc::FaultKind::kCrash;  // no processor: ambiguous trigger
  plan.events.push_back(event);
  EXPECT_THROW(mc::FaultInjector(plan, 4), std::invalid_argument);
}

TEST(FaultInjection, FaultFreePlanReportsAllFinished) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput output = run_with_plan(db, {});
  EXPECT_TRUE(output.run_report.all_finished());
  EXPECT_EQ(output.run_report.crashed(), 0u);
  EXPECT_EQ(output.phase_seconds.count("recovery"), 0u);
}

}  // namespace
}  // namespace eclat::par
