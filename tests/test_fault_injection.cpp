// Deterministic fault injection end to end: crashes at every pipeline
// stage, stragglers, message corruption and hub degradation — Parallel
// Eclat must terminate (no deadlock), survivors must recover, and the
// mined output must equal the fault-free sequential reference exactly.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eclat/eclat_seq.hpp"
#include "mc/fault.hpp"
#include "mc/trace.hpp"
#include "parallel/par_eclat.hpp"
#include "parallel/wire.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

constexpr Count kMinsup = 6;

HorizontalDatabase test_db() { return small_quest_db(400, 30, 17); }

MiningResult reference_result(const HorizontalDatabase& db) {
  EclatConfig sequential;
  sequential.minsup = kMinsup;
  return eclat_sequential(db, sequential);
}

/// Virtual-time-only cost model: measured thread CPU is excluded, so two
/// runs of the same (plan, seed) produce bit-identical makespans.
mc::CostModel modeled_time_only() {
  mc::CostModel cost;
  cost.cpu_scale = 0.0;
  return cost;
}

ParallelOutput run_with_plan(
    const HorizontalDatabase& db, const mc::FaultPlan& plan,
    const mc::Topology& topology = {2, 2}, mc::Trace* trace = nullptr,
    IntersectKernel kernel = IntersectKernel::kMergeShortCircuit,
    bool speculate = true, std::size_t replication = 0) {
  mc::Cluster cluster(topology, modeled_time_only());
  cluster.set_fault_plan(plan);
  if (trace != nullptr) cluster.set_trace(trace);
  ParEclatConfig config;
  config.minsup = kMinsup;
  config.kernel = kernel;
  config.lease.speculate = speculate;
  config.replication = replication;
  return par_eclat(cluster, db, config);
}

std::size_t count_fault_events(const mc::Trace& trace,
                               const std::string& label) {
  std::size_t n = 0;
  for (const mc::TraceEvent& event : trace.sorted()) {
    if (event.kind == mc::TraceKind::kFault &&
        event.label.rfind(label, 0) == 0) {
      ++n;
    }
  }
  return n;
}

// --- Crash-recovery: every processor, several sites across all phases. ---

struct CrashSite {
  const char* name;
  mc::FaultOp op;
  const char* phase;
};

TEST(FaultInjection, CrashAnyProcessorAnySiteOutputUnchanged) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  const CrashSite sites[] = {
      {"init-scan", mc::FaultOp::kDiskRead, "initialization"},
      {"init-reduce", mc::FaultOp::kSumReduce, "initialization"},
      {"transform-plan", mc::FaultOp::kCompute, "transformation"},
      {"transform-exchange", mc::FaultOp::kAllToAll, "transformation"},
      {"transform-commit", mc::FaultOp::kBarrier, "transformation"},
      {"final-gather", mc::FaultOp::kAllGather, "reduction"},
  };

  for (const CrashSite& site : sites) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash(victim, site.op, site.phase));
      const ParallelOutput output = run_with_plan(db, plan, topology);
      const std::string where =
          std::string(site.name) + " victim=" + std::to_string(victim);

      ASSERT_EQ(output.run_report.outcomes.size(), topology.total());
      EXPECT_EQ(output.run_report.outcomes[victim],
                mc::ProcessorOutcome::kCrashed)
          << where;
      EXPECT_EQ(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    }
  }
}

TEST(FaultInjection, CrashAfterClassCheckpointRecoversFromCheckpoints) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  for (const bool speculate : {false, true}) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash_at_point(victim, "class-checkpointed"));
      const ParallelOutput output =
          run_with_plan(db, plan, topology, nullptr,
                        IntersectKernel::kMergeShortCircuit, speculate);
      const std::string where = "victim=" + std::to_string(victim) +
                                " speculate=" + std::to_string(speculate);
      // The point only fires if the victim owns at least one class; either
      // way the output must match.
      EXPECT_LE(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
      if (output.run_report.crashed() == 1) {
        if (speculate) {
          // The dead owner's leases expire during the asynchronous phase
          // and survivors re-mine its classes speculatively, so nothing is
          // left for the post-gather recovery round.
          EXPECT_EQ(output.phase_seconds.count("recovery"), 0u) << where;
        } else {
          EXPECT_GT(output.phase_seconds.count("recovery"), 0u) << where;
        }
      }
    }
  }
}

TEST(FaultInjection, CrashRecoveryIdenticalAcrossIntersectKernels) {
  // The recovery re-mine path must yield the same output no matter which
  // intersection kernel (including the dense bitset and the adaptive auto
  // dispatch) par_eclat is configured with.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};
  const IntersectKernel kernels[] = {
      IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
      IntersectKernel::kGallop, IntersectKernel::kBitset,
      IntersectKernel::kChunked, IntersectKernel::kAuto};

  for (IntersectKernel kernel : kernels) {
    for (std::size_t victim = 0; victim < topology.total(); ++victim) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::crash(victim, mc::FaultOp::kAllGather, "reduction"));
      const ParallelOutput output =
          run_with_plan(db, plan, topology, nullptr, kernel);
      const std::string where = std::string(kernel_name(kernel)) +
                                " victim=" + std::to_string(victim);
      EXPECT_EQ(output.run_report.crashed(), 1u) << where;
      EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    }
  }
}

TEST(FaultInjection, CrashOfProcessorZeroMovesTheRoot) {
  // Processor 0 assembles the result in fault-free runs; its death at the
  // final gather must hand assembly to the lowest-id survivor.
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::crash(0, mc::FaultOp::kAllGather, "reduction"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.outcomes[0], mc::ProcessorOutcome::kCrashed);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, CrashAtVirtualTimeFires) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::crash_at_time(3, 1e-9));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.outcomes[3], mc::ProcessorOutcome::kCrashed);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, TwoCrashesInDifferentPhasesStillRecover) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::crash(0, mc::FaultOp::kSumReduce, "initialization"));
  plan.events.push_back(
      mc::FaultPlan::crash(2, mc::FaultOp::kAllGather, "reduction"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.crashed(), 2u);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

// --- Determinism: one seed, one schedule, one makespan. ---

TEST(FaultInjection, SamePlanSameSeedSameMakespanAndSchedule) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.seed = 0xFEED;
  plan.events.push_back(
      mc::FaultPlan::crash(1, mc::FaultOp::kAllToAll, "transformation"));
  plan.events.push_back(mc::FaultPlan::corrupt_message(
      2, mc::kAnyProcessor));

  mc::Trace trace_a, trace_b;
  const ParallelOutput a = run_with_plan(db, plan, {2, 2}, &trace_a);
  const ParallelOutput b = run_with_plan(db, plan, {2, 2}, &trace_b);

  EXPECT_EQ(a.total_seconds, b.total_seconds);  // bit-identical, cpu_scale=0
  EXPECT_TRUE(same_itemsets(a.result, b.result));
  EXPECT_EQ(a.run_report.outcomes, b.run_report.outcomes);
  // The injected-fault timeline replays exactly.
  EXPECT_EQ(count_fault_events(trace_a, "crash"),
            count_fault_events(trace_b, "crash"));
  EXPECT_EQ(count_fault_events(trace_a, "corrupt-message"),
            count_fault_events(trace_b, "corrupt-message"));
  EXPECT_EQ(count_fault_events(trace_a, "retransmit"),
            count_fault_events(trace_b, "retransmit"));
}

// --- Stragglers and hub degradation: makespan moves, output never. ---

TEST(FaultInjection, DiskStragglerGrowsMakespanNotOutput) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput clean = run_with_plan(db, {});

  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::disk_stall(2, 25.0));
  const ParallelOutput stalled = run_with_plan(db, plan);

  EXPECT_TRUE(stalled.run_report.all_finished());
  EXPECT_GT(stalled.total_seconds, clean.total_seconds);
  EXPECT_TRUE(same_itemsets(stalled.result, clean.result));
}

TEST(FaultInjection, HubDegradationStretchesTheExchange) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput clean = run_with_plan(db, {});

  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::hub_degrade(1000.0, 0.0));
  const ParallelOutput degraded = run_with_plan(db, plan);

  EXPECT_TRUE(degraded.run_report.all_finished());
  EXPECT_GT(degraded.total_seconds, clean.total_seconds);
  EXPECT_TRUE(same_itemsets(degraded.result, clean.result));
}

// --- Message corruption: detected by the CRC frame, repaired by
// retransmission, never decoded into wrong counts. ---

TEST(FaultInjection, CorruptedExchangePayloadIsRetransmitted) {
  const HorizontalDatabase db = test_db();
  mc::Trace trace;
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::corrupt_message(1, mc::kAnyProcessor));
  const ParallelOutput output = run_with_plan(db, plan, {2, 2}, &trace);

  EXPECT_TRUE(output.run_report.all_finished());
  EXPECT_EQ(count_fault_events(trace, "corrupt-message"), 1u);
  EXPECT_EQ(count_fault_events(trace, "retransmit"), 1u);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

TEST(FaultInjection, CorruptionPlusCrashTogether) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::corrupt_message(0, mc::kAnyProcessor));
  plan.events.push_back(
      mc::FaultPlan::crash_at_point(3, "class-checkpointed"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_TRUE(same_itemsets(output.result, reference_result(db)));
}

// --- Substrate-level behaviour. ---

TEST(FaultInjection, AbortedBodyReleasesPeersAndRethrows) {
  // A non-fault exception in one processor must not deadlock the others at
  // their barriers, and must surface from Cluster::run after the join.
  mc::Cluster cluster(mc::Topology{2, 2}, modeled_time_only());
  EXPECT_THROW(cluster.run([](mc::Processor& self) {
    if (self.id() == 2) throw std::runtime_error("boom");
    self.barrier();
    self.barrier();
  }),
               std::runtime_error);
  const mc::RunReport& report = cluster.last_run_report();
  EXPECT_EQ(report.outcomes[2], mc::ProcessorOutcome::kAborted);
  for (const std::size_t p : {0u, 1u, 3u}) {
    EXPECT_EQ(report.outcomes[p], mc::ProcessorOutcome::kFinished) << p;
  }
}

TEST(FaultInjection, RegionCorruptionIsCaughtBySealedFrame) {
  mc::Cluster cluster(mc::Topology{1, 2}, modeled_time_only());
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::corrupt_region(0));
  cluster.set_fault_plan(plan);

  const auto region = cluster.channel().create_region(1 << 12);
  std::atomic<bool> detected{false};
  cluster.run([&](mc::Processor& self) {
    const mc::Blob sealed = wire::seal_frame({1, 2, 3, 4, 5, 6, 7, 8});
    if (self.id() == 0) {
      self.region_write(region, 0, {sealed.data(), sealed.size()});
    }
    self.barrier();
    if (self.id() == 1) {
      mc::Blob readback(sealed.size());
      self.region_read(region, 0, {readback.data(), readback.size()});
      detected = !wire::open_frame(readback).ok;
    }
  });
  EXPECT_TRUE(detected.load());
}

TEST(FaultInjection, CrashEventWithoutTargetProcessorIsRejected) {
  mc::FaultPlan plan;
  mc::FaultEvent event;
  event.kind = mc::FaultKind::kCrash;  // no processor: ambiguous trigger
  plan.events.push_back(event);
  EXPECT_THROW(mc::FaultInjector(plan, 4), std::invalid_argument);
}

TEST(FaultInjection, FaultFreePlanReportsAllFinished) {
  const HorizontalDatabase db = test_db();
  const ParallelOutput output = run_with_plan(db, {});
  EXPECT_TRUE(output.run_report.all_finished());
  EXPECT_EQ(output.run_report.crashed(), 0u);
  EXPECT_EQ(output.phase_seconds.count("recovery"), 0u);
}

// --- Network partitions: quorum completes, minority aborts cleanly. ---

TEST(FaultInjection, PartitionMinorityAbortsMajorityCompletes) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  for (std::size_t victim = 0; victim < topology.total(); ++victim) {
    mc::FaultPlan plan;
    // One processor cut off for the whole run: it aborts at its first
    // collective, the three-processor quorum finishes and recovers its
    // classes exactly like a crash.
    plan.events.push_back(mc::FaultPlan::partition({victim}, 0.0, 1e9));
    const ParallelOutput output = run_with_plan(db, plan, topology);
    const std::string where = "victim=" + std::to_string(victim);
    EXPECT_EQ(output.run_report.outcomes[victim],
              mc::ProcessorOutcome::kPartitioned)
        << where;
    for (std::size_t p = 0; p < topology.total(); ++p) {
      if (p == victim) continue;
      EXPECT_EQ(output.run_report.outcomes[p],
                mc::ProcessorOutcome::kFinished)
          << where << " survivor=" << p;
    }
    EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
  }
}

TEST(FaultInjection, PartitionEvenSplitAbortsAllCleanly) {
  // A 2-2 split leaves no strict majority: every processor is in a
  // minority, so the whole run aborts deterministically — no output, no
  // hang, no exception out of par_eclat.
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::partition({0, 1}, 0.0, 1e9));
  const ParallelOutput output = run_with_plan(db, plan);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(output.run_report.outcomes[p],
              mc::ProcessorOutcome::kPartitioned)
        << p;
  }
  EXPECT_TRUE(output.result.itemsets.empty());
}

TEST(FaultInjection, PartitionHealedBeforeFirstCollectiveIsInvisible) {
  // A window that closes before any processor reaches a collective never
  // cuts anyone: same outcomes, same output, same makespan as fault-free.
  const HorizontalDatabase db = test_db();
  const ParallelOutput clean = run_with_plan(db, {});

  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::partition({0, 3}, 0.0, 1e-12));
  const ParallelOutput healed = run_with_plan(db, plan);
  EXPECT_TRUE(healed.run_report.all_finished());
  EXPECT_EQ(healed.total_seconds, clean.total_seconds);
  EXPECT_TRUE(same_itemsets(healed.result, clean.result));
}

TEST(FaultInjection, PartitionBothSidesSymmetric) {
  // Naming {victim} or its complement describes the same cut: identical
  // outcomes and identical output either way.
  const HorizontalDatabase db = test_db();
  mc::FaultPlan named_minority, named_majority;
  named_minority.events.push_back(mc::FaultPlan::partition({2}, 0.0, 1e9));
  named_majority.events.push_back(
      mc::FaultPlan::partition({0, 1, 3}, 0.0, 1e9));
  const ParallelOutput a = run_with_plan(db, named_minority);
  const ParallelOutput b = run_with_plan(db, named_majority);
  EXPECT_EQ(a.run_report.outcomes, b.run_report.outcomes);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_TRUE(same_itemsets(a.result, b.result));
}

TEST(FaultInjection, PartitionPlanValidationRejectsBadWindowsAndSides) {
  const auto rejects = [](mc::FaultEvent event) {
    mc::FaultPlan plan;
    plan.events.push_back(std::move(event));
    EXPECT_THROW(mc::validate_plan(plan, 4), std::invalid_argument);
  };
  // Empty window (duration must be > 0: partitions heal).
  rejects(mc::FaultPlan::partition({1}, 0.5, 0.0));
  // Negative start.
  rejects(mc::FaultPlan::partition({1}, -0.5, 1.0));
  // Both sides need at least one member.
  rejects(mc::FaultPlan::partition({}, 0.0, 1.0));
  rejects(mc::FaultPlan::partition({0, 1, 2, 3}, 0.0, 1.0));
  // Out-of-range and duplicate members.
  rejects(mc::FaultPlan::partition({7}, 0.0, 1.0));
  rejects(mc::FaultPlan::partition({1, 1}, 0.0, 1.0));
  // A valid cut passes.
  mc::FaultPlan ok;
  ok.events.push_back(mc::FaultPlan::partition({1, 2}, 0.0, 1.0));
  EXPECT_NO_THROW(mc::validate_plan(ok, 4));
}

TEST(FaultInjection, SharedSingleOwnerTriggerCounterIsRejected) {
  // Two count-triggered events on the identical (kind, site, after_calls)
  // tuple would fire on the same probe — ambiguous, rejected up front.
  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::crash(1, mc::FaultOp::kAllToAll, "transformation"));
  plan.events.push_back(
      mc::FaultPlan::crash(1, mc::FaultOp::kAllToAll, "transformation"));
  EXPECT_THROW(mc::validate_plan(plan, 4), std::invalid_argument);
  // Distinguishing after_calls resolves the collision.
  plan.events.back().after_calls = 1;
  EXPECT_NO_THROW(mc::validate_plan(plan, 4));
}

// --- Bounded replication: replica loss at every level, every kernel. ---

TEST(FaultInjection, ReplicaLossEveryReplicationLevelEveryKernel) {
  // Crash a replica holder at its first asynchronous-phase disk read —
  // after its tid-list images committed, before any of its result
  // checkpoints — at every replication level {1, 2, all}: the mined
  // output must equal the fault-free reference regardless of whether the
  // victim's classes are re-mined from a surviving replica or rebuilt
  // from lineage (the on-disk partition files). Crashing before the
  // first checkpoint matters: it leaves the victim's first-owned class
  // unfinished too, and with this database that class is exactly the one
  // whose sole R=1 rendezvous holder is the victim itself.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};
  const IntersectKernel kernels[] = {
      IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
      IntersectKernel::kGallop, IntersectKernel::kBitset,
      IntersectKernel::kChunked, IntersectKernel::kAuto};

  // speculate=false routes the victim's unfinished classes through the
  // post-gather recovery rounds, where replica availability is actually
  // consulted (speculative backups re-mine during the asynchronous phase,
  // before the failure is even detected at a collective fold).
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2},
                                        std::size_t{0}}) {
    std::uint64_t lineage_total = 0;
    for (IntersectKernel kernel : kernels) {
      for (std::size_t victim = 0; victim < topology.total(); ++victim) {
        mc::FaultPlan plan;
        plan.events.push_back(
            mc::FaultPlan::crash(victim, mc::FaultOp::kDiskRead,
                                 "asynchronous"));
        const ParallelOutput output =
            run_with_plan(db, plan, topology, nullptr, kernel,
                          /*speculate=*/false, replication);
        const std::string where = std::string(kernel_name(kernel)) +
                                  " victim=" + std::to_string(victim) +
                                  " R=" + std::to_string(replication);
        EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
        lineage_total += output.lineage_rebuilds;
        if (replication == 0) {
          // Full replication: every image survives a single crash, so the
          // lineage fallback must never be needed.
          EXPECT_EQ(output.lineage_rebuilds, 0u) << where;
        }
      }
    }
    if (replication == 1) {
      // With a single replica, some victim holds the only copy of some
      // unfinished class's image: at least one run must have exercised
      // the lineage rebuild path (rendezvous placement is deterministic,
      // so this is a fixed property of the database and topology).
      EXPECT_GT(lineage_total, 0u);
    }
  }
}

TEST(FaultInjection, ReplicaLossOfTwoHoldersAtReplicationTwo) {
  // R=2: both holders of a class must die for its image to be lost. Two
  // crashes at the victims' first asynchronous disk reads still leave
  // two survivors and a byte-identical result, replica or lineage. With
  // this database, class 0's two rendezvous holders are exactly {0, 2},
  // so that victim pair must fall through to a lineage rebuild while the
  // disjoint pairs recover from the surviving copy.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const std::size_t pairs[][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  for (const auto& pair : pairs) {
    mc::FaultPlan plan;
    plan.events.push_back(mc::FaultPlan::crash(
        pair[0], mc::FaultOp::kDiskRead, "asynchronous"));
    plan.events.push_back(mc::FaultPlan::crash(
        pair[1], mc::FaultOp::kDiskRead, "asynchronous"));
    const ParallelOutput output =
        run_with_plan(db, plan, {2, 2}, nullptr,
                      IntersectKernel::kMergeShortCircuit,
                      /*speculate=*/false, /*replication=*/2);
    const std::string where = "victims=" + std::to_string(pair[0]) + "," +
                              std::to_string(pair[1]);
    EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    if (pair[0] == 0 && pair[1] == 2) {
      EXPECT_GT(output.lineage_rebuilds, 0u) << where;
    }
  }
}

// --- Crash during recovery: reassignment is re-entrant. ---

TEST(FaultInjection, CrashDuringRecoveryTriggersAnotherRound) {
  // Victim A dies at the final gather, forcing a recovery round; victim B
  // dies at that round's gather, forcing another. The run must not wedge
  // and the output must still match.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);

  // speculate=false: the first victim's unfinished classes reach the
  // recovery rounds (with speculation, backups re-mine them during the
  // asynchronous phase and no recovery round ever runs).
  for (std::size_t first = 0; first < 4; ++first) {
    const std::size_t second = (first + 1) % 4;
    mc::FaultPlan plan;
    plan.events.push_back(
        mc::FaultPlan::crash_at_point(first, "class-checkpointed"));
    plan.events.push_back(
        mc::FaultPlan::crash(second, mc::FaultOp::kAllGather, "recovery"));
    const ParallelOutput output =
        run_with_plan(db, plan, {2, 2}, nullptr,
                      IntersectKernel::kMergeShortCircuit,
                      /*speculate=*/false);
    const std::string where = "first=" + std::to_string(first) +
                              " second=" + std::to_string(second);
    EXPECT_EQ(output.run_report.crashed(), 2u) << where;
    EXPECT_GT(output.phase_seconds.count("recovery"), 0u) << where;
    EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
  }
}

TEST(FaultInjection, CrashDuringRecoveryAtEveryReplicationLevel) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2},
                                        std::size_t{0}}) {
    mc::FaultPlan plan;
    plan.events.push_back(
        mc::FaultPlan::crash_at_point(2, "class-checkpointed"));
    plan.events.push_back(
        mc::FaultPlan::crash(3, mc::FaultOp::kAllGather, "recovery"));
    const ParallelOutput output =
        run_with_plan(db, plan, {2, 2}, nullptr,
                      IntersectKernel::kMergeShortCircuit,
                      /*speculate=*/false, replication);
    const std::string where = "R=" + std::to_string(replication);
    EXPECT_EQ(output.run_report.crashed(), 2u) << where;
    EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
  }
}

// --- Partition + crash compound: epoch fencing keeps commits safe. ---

TEST(FaultInjection, PartitionPlusCrashCompound) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::partition({1}, 0.0, 1e9));
  plan.events.push_back(
      mc::FaultPlan::crash(3, mc::FaultOp::kAllGather, "reduction"));
  const ParallelOutput output = run_with_plan(db, plan);
  EXPECT_EQ(output.run_report.outcomes[1],
            mc::ProcessorOutcome::kPartitioned);
  EXPECT_EQ(output.run_report.outcomes[3], mc::ProcessorOutcome::kCrashed);
  EXPECT_TRUE(same_itemsets(output.result, reference));
}

}  // namespace
}  // namespace eclat::par
