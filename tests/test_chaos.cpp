// Seeded chaos sweeps as a tier-1 regression gate: hundreds of random
// compound fault schedules, each asserting the harness contract — the
// run either completes byte-identical to the fault-free reference or
// aborts cleanly with an expected diagnostic, never hangs, and replays
// bit-identically. The CLI in tools/chaos sweeps far more seeds in the
// CI soak leg; the fixed seeds here keep every local `ctest` honest.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos.hpp"
#include "mc/fault.hpp"

namespace eclat::chaos {
namespace {

const HorizontalDatabase& test_db() {
  static const HorizontalDatabase db = chaos_database(1997, 200);
  return db;
}

/// Fault-free baseline for the sweep's byte-identical comparisons.
const ChaosRun& reference_run() {
  static const ChaosRun reference = [] {
    ChaosRun run = run_plan(test_db(), mc::FaultPlan{}, ChaosOptions{});
    EXPECT_TRUE(run.completed) << run.error;
    EXPECT_FALSE(run.result_bytes.empty());
    return run;
  }();
  return reference;
}

ChaosKnobs default_knobs() {
  ChaosKnobs knobs;
  knobs.makespan_hint = reference_run().makespan;
  return knobs;
}

/// The chaos contract for one run: completed-and-byte-identical, or a
/// clean deterministic abort. Anything else is a broken invariant.
void expect_contract(const ChaosRun& run, const std::string& where) {
  if (run.completed) {
    EXPECT_FALSE(run.clean_abort) << where;
    EXPECT_EQ(run.result_bytes, reference_run().result_bytes)
        << where << ": completed run dropped or invented itemsets";
  } else {
    EXPECT_TRUE(run.clean_abort)
        << where << ": unexpected abort diagnostic \"" << run.error << "\"";
  }
}

void expect_identical(const ChaosRun& a, const ChaosRun& b,
                      const std::string& where) {
  EXPECT_EQ(a.completed, b.completed) << where;
  EXPECT_EQ(a.clean_abort, b.clean_abort) << where;
  EXPECT_EQ(a.error, b.error) << where;
  EXPECT_EQ(a.makespan, b.makespan) << where;
  EXPECT_EQ(a.finished, b.finished) << where;
  EXPECT_EQ(a.crashed, b.crashed) << where;
  EXPECT_EQ(a.hung, b.hung) << where;
  EXPECT_EQ(a.partitioned, b.partitioned) << where;
  EXPECT_EQ(a.lineage_rebuilds, b.lineage_rebuilds) << where;
  EXPECT_EQ(a.fenced_rejections, b.fenced_rejections) << where;
  EXPECT_EQ(a.result_bytes, b.result_bytes) << where;
}

TEST(Chaos, FaultFreeRunCompletesOnAllProcessors) {
  const ChaosRun& run = reference_run();
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.finished, 4u);
  EXPECT_EQ(run.crashed, 0u);
  EXPECT_EQ(run.error, "");
}

TEST(Chaos, CompoundSweepHoldsTheContract) {
  const ChaosKnobs knobs = default_knobs();
  std::size_t completed = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const ChaosRun run = run_plan(test_db(), plan, ChaosOptions{});
    expect_contract(run, "seed " + std::to_string(seed));
    if (run.completed) ++completed;
  }
  // The sweep must actually exercise both sides of the contract: plenty
  // of runs survive their schedule, and at least some abort cleanly.
  EXPECT_GT(completed, 40u);
  EXPECT_LT(completed, 120u);
}

TEST(Chaos, CompoundSweepReplaysBitIdentically) {
  const ChaosKnobs knobs = default_knobs();
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const ChaosRun first = run_plan(test_db(), plan, ChaosOptions{});
    const ChaosRun second = run_plan(test_db(), plan, ChaosOptions{});
    expect_identical(first, second, "seed " + std::to_string(seed));
  }
}

TEST(Chaos, PartitionOnlySweepHoldsTheContract) {
  ChaosKnobs knobs = default_knobs();
  knobs.crashes = false;
  knobs.hangs = false;
  knobs.stalls = false;
  knobs.corruptions = false;
  knobs.hub_degrades = false;
  std::size_t partitioned_runs = 0;
  for (std::uint64_t seed = 300; seed < 340; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const ChaosRun run = run_plan(test_db(), plan, ChaosOptions{});
    expect_contract(run, "partition seed " + std::to_string(seed));
    if (run.partitioned > 0) ++partitioned_runs;
  }
  EXPECT_GT(partitioned_runs, 0u);
}

TEST(Chaos, BoundedReplicationSweepHoldsTheContract) {
  const ChaosKnobs knobs = default_knobs();
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2}}) {
    ChaosOptions options;
    options.replication = replication;
    for (std::uint64_t seed = 400; seed < 420; ++seed) {
      const mc::FaultPlan plan = generate_plan(seed, knobs);
      const ChaosRun run = run_plan(test_db(), plan, options);
      expect_contract(run, "R=" + std::to_string(replication) + " seed " +
                               std::to_string(seed));
    }
  }
}

TEST(Chaos, NoSpeculationSweepHoldsTheContract) {
  // With leases off, every unfinished class routes through the
  // post-gather recovery rounds — the replica/lineage paths carry the
  // whole repair load.
  const ChaosKnobs knobs = default_knobs();
  ChaosOptions options;
  options.speculate = false;
  options.replication = 1;
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const ChaosRun run = run_plan(test_db(), plan, options);
    expect_contract(run, "no-spec seed " + std::to_string(seed));
  }
}

TEST(Chaos, GeneratedPlansAlwaysValidate) {
  const ChaosKnobs knobs = default_knobs();
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    EXPECT_NO_THROW(mc::validate_plan(plan, knobs.total_processors))
        << "seed " << seed;
    EXPECT_FALSE(plan.empty()) << "seed " << seed;
  }
}

TEST(Chaos, PlanTextRoundTrips) {
  const ChaosKnobs knobs = default_knobs();
  for (std::uint64_t seed = 600; seed < 625; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const std::string text = plan_to_text(plan);
    const mc::FaultPlan parsed = plan_from_text(text);
    // Re-serialization is the equality check: the text form is canonical
    // (%.17g doubles round-trip exactly).
    EXPECT_EQ(plan_to_text(parsed), text) << "seed " << seed;
    EXPECT_EQ(parsed.seed, plan.seed);
    EXPECT_EQ(parsed.events.size(), plan.events.size());
  }
}

TEST(Chaos, MalformedPlanTextNamesTheOffendingLine) {
  const auto what_of = [](const std::string& text) {
    try {
      (void)plan_from_text(text);
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string();
  };
  // A bogus directive on line 2.
  std::string what = what_of("seed 7\nbogus kind=crash\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  // An unparseable field value on line 2.
  what = what_of("seed 7\nevent kind=crash processor=banana\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  // A missing seed line is diagnosed as such.
  what = what_of("event kind=crash processor=0\n");
  EXPECT_FALSE(what.empty());
  // Empty input has no seed either.
  EXPECT_THROW((void)plan_from_text(""), std::invalid_argument);
}

// --- Exec-side chaos: the same gate for the native thread backend. ---

/// The exec chaos contract: completed-and-byte-identical to the mc
/// fault-free reference, or the typed clean quarantine abort.
void expect_exec_contract(const ExecChaosRun& run, const std::string& where) {
  if (run.completed) {
    EXPECT_FALSE(run.clean_abort) << where;
    EXPECT_EQ(run.result_bytes, reference_run().result_bytes)
        << where << ": completed threads run dropped or invented itemsets";
  } else {
    EXPECT_TRUE(run.clean_abort)
        << where << ": unexpected abort diagnostic \"" << run.error << "\"";
    EXPECT_NE(run.error.find("quarantined"), std::string::npos) << run.error;
  }
}

TEST(Chaos, GeneratedExecPlansAlwaysValidate) {
  const ExecChaosKnobs knobs;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const exec::ExecFaultPlan plan = generate_exec_plan(seed, knobs);
    EXPECT_NO_THROW(exec::validate_exec_plan(plan)) << "seed " << seed;
    EXPECT_FALSE(plan.empty()) << "seed " << seed;
    EXPECT_EQ(plan.seed, seed);
    // Determinism of the generator itself: same (seed, knobs), same text.
    EXPECT_EQ(exec::exec_plan_to_text(generate_exec_plan(seed, knobs)),
              exec::exec_plan_to_text(plan))
        << "seed " << seed;
  }
  // Kind toggles prune the drawn kinds; all off degenerates to empty.
  ExecChaosKnobs none = knobs;
  none.throws = none.corrupts = none.stalls = false;
  EXPECT_TRUE(generate_exec_plan(1, none).empty());
}

TEST(Chaos, ExecSweepHoldsTheContractAcrossExecutionShapes) {
  const ExecChaosKnobs knobs;
  std::size_t completed = 0, aborted = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const exec::ExecFaultPlan plan = generate_exec_plan(seed, knobs);
    ExecChaosOptions options;
    // Rotate the execution shape per seed, mirroring the CLI sweep.
    options.threads = 1 + seed % 5;
    options.scheduler = (seed >> 3) % 2 == 0
                            ? exec::ClassScheduler::kWorkStealing
                            : exec::ClassScheduler::kStatic;
    const ExecChaosRun run = run_exec_plan(test_db(), plan, options);
    expect_exec_contract(run, "exec seed " + std::to_string(seed));
    run.completed ? ++completed : ++aborted;
  }
  // The sweep must exercise both sides of the contract.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(aborted, 0u);
}

TEST(Chaos, ExecSweepReplaysIdentically) {
  const ExecChaosKnobs knobs;
  for (std::uint64_t seed = 200; seed < 215; ++seed) {
    const exec::ExecFaultPlan plan = generate_exec_plan(seed, knobs);
    ExecChaosOptions options;
    options.threads = 1 + seed % 5;
    const ExecChaosRun first = run_exec_plan(test_db(), plan, options);
    const ExecChaosRun second = run_exec_plan(test_db(), plan, options);
    const std::string where = "exec seed " + std::to_string(seed);
    EXPECT_EQ(first.completed, second.completed) << where;
    EXPECT_EQ(first.clean_abort, second.clean_abort) << where;
    EXPECT_EQ(first.error, second.error) << where;
    EXPECT_EQ(first.failures, second.failures) << where;
    EXPECT_EQ(first.retries, second.retries) << where;
    EXPECT_EQ(first.reclaims, second.reclaims) << where;
    EXPECT_EQ(first.result_bytes, second.result_bytes) << where;
  }
}

TEST(Chaos, ExecBudgetedSweepStillHoldsTheContract) {
  // A tight per-worker arena budget layered on top of injected faults:
  // degradation history may vary, but the byte-identical-or-clean-abort
  // contract must hold on every run.
  const ExecChaosKnobs knobs;
  for (std::uint64_t seed = 300; seed < 312; ++seed) {
    const exec::ExecFaultPlan plan = generate_exec_plan(seed, knobs);
    ExecChaosOptions options;
    options.threads = 1 + seed % 3;
    options.mem_budget = 16 * 1024;
    const ExecChaosRun run = run_exec_plan(test_db(), plan, options);
    expect_exec_contract(run, "budget seed " + std::to_string(seed));
  }
}

TEST(Chaos, ReplayedTextPlanProducesTheIdenticalRun) {
  // The CI soak leg's artifact loop: a failing plan is written as text
  // and replayed from the file. The replay must reproduce the original
  // run exactly, or the artifact is useless.
  const ChaosKnobs knobs = default_knobs();
  for (std::uint64_t seed = 700; seed < 710; ++seed) {
    const mc::FaultPlan plan = generate_plan(seed, knobs);
    const mc::FaultPlan replayed = plan_from_text(plan_to_text(plan));
    expect_identical(run_plan(test_db(), plan, ChaosOptions{}),
                     run_plan(test_db(), replayed, ChaosOptions{}),
                     "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace eclat::chaos
