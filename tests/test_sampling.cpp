#include "sampling/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "rules/rules.hpp"
#include "test_util.hpp"

namespace eclat::sampling {
namespace {

using testutil::small_quest_db;

TEST(DrawSample, SizeAndMembership) {
  const HorizontalDatabase db = small_quest_db(1000, 30, 3);
  Rng rng(5);
  const HorizontalDatabase sample = draw_sample(db, 0.2, rng);
  EXPECT_EQ(sample.size(), 200u);
  EXPECT_EQ(sample.num_items(), db.num_items());
  // Tids strictly increase (order preserved) and every transaction is a
  // copy of the original with that tid.
  Tid previous = 0;
  bool first = true;
  for (const Transaction& t : sample.transactions()) {
    if (!first) {
      EXPECT_GT(t.tid, previous);
    }
    previous = t.tid;
    first = false;
    EXPECT_EQ(db[t.tid].items, t.items);
  }
}

TEST(DrawSample, WithoutReplacement) {
  const HorizontalDatabase db = small_quest_db(500, 20, 1);
  Rng rng(9);
  const HorizontalDatabase sample = draw_sample(db, 0.5, rng);
  std::set<Tid> seen;
  for (const Transaction& t : sample.transactions()) {
    EXPECT_TRUE(seen.insert(t.tid).second) << t.tid;
  }
}

TEST(DrawSample, FullFractionIsIdentity) {
  const HorizontalDatabase db = small_quest_db(300, 20, 2);
  Rng rng(1);
  const HorizontalDatabase sample = draw_sample(db, 1.0, rng);
  ASSERT_EQ(sample.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(sample[i], db[i]);
  }
}

TEST(Compare, PrecisionAndRecall) {
  MiningResult exact;
  exact.itemsets = {{{0}, 5}, {{1}, 5}, {{0, 1}, 4}, {{2}, 3}};
  MiningResult approx;
  approx.itemsets = {{{0}, 5}, {{1}, 5}, {{3}, 2}};  // one false positive,
                                                     // two misses
  const Accuracy accuracy = compare(exact, approx);
  EXPECT_EQ(accuracy.true_positives, 2u);
  EXPECT_DOUBLE_EQ(accuracy.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy.recall, 2.0 / 4.0);
}

TEST(NegativeBorder, MinimalNonMembers) {
  // F = {a}, {b}, {c}, {a,b} over 4 items (d = 3 absent).
  const std::vector<Itemset> frequent = {{0}, {1}, {2}, {0, 1}};
  const std::vector<Itemset> border = negative_border(frequent, 4);
  // Border: {3} (absent singleton); {0,2}, {1,2} (pairs of frequent
  // singletons not in F); {a,b,c} requires {0,2} and {1,2} in F -> not
  // generated.
  std::set<Itemset> border_set(border.begin(), border.end());
  EXPECT_TRUE(border_set.count({3}));
  EXPECT_TRUE(border_set.count({0, 2}));
  EXPECT_TRUE(border_set.count({1, 2}));
  EXPECT_FALSE(border_set.count({0, 1}));     // member of F
  EXPECT_FALSE(border_set.count({0, 1, 2}));  // subset {0,2} not in F
  EXPECT_EQ(border.size(), 3u);
}

TEST(NegativeBorder, PropertyEveryElementMinimal) {
  const HorizontalDatabase db = small_quest_db();
  AprioriConfig config;
  config.minsup = 5;
  const MiningResult mined = apriori(db, config);
  std::vector<Itemset> frequent;
  for (const FrequentItemset& f : mined.itemsets) {
    frequent.push_back(f.items);
  }
  eclat::ItemsetSet members(frequent.begin(), frequent.end());
  const std::vector<Itemset> border = negative_border(frequent, db.num_items());
  for (const Itemset& itemset : border) {
    EXPECT_EQ(members.count(itemset), 0u);  // not a member
    // Every proper (size-1) subset is a member.
    if (itemset.size() < 2) continue;
    for (std::size_t drop = 0; drop < itemset.size(); ++drop) {
      Itemset subset;
      for (std::size_t i = 0; i < itemset.size(); ++i) {
        if (i != drop) subset.push_back(itemset[i]);
      }
      EXPECT_EQ(members.count(subset), 1u)
          << to_string(itemset) << " missing subset " << to_string(subset);
    }
  }
}

TEST(SampleMine, ReasonableAccuracyOnHalfSample) {
  const HorizontalDatabase db = small_quest_db(2000, 40, 13);
  const double support = 0.02;
  AprioriConfig exact_config;
  exact_config.minsup = absolute_support(support, db.size());
  const MiningResult exact = apriori(db, exact_config);

  SampleConfig config;
  config.sample_fraction = 0.5;
  config.support_scale = 0.8;
  const MiningResult approx = sample_mine(db, support, config);
  const Accuracy accuracy = compare(exact, approx);
  EXPECT_GT(accuracy.recall, 0.75);
  EXPECT_GT(accuracy.precision, 0.75);
  EXPECT_EQ(approx.database_scans, 1u);
}

TEST(Toivonen, CertifiedRunIsExact) {
  const HorizontalDatabase db = small_quest_db(1500, 30, 29);
  const double support = 0.03;
  SampleConfig config;
  config.sample_fraction = 0.5;
  config.support_scale = 0.6;  // generous lowering: certification likely
  const ToivonenOutcome outcome = toivonen_mine(db, support, config);

  AprioriConfig exact_config;
  exact_config.minsup = absolute_support(support, db.size());
  const MiningResult exact = apriori(db, exact_config);

  if (outcome.certified) {
    const Accuracy accuracy = compare(exact, outcome.result);
    EXPECT_DOUBLE_EQ(accuracy.precision, 1.0);
    EXPECT_DOUBLE_EQ(accuracy.recall, 1.0);
  }
  // Certified or not, reported supports must be exact for every itemset.
  eclat::SupportIndex index(exact);
  for (const FrequentItemset& f : outcome.result.itemsets) {
    EXPECT_EQ(f.support, index.support(f.items)) << to_string(f.items);
  }
  EXPECT_EQ(outcome.database_scans, 2u);
}

TEST(Toivonen, TinySampleLikelyMisses) {
  // A 2% sample at an aggressive support scale should usually fail
  // certification or lose recall — the algorithm must *report* that
  // honestly rather than silently returning garbage.
  const HorizontalDatabase db = small_quest_db(2000, 40, 13);
  SampleConfig config;
  config.sample_fraction = 0.02;
  config.support_scale = 1.0;
  const ToivonenOutcome outcome = toivonen_mine(db, 0.02, config);
  // All reported itemsets are genuinely frequent (exactly counted).
  AprioriConfig exact_config;
  exact_config.minsup = absolute_support(0.02, db.size());
  const MiningResult exact = apriori(db, exact_config);
  const Accuracy accuracy = compare(exact, outcome.result);
  EXPECT_DOUBLE_EQ(accuracy.precision, 1.0);
}

TEST(Toivonen, EmptyDatabaseCertifiedEmpty) {
  SampleConfig config;
  const ToivonenOutcome outcome =
      toivonen_mine(HorizontalDatabase{}, 0.1, config);
  EXPECT_TRUE(outcome.certified);
  EXPECT_TRUE(outcome.result.itemsets.empty());
}

}  // namespace
}  // namespace eclat::sampling
