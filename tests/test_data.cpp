#include "data/horizontal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "data/io.hpp"

namespace eclat {
namespace {

HorizontalDatabase tiny_db() {
  std::vector<Transaction> transactions = {
      {0, {1, 3, 4}},
      {1, {2, 3}},
      {2, {0, 1, 2, 3, 4}},
      {3, {4}},
  };
  return HorizontalDatabase(std::move(transactions), 5);
}

TEST(HorizontalDatabase, BasicAccessors) {
  const HorizontalDatabase db = tiny_db();
  EXPECT_EQ(db.size(), 4u);
  EXPECT_FALSE(db.empty());
  EXPECT_EQ(db.num_items(), 5u);
  EXPECT_EQ(db[2].items, (Itemset{0, 1, 2, 3, 4}));
}

TEST(HorizontalDatabase, RejectsUnsortedTransaction) {
  std::vector<Transaction> transactions = {{0, {3, 1}}};
  EXPECT_THROW(HorizontalDatabase(std::move(transactions), 5),
               std::invalid_argument);
}

TEST(HorizontalDatabase, RejectsDuplicateItems) {
  std::vector<Transaction> transactions = {{0, {1, 1}}};
  EXPECT_THROW(HorizontalDatabase(std::move(transactions), 5),
               std::invalid_argument);
}

TEST(HorizontalDatabase, RejectsOutOfRangeItem) {
  std::vector<Transaction> transactions = {{0, {1, 9}}};
  EXPECT_THROW(HorizontalDatabase(std::move(transactions), 5),
               std::invalid_argument);
}

TEST(HorizontalDatabase, AverageTransactionLength) {
  const HorizontalDatabase db = tiny_db();
  EXPECT_DOUBLE_EQ(db.average_transaction_length(), (3 + 2 + 5 + 1) / 4.0);
  EXPECT_DOUBLE_EQ(HorizontalDatabase().average_transaction_length(), 0.0);
}

TEST(HorizontalDatabase, ByteSizeMatchesBinaryFormat) {
  const HorizontalDatabase db = tiny_db();
  // per transaction: 4 (tid) + 4 (count) + 4*items
  EXPECT_EQ(db.byte_size(), 4u * 8 + (3 + 2 + 5 + 1) * 4);
}

TEST(HorizontalDatabase, BlockPartitionCoversEverythingOnce) {
  const HorizontalDatabase db = tiny_db();
  for (std::size_t parts : {1u, 2u, 3u, 4u, 7u}) {
    const std::vector<Block> blocks = db.block_partition(parts);
    ASSERT_EQ(blocks.size(), parts);
    std::size_t cursor = 0;
    for (const Block& block : blocks) {
      EXPECT_EQ(block.begin, cursor);
      cursor = block.end;
    }
    EXPECT_EQ(cursor, db.size());
  }
}

TEST(HorizontalDatabase, BlockPartitionIsBalanced) {
  std::vector<Transaction> transactions;
  for (Tid t = 0; t < 10; ++t) transactions.push_back({t, {0}});
  const HorizontalDatabase db(std::move(transactions), 1);
  const std::vector<Block> blocks = db.block_partition(3);
  EXPECT_EQ(blocks[0].size(), 4u);
  EXPECT_EQ(blocks[1].size(), 3u);
  EXPECT_EQ(blocks[2].size(), 3u);
}

TEST(HorizontalDatabase, BlockPartitionRejectsZeroParts) {
  EXPECT_THROW(tiny_db().block_partition(0), std::invalid_argument);
}

TEST(HorizontalDatabase, ViewReturnsBlockSpan) {
  const HorizontalDatabase db = tiny_db();
  const auto span = db.view(Block{1, 3});
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].tid, 1u);
  EXPECT_EQ(span[1].tid, 2u);
  EXPECT_THROW(db.view(Block{2, 9}), std::out_of_range);
}

TEST(Stats, ComputeStatsMatchesDatabase) {
  const DatabaseStats stats = compute_stats(tiny_db());
  EXPECT_EQ(stats.num_transactions, 4u);
  EXPECT_EQ(stats.num_items, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_length, 2.75);
  EXPECT_GT(stats.byte_size, 0u);
}

TEST(Io, BinaryRoundTrip) {
  const HorizontalDatabase db = tiny_db();
  std::stringstream stream;
  write_binary(db, stream);
  const HorizontalDatabase copy = read_binary(stream);
  EXPECT_EQ(copy.num_items(), db.num_items());
  ASSERT_EQ(copy.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(copy[i], db[i]);
  }
}

TEST(Io, BinaryRejectsGarbage) {
  std::stringstream stream("this is not a database");
  EXPECT_THROW(read_binary(stream), std::runtime_error);
}

TEST(Io, BinaryRejectsTruncation) {
  const HorizontalDatabase db = tiny_db();
  std::stringstream stream;
  write_binary(db, stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(read_binary(half), std::runtime_error);
}

TEST(Io, TextRoundTrip) {
  const HorizontalDatabase db = tiny_db();
  std::stringstream stream;
  write_text(db, stream);
  const HorizontalDatabase copy = read_text(stream);
  ASSERT_EQ(copy.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(copy[i].items, db[i].items);
  }
}

TEST(Io, TextSortsAndDeduplicates) {
  std::stringstream stream("5 1 3 1\n\n2 2\n");
  const HorizontalDatabase db = read_text(stream);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].items, (Itemset{1, 3, 5}));
  EXPECT_EQ(db[1].items, (Itemset{2}));
  EXPECT_EQ(db.num_items(), 6u);
}

TEST(Io, TextHonorsMinNumItems) {
  std::stringstream stream("0 1\n");
  const HorizontalDatabase db = read_text(stream, 100);
  EXPECT_EQ(db.num_items(), 100u);
}

TEST(Io, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "eclat_io_test.bin").string();
  const HorizontalDatabase db = tiny_db();
  write_binary_file(db, path);
  const HorizontalDatabase copy = read_binary_file(path);
  EXPECT_EQ(copy.size(), db.size());
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/nope.bin"), std::runtime_error);
}

}  // namespace
}  // namespace eclat
