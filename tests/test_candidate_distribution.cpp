#include "parallel/candidate_distribution.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(CandidateDistribution, SingleProcessorMatchesApriori) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{1, 1});
  CandidateDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = candidate_distribution(cluster, db, config);

  AprioriConfig sequential;
  sequential.minsup = 5;
  EXPECT_TRUE(same_itemsets(output.result, apriori(db, sequential)));
}

class CandidateDistributionTopology
    : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(CandidateDistributionTopology, ResultIndependentOfTopology) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig sequential;
  sequential.minsup = 5;
  const MiningResult reference = apriori(db, sequential);

  mc::Cluster cluster(GetParam());
  CandidateDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = candidate_distribution(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference)) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CandidateDistributionTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{2, 1},
                      mc::Topology{2, 2}, mc::Topology{4, 2}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

class RedistributionPassSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(RedistributionPassSweep, AnyPassChoiceGivesSameAnswer) {
  const HorizontalDatabase db = small_quest_db(500, 25, 3);
  AprioriConfig sequential;
  sequential.minsup = 5;
  const MiningResult reference = apriori(db, sequential);

  mc::Cluster cluster(mc::Topology{2, 2});
  CandidateDistributionConfig config;
  config.minsup = 5;
  config.redistribution_pass = GetParam();
  const ParallelOutput output = candidate_distribution(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference))
      << "pass=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Passes, RedistributionPassSweep,
                         ::testing::Values(3u, 4u, 5u, 99u));

TEST(CandidateDistribution, RedistributionIsReportedWhenItHappens) {
  const HorizontalDatabase db = small_quest_db(500, 25, 3);
  mc::Cluster cluster(mc::Topology{2, 2});
  CandidateDistributionConfig config;
  config.minsup = 4;
  config.redistribution_pass = 3;
  const ParallelOutput output = candidate_distribution(cluster, db, config);
  // The mined data reaches size >= 3, so the split happened.
  if (output.result.max_size() >= 3) {
    EXPECT_TRUE(output.phase_seconds.count("redistribution_end"));
  }
}

}  // namespace
}  // namespace eclat::par
