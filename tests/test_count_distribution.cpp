#include "parallel/count_distribution.hpp"

#include <gtest/gtest.h>

#include <string>

#include "apriori/apriori.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(CountDistribution, SingleProcessorMatchesSequentialApriori) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{1, 1});
  CountDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = count_distribution(cluster, db, config);

  AprioriConfig sequential;
  sequential.minsup = 5;
  EXPECT_TRUE(same_itemsets(output.result, apriori(db, sequential)));
}

class CountDistributionTopology
    : public ::testing::TestWithParam<mc::Topology> {};

TEST_P(CountDistributionTopology, ResultIndependentOfTopology) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig sequential;
  sequential.minsup = 6;
  const MiningResult reference = apriori(db, sequential);

  mc::Cluster cluster(GetParam());
  CountDistributionConfig config;
  config.minsup = 6;
  const ParallelOutput output = count_distribution(cluster, db, config);
  EXPECT_TRUE(same_itemsets(output.result, reference))
      << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CountDistributionTopology,
    ::testing::Values(mc::Topology{1, 1}, mc::Topology{1, 2},
                      mc::Topology{2, 1}, mc::Topology{2, 2},
                      mc::Topology{4, 2}, mc::Topology{2, 4},
                      mc::Topology{8, 1}),
    [](const auto& info) {
      return testutil::topology_test_name(info.param);
    });

TEST(CountDistribution, ComputationBalancingSameAnswer) {
  // CCPD's third optimization ([16]): strided candidate generation plus
  // an exchange must assemble the identical Ck on every processor.
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  AprioriConfig sequential;
  sequential.minsup = 5;
  const MiningResult reference = apriori(db, sequential);

  for (const mc::Topology topology :
       {mc::Topology{1, 1}, mc::Topology{2, 2}, mc::Topology{4, 2}}) {
    mc::Cluster cluster(topology);
    CountDistributionConfig config;
    config.minsup = 5;
    config.computation_balancing = true;
    const ParallelOutput output = count_distribution(cluster, db, config);
    EXPECT_TRUE(same_itemsets(output.result, reference))
        << topology.label();
  }
}

TEST(CountDistribution, ChargesTimeAndTraffic) {
  const HorizontalDatabase db = small_quest_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  CountDistributionConfig config;
  config.minsup = 5;
  const ParallelOutput output = count_distribution(cluster, db, config);
  EXPECT_GT(output.total_seconds, 0.0);
}

TEST(CountDistribution, HandlesHighSupportGracefully) {
  const HorizontalDatabase db = handmade_db();
  mc::Cluster cluster(mc::Topology{2, 2});
  CountDistributionConfig config;
  config.minsup = 1000;  // nothing frequent
  const ParallelOutput output = count_distribution(cluster, db, config);
  EXPECT_TRUE(output.result.itemsets.empty());
}

TEST(CountDistribution, MoreProcessorsMeansMoreSynchronizationTraffic) {
  const HorizontalDatabase db = small_quest_db();
  CountDistributionConfig config;
  config.minsup = 5;

  mc::Cluster small(mc::Topology{2, 1});
  const auto few = count_distribution(small, db, config);
  mc::Cluster large(mc::Topology{8, 1});
  const auto many = count_distribution(large, db, config);
  // Per-iteration reductions involve every processor, so the makespan's
  // synchronization share grows with T even though compute shrinks.
  EXPECT_TRUE(same_itemsets(few.result, many.result));
}

}  // namespace
}  // namespace eclat::par
