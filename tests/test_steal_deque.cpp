// StealDeque unit + stress tests. The stress cases are the repo's tsan
// canary for the exec module: every CI sanitizer leg runs them, and the
// deque's seq_cst formulation exists precisely so ThreadSanitizer models
// it exactly (no fences).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"

namespace {

using eclat::exec::StealDeque;

TEST(StealDeque, OwnerPopsLifo) {
  StealDeque deque(8);
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.size_hint(), 3u);
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(3));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(2));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(1));
  EXPECT_EQ(deque.pop(), std::nullopt);
  EXPECT_EQ(deque.size_hint(), 0u);
}

TEST(StealDeque, ThievesStealFifo) {
  StealDeque deque(8);
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.steal(), std::optional<std::size_t>(1));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(3));
  EXPECT_EQ(deque.steal(), std::optional<std::size_t>(2));
  EXPECT_EQ(deque.steal(), std::nullopt);
  EXPECT_EQ(deque.pop(), std::nullopt);
}

TEST(StealDeque, PushAfterDrainReusesRing) {
  StealDeque deque(2);  // rounds up to capacity 2
  for (int round = 0; round < 10; ++round) {
    deque.push(static_cast<std::size_t>(round));
    deque.push(static_cast<std::size_t>(round) + 100);
    EXPECT_EQ(deque.steal(), std::optional<std::size_t>(round));
    EXPECT_EQ(deque.pop(),
              std::optional<std::size_t>(static_cast<std::size_t>(round) +
                                         100));
  }
  EXPECT_EQ(deque.pop(), std::nullopt);
}

/// Exactly-once delivery under owner-vs-thief contention: every pushed
/// task must be acquired by exactly one party, none lost, none duplicated.
void exactly_once_stress(std::size_t tasks, std::size_t thieves,
                         bool interleave_pushes) {
  StealDeque deque(tasks);
  std::atomic<std::size_t> remaining{tasks};
  std::vector<std::vector<std::size_t>> acquired(thieves + 1);

  std::vector<std::thread> pool;
  for (std::size_t thief = 0; thief < thieves; ++thief) {
    pool.emplace_back([&, thief] {
      while (remaining.load(std::memory_order_relaxed) > 0) {
        if (const std::optional<std::size_t> task = deque.steal()) {
          acquired[1 + thief].push_back(*task);
          remaining.fetch_sub(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything (optionally popping along the way), then drain.
  for (std::size_t task = 0; task < tasks; ++task) {
    deque.push(task);
    if (interleave_pushes && task % 3 == 0) {
      if (const std::optional<std::size_t> got = deque.pop()) {
        acquired[0].push_back(*got);
        remaining.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  while (remaining.load(std::memory_order_relaxed) > 0) {
    if (const std::optional<std::size_t> got = deque.pop()) {
      acquired[0].push_back(*got);
      remaining.fetch_sub(1, std::memory_order_relaxed);
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : pool) t.join();

  std::vector<std::size_t> all;
  for (const std::vector<std::size_t>& part : acquired) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), tasks);
  std::sort(all.begin(), all.end());
  for (std::size_t task = 0; task < tasks; ++task) {
    ASSERT_EQ(all[task], task) << "task lost or duplicated";
  }
}

TEST(StealDeque, ExactlyOnceUnderContention) {
  exactly_once_stress(20'000, 3, /*interleave_pushes=*/false);
}

TEST(StealDeque, ExactlyOnceWithInterleavedPushes) {
  exactly_once_stress(20'000, 3, /*interleave_pushes=*/true);
}

TEST(StealDeque, ExactlyOnceManyThieves) {
  exactly_once_stress(5'000, 7, /*interleave_pushes=*/true);
}

}  // namespace
